/**
 * @file
 * Figure 13(a): minimal merge-table size required to merge all
 * eligible requests, with and without merging-aware TB coordination
 * (the paper reports an 87% reduction, <40 KB vs up to 250 KB per
 * port at its 128 B request granularity).
 *
 * Figure 13(b): waiting-time (request stagger) ablation — each
 * coordination mechanism step reduces the first-to-last arrival delay
 * (35 us -> <3 us in the paper).
 *
 * Sizes are reported both in our chunk-granularity bytes and as
 * "128 B-entry equivalents" (entries x 128 B) for comparison with the
 * paper's per-port numbers (see EXPERIMENTS.md).
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

namespace
{

struct Variant
{
    const char *label;
    const char *strategy;
    bool zeroJitter = false;
};

SweepJob
variantJob(const Variant &v, const LlmConfig &m, RunConfig cfg)
{
    cfg.unboundedMergeTable = true; // measure required size
    if (v.zeroJitter)
        cfg.gpu.jitterSigma = 0.0;
    SweepJob j;
    j.spec = strategyByName(v.strategy);
    j.cfg = cfg;
    j.workload = "L1";
    j.graph = [m] { return buildSubLayer(m, SubLayerId::L1); };
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    // The uncoordinated drift regime the paper measures (35 us).
    BenchArgs a = BenchArgs::parse(argc, argv, 0.5, 0.25);
    RunConfig cfg = a.runConfig();
    if (!a.params.has("skew_us"))
        cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    // Coordination's outstanding-request throttle (Sec. V-C.2).
    cfg.gpu.maxCaisLoadOutstanding =
        static_cast<int>(a.params.getInt("lcap", 96));
    banner("Fig. 13: merge-table sizing & TB-coordination ablation",
           a);

    // Queue (a) and (b) as one grid; both parts run on the pool.
    const Variant steps[] = {
        {"uncoordinated", "CAIS-w/o-Coord", false},
        {"+pre-launch & pre-access sync", "CAIS-Partial", false},
        {"+traffic control (full CAIS)", "CAIS", false},
        {"full CAIS, no scheduling jitter", "CAIS", true},
    };
    LlmConfig m7 = a.model(llama7B());

    std::vector<SweepJob> jobs;
    for (const auto &base : tableOneModels()) {
        LlmConfig m = a.model(base);
        for (const char *variant : {"CAIS", "CAIS-w/o-Coord"})
            jobs.push_back(variantJob({variant, variant}, m, cfg));
    }
    for (const Variant &v : steps)
        jobs.push_back(variantJob(v, m7, cfg));
    std::vector<RunResult> results = sweep(jobs);

    // ---------------- (a) required table size --------------------
    std::printf("(a) minimal required merge-table size per port\n");
    std::printf("%-18s %12s %16s %22s\n", "model", "variant",
                "bytes/port", "128B-entry equiv");
    std::size_t idx = 0;
    for (const auto &base : tableOneModels()) {
        for (const char *variant : {"CAIS", "CAIS-w/o-Coord"}) {
            const RunResult &r = results[idx++];
            std::printf("%-18s %12s %13llu KB %16llu KB\n",
                        base.name.c_str(),
                        std::string(variant) == "CAIS" ? "coord"
                                                       : "no-coord",
                        static_cast<unsigned long long>(
                            r.peakMergeBytes / 1024),
                        static_cast<unsigned long long>(
                            r.peakMergeBytes / cfg.chunkBytes * 128 /
                            1024));
        }
    }
    std::printf("paper: <40 KB/port with coordination vs up to 250 KB "
                "without (87%% reduction),\n"
                "       insensitive to model size with coordination.\n\n");

    // ---------------- (b) waiting-time ablation -------------------
    std::printf("(b) request stagger (first-to-last arrival delay)\n");
    std::printf("%-34s %14s\n", "configuration", "stagger (us)");
    for (const Variant &v : steps) {
        const RunResult &r = results[idx++];
        std::printf("%-34s %14.2f\n", v.label, r.staggerUs);
    }
    std::printf("paper: 35 us uncoordinated -> <3 us with full "
                "coordination (~10x).\n");
    return 0;
}
