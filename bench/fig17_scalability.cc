/**
 * @file
 * Figure 17 / Sec. V-C: scalability.
 *
 * (1) Performance: per-GPU compute throughput of CAIS and
 * CoCoNet-NVLS from 8 to 32 GPUs, with the hidden dimension scaled
 * proportionally (the paper keeps per-GPU work constant); normalized
 * to 8-GPU CAIS. The paper reports <5% drop at 32 GPUs.
 *
 * (2) Hardware cost: the required merge-table footprint stays bounded
 * by a single GPU's outstanding-request window, independent of GPU
 * count (40 KB/port, 1280 KB system-wide in the paper).
 */

#include "analysis/area_model.hh"
#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 1.0, 0.125);
    banner("Fig. 17: scalability with increasing GPU count", a);

    LlmConfig base = a.model(llama7B());

    struct Row
    {
        int gpus;
        double caisTput = 0;
        double coconetTput = 0;
        std::uint64_t peakTable = 0;
    };
    std::vector<Row> rows;

    // Queue the (GPU count) x (CAIS, CoCoNet-NVLS) grid.
    std::vector<SweepJob> jobs;
    std::vector<double> flopsPerGpu;
    for (int gpus : {8, 16, 32}) {
        RunConfig cfg = a.runConfig();
        cfg.numGpus = gpus;
        cfg.unboundedMergeTable = true;

        // Scale the hidden dimension with the GPU count so per-GPU
        // compute stays constant (Sec. V-C.1).
        LlmConfig m = base;
        m.hidden = base.hidden * gpus / 8;
        m.ffnHidden = base.ffnHidden * gpus / 8;

        OpGraph g = buildSubLayer(m, SubLayerId::L1);

        // Per-GPU compute throughput = per-GPU FLOPs / time (the
        // hidden-dim scaling grows per-GPU FLOPs with G).
        double flops_per_gpu = 0.0;
        for (const OpNode &n : g.ops())
            flops_per_gpu += n.flops() * n.flopScale;
        flopsPerGpu.push_back(flops_per_gpu / gpus);

        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
        addJob(jobs, strategyByName("CoCoNet-NVLS"), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);

    std::size_t idx = 0;
    std::size_t scale = 0;
    for (int gpus : {8, 16, 32}) {
        Row row;
        row.gpus = gpus;
        const RunResult &cais = results[idx++];
        const RunResult &coco = results[idx++];
        row.caisTput = flopsPerGpu[scale] / cais.makespanUs();
        row.coconetTput = flopsPerGpu[scale] / coco.makespanUs();
        row.peakTable = cais.peakMergeBytes;
        rows.push_back(row);
        ++scale;
    }

    double norm = rows[0].caisTput;
    std::printf("%6s %22s %22s %20s\n", "GPUs",
                "CAIS per-GPU tput", "CoCoNet-NVLS tput",
                "peak table/port");
    for (const Row &r : rows) {
        std::printf("%6d %21.1f%% %21.1f%% %17llu KB\n", r.gpus,
                    100.0 * r.caisTput / norm,
                    100.0 * r.coconetTput / norm,
                    static_cast<unsigned long long>(r.peakTable /
                                                    1024));
    }
    std::printf("\npaper: per-GPU throughput drops <5%% from 8 to 32 "
                "GPUs; CAIS stays above\n"
                "       CoCoNet-NVLS throughout; the table bound is "
                "independent of GPU count.\n\n");

    // Hardware-cost bound (Sec. V-C.2).
    RunConfig cfg = a.runConfig();
    std::uint64_t bound = systemMergeTableBound(
        cfg.gpu.maxCaisLoadOutstanding, cfg.chunkBytes,
        cfg.numSwitches, 8);
    std::printf("analytic system-wide merging bound (one GPU's "
                "outstanding window): %llu KB\n",
                static_cast<unsigned long long>(bound / 1024));
    std::printf("paper: 1280 KB system-wide, constant in GPU "
                "count.\n");
    return 0;
}
