/**
 * @file
 * Figure 17 / Sec. V-C: scalability.
 *
 * (1) Performance: per-GPU compute throughput of CAIS and
 * CoCoNet-NVLS from 8 to 32 GPUs, with the hidden dimension scaled
 * proportionally (the paper keeps per-GPU work constant); normalized
 * to 8-GPU CAIS. The paper reports <5% drop at 32 GPUs.
 *
 * (2) Hardware cost: the required merge-table footprint stays bounded
 * by a single GPU's outstanding-request window, independent of GPU
 * count (40 KB/port, 1280 KB system-wide in the paper).
 *
 * (3) Multi-tier scalability: the same per-GPU-throughput experiment
 * from 8 to 72 GPUs across fabric presets (flat dgx-h100,
 * rail-optimized, NVL72-class), with hierarchical in-switch merging
 * on the tiered shapes. Emits BENCH_fig17_multitier.json
 * (json_out= overrides the path, max_gpus= caps the sweep).
 */

#include <cstdio>

#include "analysis/area_model.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 1.0, 0.125);
    banner("Fig. 17: scalability with increasing GPU count", a);

    LlmConfig base = a.model(llama7B());

    struct Row
    {
        int gpus;
        double caisTput = 0;
        double coconetTput = 0;
        std::uint64_t peakTable = 0;
    };
    std::vector<Row> rows;

    // Queue the (GPU count) x (CAIS, CoCoNet-NVLS) grid.
    std::vector<SweepJob> jobs;
    std::vector<double> flopsPerGpu;
    for (int gpus : {8, 16, 32}) {
        RunConfig cfg = a.runConfig();
        cfg.numGpus = gpus;
        cfg.unboundedMergeTable = true;

        // Scale the hidden dimension with the GPU count so per-GPU
        // compute stays constant (Sec. V-C.1).
        LlmConfig m = base;
        m.hidden = base.hidden * gpus / 8;
        m.ffnHidden = base.ffnHidden * gpus / 8;

        OpGraph g = buildSubLayer(m, SubLayerId::L1);

        // Per-GPU compute throughput = per-GPU FLOPs / time (the
        // hidden-dim scaling grows per-GPU FLOPs with G).
        double flops_per_gpu = 0.0;
        for (const OpNode &n : g.ops())
            flops_per_gpu += n.flops() * n.flopScale;
        flopsPerGpu.push_back(flops_per_gpu / gpus);

        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
        addJob(jobs, strategyByName("CoCoNet-NVLS"), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);

    std::size_t idx = 0;
    std::size_t scale = 0;
    for (int gpus : {8, 16, 32}) {
        Row row;
        row.gpus = gpus;
        const RunResult &cais = results[idx++];
        const RunResult &coco = results[idx++];
        row.caisTput = flopsPerGpu[scale] / cais.makespanUs();
        row.coconetTput = flopsPerGpu[scale] / coco.makespanUs();
        row.peakTable = cais.peakMergeBytes;
        rows.push_back(row);
        ++scale;
    }

    double norm = rows[0].caisTput;
    std::printf("%6s %22s %22s %20s\n", "GPUs",
                "CAIS per-GPU tput", "CoCoNet-NVLS tput",
                "peak table/port");
    for (const Row &r : rows) {
        std::printf("%6d %21.1f%% %21.1f%% %17llu KB\n", r.gpus,
                    100.0 * r.caisTput / norm,
                    100.0 * r.coconetTput / norm,
                    static_cast<unsigned long long>(r.peakTable /
                                                    1024));
    }
    std::printf("\npaper: per-GPU throughput drops <5%% from 8 to 32 "
                "GPUs; CAIS stays above\n"
                "       CoCoNet-NVLS throughout; the table bound is "
                "independent of GPU count.\n\n");

    // Hardware-cost bound (Sec. V-C.2).
    RunConfig cfg = a.runConfig();
    std::uint64_t bound = systemMergeTableBound(
        cfg.gpu.maxCaisLoadOutstanding, cfg.chunkBytes,
        cfg.numSwitches, 8);
    std::printf("analytic system-wide merging bound (one GPU's "
                "outstanding window): %llu KB\n",
                static_cast<unsigned long long>(bound / 1024));
    std::printf("paper: 1280 KB system-wide, constant in GPU "
                "count.\n");

    // (3) Multi-tier sweep: 8 -> 72 GPUs on every preset that scales
    // to the count (withGpus keeps 8 GPUs per group and adds groups).
    const int maxGpus = a.maxGpus > 0 ? a.maxGpus : 72;
    const char *tierPresets[] = {"dgx-h100", "rail-optimized-4node",
                                 "nvl72"};

    struct TierRow
    {
        std::string preset;
        int gpus = 0;
        double caisTput = 0;
        double coconetTput = 0;
        Cycle caisMakespan = 0;
        Cycle coconetMakespan = 0;
        std::uint64_t caisWireBytes = 0;
    };
    std::vector<TierRow> tierRows;
    std::vector<SweepJob> tierJobs;
    std::vector<double> tierFlops;

    for (const char *preset : tierPresets) {
        for (int gpus : {8, 16, 32, 72}) {
            if (gpus > maxGpus)
                continue;
            RunConfig tc = a.runConfig();
            tc.topology = preset;
            tc.numGpus = gpus;
            tc.unboundedMergeTable = true;
            if (!tc.validationError().empty())
                continue; // preset does not scale to this count

            LlmConfig m = base;
            m.hidden = base.hidden * gpus / 8;
            m.ffnHidden = base.ffnHidden * gpus / 8;
            OpGraph g = buildSubLayer(m, SubLayerId::L1);

            double flops_per_gpu = 0.0;
            for (const OpNode &n : g.ops())
                flops_per_gpu += n.flops() * n.flopScale;
            tierFlops.push_back(flops_per_gpu / gpus);

            TierRow row;
            row.preset = preset;
            row.gpus = gpus;
            tierRows.push_back(row);
            addJob(tierJobs, strategyByName("CAIS"), g, tc, "L1");
            addJob(tierJobs, strategyByName("CoCoNet-NVLS"), g, tc,
                   "L1");
        }
    }
    std::vector<RunResult> tierResults = sweep(tierJobs);

    std::printf("\n%22s %6s %18s %18s\n", "preset", "GPUs",
                "CAIS per-GPU tput", "CoCoNet-NVLS tput");
    double tierNorm = 0.0;
    for (std::size_t i = 0; i < tierRows.size(); ++i) {
        TierRow &row = tierRows[i];
        const RunResult &cais = tierResults[2 * i];
        const RunResult &coco = tierResults[2 * i + 1];
        row.caisTput = tierFlops[i] / cais.makespanUs();
        row.coconetTput = tierFlops[i] / coco.makespanUs();
        row.caisMakespan = cais.makespan;
        row.coconetMakespan = coco.makespan;
        row.caisWireBytes = cais.wireBytes;
        if (tierNorm == 0.0)
            tierNorm = row.caisTput;
        std::printf("%22s %6d %17.1f%% %17.1f%%\n",
                    row.preset.c_str(), row.gpus,
                    100.0 * row.caisTput / tierNorm,
                    100.0 * row.coconetTput / tierNorm);
    }
    std::printf("(normalized to 8-GPU %s CAIS; tiered presets merge "
                "hierarchically:\nleaves emit partial reductions, "
                "spines combine)\n",
                tierPresets[0]);

    std::string json_out = a.params.getString(
        "json_out", "BENCH_fig17_multitier.json");
    if (!json_out.empty()) {
        JsonWriter w;
        w.beginObject();
        w.field("schema", "cais-fig17-multitier-v1");
        w.field("workload", "L1");
        w.field("maxGpus", maxGpus);
        w.key("rows").beginArray();
        for (const TierRow &row : tierRows) {
            w.beginObject();
            w.field("preset", row.preset);
            w.field("gpus", row.gpus);
            w.field("caisPerGpuTput", row.caisTput);
            w.field("coconetNvlsPerGpuTput", row.coconetTput);
            w.field("caisMakespan",
                    static_cast<std::uint64_t>(row.caisMakespan));
            w.field("coconetNvlsMakespan",
                    static_cast<std::uint64_t>(row.coconetMakespan));
            w.field("caisWireBytes", row.caisWireBytes);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (std::FILE *f = std::fopen(json_out.c_str(), "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("wrote %s\n", json_out.c_str());
        } else {
            std::fprintf(stderr, "fig17: cannot write %s\n",
                         json_out.c_str());
        }
    }
    return 0;
}
