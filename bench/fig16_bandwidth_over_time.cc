/**
 * @file
 * Figure 16: link bandwidth utilization over time for the L2
 * sub-layer of LLaMA-7B under (a) CAIS-Base, (b) CAIS-Partial
 * (no traffic control) and (c) full CAIS, rendered as ASCII series.
 * The paper shows CAIS sustaining near-peak utilization while the
 * partial configuration dips under contention and the base
 * configuration fluctuates at a low level.
 */

#include "analysis/bandwidth_probe.hh"
#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 0.25, 0.5);
    banner("Fig. 16: bandwidth utilization over time (L2, LLaMA-7B)",
           a);

    RunConfig cfg = a.runConfig();
    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L2);

    const char *variants[] = {"CAIS-Base", "CAIS-Partial", "CAIS"};
    const char *tags[] = {"(a) CAIS-Base", "(b) CAIS-Partial",
                          "(c) CAIS"};

    for (int v = 0; v < 3; ++v) {
        RunResult r = runGraph(strategyByName(variants[v]), g, cfg,
                               "L2");
        std::printf("%s — makespan %.1f us, mean util %s (up %s / "
                    "dn %s)\n",
                    tags[v], r.makespanUs(), pct(r.avgUtil).c_str(),
                    pct(r.upUtil).c_str(), pct(r.dnUtil).c_str());
        std::printf("%s\n",
                    renderSeries(r.utilSeries, r.utilBinWidth, 20)
                        .c_str());
    }

    std::printf("paper: CAIS holds near-peak utilization in steady "
                "state; CAIS-Partial dips under\n"
                "       head-of-line contention; CAIS-Base is lowest "
                "and fluctuating.\n");
    return 0;
}
