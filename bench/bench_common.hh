/**
 * @file
 * Shared helpers for the figure/table reproduction benches: argument
 * handling, default scaled-down model dims (shape-preserving; pass
 * dim=1 tok=1 for the paper's Table-I sizes), and row formatting.
 *
 * Every bench prints the rows/series of one paper figure or table,
 * plus the paper's reported values for side-by-side comparison.
 */

#ifndef CAIS_BENCH_BENCH_COMMON_HH
#define CAIS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "runtime/simulation_driver.hh"
#include "runtime/sweep.hh"
#include "workload/llm_config.hh"

namespace cais::bench
{

/** Parsed bench options. */
struct BenchArgs
{
    Params params;

    /** Shape-preserving reduction factors (Sec. IV-B methodology,
     *  extended: the paper halves dims, we further reduce so every
     *  bench runs in seconds; pass dim=1 tok=1 for Table-I sizes). */
    double dimFactor = 0.5;
    double tokFactor = 0.25;

    int gpus = 8;
    int switches = 4;

    /** Fabric preset (topology=nvl72 etc.); empty keeps the flat
     *  gpus x switches shape. */
    std::string topology;

    /** Upper bound for GPU-count sweeps (max_gpus=; 0 = no cap). */
    int maxGpus = 0;

    static BenchArgs
    parse(int argc, char **argv, double dim_def = 0.5,
          double tok_def = 0.25)
    {
        BenchArgs a;
        a.params = Params::fromArgs(argc, argv);
        // --no-verify: skip the cais-verify static gate (the one
        // bench flag that is not key=value, mirroring cais_verify).
        for (int i = 1; i < argc; ++i)
            if (std::string(argv[i]) == "--no-verify")
                a.params.set("verify", "0");
        a.dimFactor = a.params.getDouble("dim", dim_def);
        a.tokFactor = a.params.getDouble("tok", tok_def);
        a.topology = a.params.getString("topology", "");
        // With a preset, default the GPU count to the preset's own
        // (nvl72 -> 72) instead of the flat default of 8.
        int gpus_def = 8;
        if (const FabricParams *p =
                FabricParams::findPreset(a.topology))
            gpus_def = p->numGpus;
        a.gpus = static_cast<int>(a.params.getInt("gpus", gpus_def));
        a.switches = static_cast<int>(a.params.getInt("switches", 4));
        a.maxGpus = static_cast<int>(a.params.getInt("max_gpus", 0));
        return a;
    }

    RunConfig
    runConfig() const
    {
        RunConfig cfg;
        cfg.numGpus = gpus;
        cfg.numSwitches = switches;
        cfg.topology = topology;
        cfg.chunkBytes = static_cast<std::uint32_t>(
            params.getInt("chunk", cfg.chunkBytes));
        cfg.gpu.numSms = static_cast<int>(
            params.getInt("sms", cfg.gpu.numSms));
        cfg.gpu.maxStartSkew = static_cast<Cycle>(params.getInt(
            "skew_us",
            static_cast<std::int64_t>(cfg.gpu.maxStartSkew /
                                      cyclesPerUs))) * cyclesPerUs;
        // Observability knobs (DESIGN.md §6d): --seed=<n> reseeds
        // every random stream, --trace=<path> writes the Perfetto
        // trace, --metrics=<path> the JSON run report. Multi-job
        // benches uniquify the paths per job (see sweep()).
        cfg.seed = static_cast<std::uint64_t>(params.getInt(
            "seed", static_cast<std::int64_t>(cfg.seed)));
        cfg.tracePath = params.getString("trace", "");
        cfg.metricsPath = params.getString("metrics", "");
        // --profile=<path> writes the causal critical-path profile
        // (cais-profile-v1 JSON, DESIGN.md §6g).
        cfg.profilePath = params.getString("profile", "");
        cfg.traceSampleCycles = static_cast<Cycle>(params.getInt(
            "trace_sample",
            static_cast<std::int64_t>(cfg.traceSampleCycles)));
        cfg.verify = params.getBool("verify", true);
        // shards=<n> selects the sharded event core (DESIGN.md §6f);
        // the default 0 defers to CAIS_SHARDS, then sequential.
        cfg.shards = static_cast<int>(params.getInt("shards", 0));
        // Reject bad values (shards=-2, chunk=3000, ...) here with
        // the bounds message instead of aborting deep inside the
        // first queued run — and never silently clamp them.
        std::string err = cfg.validationError();
        if (!err.empty()) {
            std::fprintf(stderr, "bench: invalid config: %s\n",
                         err.c_str());
            std::exit(2);
        }
        return cfg;
    }

    LlmConfig
    model(const LlmConfig &base) const
    {
        return base.scaled(dimFactor, tokFactor);
    }
};

/** Print the bench banner with the effective configuration. */
inline void
banner(const char *what, const BenchArgs &a)
{
    std::printf("== %s ==\n", what);
    if (!a.topology.empty())
        std::printf("config: %s preset, %d GPUs, dim=%.3g tok=%.3g, "
                    "%d sim jobs (CAIS_JOBS)\n"
                    "(pass dim=1 tok=1 for Table-I sizes)\n\n",
                    a.topology.c_str(), a.gpus, a.dimFactor,
                    a.tokFactor, SweepRunner::defaultThreads());
    else
        std::printf("config: %d GPUs x %d switches, dim=%.3g "
                    "tok=%.3g, %d sim jobs (CAIS_JOBS)\n"
                    "(pass dim=1 tok=1 for Table-I sizes)\n\n",
                    a.gpus, a.switches, a.dimFactor, a.tokFactor,
                    SweepRunner::defaultThreads());
}

/**
 * Sweep scaffolding shared by every grid-shaped bench: queue jobs in
 * the order the printing code will consume them, then execute the
 * whole grid on the CAIS_JOBS worker pool. Results come back in
 * submission order and are bit-identical to a serial run.
 */
inline void
addJob(std::vector<SweepJob> &jobs, StrategySpec spec, OpGraph graph,
       RunConfig cfg, std::string workload)
{
    jobs.push_back(makeSweepJob(std::move(spec), std::move(graph),
                                std::move(cfg),
                                std::move(workload)));
}

/** "out.json" + index 2 -> "out.2.json"; index 0 keeps the name, so
 *  single-job benches write exactly the path the user gave. */
inline std::string
uniquifyPath(const std::string &path, std::size_t index)
{
    if (path.empty() || index == 0)
        return path;
    std::string suffix = "." + std::to_string(index);
    auto dot = path.rfind('.');
    if (dot == std::string::npos || dot == 0)
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

/** Run a queued grid on the default (CAIS_JOBS-sized) pool. Trace,
 *  metrics and profile output paths are uniquified per job index so
 *  a grid bench run with --trace/--metrics/--profile does not
 *  overwrite itself. */
inline std::vector<RunResult>
sweep(std::vector<SweepJob> jobs)
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].cfg.tracePath = uniquifyPath(jobs[i].cfg.tracePath, i);
        jobs[i].cfg.metricsPath =
            uniquifyPath(jobs[i].cfg.metricsPath, i);
        jobs[i].cfg.profilePath =
            uniquifyPath(jobs[i].cfg.profilePath, i);
    }
    return runSweep(jobs);
}

/** "1.38x"-style speedup cell. */
inline std::string
x(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

} // namespace cais::bench

#endif // CAIS_BENCH_BENCH_COMMON_HH
