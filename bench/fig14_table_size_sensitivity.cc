/**
 * @file
 * Figure 14: performance sensitivity to the merge-table size
 * (LLaMA-7B). With merging-aware TB coordination CAIS holds its
 * performance down to small tables; the uncoordinated variant
 * degrades rapidly as sessions thrash.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 0.5, 0.25);
    RunConfig base_cfg = a.runConfig();
    if (!a.params.has("skew_us"))
        base_cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    base_cfg.gpu.maxCaisLoadOutstanding =
        static_cast<int>(a.params.getInt("lcap", 96));
    banner("Fig. 14: performance vs merge-table size (LLaMA-7B)", a);

    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    const int entriesSweep[] = {16, 32, 48, 64, 96, 128, 192, 320};

    // Job grid: the unbounded reference pair, then the entry sweep
    // (CAIS and the uncoordinated variant at each size).
    std::vector<SweepJob> jobs;
    RunConfig ref_cfg = base_cfg;
    ref_cfg.unboundedMergeTable = true;
    for (const char *v : {"CAIS", "CAIS-w/o-Coord"})
        addJob(jobs, strategyByName(v), g, ref_cfg, "L1");
    for (int entries : entriesSweep) {
        RunConfig cfg = base_cfg;
        cfg.mergeTableEntriesPerPort = entries;
        for (const char *v : {"CAIS", "CAIS-w/o-Coord"})
            addJob(jobs, strategyByName(v), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);

    double cais_ref = results[0].makespanUs();
    double noco_ref = results[1].makespanUs();

    std::printf("%-12s %18s %22s\n", "entries/port",
                "CAIS (rel. perf)", "w/o coord (rel. perf)");
    std::size_t idx = 2;
    for (int entries : entriesSweep) {
        double cais = results[idx++].makespanUs();
        double noco = results[idx++].makespanUs();
        std::printf("%-12d %17.1f%% %21.1f%%\n", entries,
                    100.0 * cais_ref / cais, 100.0 * noco_ref / noco);
    }
    std::printf("\n(100%% = same performance as an unbounded table; "
                "entries are %u B chunks,\n one paper-entry = 128 B)\n",
                base_cfg.chunkBytes);
    std::printf("paper: CAIS maintains performance at small tables; "
                "the uncoordinated version degrades rapidly.\n");
    return 0;
}
