/**
 * @file
 * Figure 14: performance sensitivity to the merge-table size
 * (LLaMA-7B). With merging-aware TB coordination CAIS holds its
 * performance down to small tables; the uncoordinated variant
 * degrades rapidly as sessions thrash.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 0.5, 0.25);
    RunConfig base_cfg = a.runConfig();
    if (!a.params.has("skew_us"))
        base_cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    base_cfg.gpu.maxCaisLoadOutstanding =
        static_cast<int>(a.params.getInt("lcap", 96));
    banner("Fig. 14: performance vs merge-table size (LLaMA-7B)", a);

    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    // Reference: unbounded tables.
    RunConfig ref_cfg = base_cfg;
    ref_cfg.unboundedMergeTable = true;
    double cais_ref =
        runGraph(strategyByName("CAIS"), g, ref_cfg, "L1")
            .makespanUs();
    double noco_ref =
        runGraph(strategyByName("CAIS-w/o-Coord"), g, ref_cfg, "L1")
            .makespanUs();

    std::printf("%-12s %18s %22s\n", "entries/port",
                "CAIS (rel. perf)", "w/o coord (rel. perf)");
    for (int entries : {16, 32, 48, 64, 96, 128, 192, 320}) {
        RunConfig cfg = base_cfg;
        cfg.mergeTableEntriesPerPort = entries;
        double cais = runGraph(strategyByName("CAIS"), g, cfg, "L1")
                          .makespanUs();
        double noco =
            runGraph(strategyByName("CAIS-w/o-Coord"), g, cfg, "L1")
                .makespanUs();
        std::printf("%-12d %17.1f%% %21.1f%%\n", entries,
                    100.0 * cais_ref / cais, 100.0 * noco_ref / noco);
    }
    std::printf("\n(100%% = same performance as an unbounded table; "
                "entries are %u B chunks,\n one paper-entry = 128 B)\n",
                base_cfg.chunkBytes);
    std::printf("paper: CAIS maintains performance at small tables; "
                "the uncoordinated version degrades rapidly.\n");
    return 0;
}
