/**
 * @file
 * Figure 18: validation of the simulated NVLS AllReduce against a
 * reference across message sizes (the paper compares against NCCL on
 * real DGX hardware, 1-16 GB, reporting 3.87% average error; lacking
 * hardware, our reference is the analytic NVLS bandwidth model — see
 * DESIGN.md substitution table).
 *
 * Default sizes are scaled down 64x so the bench runs in seconds;
 * pass full=1 for the paper's 1-16 GB points.
 */

#include <cmath>

#include "bench_common.hh"
#include "workload/collectives.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Fig. 18: NVLS AllReduce validation", a);

    // Default: 256 MB - 4 GB (the paper's 1-16 GB points are in the
    // same saturated regime); full=1 selects exactly 1-16 GB.
    bool full = a.params.getBool("full", false);
    std::uint64_t scale = full ? (1ull << 30) : (1ull << 28);
    int tb_log2 = 20; // 1 MB ld_reduce+st pipeline granularity

    std::printf("%10s %16s %16s %10s\n", "size",
                "simulated busBW", "reference busBW", "error");

    double err_sum = 0.0;
    int n = 0;
    for (std::uint64_t mult : {1, 2, 4, 8, 16}) {
        std::uint64_t bytes = mult * scale;

        SystemConfig sc;
        RunConfig rc = a.runConfig();
        sc.fabric.numGpus = rc.numGpus;
        sc.fabric.numSwitches = rc.numSwitches;
        sc.gpu.chunkBytes = 262144; // large-message transfer granularity
        sc.fabric.interleaveBytes = 262144;
        sc.gpu.jitterSigma = 0.0;
        sc.gpu.maxStartSkew = 0;

        System sys(sc);
        CollectiveBench b = buildNvlsAllReduce(sys, bytes, tb_log2);
        sys.run();

        double sim_cycles = static_cast<double>(sys.makespan());
        // Reference: analytic NVLS model at protocol-derated link
        // bandwidth (the NCCL-measured ~75% efficiency).
        double ref_cycles = nvlsAllReduceAnalyticCycles(
            rc.numGpus,
            sc.fabric.perGpuBytesPerCycle /
                (1.0 + 1.0 / protocolPadDivisor),
            b.bytes, 2 * sc.fabric.linkLatency);

        double sim_bw = allReduceBusBw(rc.numGpus, b.bytes,
                                       sim_cycles);
        double ref_bw = allReduceBusBw(rc.numGpus, b.bytes,
                                       ref_cycles);
        double err = std::abs(sim_bw - ref_bw) / ref_bw;
        err_sum += err;
        ++n;

        char size_str[32];
        if (bytes >= (1ull << 30))
            std::snprintf(size_str, sizeof(size_str), "%llu GB",
                          static_cast<unsigned long long>(
                              bytes >> 30));
        else
            std::snprintf(size_str, sizeof(size_str), "%llu MB",
                          static_cast<unsigned long long>(
                              bytes >> 20));
        std::printf("%10s %11.1f GB/s %11.1f GB/s %9.2f%%\n",
                    size_str, sim_bw, ref_bw, 100.0 * err);
    }

    std::printf("\naverage error: %.2f%%   (paper: 3.87%% vs real "
                "NCCL measurements)\n",
                100.0 * err_sum / n);
    return 0;
}
