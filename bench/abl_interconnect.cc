/**
 * @file
 * Ablation of the interconnect parameters: CAIS's advantage over the
 * serialized NVLS baseline as per-GPU link bandwidth scales from
 * NVLink3-class to Blackwell-class, and as hop latency varies. The
 * paper argues overlap matters more as compute:communication ratios
 * tighten — slower links widen CAIS's edge, faster links shrink it.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Ablation: interconnect bandwidth / latency sensitivity",
           a);

    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    const double bws[] = {150.0, 300.0, 450.0, 900.0};
    const Cycle lats[] = {100u, 250u, 500u, 1000u};

    // One grid over both sweeps: bandwidth pairs, then latency pairs.
    std::vector<SweepJob> jobs;
    for (double bw : bws) {
        RunConfig cfg = a.runConfig();
        cfg.perGpuBwPerDir = bw;
        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
        addJob(jobs, strategyByName("SP-NVLS"), g, cfg, "L1");
    }
    for (Cycle lat : lats) {
        RunConfig cfg = a.runConfig();
        cfg.linkLatency = lat;
        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
        addJob(jobs, strategyByName("SP-NVLS"), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);
    std::size_t idx = 0;

    std::printf("per-GPU bandwidth sweep (latency 250 ns):\n");
    std::printf("%-14s %12s %14s %10s\n", "GB/s per dir",
                "CAIS (us)", "SP-NVLS (us)", "speedup");
    for (double bw : bws) {
        const RunResult &cais = results[idx++];
        const RunResult &nvls = results[idx++];
        std::printf("%-14.0f %12.1f %14.1f %9.2fx\n", bw,
                    cais.makespanUs(), nvls.makespanUs(),
                    speedupOver(nvls, cais));
    }

    std::printf("\nhop latency sweep (450 GB/s per direction):\n");
    std::printf("%-14s %12s %14s %10s\n", "latency (ns)",
                "CAIS (us)", "SP-NVLS (us)", "speedup");
    for (Cycle lat : lats) {
        const RunResult &cais = results[idx++];
        const RunResult &nvls = results[idx++];
        std::printf("%-14llu %12.1f %14.1f %9.2fx\n",
                    static_cast<unsigned long long>(lat),
                    cais.makespanUs(), nvls.makespanUs(),
                    speedupOver(nvls, cais));
    }

    std::printf("\nexpected: the CAIS edge grows as links slow "
                "(communication-bound regime) and is\n"
                "robust to hop latency (pipelined transfers).\n");
    return 0;
}
