/**
 * @file
 * Ablation of the request/merge granularity (a core modelling choice,
 * DESIGN.md §4b): CAIS and SP-NVLS sub-layer time vs chunk size. The
 * paper's hardware coalesces to 128 B packets; we default to 4 KiB
 * bursts. Results should be granularity-insensitive (bandwidth-
 * dominated), validating the substitution.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Ablation: chunk (merge/packet) granularity", a);

    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    const std::uint32_t chunks[] = {1024u, 2048u, 4096u, 8192u,
                                    16384u};

    std::vector<SweepJob> jobs;
    for (std::uint32_t chunk : chunks) {
        RunConfig cfg = a.runConfig();
        cfg.chunkBytes = chunk;
        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
        addJob(jobs, strategyByName("SP-NVLS"), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);

    std::printf("%-10s %14s %14s %12s\n", "chunk", "CAIS (us)",
                "SP-NVLS (us)", "speedup");
    std::size_t idx = 0;
    for (std::uint32_t chunk : chunks) {
        const RunResult &cais = results[idx++];
        const RunResult &nvls = results[idx++];
        std::printf("%7u B %14.1f %14.1f %11.2fx\n", chunk,
                    cais.makespanUs(), nvls.makespanUs(),
                    speedupOver(nvls, cais));
    }
    std::printf("\nexpected: times and speedups vary only weakly "
                "with granularity (bandwidth-dominated).\n");
    return 0;
}
