/**
 * @file
 * Ablation of the outstanding-request throttle (Secs. III-B.2 and
 * V-C.2): sweeping the per-GPU mergeable-load window trades merge-
 * table footprint against pipeline throughput. Too small starves the
 * AG-GEMM stage of bandwidth-delay product; too large lets Load-Wait
 * sessions swamp the switch tables.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Ablation: per-GPU outstanding ld.cais window", a);

    LlmConfig m = a.model(llama7B());
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    const int caps[] = {16, 32, 64, 128, 256, 512};

    std::vector<SweepJob> jobs;
    for (int cap : caps) {
        RunConfig cfg = a.runConfig();
        cfg.unboundedMergeTable = true;
        cfg.gpu.maxCaisLoadOutstanding = cap;
        addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
    }
    std::vector<RunResult> results = sweep(jobs);

    std::printf("%-10s %12s %20s %14s\n", "window", "time (us)",
                "peak table/port", "stagger (us)");
    std::size_t idx = 0;
    for (int cap : caps) {
        const RunResult &r = results[idx++];
        std::printf("%-10d %12.1f %17llu KB %14.2f\n", cap,
                    r.makespanUs(),
                    static_cast<unsigned long long>(
                        r.peakMergeBytes / 1024),
                    r.staggerUs);
    }
    std::printf("\n(the paper's system-wide outstanding bound is "
                "1280 KB = 320 chunks of 4 KiB)\n");
    return 0;
}
