/**
 * @file
 * Figure 15: average link bandwidth utilization per sub-layer for
 * CAIS-Base (62.4% in the paper), CAIS-Partial (graph optimizer but
 * no traffic control, 84.7%) and full CAIS (90.2%).
 *
 * Utilization is measured over the communication-active window of the
 * busier link direction (the paper's sub-layers are communication-
 * bound; pass dim/tok factors to change the compute:comm ratio).
 */

#include <algorithm>

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

namespace
{

/**
 * Mean utilization of the busier direction over the active window
 * (bins above 5% of peak), the steady-state metric of Fig. 15/16.
 */
double
activeWindowUtil(const RunResult &r)
{
    if (r.utilSeries.empty())
        return 0.0;
    double peak = *std::max_element(r.utilSeries.begin(),
                                    r.utilSeries.end());
    double sum = 0.0;
    int n = 0;
    for (double v : r.utilSeries) {
        if (v >= 0.05 * peak && v > 0.0) {
            sum += v;
            ++n;
        }
    }
    // utilSeries averages both directions; scale to the busier one.
    double dir_scale =
        std::max(r.upUtil, r.dnUtil) /
        std::max(1e-9, 0.5 * (r.upUtil + r.dnUtil));
    return n ? std::min(1.0, sum / n * dir_scale) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Communication-heavy configuration approximating the paper's
    // sub-layer measurement regime.
    BenchArgs a = BenchArgs::parse(argc, argv, 0.25, 0.5);
    banner("Fig. 15: average bandwidth utilization per sub-layer", a);

    RunConfig cfg = a.runConfig();
    const char *variants[] = {"CAIS-Base", "CAIS-Partial", "CAIS"};
    const double paper[] = {0.624, 0.847, 0.902};

    std::printf("%-10s %12s %12s %12s\n", "sub-layer", "CAIS-Base",
                "CAIS-Partial", "CAIS");

    const SubLayerId subLayers[] = {SubLayerId::L1, SubLayerId::L2,
                                    SubLayerId::L3, SubLayerId::L4};

    LlmConfig m = a.model(llama7B());
    std::vector<SweepJob> jobs;
    for (SubLayerId L : subLayers) {
        for (int v = 0; v < 3; ++v) {
            SweepJob j;
            j.spec = strategyByName(variants[v]);
            j.cfg = cfg;
            j.workload = subLayerName(L);
            j.graph = [m, L] { return buildSubLayer(m, L); };
            jobs.push_back(std::move(j));
        }
    }
    std::vector<RunResult> results = sweep(jobs);

    double sums[3] = {0, 0, 0};
    int count = 0;
    std::size_t idx = 0;
    for (SubLayerId L : subLayers) {
        double u[3];
        for (int v = 0; v < 3; ++v) {
            u[v] = activeWindowUtil(results[idx++]);
            sums[v] += u[v];
        }
        ++count;
        std::printf("%-10s %11.1f%% %11.1f%% %11.1f%%\n",
                    subLayerName(L), 100 * u[0], 100 * u[1],
                    100 * u[2]);
    }

    std::printf("%-10s %11.1f%% %11.1f%% %11.1f%%\n", "average",
                100 * sums[0] / count, 100 * sums[1] / count,
                100 * sums[2] / count);
    std::printf("%-10s %11.1f%% %11.1f%% %11.1f%%\n", "paper",
                100 * paper[0], 100 * paper[1], 100 * paper[2]);
    return 0;
}
