/**
 * @file
 * Figure 12: speedup on the four communication-intensive sub-layers
 * L1-L4 (GEMM-RS + LN + AG-GEMM chains) across the Table-I models.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Fig. 12: sub-layer performance speedup", a);

    RunConfig cfg = a.runConfig();
    std::vector<StrategySpec> strategies = allStrategies();
    std::size_t cais_idx = strategies.size() - 1;

    // Paper sub-layer geomeans over TP-NVLS..LADM, CAIS-Base.
    const double paper[] = {1.39, 1.91, 1.99, 1.91, 1.64,
                            1.24, 1.20, 1.47, 7.90, 1.47};

    std::vector<std::vector<double>> ratios(
        strategies.size() - 1); // per baseline, across model x L

    const SubLayerId subLayers[] = {SubLayerId::L1, SubLayerId::L2,
                                    SubLayerId::L3, SubLayerId::L4};

    // One job per (model, sub-layer, strategy), run on the pool.
    std::vector<SweepJob> jobs;
    for (const auto &base : tableOneModels()) {
        LlmConfig m = a.model(base);
        for (SubLayerId L : subLayers) {
            for (const auto &spec : strategies) {
                SweepJob j;
                j.spec = spec;
                j.cfg = cfg;
                j.workload = subLayerName(L);
                j.graph = [m, L] { return buildSubLayer(m, L); };
                jobs.push_back(std::move(j));
            }
        }
    }
    std::vector<RunResult> results = sweep(jobs);

    std::size_t idx = 0;
    for (const auto &base : tableOneModels()) {
        std::printf("-- %s --\n", base.name.c_str());
        std::printf("%-14s %10s %10s %10s %10s\n", "strategy", "L1",
                    "L2", "L3", "L4");

        std::vector<std::vector<double>> us(strategies.size());
        for (std::size_t L = 0; L < 4; ++L)
            for (std::size_t s = 0; s < strategies.size(); ++s)
                us[s].push_back(results[idx++].makespanUs());

        for (std::size_t s = 0; s < strategies.size(); ++s) {
            std::printf("%-14s", strategies[s].name.c_str());
            for (int L = 0; L < 4; ++L) {
                if (s == cais_idx) {
                    std::printf(" %8.1fus", us[s][L]);
                } else {
                    double sp = us[s][L] / us[cais_idx][L];
                    ratios[s].push_back(sp);
                    std::printf(" %10s", x(sp).c_str());
                }
            }
            std::printf("\n");
        }
        std::printf("\n");
    }

    std::printf("-- geomean speedup of CAIS over each baseline --\n");
    std::printf("%-14s %10s %10s\n", "baseline", "measured", "paper");
    for (std::size_t s = 0; s + 1 < strategies.size(); ++s)
        std::printf("%-14s %10s %10s\n", strategies[s].name.c_str(),
                    x(geomean(ratios[s])).c_str(), x(paper[s]).c_str());
    return 0;
}
