/**
 * @file
 * Figure 11: end-to-end model speedup of CAIS over the nine baselines
 * and CAIS-Base, for inference (prefill) and training, across the
 * three Table-I models. One homogeneous transformer layer is
 * simulated per pass and scaled by the layer count; training time is
 * forward + backward.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

namespace
{

/** Paper-reported geomean speedups (inference / training). */
struct PaperRow
{
    const char *name;
    double inf;
    double train;
};

const PaperRow paperGeomeans[] = {
    {"TP-NVLS", 1.38, 1.37},   {"SP-NVLS", 1.89, 1.89},
    {"CoCoNet", 1.98, 1.96},   {"FuseLib", 1.90, 1.89},
    {"T3", 1.61, 1.60},        {"CoCoNet-NVLS", 1.25, 1.23},
    {"FuseLib-NVLS", 1.21, 1.20}, {"T3-NVLS", 1.45, 1.45},
    {"LADM", 7.60, 7.59},      {"CAIS-Base", 1.43, 1.42},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Fig. 11: end-to-end speedup across training & inference",
           a);

    RunConfig cfg = a.runConfig();

    // Table I (printed for reference).
    std::printf("Table I models:\n");
    for (const auto &m : tableOneModels())
        std::printf("  %s\n", m.str().c_str());
    std::printf("\n");

    std::vector<StrategySpec> strategies = allStrategies();

    // Per-model layer times.
    struct ModelTimes
    {
        std::string model;
        std::vector<double> inf;   // per strategy, us per layer
        std::vector<double> train; // fwd + bwd
    };
    std::vector<ModelTimes> times;

    // One job per (model, strategy, pass), executed on the pool.
    std::vector<SweepJob> jobs;
    for (const auto &base : tableOneModels()) {
        LlmConfig m = a.model(base);
        for (const auto &spec : strategies) {
            for (Pass pass : {Pass::forward, Pass::backward}) {
                SweepJob j;
                j.spec = spec;
                j.cfg = cfg;
                j.workload =
                    pass == Pass::forward ? "fwd" : "bwd";
                j.graph = [m, pass] {
                    return buildTransformerLayer(m, pass);
                };
                jobs.push_back(std::move(j));
            }
        }
    }
    std::vector<RunResult> results = sweep(jobs);

    std::size_t idx = 0;
    for (const auto &base : tableOneModels()) {
        ModelTimes mt;
        mt.model = base.name;
        for (std::size_t s = 0; s < strategies.size(); ++s) {
            double fwd = results[idx++].makespanUs();
            double bwd = results[idx++].makespanUs();
            mt.inf.push_back(fwd);
            mt.train.push_back(fwd + bwd);
        }
        times.push_back(std::move(mt));
    }

    std::size_t cais_idx = strategies.size() - 1;

    for (int phase = 0; phase < 2; ++phase) {
        const char *tag = phase == 0 ? "inference (prefill)"
                                     : "training (fwd+bwd)";
        std::printf("-- %s: CAIS speedup over each baseline --\n",
                    tag);
        std::printf("%-14s", "baseline");
        for (const auto &mt : times)
            std::printf(" %14s", mt.model.c_str());
        std::printf(" %9s %9s\n", "geomean", "paper");

        for (std::size_t s = 0; s + 1 < strategies.size(); ++s) {
            std::printf("%-14s", strategies[s].name.c_str());
            std::vector<double> ratios;
            for (const auto &mt : times) {
                const auto &v = phase == 0 ? mt.inf : mt.train;
                double sp = v[s] / v[cais_idx];
                ratios.push_back(sp);
                std::printf(" %14s", x(sp).c_str());
            }
            double paper = phase == 0 ? paperGeomeans[s].inf
                                      : paperGeomeans[s].train;
            std::printf(" %9s %9s\n", x(geomean(ratios)).c_str(),
                        x(paper).c_str());
        }

        std::printf("%-14s", "CAIS layer us");
        for (const auto &mt : times) {
            const auto &v = phase == 0 ? mt.inf : mt.train;
            std::printf(" %14.1f", v[cais_idx]);
        }
        std::printf("\n\n");
    }

    // End-to-end extrapolation (layers x per-layer time) for CAIS.
    std::printf("-- end-to-end CAIS time (layer time x depth) --\n");
    const std::vector<LlmConfig> models = tableOneModels();
    for (std::size_t i = 0; i < times.size(); ++i) {
        const LlmConfig &base = models[i];
        std::printf("  %-12s inference %8.2f ms   training %8.2f ms\n",
                    base.name.c_str(),
                    times[i].inf[cais_idx] * base.layers / 1000.0,
                    times[i].train[cais_idx] * base.layers / 1000.0);
    }
    return 0;
}
