/**
 * @file
 * Table II: experimental validation of the scaled-down setup. A
 * full-scale system (132 SMs, full matrix dims) and a half-scale
 * system (66 SMs, dims halved) must produce near-identical CAIS
 * speedups over TP-NVLS (the paper reports 1.43 vs 1.40).
 *
 * We run the same proportionality check one level down by default
 * (full = Table-I dims, half = dims x0.5 with 33 SMs); pass big=1 to
 * run the paper's 132/66-SM pair at full dims (slower).
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

namespace
{

void
queueTpNvlsPair(std::vector<SweepJob> &jobs, const LlmConfig &m,
                const RunConfig &cfg)
{
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    addJob(jobs, strategyByName("TP-NVLS"), g, cfg, "L1");
    addJob(jobs, strategyByName("CAIS"), g, cfg, "L1");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv, 0.5, 0.25);
    banner("Table II: validation of the scaling-down methodology", a);

    bool big = a.params.getBool("big", false);
    double dim_full = big ? 1.0 : a.dimFactor;
    int sms_full = big ? 132 : 66;

    LlmConfig full = llama7B().scaled(dim_full, a.tokFactor);
    LlmConfig half = llama7B().scaled(dim_full * 0.5, a.tokFactor);

    RunConfig cfg_full = a.runConfig();
    cfg_full.gpu.numSms = sms_full;
    RunConfig cfg_half = a.runConfig();
    cfg_half.gpu.numSms = sms_full / 2;

    std::vector<SweepJob> jobs;
    queueTpNvlsPair(jobs, full, cfg_full);
    queueTpNvlsPair(jobs, half, cfg_half);
    std::vector<RunResult> results = sweep(jobs);

    double s_full = speedupOver(results[0], results[1]);
    double s_half = speedupOver(results[2], results[3]);

    std::printf("%-8s %8s %12s %8s %6s %26s\n", "setup", "hidden",
                "ffn-hidden", "heads", "#SM",
                "CAIS speedup over TP-NVLS");
    std::printf("%-8s %8lld %12lld %8d %6d %26s\n", "full",
                static_cast<long long>(full.hidden),
                static_cast<long long>(full.ffnHidden), full.heads,
                sms_full, x(s_full).c_str());
    std::printf("%-8s %8lld %12lld %8d %6d %26s\n", "half",
                static_cast<long long>(half.hidden),
                static_cast<long long>(half.ffnHidden), half.heads,
                sms_full / 2, x(s_half).c_str());

    std::printf("\npaper: 1.43x (full, 132 SMs, hidden 8192) vs "
                "1.40x (half, 66 SMs, hidden 4096)\n"
                "relative deviation between scales: %.1f%% "
                "(paper: ~2%%)\n",
                100.0 * std::abs(s_full - s_half) / s_full);
    return 0;
}
