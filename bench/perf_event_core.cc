/**
 * @file
 * Perf-regression harness for the event core (google-benchmark).
 *
 * Measures events/sec on two workload shapes:
 *
 *  - a synthetic "hop storm" that mimics the deliver/wake/credit
 *    pattern CreditLink generates: many concurrent self-rescheduling
 *    chains with mixed near-future deltas;
 *  - a fig12-shaped end-to-end run (CAIS strategy over a scaled-down
 *    Mega-GPT sub-layer) counting real simulator events.
 *
 * Each shape runs against three schedulers: a local replica of the
 * seed implementation (std::function callbacks in one binary heap),
 * the legacy single-heap mode of the current EventQueue, and the
 * default bucketed scheduler. CI uses the emitted
 * BENCH_eventcore.json to enforce a throughput floor; see
 * .github/workflows/ci.yml.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

/**
 * Replica of the seed event queue: type-erased std::function
 * callbacks (one heap allocation per capture that outgrows the SBO)
 * ordered by a std::priority_queue binary heap. Kept here so the
 * benchmark keeps an honest baseline after the simulator itself
 * moved on.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Cycle now() const { return curTick; }

    void
    schedule(Cycle when, Callback cb)
    {
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    void scheduleAfter(Cycle delta, Callback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    std::uint64_t
    runAll()
    {
        std::uint64_t n = 0;
        while (!heap.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap.top()));
            heap.pop();
            curTick = e.when;
            e.cb();
            ++n;
        }
        return n;
    }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Cycle curTick = 0;
    std::uint64_t nextSeq = 0;
};

/** Payload sized like a Packet (104 bytes, causal-profiler
 *  provenance stamp included) so captures exercise the same SBO; no
 *  profiler is attached, so the floors in CI also lock the cost of
 *  the disabled profiling path. */
struct HopPayload
{
    std::uint64_t words[13] = {};
};

constexpr int kChains = 1024;
constexpr int kHopsPerChain = 512;

/**
 * Drive @p eq through the hop storm: kChains concurrent chains, each
 * rescheduling itself kHopsPerChain times with deltas cycling through
 * a serialization-like {1, 37, 250} pattern (same-cycle drains, short
 * serialization, propagation latency).
 */
template <typename Queue>
std::uint64_t
hopStorm(Queue &eq)
{
    static constexpr Cycle deltas[3] = {1, 37, 250};
    std::uint64_t done = 0;
    struct Chain
    {
        Queue *q;
        std::uint64_t *done;
        int hops = 0;
        HopPayload payload;

        void
        operator()()
        {
            payload.words[0] += static_cast<std::uint64_t>(hops);
            if (++hops < kHopsPerChain) {
                q->scheduleAfter(deltas[hops % 3], *this);
            } else {
                *done += payload.words[0];
            }
        }
    };
    for (int c = 0; c < kChains; ++c)
        eq.schedule(static_cast<Cycle>(c % 5),
                    Chain{&eq, &done, 0, HopPayload{}});
    eq.runAll();
    return done;
}

void
BM_HopStorm_SeedReplica(benchmark::State &state)
{
    for (auto _ : state) {
        LegacyEventQueue eq;
        benchmark::DoNotOptimize(hopStorm(eq));
    }
    state.SetItemsProcessed(state.iterations() * kChains * kHopsPerChain);
}
BENCHMARK(BM_HopStorm_SeedReplica);

void
BM_HopStorm_Heap(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq(EventQueue::SchedulerKind::heap);
        benchmark::DoNotOptimize(hopStorm(eq));
    }
    state.SetItemsProcessed(state.iterations() * kChains * kHopsPerChain);
}
BENCHMARK(BM_HopStorm_Heap);

void
BM_HopStorm_Bucketed(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq(EventQueue::SchedulerKind::bucketed);
        benchmark::DoNotOptimize(hopStorm(eq));
    }
    state.SetItemsProcessed(state.iterations() * kChains * kHopsPerChain);
}
BENCHMARK(BM_HopStorm_Bucketed);

/**
 * Pin CAIS_EVENTQ for the duration of a scope so the System inside
 * runGraph constructs its EventQueue with the requested scheduler.
 */
class ScopedEventqEnv
{
  public:
    explicit ScopedEventqEnv(const char *kind)
    {
        if (const char *old = std::getenv("CAIS_EVENTQ")) {
            hadOld = true;
            oldVal = old;
        }
        setenv("CAIS_EVENTQ", kind, 1);
    }

    ~ScopedEventqEnv()
    {
        if (hadOld)
            setenv("CAIS_EVENTQ", oldVal.c_str(), 1);
        else
            unsetenv("CAIS_EVENTQ");
    }

  private:
    bool hadOld = false;
    std::string oldVal;
};

/** Fig. 12-shaped job: CAIS on a scaled-down Mega-GPT L3 sub-layer. */
RunResult
fig12Shaped()
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    StrategySpec spec = strategyByName("CAIS");
    OpGraph graph = buildSubLayer(m, SubLayerId::L3);
    return runGraph(spec, graph, cfg, subLayerName(SubLayerId::L3));
}

void
BM_Fig12Shaped_Heap(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        ScopedEventqEnv env("heap");
        RunResult r = fig12Shaped();
        events += r.eventsExecuted;
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Fig12Shaped_Heap);

void
BM_Fig12Shaped_Bucketed(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        ScopedEventqEnv env("bucketed");
        RunResult r = fig12Shaped();
        events += r.eventsExecuted;
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Fig12Shaped_Bucketed);

// --- Multi-tier sharded section (DESIGN.md §6f) --------------------
//
// End-to-end CAIS runs on the flat node and the tiered presets at
// shards = 1, 2, 4, 8. Each entry reports:
//  - "shards":     the requested shard count (clamped inside System);
//  - "hw_threads": std::thread::hardware_concurrency() — CI gates the
//    sharded speedup floor on this, single-core runners can't scale;
//  - "speedup":    wall-time of the same preset's shards=1 entry over
//    this entry's wall time (>= 1 means sharding helped). Baselines
//    resolve because benchmarks execute in registration order and the
//    shards=1 entry of each preset registers first.

/** Wall-clock baselines: preset key -> seconds/iteration at shards=1. */
std::map<std::string, double> &
shardBaselines()
{
    // cais-lint: allow(D4) -- benchmark-harness speedup baseline
    // shared across registrations, not simulation state.
    static std::map<std::string, double> m;
    return m;
}

RunResult
presetRun(const char *preset, int gpus, int shards)
{
    LlmConfig m = llama7B().scaled(0.25, 0.125);
    RunConfig cfg;
    cfg.topology = preset;
    cfg.numGpus = gpus;
    cfg.shards = shards;
    StrategySpec spec = strategyByName("CAIS");
    OpGraph graph = buildSubLayer(m, SubLayerId::L1);
    return runGraph(spec, graph, cfg, subLayerName(SubLayerId::L1));
}

void
BM_MultiTierSharded(benchmark::State &state, const char *preset,
                    int gpus, int shards)
{
    std::uint64_t events = 0;
    double secs = 0.0;
    for (auto _ : state) {
        auto t0 = std::chrono::steady_clock::now();
        RunResult r = presetRun(preset, gpus, shards);
        auto t1 = std::chrono::steady_clock::now();
        secs += std::chrono::duration<double>(t1 - t0).count();
        events += r.eventsExecuted;
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));

    double per_iter =
        secs / static_cast<double>(state.iterations() ? state.iterations()
                                                      : 1);
    std::string key = std::string(preset) + "/" + std::to_string(gpus);
    if (shards == 1)
        shardBaselines()[key] = per_iter;
    auto base = shardBaselines().find(key);
    if (base != shardBaselines().end() && per_iter > 0.0)
        state.counters["speedup"] = base->second / per_iter;
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["hw_threads"] =
        static_cast<double>(std::thread::hardware_concurrency());
}

#define CAIS_SHARD_BENCH(tag, preset, gpus, shards)                     \
    BENCHMARK_CAPTURE(BM_MultiTierSharded, tag, preset, gpus, shards)   \
        ->UseRealTime()                                                 \
        ->Unit(benchmark::kMillisecond)                                 \
        ->Iterations(3)

CAIS_SHARD_BENCH(dgx_h100_s1, "dgx-h100", 8, 1);
CAIS_SHARD_BENCH(dgx_h100_s2, "dgx-h100", 8, 2);
CAIS_SHARD_BENCH(dgx_h100_s4, "dgx-h100", 8, 4);
CAIS_SHARD_BENCH(dgx_h100_s8, "dgx-h100", 8, 8);
CAIS_SHARD_BENCH(nvl72_s1, "nvl72", 72, 1);
CAIS_SHARD_BENCH(nvl72_s2, "nvl72", 72, 2);
CAIS_SHARD_BENCH(nvl72_s4, "nvl72", 72, 4);
CAIS_SHARD_BENCH(nvl72_s8, "nvl72", 72, 8);
CAIS_SHARD_BENCH(rail4node_s1, "rail-optimized-4node", 32, 1);
CAIS_SHARD_BENCH(rail4node_s2, "rail-optimized-4node", 32, 2);
CAIS_SHARD_BENCH(rail4node_s4, "rail-optimized-4node", 32, 4);
CAIS_SHARD_BENCH(rail4node_s8, "rail-optimized-4node", 32, 8);

#undef CAIS_SHARD_BENCH

} // namespace

/**
 * Default to emitting BENCH_eventcore.json next to the binary so the
 * CI perf-smoke job (and ad-hoc local runs) always get a machine-
 * readable report; explicit --benchmark_out flags win.
 */
int
main(int argc, char **argv)
{
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;

    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_eventcore.json";
    std::string fmt = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
