/**
 * @file
 * Section V-D: hardware overhead of the CAIS extensions under a
 * 12 nm process — the switch-side merge/sync logic (~0.50 mm^2,
 * <1% of an NVSwitch die) and the GPU-side synchronizer
 * (0.019 mm^2, <0.01% of an H100 die).
 */

#include <cstdio>

#include "analysis/area_model.hh"
#include "common/config.hh"

using namespace cais;

int
main(int argc, char **argv)
{
    Params p = Params::fromArgs(argc, argv);
    ProcessParams proc;

    SwitchAreaConfig sw;
    sw.mergeTableBytesPerPort = static_cast<std::uint64_t>(
        p.getInt("table_kb", 40)) * 1024;
    sw.ports = static_cast<int>(p.getInt("ports", 8));

    std::printf("== Sec. V-D: hardware overhead (TSMC 12 nm) ==\n\n");

    AreaBreakdown s = switchExtensionArea(sw, proc);
    std::printf("switch-side CAIS extensions (%d ports, %llu KB "
                "merge table per port):\n%s\n",
                sw.ports,
                static_cast<unsigned long long>(
                    sw.mergeTableBytesPerPort / 1024),
                s.str().c_str());
    std::printf("  -> %.2f%% of an NVSwitch die (%.0f mm^2)\n\n",
                100.0 * s.totalMm2 / proc.nvswitchDieMm2,
                proc.nvswitchDieMm2);

    AreaBreakdown g = gpuSynchronizerArea(GpuAreaConfig{}, proc);
    std::printf("GPU-side TB-group synchronizer:\n%s\n",
                g.str().c_str());
    std::printf("  -> %.4f%% of an H100 die (%.0f mm^2)\n\n",
                100.0 * g.totalMm2 / proc.h100DieMm2,
                proc.h100DieMm2);

    std::printf("paper: ~0.50 mm^2 per switch (<1%% of the NVSwitch "
                "die) and 0.019 mm^2 per GPU\n"
                "       (<0.01%% of the H100 die).\n");
    return 0;
}
