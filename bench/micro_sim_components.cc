/**
 * @file
 * Google-benchmark microbenchmarks of the simulator hot paths: event
 * queue throughput, credit-link packet processing, merge-unit session
 * handling, tile-tracker contributions, and routing hashes.
 */

#include <benchmark/benchmark.h>

#include "common/event_queue.hh"
#include "dataflow/tile_dependency.hh"
#include "noc/routing.hh"
#include "switchcompute/merging_table.hh"

using namespace cais;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Cycle>((i * 7919) % 4096),
                        [&sink] { ++sink; });
        eq.runAll();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventQueueSelfScheduling(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int hops = 0;
        std::function<void()> chain = [&] {
            if (++hops < 1000)
                eq.scheduleAfter(1, chain);
        };
        eq.schedule(0, chain);
        eq.runAll();
        benchmark::DoNotOptimize(hops);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSelfScheduling);

static void
BM_RoutingHash(benchmark::State &state)
{
    DeterministicRouting r(4, 4096);
    Addr a = makeAddr(3, 0);
    std::uint64_t acc = 0;
    for (auto _ : state) {
        acc += static_cast<std::uint64_t>(r.switchForAddr(a));
        a += 4096;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RoutingHash);

static void
BM_MergingTableSessionChurn(benchmark::State &state)
{
    MergingTable tbl(static_cast<std::uint64_t>(state.range(0)) * 4096,
                     4096);
    Addr next = 0;
    for (auto _ : state) {
        MergeEntry *e = tbl.allocate(next, false);
        if (!e) {
            state.SkipWithError("table full");
            return;
        }
        e->lastAccess = next;
        tbl.release(e);
        next += 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergingTableSessionChurn)->Arg(320);

static void
BM_TileTrackerContributions(benchmark::State &state)
{
    for (auto _ : state) {
        TileTracker t("bm", 8, 64, 4096);
        for (GpuId g = 0; g < 8; ++g)
            for (int tile = 0; tile < 64; ++tile)
                t.contribute(g, tile, 4096);
        benchmark::DoNotOptimize(t.complete());
    }
    state.SetItemsProcessed(state.iterations() * 8 * 64);
}
BENCHMARK(BM_TileTrackerContributions);

BENCHMARK_MAIN();
