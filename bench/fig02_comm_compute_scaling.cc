/**
 * @file
 * Figure 2: computation vs communication time as the system scales
 * from 2 to 32 GPUs (LLaMA-7B under the NVLS-accelerated baseline).
 * The paper's observation: communication overtakes computation beyond
 * 4-8 GPUs, reaching ~1.6x computation at 8 GPUs.
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Fig. 2: computation vs communication when scaling up", a);

    LlmConfig m = a.model(llama7B());
    std::printf("model: %s\n\n", m.str().c_str());
    std::printf("%6s %14s %14s %12s\n", "GPUs", "compute (us)",
                "comm (us)", "comm/compute");

    for (int gpus : {2, 4, 8, 16, 32}) {
        RunConfig cfg = a.runConfig();
        cfg.numGpus = gpus;
        OpGraph g = buildTransformerLayer(m, Pass::forward);
        RunResult r = runGraph(strategyByName("SP-NVLS"), g, cfg,
                               "layer");
        double comp = static_cast<double>(r.computeKernelCycles) /
                      cyclesPerUs;
        double comm = static_cast<double>(r.commKernelCycles) /
                      cyclesPerUs;
        std::printf("%6d %14.1f %14.1f %11.2fx\n", gpus, comp, comm,
                    comm / comp);
    }

    std::printf("\npaper: communication exceeds computation beyond "
                "4-8 GPUs;\n"
                "       at 8 GPUs communication is ~1.6x computation "
                "for LLaMA-7B.\n");
    return 0;
}
