/**
 * @file
 * Figure 2: computation vs communication time as the system scales
 * from 2 to 32 GPUs (LLaMA-7B under the NVLS-accelerated baseline).
 * The paper's observation: communication overtakes computation beyond
 * 4-8 GPUs, reaching ~1.6x computation at 8 GPUs.
 *
 * The GPU-count grid runs on the CAIS_JOBS sweep pool, and every row
 * carries the static analytical bound (analysis/bound_model.hh)
 * alongside the simulated makespan: the bound curve is the analytic
 * comm/compute scaling argument of the paper, the simulated curve is
 * the event-driven realization of it. Emits BENCH_fig02.json
 * (json_out= overrides the path, max_gpus= caps the sweep).
 */

#include "bench_common.hh"
#include "common/json.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Fig. 2: computation vs communication when scaling up", a);

    LlmConfig m = a.model(llama7B());
    std::printf("model: %s\n\n", m.str().c_str());

    std::vector<int> gpuCounts;
    for (int gpus : {2, 4, 8, 16, 32})
        if (a.maxGpus == 0 || gpus <= a.maxGpus)
            gpuCounts.push_back(gpus);

    std::vector<SweepJob> jobs;
    for (int gpus : gpuCounts) {
        RunConfig cfg = a.runConfig();
        cfg.numGpus = gpus;
        addJob(jobs, strategyByName("SP-NVLS"),
               buildTransformerLayer(m, Pass::forward), cfg, "layer");
    }
    std::vector<RunResult> results = sweep(std::move(jobs));

    std::printf("%6s %14s %14s %12s %14s %10s\n", "GPUs",
                "compute (us)", "comm (us)", "comm/compute",
                "bound (us)", "sim/bound");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        double comp = static_cast<double>(r.computeKernelCycles) /
                      cyclesPerUs;
        double comm = static_cast<double>(r.commKernelCycles) /
                      cyclesPerUs;
        double bound_us = static_cast<double>(r.boundComposite) /
                          cyclesPerUs;
        std::printf("%6d %14.1f %14.1f %11.2fx %14.1f %10.2f\n",
                    gpuCounts[i], comp, comm, comm / comp, bound_us,
                    r.boundComposite
                        ? static_cast<double>(r.makespan) /
                              static_cast<double>(r.boundComposite)
                        : 0.0);
    }

    std::printf("\npaper: communication exceeds computation beyond "
                "4-8 GPUs;\n"
                "       at 8 GPUs communication is ~1.6x computation "
                "for LLaMA-7B.\n");

    std::string json_out =
        a.params.getString("json_out", "BENCH_fig02.json");
    if (!json_out.empty()) {
        JsonWriter w;
        w.beginObject();
        w.field("schema", "cais-fig02-v1");
        w.field("strategy", "SP-NVLS");
        w.field("workload", "layer_fwd");
        w.key("rows").beginArray();
        for (std::size_t i = 0; i < results.size(); ++i) {
            const RunResult &r = results[i];
            w.beginObject();
            w.field("gpus", gpuCounts[i]);
            w.field("makespan",
                    static_cast<std::uint64_t>(r.makespan));
            w.field("computeKernelCycles", static_cast<std::uint64_t>(
                                               r.computeKernelCycles));
            w.field("commKernelCycles", static_cast<std::uint64_t>(
                                            r.commKernelCycles));
            // The analytic curve: composite bound plus the resource
            // breakdown, so a plot can overlay bound-vs-sim and show
            // which resource the scaling argument pivots on.
            w.key("bound").beginObject()
                .field("composite", static_cast<std::uint64_t>(
                                        r.boundComposite))
                .field("smCompute", static_cast<std::uint64_t>(
                                        r.boundCompute))
                .field("hbm",
                       static_cast<std::uint64_t>(r.boundHbm))
                .field("linkSerialization",
                       static_cast<std::uint64_t>(r.boundLink))
                .field("mergeService", static_cast<std::uint64_t>(
                                           r.boundMerge))
                .field("criticalPath", static_cast<std::uint64_t>(
                                           r.boundCritPath))
                .field("binding", r.boundBinding)
                .endObject();
            w.field("simOverBound",
                    r.boundComposite
                        ? static_cast<double>(r.makespan) /
                              static_cast<double>(r.boundComposite)
                        : 0.0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        if (std::FILE *f = std::fopen(json_out.c_str(), "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("wrote %s\n", json_out.c_str());
        } else {
            std::fprintf(stderr, "fig02: cannot write %s\n",
                         json_out.c_str());
        }
    }
    return 0;
}
