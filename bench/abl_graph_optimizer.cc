/**
 * @file
 * Ablation of the graph-level dataflow optimizer (DESIGN.md design
 * choices): starting from CAIS-Base, enable deep fusion (tile-level
 * dependencies), then asymmetric kernel overlapping, then traffic
 * control, on a single sub-layer and on a 3-layer steady-state stack
 * (where cross-layer fusion pays and the entry skew amortizes).
 */

#include "bench_common.hh"
#include "workload/transformer.hh"

using namespace cais;
using namespace cais::bench;

namespace
{

struct Step
{
    const char *label;
    StrategySpec spec;
};

std::vector<Step>
steps()
{
    std::vector<Step> v;
    v.push_back({"CAIS-Base (no optimizer)", makeCaisBase()});

    StrategySpec fusion = makeCais();
    fusion.name = "CAIS+fusion";
    fusion.opts.asymmetricOverlap = false;
    fusion.unifiedDataVc = true;
    v.push_back({"+ deep fusion (tile deps)", fusion});

    StrategySpec asym = makeCaisPartial();
    v.push_back({"+ asymmetric overlap", asym});

    v.push_back({"+ traffic control (full CAIS)", makeCais()});
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs a = BenchArgs::parse(argc, argv);
    banner("Ablation: graph-level dataflow optimizer stages", a);

    RunConfig cfg = a.runConfig();
    LlmConfig m = a.model(llama7B());

    OpGraph sub = buildSubLayer(m, SubLayerId::L1);
    int stack_layers =
        static_cast<int>(a.params.getInt("stack", 3));
    OpGraph stack =
        buildTransformerStack(m, stack_layers, Pass::forward);

    std::vector<SweepJob> jobs;
    for (const Step &s : steps()) {
        addJob(jobs, s.spec, sub, cfg, "L1");
        addJob(jobs, s.spec, stack, cfg, "stack");
    }
    std::vector<RunResult> results = sweep(jobs);

    std::printf("%-32s %14s %18s\n", "configuration",
                "L1 sub-layer", "3-layer stack/layer");

    double base_sub = 0.0, base_stack = 0.0;
    std::size_t idx = 0;
    for (const Step &s : steps()) {
        const RunResult &rs = results[idx++];
        const RunResult &rk = results[idx++];
        double per_layer = rk.makespanUs() / stack_layers;
        if (base_sub == 0.0) {
            base_sub = rs.makespanUs();
            base_stack = per_layer;
        }
        std::printf("%-32s %9.1f us (%4.2fx) %9.1f us (%4.2fx)\n",
                    s.label, rs.makespanUs(),
                    base_sub / rs.makespanUs(), per_layer,
                    base_stack / per_layer);
    }

    std::printf("\n(the paper's CAIS-Base -> CAIS gap is 1.42-1.47x "
                "geomean; steady-state stacks show the\n cross-layer "
                "share of that gain)\n");
    return 0;
}
