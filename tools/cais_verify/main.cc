/**
 * @file
 * cais_verify: run the cais-verify static model checker (DESIGN.md
 * §6e) over shipped strategy x workload configurations without
 * executing a single simulation event.
 *
 *   cais_verify                        verify all strategies/workloads
 *   cais_verify strategy=cais          one strategy
 *   cais_verify workload=L2            one workload
 *   cais_verify suppress=V3,V5         skip rules
 *   cais_verify topology=all           sweep flat + every preset
 *   cais_verify --json [json_out=f]    cais-verify-v1 JSON document
 *   cais_verify --list-rules           print the rule table
 *
 * Machine knobs mirror the benches: topology= gpus= switches= chunk=
 * sms= dim= tok= seed= shards=. topology=all repeats the whole
 * strategy x workload sweep on the flat shape and every shipped
 * preset (the CI acceptance sweep for the shard-model rules V6/V7),
 * tagging each run's workload as "L1@nvl72" etc. Exit code: 0 clean,
 * 1 diagnostics found, 2 usage.
 */

#include <cctype>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/verify.hh"
#include "common/config.hh"
#include "common/json.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

struct Workload
{
    std::string name;
    std::function<OpGraph(const LlmConfig &)> build;
};

std::vector<Workload>
allWorkloads()
{
    auto sub = [](SubLayerId L) {
        return [L](const LlmConfig &m) { return buildSubLayer(m, L); };
    };
    return {
        {"L1", sub(SubLayerId::L1)},
        {"L2", sub(SubLayerId::L2)},
        {"L3", sub(SubLayerId::L3)},
        {"L4", sub(SubLayerId::L4)},
        {"layer_fwd",
         [](const LlmConfig &m) {
             return buildTransformerLayer(m, Pass::forward);
         }},
        {"layer_bwd",
         [](const LlmConfig &m) {
             return buildTransformerLayer(m, Pass::backward);
         }},
    };
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cais_verify [--json] [--list-rules] [key=value...]\n"
        "  strategy=NAME   verify one strategy (default: all)\n"
        "  workload=NAME   L1|L2|L3|L4|layer_fwd|layer_bwd "
        "(default: all)\n"
        "  suppress=V1,V3  skip rules\n"
        "  json_out=PATH   write the JSON document to PATH\n"
        "  topology=NAME   fabric preset (dgx-h100, nvl72, "
        "rail-optimized-2node/-4node),\n"
        "                  or 'all' to sweep flat + every preset\n"
        "  gpus= switches= chunk= sms= dim= tok= seed= shards=   "
        "machine knobs (bench defaults)\n");
    return 2;
}

int
listRules()
{
    for (const verify::RuleInfo &r : verify::ruleTable())
        std::printf("%s  %s\n    fix: %s\n", r.id, r.summary,
                    r.hint);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_json = false;
    Params params;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            want_json = true;
        } else if (arg == "--list-rules") {
            return listRules();
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!params.parseToken(arg)) {
            std::fprintf(stderr, "cais_verify: bad argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    // topology=all sweeps the flat default shape plus every shipped
    // preset; otherwise a single (possibly empty = flat) topology.
    std::vector<std::string> topologies;
    const std::string topo_arg = params.getString("topology", "");
    const bool sweep_all = topo_arg == "all";
    if (sweep_all) {
        topologies.push_back("");
        for (const std::string &n : FabricParams::presetNames())
            topologies.push_back(n);
    } else {
        topologies.push_back(topo_arg);
    }

    auto makeCfg = [&](const std::string &topo) {
        RunConfig cfg;
        cfg.topology = topo;
        // With a preset, default the GPU count to the preset's own
        // (nvl72 -> 72); gpus= still overrides for withGpus scaling
        // (single-topology mode only — 'all' keeps preset shapes).
        if (const FabricParams *p = FabricParams::findPreset(topo))
            cfg.numGpus = p->numGpus;
        if (!sweep_all) {
            cfg.numGpus =
                static_cast<int>(params.getInt("gpus", cfg.numGpus));
            cfg.numSwitches = static_cast<int>(
                params.getInt("switches", cfg.numSwitches));
        }
        cfg.chunkBytes = static_cast<std::uint32_t>(
            params.getInt("chunk", cfg.chunkBytes));
        cfg.gpu.numSms =
            static_cast<int>(params.getInt("sms", cfg.gpu.numSms));
        cfg.seed = static_cast<std::uint64_t>(params.getInt(
            "seed", static_cast<std::int64_t>(cfg.seed)));
        // shards= runs the static pass against the sharded event
        // core's configuration path (domain clamping + lookahead
        // validation, DESIGN.md §6f) — the checks never execute
        // events.
        cfg.shards =
            static_cast<int>(params.getInt("shards", cfg.shards));
        return cfg;
    };
    for (const std::string &topo : topologies) {
        std::string cfg_err = makeCfg(topo).validationError();
        if (!cfg_err.empty()) {
            std::fprintf(stderr, "cais_verify: invalid config: %s\n",
                         cfg_err.c_str());
            return 2;
        }
    }

    // Static pass only: small scale factors keep graph construction
    // instant while preserving every structural property.
    LlmConfig model = megaGpt4B().scaled(
        params.getDouble("dim", 0.25), params.getDouble("tok", 0.125));

    verify::Options opts;
    {
        std::stringstream ss(params.getString("suppress", ""));
        std::string rule;
        while (std::getline(ss, rule, ','))
            if (!rule.empty())
                opts.suppress.insert(rule);
    }

    auto lower = [](std::string s) {
        for (char &c : s)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        return s;
    };

    std::vector<StrategySpec> strategies;
    std::string only_strategy = params.getString("strategy", "");
    for (const StrategySpec &s : allStrategies())
        if (only_strategy.empty() ||
            lower(s.name) == lower(only_strategy))
            strategies.push_back(s);
    if (strategies.empty()) {
        std::string names;
        for (const StrategySpec &s : allStrategies())
            names += (names.empty() ? "" : " ") + s.name;
        std::fprintf(stderr,
                     "cais_verify: unknown strategy '%s' (one of: "
                     "%s)\n",
                     only_strategy.c_str(), names.c_str());
        return usage();
    }

    std::vector<Workload> workloads;
    std::string only_workload = params.getString("workload", "");
    for (Workload &w : allWorkloads())
        if (only_workload.empty() || w.name == only_workload)
            workloads.push_back(std::move(w));
    if (workloads.empty()) {
        std::fprintf(stderr, "cais_verify: unknown workload '%s'\n",
                     only_workload.c_str());
        return usage();
    }

    std::vector<verify::VerifyResult> results;
    std::size_t total = 0;
    for (const std::string &topo : topologies) {
        RunConfig cfg = makeCfg(topo);
        for (const StrategySpec &spec : strategies) {
            for (const Workload &w : workloads) {
                verify::Options o = opts;
                o.workload = sweep_all && !topo.empty()
                                 ? w.name + "@" + topo
                                 : w.name;
                OpGraph graph = w.build(model);
                results.push_back(
                    verify::verifyRun(spec, graph, cfg, o));
                total += results.back().diagnostics.size();
            }
        }
    }

    if (want_json || params.has("json_out")) {
        JsonWriter w;
        w.beginObject();
        w.field("schema", verify::verifySchemaVersion);
        w.field("totalDiagnostics",
                static_cast<std::uint64_t>(total));
        w.key("runs").beginArray();
        for (const verify::VerifyResult &r : results)
            r.writeJson(w);
        w.endArray();
        w.endObject();
        std::string json_out = params.getString("json_out", "");
        if (!json_out.empty()) {
            std::FILE *f = std::fopen(json_out.c_str(), "w");
            if (!f) {
                std::fprintf(stderr,
                             "cais_verify: cannot write %s\n",
                             json_out.c_str());
                return 2;
            }
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
        }
        if (want_json)
            std::printf("%s\n", w.str().c_str());
    }
    if (!want_json) {
        for (const verify::VerifyResult &r : results)
            if (!r.ok())
                std::printf("-- %s / %s --\n%s", r.strategy.c_str(),
                            r.workload.c_str(), r.text().c_str());
        std::printf("cais_verify: %zu run(s), %zu diagnostic(s)\n",
                    results.size(), total);
    }
    return total == 0 ? 0 : 1;
}
