#include "report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace cais
{
namespace report
{

namespace
{

constexpr const char *schemaTag = "cais-metrics-v1";
constexpr const char *profileTag = "cais-profile-v1";

/** Render a number without trailing noise ("12" rather than "12.00"). */
std::string
num(double v)
{
    if (std::floor(v) == v && std::fabs(v) < 1e15)
        return strfmt("%.0f", v);
    return strfmt("%.4g", v);
}

std::string
pct(double a, double b)
{
    if (a == 0.0)
        return b == 0.0 ? "+0.00%" : "n/a";
    return strfmt("%+.2f%%", 100.0 * (b - a) / a);
}

/** Scalar reading of one metric-tree entry (counters/gauges: value;
 *  stats/histograms: count). */
double
metricScalar(const JsonValue &entry)
{
    std::string kind = entry.getString("kind");
    if (kind == "stats" || kind == "histogram")
        return entry.getNumber("count");
    return entry.getNumber("value");
}

} // namespace

bool
load(const std::string &text, const std::string &path, Report &out,
     std::string &error)
{
    if (!jsonParse(text, out.doc, error))
        return false;
    if (!out.doc.isObject()) {
        error = "top-level value is not an object";
        return false;
    }
    std::string schema = out.doc.getString("schema");
    if (schema != schemaTag && schema != profileTag) {
        error = "unsupported schema '" + schema + "' (expected " +
                schemaTag + " or " + profileTag + ")";
        return false;
    }
    if (schema == schemaTag) {
        const JsonValue *result = out.doc.find("result");
        if (!result || !result->isObject()) {
            error = "missing result section";
            return false;
        }
    }
    out.path = path;
    out.schema = schema;
    return true;
}

bool
loadFile(const std::string &path, Report &out, std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    // fopen() happily opens directories; fread() then fails with
    // EISDIR and an empty buffer, which would otherwise surface as a
    // confusing "offset 0: unexpected end of input" parse error.
    bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        error = "cannot read " + path;
        return false;
    }
    return load(text, path, out, error);
}

std::string
summary(const Report &r)
{
    std::ostringstream os;
    os << "report: " << r.path << "\n";
    os << "strategy: " << r.doc.getString("strategy", "?")
       << "  workload: " << r.doc.getString("workload", "?") << "\n";
    if (const JsonValue *cfg = r.doc.find("config"))
        os << strfmt("config: %d GPUs x %d switches, seed %s\n",
                     static_cast<int>(cfg->getNumber("numGpus")),
                     static_cast<int>(cfg->getNumber("numSwitches")),
                     num(cfg->getNumber("seed")).c_str());

    const JsonValue *result = r.doc.find("result");
    os << "\n  " << strfmt("%-24s %16s", "metric", "value") << "\n";
    for (const auto &[key, v] : result->members) {
        if (!v.isNumber())
            continue;
        os << "  "
           << strfmt("%-24s %16s", key.c_str(), num(v.numVal).c_str())
           << "\n";
    }

    // Histogram latencies: the percentile summary is the part of the
    // metric tree that a makespan-level diff cannot capture.
    if (const JsonValue *m = r.doc.find("metrics")) {
        bool header = false;
        for (const auto &[path, entry] : m->members) {
            if (!entry.isObject() ||
                entry.getString("kind") != "histogram" ||
                entry.getNumber("count") == 0.0)
                continue;
            if (!header) {
                os << "\n  "
                   << strfmt("%-40s %10s %10s %10s %10s", "histogram",
                             "count", "p50", "p99", "p999")
                   << "\n";
                header = true;
            }
            os << "  "
               << strfmt("%-40s %10s %10s %10s %10s", path.c_str(),
                         num(entry.getNumber("count")).c_str(),
                         num(entry.getNumber("p50")).c_str(),
                         num(entry.getNumber("p99")).c_str(),
                         num(entry.getNumber("p999")).c_str())
               << "\n";
        }
    }

    if (const JsonValue *m = r.doc.find("metrics"))
        os << "\nmetric tree: " << m->members.size() << " paths\n";
    if (const JsonValue *k = r.doc.find("kernels"))
        os << "kernels: " << k->elems.size() << "\n";
    return os.str();
}

std::string
diff(const Report &a, const Report &b)
{
    std::ostringstream os;
    os << "A: " << a.path << " (" << a.doc.getString("strategy", "?")
       << ")\n";
    os << "B: " << b.path << " (" << b.doc.getString("strategy", "?")
       << ")\n";

    const JsonValue *ra = a.doc.find("result");
    const JsonValue *rb = b.doc.find("result");
    os << "\n  "
       << strfmt("%-24s %16s %16s %10s", "metric", "A", "B", "delta")
       << "\n";
    for (const auto &[key, va] : ra->members) {
        if (!va.isNumber())
            continue;
        const JsonValue *vb = rb->find(key);
        if (!vb || !vb->isNumber())
            continue;
        os << "  "
           << strfmt("%-24s %16s %16s %10s", key.c_str(),
                     num(va.numVal).c_str(), num(vb->numVal).c_str(),
                     pct(va.numVal, vb->numVal).c_str())
           << "\n";
    }

    // Histogram percentile shifts between the two runs: tail movement
    // (p99/p999) is invisible in the scalar rows above.
    const JsonValue *ma = a.doc.find("metrics");
    const JsonValue *mb = b.doc.find("metrics");
    if (ma && mb && ma->isObject() && mb->isObject()) {
        bool header = false;
        for (const auto &[path, ea] : ma->members) {
            const JsonValue *eb = mb->find(path);
            if (!eb || !ea.isObject() || !eb->isObject() ||
                ea.getString("kind") != "histogram" ||
                eb->getString("kind") != "histogram")
                continue;
            if (ea.getNumber("count") == 0.0 &&
                eb->getNumber("count") == 0.0)
                continue;
            if (!header) {
                os << "\n  "
                   << strfmt("%-40s %22s %22s %22s", "histogram",
                             "p50 A -> B", "p99 A -> B",
                             "p999 A -> B")
                   << "\n";
                header = true;
            }
            auto cell = [&](const char *field) {
                return strfmt("%10s -> %-9s",
                              num(ea.getNumber(field)).c_str(),
                              num(eb->getNumber(field)).c_str());
            };
            os << "  "
               << strfmt("%-40s %22s %22s %22s", path.c_str(),
                         cell("p50").c_str(), cell("p99").c_str(),
                         cell("p999").c_str())
               << "\n";
        }
    }

    // Paths present in only one report are a schema change (a metric
    // was added or removed between the two builds) and must be called
    // out rather than silently skipped.
    if (ma && mb && ma->isObject() && mb->isObject()) {
        std::vector<std::string> only_a, only_b;
        for (const auto &m : ma->members)
            if (!mb->find(m.first))
                only_a.push_back(m.first);
        for (const auto &m : mb->members)
            if (!ma->find(m.first))
                only_b.push_back(m.first);
        if (!only_a.empty()) {
            os << "\nmetric paths only in A (removed in B):\n";
            for (const std::string &p : only_a)
                os << "  - " << p << "\n";
        }
        if (!only_b.empty()) {
            os << "\nmetric paths only in B (added since A):\n";
            for (const std::string &p : only_b)
                os << "  + " << p << "\n";
        }
    }

    // Headline metric-tree movers: the largest relative changes among
    // paths present in both reports.
    if (ma && mb && ma->isObject() && mb->isObject()) {
        struct Mover
        {
            std::string path;
            double va;
            double vb;
            double rel;
        };
        std::vector<Mover> movers;
        for (const auto &[path, ea] : ma->members) {
            const JsonValue *eb = mb->find(path);
            if (!eb || !ea.isObject() || !eb->isObject())
                continue;
            double va = metricScalar(ea);
            double vb = metricScalar(*eb);
            if (va == vb)
                continue;
            double base = std::max(std::fabs(va), 1.0);
            movers.push_back({path, va, vb,
                              std::fabs(vb - va) / base});
        }
        std::stable_sort(movers.begin(), movers.end(),
                         [](const Mover &x, const Mover &y) {
            return x.rel > y.rel;
        });
        if (!movers.empty()) {
            os << "\ntop metric-tree movers:\n";
            std::size_t shown = std::min<std::size_t>(movers.size(),
                                                      10);
            for (std::size_t i = 0; i < shown; ++i)
                os << "  "
                   << strfmt("%-40s %14s -> %-14s %10s",
                             movers[i].path.c_str(),
                             num(movers[i].va).c_str(),
                             num(movers[i].vb).c_str(),
                             pct(movers[i].va, movers[i].vb).c_str())
                   << "\n";
        }
    }
    return os.str();
}

namespace
{

/** Profile header lines shared by the attribution / path views. */
void
profileHeader(std::ostringstream &os, const Report &r)
{
    os << "profile: " << r.path << "\n";
    os << "strategy: " << r.doc.getString("strategy", "?")
       << "  workload: " << r.doc.getString("workload", "?") << "\n";
    os << strfmt("makespan: %s cycles  edges: %s  coverage: %.1f%%\n",
                 num(r.doc.getNumber("makespan")).c_str(),
                 num(r.doc.getNumber("edges")).c_str(),
                 100.0 * r.doc.getNumber("coverage"));
}

std::string
notAProfile(const Report &r)
{
    return "cais_report: " + r.path + " is a " + r.schema +
           " document; --attribution/--critical-path need a "
           "cais-profile-v1 profile (RunConfig.profilePath / "
           "--profile)\n";
}

/** attribution[] as an ordered (class -> cycles) list, zeros kept so
 *  two profiles always diff class-by-class. */
std::vector<std::pair<std::string, double>>
attributionRows(const Report &r)
{
    std::vector<std::pair<std::string, double>> rows;
    const JsonValue *attr = r.doc.find("attribution");
    if (!attr || !attr->isArray())
        return rows;
    for (const JsonValue &e : attr->elems)
        rows.emplace_back(e.getString("class", "?"),
                          e.getNumber("cycles"));
    return rows;
}

/** Total critical-path time per wait class (cycles). */
std::vector<std::pair<std::string, double>>
pathClassTotals(const Report &r)
{
    std::vector<std::pair<std::string, double>> rows;
    const JsonValue *path = r.doc.find("criticalPath");
    if (!path || !path->isArray())
        return rows;
    for (const JsonValue &s : path->elems) {
        std::string cls = s.getString("class", "?");
        double span = s.getNumber("end") - s.getNumber("start");
        auto it = std::find_if(rows.begin(), rows.end(),
                               [&](const auto &p) {
            return p.first == cls;
        });
        if (it == rows.end())
            rows.emplace_back(cls, span);
        else
            it->second += span;
    }
    return rows;
}

} // namespace

std::string
attribution(const Report &r)
{
    if (!r.isProfile())
        return notAProfile(r);
    std::ostringstream os;
    profileHeader(os, r);
    os << "\n  "
       << strfmt("%-18s %16s %8s", "class", "cycles", "share")
       << "\n";
    const JsonValue *attr = r.doc.find("attribution");
    if (attr && attr->isArray())
        for (const JsonValue &e : attr->elems) {
            double cycles = e.getNumber("cycles");
            if (cycles == 0.0)
                continue;
            os << "  "
               << strfmt("%-18s %16s %7.1f%%",
                         e.getString("class", "?").c_str(),
                         num(cycles).c_str(),
                         100.0 * e.getNumber("share"))
               << "\n";
        }
    return os.str();
}

std::string
attributionDiff(const Report &a, const Report &b)
{
    if (!a.isProfile())
        return notAProfile(a);
    if (!b.isProfile())
        return notAProfile(b);
    std::ostringstream os;
    os << "A: " << a.path << " (" << a.doc.getString("strategy", "?")
       << ")\n";
    os << "B: " << b.path << " (" << b.doc.getString("strategy", "?")
       << ")\n";
    os << strfmt("makespan: %s -> %s (%s)\n",
                 num(a.doc.getNumber("makespan")).c_str(),
                 num(b.doc.getNumber("makespan")).c_str(),
                 pct(a.doc.getNumber("makespan"),
                     b.doc.getNumber("makespan")).c_str());
    os << "\n  "
       << strfmt("%-18s %16s %16s %10s", "class", "A", "B", "delta")
       << "\n";
    auto ra = attributionRows(a);
    auto rb = attributionRows(b);
    // Both sides list every class in enum order (the writer emits
    // zeros too), so walk A and look classes up in B by name to stay
    // robust against future class additions.
    for (const auto &[cls, va] : ra) {
        double vb = 0.0;
        for (const auto &p : rb)
            if (p.first == cls) {
                vb = p.second;
                break;
            }
        if (va == 0.0 && vb == 0.0)
            continue;
        os << "  "
           << strfmt("%-18s %16s %16s %10s", cls.c_str(),
                     num(va).c_str(), num(vb).c_str(),
                     pct(va, vb).c_str())
           << "\n";
    }
    return os.str();
}

std::string
criticalPath(const Report &r)
{
    if (!r.isProfile())
        return notAProfile(r);
    std::ostringstream os;
    profileHeader(os, r);
    const JsonValue *path = r.doc.find("criticalPath");
    std::size_t segs =
        path && path->isArray() ? path->elems.size() : 0;
    os << "critical path: " << segs << " segments\n";
    os << "\n  "
       << strfmt("%-12s %12s %12s %-18s %s", "start", "end", "cycles",
                 "class", "node")
       << "\n";
    if (path && path->isArray())
        for (const JsonValue &s : path->elems) {
            double t0 = s.getNumber("start");
            double t1 = s.getNumber("end");
            os << "  "
               << strfmt("%-12s %12s %12s %-18s %s", num(t0).c_str(),
                         num(t1).c_str(), num(t1 - t0).c_str(),
                         s.getString("class", "?").c_str(),
                         s.getString("node", "?").c_str())
               << "\n";
        }
    return os.str();
}

std::string
criticalPathDiff(const Report &a, const Report &b)
{
    if (!a.isProfile())
        return notAProfile(a);
    if (!b.isProfile())
        return notAProfile(b);
    std::ostringstream os;
    os << "A: " << a.path << " (" << a.doc.getString("strategy", "?")
       << ")\n";
    os << "B: " << b.path << " (" << b.doc.getString("strategy", "?")
       << ")\n";
    os << strfmt("makespan: %s -> %s (%s)\n",
                 num(a.doc.getNumber("makespan")).c_str(),
                 num(b.doc.getNumber("makespan")).c_str(),
                 pct(a.doc.getNumber("makespan"),
                     b.doc.getNumber("makespan")).c_str());

    // Where did the critical path's time move? Per-class totals keep
    // the diff stable even though the two paths visit different
    // nodes.
    auto ra = pathClassTotals(a);
    auto rb = pathClassTotals(b);
    os << "\n  "
       << strfmt("%-18s %16s %16s %10s", "path time by class", "A",
                 "B", "delta")
       << "\n";
    std::vector<std::string> classes;
    for (const auto &p : ra)
        classes.push_back(p.first);
    for (const auto &p : rb)
        if (std::find(classes.begin(), classes.end(), p.first) ==
            classes.end())
            classes.push_back(p.first);
    for (const std::string &cls : classes) {
        double va = 0.0, vb = 0.0;
        for (const auto &p : ra)
            if (p.first == cls)
                va = p.second;
        for (const auto &p : rb)
            if (p.first == cls)
                vb = p.second;
        os << "  "
           << strfmt("%-18s %16s %16s %10s", cls.c_str(),
                     num(va).c_str(), num(vb).c_str(),
                     pct(va, vb).c_str())
           << "\n";
    }
    return os.str();
}

namespace
{

constexpr const char *boundClasses[] = {
    "smCompute", "hbm", "linkSerialization", "mergeService",
    "criticalPath",
};

std::string
notARunReport(const Report &r)
{
    return "cais_report: " + r.path + " is a " + r.schema +
           " document; --bound needs a cais-metrics-v1 run report "
           "with a bound section (RunConfig.metricsPath / "
           "--metrics)\n";
}

/** The bound section, or null when the report predates it. */
const JsonValue *
boundSection(const Report &r)
{
    const JsonValue *b = r.doc.find("bound");
    return b && b->isObject() ? b : nullptr;
}

std::string
ratioCell(double makespan, double bound_cycles)
{
    if (bound_cycles == 0.0)
        return "-";
    return strfmt("%.2f", makespan / bound_cycles);
}

} // namespace

std::string
bound(const Report &r)
{
    if (r.isProfile())
        return notARunReport(r);
    const JsonValue *b = boundSection(r);
    if (!b)
        return notARunReport(r);
    const JsonValue *result = r.doc.find("result");
    double makespan = result->getNumber("makespan");
    std::string binding = b->getString("binding");

    std::ostringstream os;
    os << "report: " << r.path << "\n";
    os << "strategy: " << r.doc.getString("strategy", "?")
       << "  workload: " << r.doc.getString("workload", "?") << "\n";
    os << strfmt("makespan: %s cycles  composite bound: %s  "
                 "sim/bound: %s\n",
                 num(makespan).c_str(),
                 num(b->getNumber("composite")).c_str(),
                 ratioCell(makespan,
                           b->getNumber("composite")).c_str());
    os << "\n  "
       << strfmt("%-18s %16s %10s", "resource", "bound", "sim/bound")
       << "\n";
    for (const char *cls : boundClasses) {
        double cyc = b->getNumber(cls);
        os << "  "
           << strfmt("%-18s %16s %10s%s", cls, num(cyc).c_str(),
                     ratioCell(makespan, cyc).c_str(),
                     binding == cls ? "  <- binding" : "")
           << "\n";
    }
    return os.str();
}

std::string
boundDiff(const Report &a, const Report &b)
{
    if (a.isProfile() || !boundSection(a))
        return notARunReport(a);
    if (b.isProfile() || !boundSection(b))
        return notARunReport(b);
    const JsonValue *ba = boundSection(a);
    const JsonValue *bb = boundSection(b);
    double ma = a.doc.find("result")->getNumber("makespan");
    double mb = b.doc.find("result")->getNumber("makespan");

    std::ostringstream os;
    os << "A: " << a.path << " (" << a.doc.getString("strategy", "?")
       << ")\n";
    os << "B: " << b.path << " (" << b.doc.getString("strategy", "?")
       << ")\n";
    os << strfmt("makespan: %s -> %s (%s)  binding: %s -> %s\n",
                 num(ma).c_str(), num(mb).c_str(),
                 pct(ma, mb).c_str(),
                 ba->getString("binding", "?").c_str(),
                 bb->getString("binding", "?").c_str());
    os << "\n  "
       << strfmt("%-18s %16s %16s %10s %10s %10s", "resource",
                 "bound A", "bound B", "delta", "ratio A", "ratio B")
       << "\n";
    for (const char *cls : boundClasses) {
        double va = ba->getNumber(cls);
        double vb = bb->getNumber(cls);
        if (va == 0.0 && vb == 0.0)
            continue;
        os << "  "
           << strfmt("%-18s %16s %16s %10s %10s %10s", cls,
                     num(va).c_str(), num(vb).c_str(),
                     pct(va, vb).c_str(), ratioCell(ma, va).c_str(),
                     ratioCell(mb, vb).c_str())
           << "\n";
    }
    return os.str();
}

} // namespace report
} // namespace cais
