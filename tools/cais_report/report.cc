#include "report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/log.hh"

namespace cais
{
namespace report
{

namespace
{

constexpr const char *schemaTag = "cais-metrics-v1";

/** Render a number without trailing noise ("12" rather than "12.00"). */
std::string
num(double v)
{
    if (std::floor(v) == v && std::fabs(v) < 1e15)
        return strfmt("%.0f", v);
    return strfmt("%.4g", v);
}

std::string
pct(double a, double b)
{
    if (a == 0.0)
        return b == 0.0 ? "+0.00%" : "n/a";
    return strfmt("%+.2f%%", 100.0 * (b - a) / a);
}

/** Scalar reading of one metric-tree entry (counters/gauges: value;
 *  stats/histograms: count). */
double
metricScalar(const JsonValue &entry)
{
    std::string kind = entry.getString("kind");
    if (kind == "stats" || kind == "histogram")
        return entry.getNumber("count");
    return entry.getNumber("value");
}

} // namespace

bool
load(const std::string &text, const std::string &path, Report &out,
     std::string &error)
{
    if (!jsonParse(text, out.doc, error))
        return false;
    if (!out.doc.isObject()) {
        error = "top-level value is not an object";
        return false;
    }
    std::string schema = out.doc.getString("schema");
    if (schema != schemaTag) {
        error = "unsupported schema '" + schema + "' (expected " +
                schemaTag + ")";
        return false;
    }
    const JsonValue *result = out.doc.find("result");
    if (!result || !result->isObject()) {
        error = "missing result section";
        return false;
    }
    out.path = path;
    return true;
}

bool
loadFile(const std::string &path, Report &out, std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    // fopen() happily opens directories; fread() then fails with
    // EISDIR and an empty buffer, which would otherwise surface as a
    // confusing "offset 0: unexpected end of input" parse error.
    bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        error = "cannot read " + path;
        return false;
    }
    return load(text, path, out, error);
}

std::string
summary(const Report &r)
{
    std::ostringstream os;
    os << "report: " << r.path << "\n";
    os << "strategy: " << r.doc.getString("strategy", "?")
       << "  workload: " << r.doc.getString("workload", "?") << "\n";
    if (const JsonValue *cfg = r.doc.find("config"))
        os << strfmt("config: %d GPUs x %d switches, seed %s\n",
                     static_cast<int>(cfg->getNumber("numGpus")),
                     static_cast<int>(cfg->getNumber("numSwitches")),
                     num(cfg->getNumber("seed")).c_str());

    const JsonValue *result = r.doc.find("result");
    os << "\n  " << strfmt("%-24s %16s", "metric", "value") << "\n";
    for (const auto &[key, v] : result->members) {
        if (!v.isNumber())
            continue;
        os << "  "
           << strfmt("%-24s %16s", key.c_str(), num(v.numVal).c_str())
           << "\n";
    }

    if (const JsonValue *m = r.doc.find("metrics"))
        os << "\nmetric tree: " << m->members.size() << " paths\n";
    if (const JsonValue *k = r.doc.find("kernels"))
        os << "kernels: " << k->elems.size() << "\n";
    return os.str();
}

std::string
diff(const Report &a, const Report &b)
{
    std::ostringstream os;
    os << "A: " << a.path << " (" << a.doc.getString("strategy", "?")
       << ")\n";
    os << "B: " << b.path << " (" << b.doc.getString("strategy", "?")
       << ")\n";

    const JsonValue *ra = a.doc.find("result");
    const JsonValue *rb = b.doc.find("result");
    os << "\n  "
       << strfmt("%-24s %16s %16s %10s", "metric", "A", "B", "delta")
       << "\n";
    for (const auto &[key, va] : ra->members) {
        if (!va.isNumber())
            continue;
        const JsonValue *vb = rb->find(key);
        if (!vb || !vb->isNumber())
            continue;
        os << "  "
           << strfmt("%-24s %16s %16s %10s", key.c_str(),
                     num(va.numVal).c_str(), num(vb->numVal).c_str(),
                     pct(va.numVal, vb->numVal).c_str())
           << "\n";
    }

    // Headline metric-tree movers: the largest relative changes among
    // paths present in both reports.
    const JsonValue *ma = a.doc.find("metrics");
    const JsonValue *mb = b.doc.find("metrics");
    if (ma && mb && ma->isObject() && mb->isObject()) {
        struct Mover
        {
            std::string path;
            double va;
            double vb;
            double rel;
        };
        std::vector<Mover> movers;
        for (const auto &[path, ea] : ma->members) {
            const JsonValue *eb = mb->find(path);
            if (!eb || !ea.isObject() || !eb->isObject())
                continue;
            double va = metricScalar(ea);
            double vb = metricScalar(*eb);
            if (va == vb)
                continue;
            double base = std::max(std::fabs(va), 1.0);
            movers.push_back({path, va, vb,
                              std::fabs(vb - va) / base});
        }
        std::stable_sort(movers.begin(), movers.end(),
                         [](const Mover &x, const Mover &y) {
            return x.rel > y.rel;
        });
        if (!movers.empty()) {
            os << "\ntop metric-tree movers:\n";
            std::size_t shown = std::min<std::size_t>(movers.size(),
                                                      10);
            for (std::size_t i = 0; i < shown; ++i)
                os << "  "
                   << strfmt("%-40s %14s -> %-14s %10s",
                             movers[i].path.c_str(),
                             num(movers[i].va).c_str(),
                             num(movers[i].vb).c_str(),
                             pct(movers[i].va, movers[i].vb).c_str())
                   << "\n";
        }
    }
    return os.str();
}

} // namespace report
} // namespace cais
