/**
 * @file
 * cais_report core: load cais-metrics-v1 JSON run reports (see
 * src/analysis/report.hh for the writer) and cais-profile-v1 causal
 * profiles (see src/analysis/causal_profile.hh), and render summary
 * tables, A/B diffs with percent deltas, critical-path listings and
 * makespan attribution views. A library so tests/test_metrics.cc can
 * drive it in-process.
 */

#ifndef CAIS_TOOLS_CAIS_REPORT_REPORT_HH
#define CAIS_TOOLS_CAIS_REPORT_REPORT_HH

#include <string>

#include "common/json.hh"

namespace cais
{
namespace report
{

/** One loaded report document. */
struct Report
{
    JsonValue doc;
    std::string path;
    std::string schema; ///< "cais-metrics-v1" or "cais-profile-v1"

    bool isProfile() const { return schema == "cais-profile-v1"; }
};

/**
 * Parse @p text as a cais-metrics-v1 run report or a cais-profile-v1
 * causal profile (distinguished by the schema tag; see
 * Report::isProfile). Returns false and sets @p error on malformed
 * JSON, a missing/unknown schema tag, or a missing result section
 * (run reports only).
 */
bool load(const std::string &text, const std::string &path,
          Report &out, std::string &error);

/** load() from a file. */
bool loadFile(const std::string &path, Report &out,
              std::string &error);

/** Human-readable summary table of one run. */
std::string summary(const Report &r);

/**
 * A/B comparison: every scalar in the result section side by side
 * with the percent delta, histogram-percentile deltas, metric paths
 * present in only one report, plus headline metric-tree movers.
 */
std::string diff(const Report &a, const Report &b);

/**
 * Makespan attribution view of a cais-profile-v1 document: one row
 * per leaf resource class with attributed cycles and share, plus
 * coverage (attributed / makespan).
 */
std::string attribution(const Report &r);

/** Class-by-class attribution delta between two profiles. */
std::string attributionDiff(const Report &a, const Report &b);

/**
 * Critical-path view of a cais-profile-v1 document: the makespan-
 * defining chain of wait-for segments, earliest first.
 */
std::string criticalPath(const Report &r);

/** Per-class critical-path time delta between two profiles. */
std::string criticalPathDiff(const Report &a, const Report &b);

/**
 * Sim-vs-bound view of a cais-metrics-v1 run report: one row per
 * resource class of the static bound model (analysis/bound_model.hh)
 * with the bound cycles and the sim/bound ratio, the binding class
 * marked.
 */
std::string bound(const Report &r);

/** Class-by-class sim/bound ratio delta between two run reports. */
std::string boundDiff(const Report &a, const Report &b);

} // namespace report
} // namespace cais

#endif // CAIS_TOOLS_CAIS_REPORT_REPORT_HH
