/**
 * @file
 * cais_report core: load cais-metrics-v1 JSON run reports (see
 * src/analysis/report.hh for the writer) and render either a summary
 * table for one run or an A/B diff with percent deltas for two. A
 * library so tests/test_metrics.cc can drive it in-process.
 */

#ifndef CAIS_TOOLS_CAIS_REPORT_REPORT_HH
#define CAIS_TOOLS_CAIS_REPORT_REPORT_HH

#include <string>

#include "common/json.hh"

namespace cais
{
namespace report
{

/** One loaded report document. */
struct Report
{
    JsonValue doc;
    std::string path;
};

/**
 * Parse @p text as a cais-metrics-v1 report. Returns false and sets
 * @p error on malformed JSON, a missing/unknown schema tag, or a
 * missing result section.
 */
bool load(const std::string &text, const std::string &path,
          Report &out, std::string &error);

/** load() from a file. */
bool loadFile(const std::string &path, Report &out,
              std::string &error);

/** Human-readable summary table of one run. */
std::string summary(const Report &r);

/**
 * A/B comparison: every scalar in the result section side by side
 * with the percent delta, plus headline metric-tree deltas.
 */
std::string diff(const Report &a, const Report &b);

} // namespace report
} // namespace cais

#endif // CAIS_TOOLS_CAIS_REPORT_REPORT_HH
