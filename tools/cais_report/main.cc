/**
 * @file
 * cais_report: inspect cais-metrics-v1 run reports and
 * cais-profile-v1 causal profiles.
 *
 *   cais_report run.json                    summary table of one run
 *   cais_report --diff a.json b.json        A/B diff with % deltas
 *   cais_report --attribution p.json        makespan attribution by
 *                                           leaf resource class
 *   cais_report --critical-path p.json      critical-path segments
 *   cais_report --bound run.json            sim-vs-bound ratios by
 *                                           resource class
 *   cais_report --attribution --diff a b    class-by-class delta
 *   cais_report --critical-path --diff a b  path-time-by-class delta
 */

#include <cstdio>
#include <string>
#include <vector>

#include "report.hh"

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cais_report <report.json>\n"
        "       cais_report --diff <a.json> <b.json>\n"
        "       cais_report --attribution [--diff] <profile.json>...\n"
        "       cais_report --critical-path [--diff] "
        "<profile.json>...\n"
        "       cais_report --bound [--diff] <report.json>...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_diff = false;
    enum class View
    {
        summary,
        attribution,
        criticalPath,
        bound,
    } view = View::summary;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--diff") {
            want_diff = true;
        } else if (arg == "--attribution") {
            view = View::attribution;
        } else if (arg == "--critical-path") {
            view = View::criticalPath;
        } else if (arg == "--bound") {
            view = View::bound;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else
            paths.push_back(arg);
    }
    if (paths.size() != (want_diff ? 2u : 1u))
        return usage();

    std::vector<cais::report::Report> reports(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::string error;
        if (!cais::report::loadFile(paths[i], reports[i], error)) {
            std::fprintf(stderr, "cais_report: %s: %s\n",
                         paths[i].c_str(), error.c_str());
            return 1;
        }
    }

    std::string out;
    switch (view) {
      case View::attribution:
        out = want_diff
            ? cais::report::attributionDiff(reports[0], reports[1])
            : cais::report::attribution(reports[0]);
        break;
      case View::criticalPath:
        out = want_diff
            ? cais::report::criticalPathDiff(reports[0], reports[1])
            : cais::report::criticalPath(reports[0]);
        break;
      case View::bound:
        out = want_diff
            ? cais::report::boundDiff(reports[0], reports[1])
            : cais::report::bound(reports[0]);
        break;
      case View::summary:
        // A profile given without a view flag still renders usefully:
        // default it to the attribution view.
        if (reports[0].isProfile()) {
            out = want_diff
                ? cais::report::attributionDiff(reports[0],
                                                reports[1])
                : cais::report::attribution(reports[0]);
        } else {
            out = want_diff
                ? cais::report::diff(reports[0], reports[1])
                : cais::report::summary(reports[0]);
        }
        break;
    }
    std::fputs(out.c_str(), stdout);
    return 0;
}
