/**
 * @file
 * cais_report: inspect cais-metrics-v1 run reports.
 *
 *   cais_report run.json              summary table of one run
 *   cais_report --diff a.json b.json  A/B diff with percent deltas
 */

#include <cstdio>
#include <string>
#include <vector>

#include "report.hh"

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: cais_report <report.json>\n"
                 "       cais_report --diff <a.json> <b.json>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_diff = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--diff") {
            want_diff = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else
            paths.push_back(arg);
    }
    if (paths.size() != (want_diff ? 2u : 1u))
        return usage();

    std::vector<cais::report::Report> reports(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::string error;
        if (!cais::report::loadFile(paths[i], reports[i], error)) {
            std::fprintf(stderr, "cais_report: %s: %s\n",
                         paths[i].c_str(), error.c_str());
            return 1;
        }
    }

    std::string out = want_diff
        ? cais::report::diff(reports[0], reports[1])
        : cais::report::summary(reports[0]);
    std::fputs(out.c_str(), stdout);
    return 0;
}
