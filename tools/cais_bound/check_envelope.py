#!/usr/bin/env python3
"""CI gate over a cais-bound-v1 matrix document.

Usage: check_envelope.py <bound-matrix.json> <ratio_envelope.json>

Asserts (exit 1 with one line per failure otherwise):
  1. totalViolations == 0 -- no run beat its static floor (rule V8).
  2. Every run's sim/bound ratio falls inside its strategy's
     [min, max] envelope from the checked-in baseline, and every
     strategy in the baseline appeared in the matrix.

The envelope is deliberately wider than the deterministic values the
simulator produces today: it fails only when the bound model loosens
(ratio above max) or the bound creeps toward the makespan without a
model change making it sound (ratio below min), either of which
deserves a reviewed baseline update.
"""

import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(argv[1]) as f:
        matrix = json.load(f)
    with open(argv[2]) as f:
        envelope = json.load(f)

    failures = []

    if matrix.get("schema") != "cais-bound-v1":
        failures.append(
            "matrix schema is %r, want 'cais-bound-v1'"
            % matrix.get("schema"))
    if envelope.get("schema") != "cais-bound-envelope-v1":
        failures.append(
            "envelope schema is %r, want 'cais-bound-envelope-v1'"
            % envelope.get("schema"))

    violations = matrix.get("totalViolations", -1)
    if violations != 0:
        failures.append(
            "totalViolations == %s, want 0 (a run beat its static "
            "floor: simulator bug, see rule V8)" % violations)

    bands = envelope.get("strategies", {})
    seen = set()
    for run in matrix.get("runs", []):
        strategy = run.get("strategy", "?")
        workload = run.get("workload", "?")
        topology = run.get("topology", "") or "flat"
        ratio = run.get("ratio")
        seen.add(strategy)
        band = bands.get(strategy)
        if band is None:
            failures.append(
                "%s: no envelope for this strategy (add it to %s)"
                % (strategy, argv[2]))
            continue
        if ratio is None:
            failures.append("%s / %s / %s: run carries no ratio"
                            % (strategy, workload, topology))
            continue
        if not band["min"] <= ratio <= band["max"]:
            failures.append(
                "%s / %s / %s: sim/bound ratio %.3f outside "
                "envelope [%.2f, %.2f]"
                % (strategy, workload, topology, ratio,
                   band["min"], band["max"]))

    for strategy in sorted(bands):
        if strategy not in seen:
            failures.append(
                "%s: in the envelope baseline but absent from the "
                "matrix" % strategy)

    for line in failures:
        print("FAIL: " + line)
    if not failures:
        print("ok: %d runs, zero V8 violations, all ratios inside "
              "their strategy envelopes" % len(matrix.get("runs", [])))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
