/**
 * @file
 * cais_bound: run the sweep matrix and check every simulated makespan
 * against the static analytical bound model (DESIGN.md §6h).
 *
 *   cais_bound                         flat shape, all strategies/workloads
 *   cais_bound topology=all            flat + every preset (330 runs,
 *                                      the CI acceptance sweep)
 *   cais_bound strategy=cais           one strategy
 *   cais_bound workload=L2             one workload
 *   cais_bound --json [json_out=f]     cais-bound-v1 JSON document
 *
 * Unlike cais_verify this tool *executes* the simulations: V8 is a
 * post-run property (simulated makespan >= static bound per resource
 * class). The in-run V8/V9 gate is suppressed so a violating run is
 * reported as a line in the sweep summary instead of aborting the
 * whole matrix. Machine knobs mirror the benches: topology= gpus=
 * switches= chunk= sms= dim= tok= seed= shards=. Exit code: 0 clean,
 * 1 violations found, 2 usage.
 */

#include <cctype>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/bound_model.hh"
#include "common/config.hh"
#include "common/json.hh"
#include "runtime/sweep.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

struct Workload
{
    std::string name;
    std::function<OpGraph(const LlmConfig &)> build;
};

std::vector<Workload>
allWorkloads()
{
    auto sub = [](SubLayerId L) {
        return [L](const LlmConfig &m) { return buildSubLayer(m, L); };
    };
    return {
        {"L1", sub(SubLayerId::L1)},
        {"L2", sub(SubLayerId::L2)},
        {"L3", sub(SubLayerId::L3)},
        {"L4", sub(SubLayerId::L4)},
        {"layer_fwd",
         [](const LlmConfig &m) {
             return buildTransformerLayer(m, Pass::forward);
         }},
        {"layer_bwd",
         [](const LlmConfig &m) {
             return buildTransformerLayer(m, Pass::backward);
         }},
    };
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cais_bound [--json] [key=value...]\n"
        "  strategy=NAME   run one strategy (default: all)\n"
        "  workload=NAME   L1|L2|L3|L4|layer_fwd|layer_bwd "
        "(default: all)\n"
        "  json_out=PATH   write the JSON document to PATH\n"
        "  topology=NAME   fabric preset (dgx-h100, nvl72, "
        "rail-optimized-2node/-4node),\n"
        "                  or 'all' to sweep flat + every preset\n"
        "  gpus= switches= chunk= sms= dim= tok= seed= shards=   "
        "machine knobs (bench defaults)\n");
    return 2;
}

/** One run's sim-vs-bound record. */
struct BoundRecord
{
    std::string strategy;
    std::string workload;
    std::string topology; ///< preset name; "" is the flat shape
    RunResult r;
    bool v8 = false; ///< makespan below the composite bound
};

} // namespace

int
main(int argc, char **argv)
{
    bool want_json = false;
    Params params;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            want_json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!params.parseToken(arg)) {
            std::fprintf(stderr, "cais_bound: bad argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    std::vector<std::string> topologies;
    const std::string topo_arg = params.getString("topology", "");
    const bool sweep_all = topo_arg == "all";
    if (sweep_all) {
        topologies.push_back("");
        for (const std::string &n : FabricParams::presetNames())
            topologies.push_back(n);
    } else {
        topologies.push_back(topo_arg);
    }

    auto makeCfg = [&](const std::string &topo) {
        RunConfig cfg;
        cfg.topology = topo;
        if (const FabricParams *p = FabricParams::findPreset(topo))
            cfg.numGpus = p->numGpus;
        if (!sweep_all) {
            cfg.numGpus =
                static_cast<int>(params.getInt("gpus", cfg.numGpus));
            cfg.numSwitches = static_cast<int>(
                params.getInt("switches", cfg.numSwitches));
        }
        cfg.chunkBytes = static_cast<std::uint32_t>(
            params.getInt("chunk", cfg.chunkBytes));
        cfg.gpu.numSms =
            static_cast<int>(params.getInt("sms", cfg.gpu.numSms));
        cfg.seed = static_cast<std::uint64_t>(params.getInt(
            "seed", static_cast<std::int64_t>(cfg.seed)));
        cfg.shards =
            static_cast<int>(params.getInt("shards", cfg.shards));
        // The tool IS the V8 check: suppress the in-run gate so a
        // violating run shows up as a flagged line in the summary
        // instead of aborting the matrix mid-sweep.
        cfg.verifySuppress = {"V8", "V9"};
        return cfg;
    };
    for (const std::string &topo : topologies) {
        std::string cfg_err = makeCfg(topo).validationError();
        if (!cfg_err.empty()) {
            std::fprintf(stderr, "cais_bound: invalid config: %s\n",
                         cfg_err.c_str());
            return 2;
        }
    }

    // Same scaled model as the cais_verify acceptance sweep: the
    // bound property is scale-invariant and small factors keep the
    // 330-run matrix fast.
    LlmConfig model = megaGpt4B().scaled(
        params.getDouble("dim", 0.25), params.getDouble("tok", 0.125));

    auto lower = [](std::string s) {
        for (char &c : s)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        return s;
    };

    std::vector<StrategySpec> strategies;
    std::string only_strategy = params.getString("strategy", "");
    for (const StrategySpec &s : allStrategies())
        if (only_strategy.empty() ||
            lower(s.name) == lower(only_strategy))
            strategies.push_back(s);
    if (strategies.empty()) {
        std::string names;
        for (const StrategySpec &s : allStrategies())
            names += (names.empty() ? "" : " ") + s.name;
        std::fprintf(stderr,
                     "cais_bound: unknown strategy '%s' (one of: "
                     "%s)\n",
                     only_strategy.c_str(), names.c_str());
        return usage();
    }

    std::vector<Workload> workloads;
    std::string only_workload = params.getString("workload", "");
    for (Workload &w : allWorkloads())
        if (only_workload.empty() || w.name == only_workload)
            workloads.push_back(std::move(w));
    if (workloads.empty()) {
        std::fprintf(stderr, "cais_bound: unknown workload '%s'\n",
                     only_workload.c_str());
        return usage();
    }

    std::vector<SweepJob> jobs;
    std::vector<std::pair<std::string, std::string>> jobTags;
    for (const std::string &topo : topologies) {
        RunConfig cfg = makeCfg(topo);
        for (const StrategySpec &spec : strategies) {
            for (const Workload &w : workloads) {
                SweepJob j;
                j.spec = spec;
                j.cfg = cfg;
                j.workload = sweep_all && !topo.empty()
                                 ? w.name + "@" + topo
                                 : w.name;
                j.graph = [build = w.build, model]() {
                    return build(model);
                };
                jobs.push_back(std::move(j));
                jobTags.emplace_back(w.name, topo);
            }
        }
    }

    std::vector<RunResult> results = runSweep(jobs);

    std::vector<BoundRecord> records;
    std::size_t violations = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        BoundRecord rec;
        rec.strategy = jobs[i].spec.name;
        rec.workload = jobTags[i].first;
        rec.topology = jobTags[i].second;
        rec.r = results[i];
        rec.v8 = rec.r.makespan < rec.r.boundComposite;
        if (rec.v8)
            ++violations;
        records.push_back(std::move(rec));
    }

    if (want_json || params.has("json_out")) {
        JsonWriter w;
        w.beginObject();
        w.field("schema", boundSchemaVersion);
        w.field("totalViolations",
                static_cast<std::uint64_t>(violations));
        w.key("runs").beginArray();
        for (const BoundRecord &rec : records) {
            const RunResult &r = rec.r;
            w.beginObject();
            w.field("strategy", rec.strategy);
            w.field("workload", rec.workload);
            w.field("topology", rec.topology);
            w.field("makespan",
                    static_cast<std::uint64_t>(r.makespan));
            w.key("bound").beginObject()
                .field("composite", static_cast<std::uint64_t>(
                                        r.boundComposite))
                .field("smCompute", static_cast<std::uint64_t>(
                                        r.boundCompute))
                .field("hbm",
                       static_cast<std::uint64_t>(r.boundHbm))
                .field("linkSerialization",
                       static_cast<std::uint64_t>(r.boundLink))
                .field("mergeService", static_cast<std::uint64_t>(
                                           r.boundMerge))
                .field("criticalPath", static_cast<std::uint64_t>(
                                           r.boundCritPath))
                .field("binding", r.boundBinding)
                .endObject();
            w.field("ratio",
                    r.boundComposite
                        ? static_cast<double>(r.makespan) /
                              static_cast<double>(r.boundComposite)
                        : 0.0);
            w.field("v8Violation", rec.v8);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::string json_out = params.getString("json_out", "");
        if (!json_out.empty()) {
            std::FILE *f = std::fopen(json_out.c_str(), "w");
            if (!f) {
                std::fprintf(stderr,
                             "cais_bound: cannot write %s\n",
                             json_out.c_str());
                return 2;
            }
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
        }
        if (want_json)
            std::printf("%s\n", w.str().c_str());
    }
    if (!want_json) {
        for (const BoundRecord &rec : records) {
            const RunResult &r = rec.r;
            const double ratio =
                r.boundComposite
                    ? static_cast<double>(r.makespan) /
                          static_cast<double>(r.boundComposite)
                    : 0.0;
            const std::string where =
                rec.topology.empty()
                    ? rec.workload
                    : rec.workload + "@" + rec.topology;
            std::printf("%-14s %-18s makespan %10llu  bound %10llu  "
                        "ratio %5.2f  binding %-17s%s\n",
                        rec.strategy.c_str(), where.c_str(),
                        static_cast<unsigned long long>(r.makespan),
                        static_cast<unsigned long long>(
                            r.boundComposite),
                        ratio, r.boundBinding.c_str(),
                        rec.v8 ? "  V8-VIOLATION" : "");
        }
        std::printf("cais_bound: %zu run(s), %zu V8 violation(s)\n",
                    records.size(), violations);
    }
    return violations == 0 ? 0 : 1;
}
