/**
 * @file
 * cais-lint: determinism-hazard static analysis for the CAIS tree.
 *
 * A token-level analysis (a real lexer that strips comments, string
 * literals and preprocessor noise — not grep) that enforces the
 * determinism contract of DESIGN.md §6c. Rules:
 *
 *  - D1  range-for / iterator loops over std::unordered_map /
 *        std::unordered_set in src/ (iteration order leaks into
 *        events and stats);
 *  - D2  containers keyed on raw pointers (allocation-order
 *        nondeterminism);
 *  - D3  wall-clock time and unseeded randomness outside
 *        src/common/rng.* and the bench/ timing harnesses;
 *  - D4  mutable namespace-scope or function-static state outside an
 *        explicit whitelist;
 *  - D5  <cmath> / ceil / floor reintroduced into src/noc/ or
 *        src/gpu/ hot paths (use common/intmath.hh);
 *  - D6  std::function passed where an EventQueue callback
 *        (InlineEvent) is required;
 *  - D7  iteration over an unordered container *returned by a
 *        function* in src/ (the shape D1's variable pass misses);
 *  - D8  EventQueue schedule calls on a queue fetched from a
 *        looked-up component (`lookup(x).eq().schedule(...)`) —
 *        under the sharded event core (DESIGN.md §6f) that queue may
 *        belong to another shard domain, and a cross-shard schedule
 *        inside the lookahead window is a determinism violation the
 *        runtime can only catch when it actually fires;
 *  - D9  a method of a CAIS_OWNED_BY_DOMAIN class scheduling on a
 *        named queue handle that is not its own (`sinkEq->schedule`)
 *        outside a CAIS_CROSS_SHARD_CHANNEL function — the
 *        shard-ownership companion of D8's call-chain shape;
 *  - D10 a fabric-resident class (src/noc/, src/switchcompute/,
 *        src/gpu/, or the sharded event core) holding mutable
 *        members without a CAIS_OWNED_BY_DOMAIN declaration;
 *  - D11 a CAIS_SHARD_SHARED field accessed outside
 *        CAIS_CROSS_SHARD_CHANNEL code (shared cells are only
 *        coherent inside the sanctioned channels: the outbox merge
 *        and the safeHorizon-trimmed credit path).
 *
 * Any finding is suppressible at its site with
 *
 *     // cais-lint: allow(D4) -- one-line justification
 *
 * on the same line or alone on the line directly above. A
 * suppression without a justification (or naming an unknown rule)
 * does not suppress and is itself reported as rule X1.
 */

#ifndef CAIS_TOOLS_CAIS_LINT_LINT_HH
#define CAIS_TOOLS_CAIS_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace cais::lint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string file; ///< path relative to the repo root, '/'-separated
    int line = 0;
    std::string rule;    ///< "D1".."D11" or "X1"
    std::string message; ///< what was found
    std::string hint;    ///< one-line fix hint
};

/** Static description of one rule (for --list-rules and docs). */
struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *hint;
};

/** All rules the linter knows, in id order. */
const std::vector<RuleInfo> &ruleTable();

/** Tuning knobs of one lint run. */
struct Options
{
    /**
     * Path substrings exempt from rule D4 (the explicit whitelist of
     * files allowed to hold mutable namespace-scope state). Empty by
     * default: the tree uses inline suppressions instead, so every
     * exemption carries a visible justification.
     */
    std::vector<std::string> d4Whitelist;
};

/**
 * A lint run over an explicit set of (path, content) sources.
 *
 * Paths are interpreted relative to the repo root regardless of
 * where the files physically live, so tests can lint inline fixture
 * snippets under virtual paths like "src/fixture.cc".
 */
class Linter
{
  public:
    /** Queue one source file for analysis. */
    void addSource(std::string path, std::string content);

    /** Analyze all queued sources; findings sorted by (file, line, rule). */
    std::vector<Finding> run(const Options &opts = Options{});

  private:
    struct Source
    {
        std::string path;
        std::string content;
    };

    std::vector<Source> sources;
};

/** Serialize findings to the baseline format ("rule|file|line"). */
std::string writeBaseline(const std::vector<Finding> &findings);

/**
 * Serialize findings as a cais-lint-v1 JSON document: schema tag,
 * files scanned, per-rule counts over the full rule table, and one
 * record per finding. Deterministic byte-stable output (findings are
 * already sorted by Linter::run).
 */
std::string writeFindingsJson(const std::vector<Finding> &findings,
                              std::size_t files_scanned);

/**
 * Drop findings present in @p baseline_text (emitted by
 * writeBaseline; '#' comments and blank lines are ignored), leaving
 * only *new* findings. Returns the number of baseline entries that
 * matched nothing (stale entries, informational).
 */
int applyBaseline(std::vector<Finding> &findings,
                  const std::string &baseline_text);

/** "file:line: [rule] message (fix: hint)" */
std::string formatFinding(const Finding &f);

} // namespace cais::lint

#endif // CAIS_TOOLS_CAIS_LINT_LINT_HH
