#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>

#include "common/json.hh"

namespace cais::lint
{

namespace
{

// ------------------------------------------------------------------
// Lexer
// ------------------------------------------------------------------

enum class Tok
{
    ident,
    number,
    str,     ///< string or char literal (content dropped)
    punct,   ///< single- or multi-char operator ("::", "->" combined)
    include, ///< #include directive; text = header name without <> / ""
};

struct Token
{
    Tok kind;
    std::string text;
    int line;
};

/** One suppression comment, parsed from `// cais-lint: allow(...)`. */
struct Suppression
{
    int line = 0;
    bool ownLine = false; ///< nothing but the comment on its line
    bool valid = false;   ///< known rules + "--" justification present
    std::set<std::string> rules;
    std::string error; ///< why invalid (for the X1 finding)
};

struct LexedFile
{
    std::string path;
    std::vector<Token> toks;
    std::vector<Suppression> sups;
};

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : ruleTable())
        if (id == r.id)
            return true;
    return false;
}

/** Parse a comment body for the suppression grammar. */
void
parseComment(const std::string &body, int line, bool own_line,
             std::vector<Suppression> &out)
{
    std::size_t at = body.find("cais-lint:");
    if (at == std::string::npos)
        return;

    Suppression s;
    s.line = line;
    s.ownLine = own_line;

    std::size_t open = body.find("allow(", at);
    if (open == std::string::npos) {
        s.error = "expected 'allow(<rule,...>)' after 'cais-lint:'";
        out.push_back(std::move(s));
        return;
    }
    std::size_t close = body.find(')', open);
    if (close == std::string::npos) {
        s.error = "unterminated allow( list";
        out.push_back(std::move(s));
        return;
    }
    std::string list = body.substr(open + 6, close - open - 6);
    std::istringstream ss(list);
    std::string id;
    while (std::getline(ss, id, ',')) {
        while (!id.empty() && std::isspace(static_cast<unsigned char>(
                                  id.front())))
            id.erase(id.begin());
        while (!id.empty() && std::isspace(static_cast<unsigned char>(
                                  id.back())))
            id.pop_back();
        if (id.empty())
            continue;
        if (!knownRule(id)) {
            s.error = "unknown rule '" + id + "' in allow()";
            out.push_back(std::move(s));
            return;
        }
        s.rules.insert(id);
    }
    if (s.rules.empty()) {
        s.error = "empty allow() list";
        out.push_back(std::move(s));
        return;
    }
    if (body.find("--", close) == std::string::npos) {
        s.error = "missing '-- <justification>' after allow()";
        out.push_back(std::move(s));
        return;
    }
    s.valid = true;
    out.push_back(std::move(s));
}

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile
lex(const std::string &path, const std::string &src)
{
    LexedFile out;
    out.path = path;

    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();
    bool lineHasCode = false; // non-comment, non-ws content seen

    auto newline = [&] {
        ++line;
        lineHasCode = false;
    };

    while (i < n) {
        char c = src[i];

        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t e = src.find('\n', i);
            if (e == std::string::npos)
                e = n;
            parseComment(src.substr(i + 2, e - i - 2), line, !lineHasCode,
                         out.sups);
            i = e;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            int startLine = line;
            bool own = !lineHasCode;
            std::size_t e = src.find("*/", i + 2);
            if (e == std::string::npos)
                e = n;
            std::string body = src.substr(i + 2, e - i - 2);
            parseComment(body, startLine, own, out.sups);
            for (std::size_t k = i; k < e && k < n; ++k)
                if (src[k] == '\n')
                    newline();
            i = (e == n) ? n : e + 2;
            continue;
        }

        // Preprocessor directive: keep #include targets, drop the rest.
        if (c == '#' && !lineHasCode) {
            std::size_t e = i;
            while (e < n) {
                if (src[e] == '\n' && (e == 0 || src[e - 1] != '\\'))
                    break;
                ++e;
            }
            std::string pp = src.substr(i, e - i);
            std::size_t inc = pp.find("include");
            if (inc != std::string::npos) {
                std::size_t lo = pp.find_first_of("<\"", inc);
                if (lo != std::string::npos) {
                    char closeCh = pp[lo] == '<' ? '>' : '"';
                    std::size_t hi = pp.find(closeCh, lo + 1);
                    if (hi != std::string::npos)
                        out.toks.push_back({Tok::include,
                                            pp.substr(lo + 1, hi - lo - 1),
                                            line});
                }
            }
            for (std::size_t k = i; k < e; ++k)
                if (src[k] == '\n')
                    newline();
            i = e;
            continue;
        }

        lineHasCode = true;

        // Raw string literal.
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            std::string close = ")" + delim + "\"";
            std::size_t e = src.find(close, p);
            if (e == std::string::npos)
                e = n;
            else
                e += close.size();
            out.toks.push_back({Tok::str, "", line});
            for (std::size_t k = i; k < e && k < n; ++k)
                if (src[k] == '\n')
                    newline();
            i = e;
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char q = c;
            std::size_t e = i + 1;
            while (e < n && src[e] != q) {
                if (src[e] == '\\' && e + 1 < n)
                    ++e;
                if (src[e] == '\n')
                    newline();
                ++e;
            }
            out.toks.push_back({Tok::str, "", line});
            i = (e < n) ? e + 1 : n;
            continue;
        }

        if (identStart(c)) {
            std::size_t e = i;
            while (e < n && identChar(src[e]))
                ++e;
            out.toks.push_back({Tok::ident, src.substr(i, e - i), line});
            i = e;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t e = i;
            while (e < n && (identChar(src[e]) || src[e] == '.' ||
                             ((src[e] == '+' || src[e] == '-') && e > i &&
                              (src[e - 1] == 'e' || src[e - 1] == 'E'))))
                ++e;
            out.toks.push_back({Tok::number, src.substr(i, e - i), line});
            i = e;
            continue;
        }

        // Punctuation; combine only "::" and "->" (the two sequences
        // the rules must distinguish from ':' and '>').
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.toks.push_back({Tok::punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.toks.push_back({Tok::punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({Tok::punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ------------------------------------------------------------------
// Token helpers
// ------------------------------------------------------------------

bool
is(const Token &t, const char *text)
{
    return t.text == text;
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
pathContains(const std::string &path, const char *sub)
{
    return path.find(sub) != std::string::npos;
}

/**
 * Skip a balanced <...> template argument list starting at the '<'
 * at index @p i. Returns the index one past the matching '>', or
 * @p i itself when the sequence does not look like template
 * arguments (runaway comparison expression).
 */
std::size_t
skipTemplateArgs(const std::vector<Token> &ts, std::size_t i)
{
    if (i >= ts.size() || !is(ts[i], "<"))
        return i;
    int depth = 0;
    std::size_t k = i;
    std::size_t limit = std::min(ts.size(), i + 400);
    for (; k < limit; ++k) {
        const std::string &t = ts[k].text;
        if (t == "<")
            ++depth;
        else if (t == ">") {
            if (--depth == 0)
                return k + 1;
        } else if (t == ";" || t == "{" || t == "}") {
            break; // not a template argument list
        }
    }
    return i;
}

// ------------------------------------------------------------------
// Scope tracking (rules D9/D10/D11)
// ------------------------------------------------------------------

/** One brace scope of buildScopeMap's walk. */
struct ScopeFrame
{
    enum Kind
    {
        ns,    ///< namespace body
        cls,   ///< class / struct / union body
        fn,    ///< function body ("" name = lambda / control block)
        other, ///< enum body, brace init, ...
    };

    Kind kind = other;
    std::string name;      ///< class name or function name
    std::string qualifier; ///< Cls of an out-of-line `Ret Cls::fn(...)`
    int headLine = 0;
    int clsIndex = -1; ///< into ScopeMap::classes when kind == cls
};

/**
 * Per-file scope resolution for the shard-ownership rules: every
 * class/struct body found (with its CAIS_OWNED_BY_DOMAIN / data-member
 * facts for D10) and, per token, the innermost enclosing class and
 * named function (for D9/D11's "who is touching this" questions).
 * Out-of-line `Ret Cls::fn(...)` definitions resolve the class from
 * the qualifier; lambda and control-flow braces inherit the nearest
 * named enclosing function.
 */
struct ScopeMap
{
    struct Cls
    {
        std::string name;
        int headLine = 0;
        bool owned = false;     ///< body declares CAIS_OWNED_BY_DOMAIN
        bool hasMember = false; ///< body declares mutable data members
    };

    std::vector<Cls> classes;
    std::vector<std::string> encClass; ///< per token; "" at file scope
    std::vector<std::string> encFn;    ///< per token; "" outside functions
};

/** Keywords that look like a call head but never name a function. */
bool
isControlKeyword(const std::string &t)
{
    return t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "catch" || t == "return" || t == "sizeof" ||
           t == "alignof" || t == "decltype" || t == "noexcept" ||
           t == "constexpr" || t == "static_assert" || t == "assert";
}

/** Classify the '{' at @p open from its window [@p from, @p open). */
ScopeFrame
classifyOpenBrace(const std::vector<Token> &ts, std::size_t from,
                  std::size_t open)
{
    ScopeFrame fr;
    bool sawEnum = false, sawClassKw = false, sawParen = false;
    std::size_t firstParen = 0;

    for (std::size_t k = from; k < open; ++k) {
        const Token &t = ts[k];
        if (t.kind == Tok::ident) {
            // Template parameter lists may contain `class T`.
            if (is(t, "template") && k + 1 < open && is(ts[k + 1], "<")) {
                std::size_t e = skipTemplateArgs(ts, k + 1);
                if (e > k + 1) {
                    k = e - 1;
                    continue;
                }
            }
            if (is(t, "namespace")) {
                fr.kind = ScopeFrame::ns;
                return fr;
            }
            if (is(t, "enum"))
                sawEnum = true;
            if (!sawClassKw && !sawEnum && !sawParen &&
                (is(t, "class") || is(t, "struct") || is(t, "union"))) {
                sawClassKw = true;
                if (k + 1 < open && ts[k + 1].kind == Tok::ident) {
                    fr.name = ts[k + 1].text;
                    fr.headLine = ts[k + 1].line;
                }
            }
        } else if (is(t, "(") && !sawParen) {
            sawParen = true;
            firstParen = k;
        }
    }

    if (sawClassKw && !sawEnum) {
        fr.kind = ScopeFrame::cls;
        if (fr.headLine == 0)
            fr.headLine = ts[open].line;
        return fr;
    }
    if (!sawParen && !(open > from && is(ts[open - 1], ")")))
        return fr; // enum body, brace init, bare block: other

    fr.kind = ScopeFrame::fn;

    // Lambda introducer right before the body (or before its
    // parameter list): the body inherits the enclosing function.
    std::size_t b = open;
    while (b > from && (is(ts[b - 1], "mutable") ||
                        is(ts[b - 1], "noexcept") ||
                        is(ts[b - 1], "constexpr")))
        --b;
    if (b > from && is(ts[b - 1], "]"))
        return fr;
    if (b > from && is(ts[b - 1], ")")) {
        int depth = 0;
        for (std::size_t k = b; k-- > from;) {
            if (is(ts[k], ")"))
                ++depth;
            else if (is(ts[k], "(") && --depth == 0) {
                if (k > from && is(ts[k - 1], "]"))
                    return fr; // [...](args) { ... }
                break;
            }
        }
    }

    // Function name: the ident before the first '(' of the window
    // (the parameter list; ctor init lists come after it).
    if (sawParen && firstParen > from &&
        ts[firstParen - 1].kind == Tok::ident &&
        !isControlKeyword(ts[firstParen - 1].text)) {
        std::size_t nameIdx = firstParen - 1;
        fr.name = ts[nameIdx].text;
        std::size_t q = nameIdx;
        if (q > from && is(ts[q - 1], "~"))
            --q; // destructor: Cls::~Cls()
        if (q >= from + 2 && is(ts[q - 1], "::") &&
            ts[q - 2].kind == Tok::ident)
            fr.qualifier = ts[q - 2].text;
    }
    return fr;
}

/**
 * Classify one class-body statement [@p from, @p end): does it declare
 * the ownership marker, or a mutable data member? Methods (any
 * top-level '('), aliases, nested types, statics, and const members
 * are not mutable member state.
 */
void
classifyClassStmt(const std::vector<Token> &ts, std::size_t from,
                  std::size_t end, ScopeMap::Cls &c)
{
    // Strip access-specifier labels sharing the statement window.
    while (from + 1 < end && ts[from].kind == Tok::ident &&
           (is(ts[from], "public") || is(ts[from], "private") ||
            is(ts[from], "protected")) &&
           is(ts[from + 1], ":"))
        from += 2;

    static const std::set<std::string> nonMember = {
        "using",    "typedef", "friend", "static",        "template",
        "operator", "class",   "struct", "enum",          "union",
        "extern",   "virtual", "const",  "constexpr",     "constinit",
        "namespace"};

    int idents = 0;
    bool lastIsIdent = false;
    for (std::size_t j = from; j < end; ++j) {
        const Token &x = ts[j];
        if (x.kind == Tok::ident) {
            if (is(x, "CAIS_OWNED_BY_DOMAIN")) {
                c.owned = true;
                return;
            }
            if (nonMember.count(x.text))
                return;
            if (j + 1 < end && is(ts[j + 1], "<")) {
                std::size_t e = skipTemplateArgs(ts, j + 1);
                if (e > j + 1) {
                    ++idents;
                    lastIsIdent = false;
                    j = e - 1;
                    continue;
                }
            }
            ++idents;
            lastIsIdent = true;
            continue;
        }
        if (is(x, "="))
            break; // default member initializer
        if (is(x, "("))
            return; // method / ctor declaration
        lastIsIdent = false;
    }
    if (idents >= 2 && lastIsIdent)
        c.hasMember = true;
}

/** Walk one file's braces; see ScopeMap. */
ScopeMap
buildScopeMap(const LexedFile &f)
{
    const auto &ts = f.toks;
    ScopeMap sm;
    sm.encClass.resize(ts.size());
    sm.encFn.resize(ts.size());

    std::vector<ScopeFrame> stack;
    std::size_t declStart = 0;

    for (std::size_t i = 0; i < ts.size(); ++i) {
        // Resolve this token against the current stack.
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (sm.encFn[i].empty() && it->kind == ScopeFrame::fn &&
                !it->name.empty())
                sm.encFn[i] = it->name;
            if (sm.encClass[i].empty()) {
                if (it->kind == ScopeFrame::fn && !it->qualifier.empty())
                    sm.encClass[i] = it->qualifier;
                else if (it->kind == ScopeFrame::cls && !it->name.empty())
                    sm.encClass[i] = it->name;
            }
            if (!sm.encFn[i].empty() && !sm.encClass[i].empty())
                break;
        }

        const Token &t = ts[i];
        if (is(t, "{")) {
            ScopeFrame fr = classifyOpenBrace(ts, declStart, i);
            if (fr.kind == ScopeFrame::cls) {
                fr.clsIndex = static_cast<int>(sm.classes.size());
                sm.classes.push_back({fr.name, fr.headLine, false, false});
            }
            stack.push_back(std::move(fr));
            declStart = i + 1;
        } else if (is(t, "}")) {
            if (!stack.empty())
                stack.pop_back();
            declStart = i + 1;
        } else if (is(t, ";")) {
            if (!stack.empty() &&
                stack.back().kind == ScopeFrame::cls &&
                stack.back().clsIndex >= 0)
                classifyClassStmt(
                    ts, declStart, i,
                    sm.classes[static_cast<std::size_t>(
                        stack.back().clsIndex)]);
            declStart = i + 1;
        }
    }
    return sm;
}

/** The set of associative containers rule D2 inspects. */
bool
isAssocContainer(const std::string &t)
{
    return t == "map" || t == "multimap" || t == "set" || t == "multiset" ||
           t == "unordered_map" || t == "unordered_set" ||
           t == "unordered_multimap" || t == "unordered_multiset";
}

bool
isUnorderedContainer(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set" ||
           t == "unordered_multimap" || t == "unordered_multiset";
}

// ------------------------------------------------------------------
// Rule engine
// ------------------------------------------------------------------

struct Ctx
{
    const Options &opts;
    const std::set<std::string> &unorderedVars;
    const std::set<std::string> &unorderedFns;
    const std::set<std::string> &ownedClasses;
    const std::set<std::string> &channelFns;
    const std::set<std::string> &sharedFields;
    std::vector<Finding> &findings;
};

const RuleInfo &
ruleInfo(const char *id)
{
    for (const RuleInfo &r : ruleTable())
        if (std::string(id) == r.id)
            return r;
    static RuleInfo unknown{"??", "", ""};
    return unknown;
}

void
report(Ctx &cx, const std::string &file, int line, const char *rule,
       std::string message)
{
    const RuleInfo &info = ruleInfo(rule);
    cx.findings.push_back(
        {file, line, rule, std::move(message), info.hint});
}

/**
 * Collect names bound to unordered containers: type aliases in a
 * first pass, then variables/members whose declared type is an
 * unordered container or one of the aliases. Names are pooled
 * globally so a member declared in a header is recognized in the
 * matching .cc file.
 */
void
collectAliases(const LexedFile &f, std::set<std::string> &aliases)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        // using X = [std::]unordered_map<...>;
        if (ts[i].kind == Tok::ident && is(ts[i], "using") &&
            ts[i + 1].kind == Tok::ident && is(ts[i + 2], "=")) {
            std::size_t k = i + 3;
            if (k < ts.size() && is(ts[k], "std") && k + 1 < ts.size() &&
                is(ts[k + 1], "::"))
                k += 2;
            if (k < ts.size() && ts[k].kind == Tok::ident &&
                isUnorderedContainer(ts[k].text))
                aliases.insert(ts[i + 1].text);
        }
    }
}

void
collectUnorderedVars(const LexedFile &f, const std::set<std::string> &aliases,
                     std::set<std::string> &vars)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        bool unordered = isUnorderedContainer(ts[i].text) ||
                         aliases.count(ts[i].text) > 0;
        if (!unordered)
            continue;
        // Skip a "using X =" alias definition (collected already).
        if (i >= 2 && is(ts[i - 1], "=") && i >= 3 && is(ts[i - 3], "using"))
            continue;
        std::size_t k = i + 1;
        k = skipTemplateArgs(ts, k);
        // Optional reference/pointer declarators.
        while (k < ts.size() && (is(ts[k], "&") || is(ts[k], "*") ||
                                 is(ts[k], "const")))
            ++k;
        if (k < ts.size() && ts[k].kind == Tok::ident &&
            k + 1 < ts.size() &&
            (is(ts[k + 1], ";") || is(ts[k + 1], "=") ||
             is(ts[k + 1], "{")))
            vars.insert(ts[k].text);
    }
}

/**
 * Collect names of functions declared to *return* an unordered
 * container (or an alias of one): the declarator D1's variable pass
 * deliberately skips (a name followed by '(' is a function, not a
 * variable). Qualified definitions (`unordered_map<...> Foo::bar(`)
 * register under the unqualified name, matching call sites.
 */
void
collectUnorderedFns(const LexedFile &f,
                    const std::set<std::string> &aliases,
                    std::set<std::string> &fns)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        bool unordered = isUnorderedContainer(ts[i].text) ||
                         aliases.count(ts[i].text) > 0;
        if (!unordered)
            continue;
        std::size_t k = i + 1;
        k = skipTemplateArgs(ts, k);
        while (k < ts.size() && (is(ts[k], "&") || is(ts[k], "*") ||
                                 is(ts[k], "const")))
            ++k;
        // Declarator: idents separated by "::"; a '(' right after the
        // last ident makes it a function declaration/definition.
        std::string name;
        while (k < ts.size() && ts[k].kind == Tok::ident) {
            name = ts[k].text;
            if (k + 1 < ts.size() && is(ts[k + 1], "::"))
                k += 2;
            else {
                ++k;
                break;
            }
        }
        if (!name.empty() && k < ts.size() && is(ts[k], "("))
            fns.insert(name);
    }
}

/**
 * Collect names of functions declared CAIS_CROSS_SHARD_CHANNEL: the
 * ident before the declarator's '('. A destructor channel
 * (`CAIS_CROSS_SHARD_CHANNEL ~Cls();`) registers under the class
 * name, which is exactly how the scope walk names `Cls::~Cls()`
 * bodies. Names are pooled globally so a channel declared in a
 * header legalizes its out-of-line definition.
 */
void
collectChannelFns(const LexedFile &f, std::set<std::string> &fns)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident ||
            !is(ts[i], "CAIS_CROSS_SHARD_CHANNEL"))
            continue;
        for (std::size_t k = i + 1;
             k < ts.size() && k < i + 40; ++k) {
            if (is(ts[k], ";") || is(ts[k], "}"))
                break;
            if (is(ts[k], "(")) {
                if (k > i + 1 && ts[k - 1].kind == Tok::ident)
                    fns.insert(ts[k - 1].text);
                break;
            }
        }
    }
}

/**
 * Collect names of fields declared CAIS_SHARD_SHARED: the last ident
 * of the declarator before its initializer/terminator (template
 * arguments in the type contribute earlier idents, the member name is
 * always last).
 */
void
collectSharedFields(const LexedFile &f, std::set<std::string> &fields)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident || !is(ts[i], "CAIS_SHARD_SHARED"))
            continue;
        std::string name;
        for (std::size_t k = i + 1;
             k < ts.size() && k < i + 80; ++k) {
            if (is(ts[k], ";") || is(ts[k], "=") || is(ts[k], "{"))
                break;
            if (ts[k].kind == Tok::ident)
                name = ts[k].text;
        }
        if (!name.empty())
            fields.insert(name);
    }
}

/** D1: loops over unordered containers in src/. */
void
ruleD1(Ctx &cx, const LexedFile &f)
{
    if (!startsWith(f.path, "src/"))
        return;
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        // Range-for: for ( ... : <expr naming an unordered var> )
        if (ts[i].kind == Tok::ident && is(ts[i], "for") &&
            i + 1 < ts.size() && is(ts[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t k = i + 1; k < ts.size(); ++k) {
                if (is(ts[k], "("))
                    ++depth;
                else if (is(ts[k], ")")) {
                    if (--depth == 0) {
                        close = k;
                        break;
                    }
                } else if (is(ts[k], ":") && depth == 1 && colon == 0) {
                    colon = k;
                }
            }
            if (colon && close) {
                for (std::size_t k = colon + 1; k < close; ++k) {
                    if (ts[k].kind == Tok::ident &&
                        cx.unorderedVars.count(ts[k].text) &&
                        !(k + 1 < close && is(ts[k + 1], "("))) {
                        report(cx, f.path, ts[k].line, "D1",
                               "range-for over unordered container '" +
                                   ts[k].text + "'");
                        break;
                    }
                }
            }
        }
        // Iterator loop: <var>.begin() / cbegin() / rbegin().
        if (ts[i].kind == Tok::ident &&
            cx.unorderedVars.count(ts[i].text) && i + 2 < ts.size() &&
            (is(ts[i + 1], ".") || is(ts[i + 1], "->")) &&
            (is(ts[i + 2], "begin") || is(ts[i + 2], "cbegin") ||
             is(ts[i + 2], "rbegin")) &&
            i + 3 < ts.size() && is(ts[i + 3], "(")) {
            report(cx, f.path, ts[i].line, "D1",
                   "iteration over unordered container '" + ts[i].text +
                       "'");
        }
    }
}

/** D2: containers keyed on raw pointers. */
void
ruleD2(Ctx &cx, const LexedFile &f)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        bool container = isAssocContainer(ts[i].text);
        bool less = ts[i].text == "less";
        if (!container && !less)
            continue;
        if (i > 0 && (is(ts[i - 1], ".") || is(ts[i - 1], "->")))
            continue; // member access, not a type
        if (i + 1 >= ts.size() || !is(ts[i + 1], "<"))
            continue;
        // First top-level template argument.
        int depth = 0;
        std::size_t argEnd = 0;
        for (std::size_t k = i + 1; k < std::min(ts.size(), i + 400); ++k) {
            const std::string &t = ts[k].text;
            if (t == "<")
                ++depth;
            else if (t == ">") {
                if (--depth == 0) {
                    argEnd = k;
                    break;
                }
            } else if (t == "," && depth == 1) {
                argEnd = k;
                break;
            } else if (t == ";" || t == "{") {
                break;
            }
        }
        if (!argEnd)
            continue;
        // Pointer key: argument's last declarator token is '*'.
        std::size_t last = argEnd - 1;
        while (last > i + 1 && is(ts[last], "const"))
            --last;
        if (is(ts[last], "*")) {
            report(cx, f.path, ts[i].line, "D2",
                   (less ? std::string("std::less")
                         : "std::" + ts[i].text) +
                       " keyed on a raw pointer");
        }
    }
}

/** D3: wall-clock / unseeded randomness. */
void
ruleD3(Ctx &cx, const LexedFile &f)
{
    if (startsWith(f.path, "bench/") ||
        pathContains(f.path, "common/rng."))
        return;
    static const std::set<std::string> calls = {"rand", "srand", "time",
                                               "clock", "timespec_get"};
    static const std::set<std::string> names = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock"};
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        if (names.count(ts[i].text)) {
            report(cx, f.path, ts[i].line, "D3",
                   "nondeterministic source 'std::" + ts[i].text + "'");
            continue;
        }
        if (!calls.count(ts[i].text))
            continue;
        if (i + 1 >= ts.size() || !is(ts[i + 1], "("))
            continue;
        if (i > 0) {
            const std::string &prev = ts[i - 1].text;
            if (prev == "." || prev == "->")
                continue; // member call, e.g. trace.time(...)
            if (prev == "::" &&
                !(i >= 2 && is(ts[i - 2], "std")))
                continue; // Foo::time(...), not the libc call
        }
        report(cx, f.path, ts[i].line, "D3",
               "wall-clock / unseeded randomness call '" + ts[i].text +
                   "('");
    }
}

/** Scope kinds for D4's brace tracking. */
enum class Scope
{
    ns,    ///< namespace (or file scope)
    cls,   ///< class / struct / union / enum body
    func,  ///< function or lambda body
    other, ///< brace-init and anything else
};

/** D4: mutable namespace-scope / function-static state. */
void
ruleD4(Ctx &cx, const LexedFile &f)
{
    for (const std::string &w : cx.opts.d4Whitelist)
        if (pathContains(f.path, w.c_str()))
            return;

    const auto &ts = f.toks;
    std::vector<Scope> scopes; // implicit file scope == ns
    std::size_t declStart = 0; // window since last ; { }

    auto windowHas = [&](std::size_t from, std::size_t to,
                         const char *text) {
        for (std::size_t k = from; k < to; ++k)
            if (is(ts[k], text))
                return true;
        return false;
    };
    auto inFunc = [&] {
        for (Scope s : scopes)
            if (s == Scope::func)
                return true;
        return false;
    };
    auto atNamespaceScope = [&] {
        for (Scope s : scopes)
            if (s != Scope::ns)
                return false;
        return true;
    };

    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];

        if (is(t, "{")) {
            Scope kind = Scope::other;
            if (windowHas(declStart, i, "namespace"))
                kind = Scope::ns;
            else if (windowHas(declStart, i, "class") ||
                     windowHas(declStart, i, "struct") ||
                     windowHas(declStart, i, "union") ||
                     windowHas(declStart, i, "enum"))
                kind = Scope::cls;
            else if (windowHas(declStart, i, "(") ||
                     (i > 0 && is(ts[i - 1], ")")))
                kind = Scope::func;
            else if (inFunc())
                kind = Scope::other;
            else if (windowHas(declStart, i, "="))
                kind = Scope::other; // brace init of a global
            scopes.push_back(kind);
            declStart = i + 1;
            continue;
        }
        if (is(t, "}")) {
            if (!scopes.empty())
                scopes.pop_back();
            declStart = i + 1;
            continue;
        }
        if (is(t, ";")) {
            declStart = i + 1;
            continue;
        }

        bool isStatic = t.kind == Tok::ident && is(t, "static");
        bool isTls = t.kind == Tok::ident && is(t, "thread_local");
        if (!isStatic && !isTls)
            continue;

        // Examine the declaration from here to its first terminator.
        std::size_t end = i + 1;
        bool sawConst = false, sawParen = false;
        for (; end < ts.size(); ++end) {
            const std::string &x = ts[end].text;
            if (x == ";" || x == "=" || x == "{")
                break;
            if (x == "const" || x == "constexpr" || x == "constinit")
                sawConst = true;
            if (x == "(") {
                sawParen = true;
                break;
            }
            if (x == "thread_local" || x == "static")
                continue;
        }
        if (sawConst || sawParen)
            continue; // immutable, or a function declaration

        if (inFunc()) {
            report(cx, f.path, t.line, "D4",
                   isTls ? "function-scope thread_local mutable state"
                         : "function-static mutable state");
        } else if (isTls) {
            report(cx, f.path, t.line, "D4",
                   "namespace-scope thread_local mutable state");
        } else {
            report(cx, f.path, t.line, "D4",
                   atNamespaceScope()
                       ? "namespace-scope mutable static state"
                       : "mutable static data member");
        }
        i = end > i ? end - 1 : i;
    }

    // Namespace-scope non-static mutable globals (e.g. a bare
    // `std::atomic<int> g;` in an anonymous namespace).
    scopes.clear();
    declStart = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (is(t, "{") || is(t, "}") || is(t, ";")) {
            bool close = is(t, "}");
            bool open = is(t, "{");
            bool nsScope = true;
            for (Scope s : scopes)
                if (s != Scope::ns)
                    nsScope = false;
            if ((is(t, ";") || open) && nsScope && i > declStart) {
                // Classify the window [declStart, i).
                bool skip = false, hasConst = false, hasEq = false;
                int idents = 0;
                static const std::set<std::string> skipKw = {
                    "using",   "typedef", "class",    "struct",
                    "enum",    "union",   "template", "friend",
                    "extern",  "static",  "namespace", "static_assert",
                    "thread_local", "operator", "return"};
                for (std::size_t k = declStart; k < i; ++k) {
                    const Token &x = ts[k];
                    if (x.kind == Tok::ident) {
                        if (skipKw.count(x.text)) {
                            skip = true;
                            break;
                        }
                        if (x.text == "const" || x.text == "constexpr" ||
                            x.text == "constinit")
                            hasConst = true;
                        else
                            ++idents;
                    } else if (x.text == "(") {
                        skip = true; // function declaration/definition
                        break;
                    } else if (x.text == "=") {
                        hasEq = true;
                    } else if (x.kind == Tok::include) {
                        skip = true;
                        break;
                    }
                }
                bool braceInit = open && !skip && idents >= 2 && !hasEq;
                bool decl = (is(t, ";") || braceInit) && !skip &&
                            !hasConst && idents >= 2;
                if (decl) {
                    report(cx, f.path, ts[declStart].line, "D4",
                           "namespace-scope mutable state");
                }
            }
            if (open) {
                Scope kind = Scope::other;
                auto has = [&](const char *w) {
                    for (std::size_t k = declStart; k < i; ++k)
                        if (is(ts[k], w))
                            return true;
                    return false;
                };
                if (has("namespace"))
                    kind = Scope::ns;
                else if (has("class") || has("struct") || has("union") ||
                         has("enum"))
                    kind = Scope::cls;
                else if (has("(") || (i > 0 && is(ts[i - 1], ")")))
                    kind = Scope::func;
                scopes.push_back(kind);
            } else if (close && !scopes.empty()) {
                scopes.pop_back();
            }
            declStart = i + 1;
        }
    }
}

/** D5: <cmath> / ceil / floor in src/noc/ or src/gpu/ hot paths. */
void
ruleD5(Ctx &cx, const LexedFile &f)
{
    if (!startsWith(f.path, "src/noc/") && !startsWith(f.path, "src/gpu/"))
        return;
    static const std::set<std::string> fns = {"ceil",  "floor", "round",
                                             "lround", "fmod",  "pow",
                                             "ceilf", "floorf"};
    const auto &ts = f.toks;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind == Tok::include &&
            (t.text == "cmath" || t.text == "math.h")) {
            report(cx, f.path, t.line, "D5",
                   "#include <" + t.text + "> in a hot-path directory");
            continue;
        }
        if (t.kind != Tok::ident || !fns.count(t.text))
            continue;
        if (i + 1 >= ts.size() || !is(ts[i + 1], "("))
            continue;
        if (i > 0) {
            const std::string &prev = ts[i - 1].text;
            if (prev == "." || prev == "->")
                continue;
            if (prev == "::" && !(i >= 2 && is(ts[i - 2], "std")))
                continue;
        }
        report(cx, f.path, t.line, "D5",
               "floating-point '" + t.text + "(' in a hot path");
    }
}

/** D7: loops over unordered containers *returned by functions* in
 *  src/ (the declarator shape D1's variable pass cannot see). */
void
ruleD7(Ctx &cx, const LexedFile &f)
{
    if (!startsWith(f.path, "src/"))
        return;
    const auto &ts = f.toks;

    auto isFnCall = [&](std::size_t k) {
        return ts[k].kind == Tok::ident &&
               cx.unorderedFns.count(ts[k].text) > 0 &&
               k + 1 < ts.size() && is(ts[k + 1], "(");
    };

    for (std::size_t i = 0; i < ts.size(); ++i) {
        // Range-for: for ( ... : <call returning unordered> ).
        if (ts[i].kind == Tok::ident && is(ts[i], "for") &&
            i + 1 < ts.size() && is(ts[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t k = i + 1; k < ts.size(); ++k) {
                if (is(ts[k], "("))
                    ++depth;
                else if (is(ts[k], ")")) {
                    if (--depth == 0) {
                        close = k;
                        break;
                    }
                } else if (is(ts[k], ":") && depth == 1 && colon == 0) {
                    colon = k;
                }
            }
            if (colon && close) {
                for (std::size_t k = colon + 1; k < close; ++k) {
                    if (isFnCall(k)) {
                        report(cx, f.path, ts[k].line, "D7",
                               "range-for over unordered container "
                               "returned by '" +
                                   ts[k].text + "('");
                        break;
                    }
                }
            }
        }
        // Iterator access on the call result: fn(...).begin().
        if (isFnCall(i)) {
            int depth = 0;
            std::size_t k = i + 1;
            for (; k < ts.size(); ++k) {
                if (is(ts[k], "("))
                    ++depth;
                else if (is(ts[k], ")")) {
                    if (--depth == 0) {
                        ++k;
                        break;
                    }
                } else if (is(ts[k], ";")) {
                    break;
                }
            }
            if (k + 2 < ts.size() &&
                (is(ts[k], ".") || is(ts[k], "->")) &&
                (is(ts[k + 1], "begin") || is(ts[k + 1], "cbegin") ||
                 is(ts[k + 1], "rbegin")) &&
                is(ts[k + 2], "(")) {
                report(cx, f.path, ts[i].line, "D7",
                       "iteration over unordered container returned "
                       "by '" +
                           ts[i].text + "('");
            }
        }
    }
}

/** D6: std::function passed to EventQueue::schedule*. */
void
ruleD6(Ctx &cx, const LexedFile &f)
{
    const auto &ts = f.toks;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        const std::string &name = ts[i].text;
        if (name != "schedule" && name != "scheduleAfter" &&
            name != "scheduleAt")
            continue;
        if (!is(ts[i + 1], "("))
            continue;
        int depth = 0;
        for (std::size_t k = i + 1; k < ts.size(); ++k) {
            if (is(ts[k], "("))
                ++depth;
            else if (is(ts[k], ")")) {
                if (--depth == 0)
                    break;
            } else if (ts[k].kind == Tok::ident &&
                       is(ts[k], "function")) {
                report(cx, f.path, ts[k].line, "D6",
                       "std::function built inside an EventQueue "
                       "schedule call");
                break;
            } else if (is(ts[k], ";")) {
                break;
            }
        }
    }
}

/** D8: scheduling onto an event queue fetched from a *looked-up*
 *  component. Token shape `...).eq().schedule(` — the receiver of
 *  the queue getter is itself a call result, so the caller reached
 *  across the component graph to grab somebody else's queue. Under
 *  the sharded event core that queue can live on another shard
 *  domain; a direct schedule there skips the outbox/lookahead
 *  machinery and only panics at runtime when the violation actually
 *  fires. Plain-ident receivers (`sw.eventQueue().scheduleAfter(...)`
 *  inside a helper that owns `sw`) stay legal: the component is
 *  scheduling on its own queue. */
void
ruleD8(Ctx &cx, const LexedFile &f)
{
    if (!startsWith(f.path, "src/"))
        return;
    const auto &ts = f.toks;
    for (std::size_t i = 6; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        const std::string &name = ts[i].text;
        if (name != "schedule" && name != "scheduleAfter" &&
            name != "scheduleAt")
            continue;
        if (!is(ts[i + 1], "("))
            continue;
        // Receiver chain: <call result> (.|->) (eq|eventQueue) ( ) . schedule
        if (!(is(ts[i - 1], ".") || is(ts[i - 1], "->")))
            continue;
        if (!is(ts[i - 2], ")") || !is(ts[i - 3], "("))
            continue;
        if (ts[i - 4].kind != Tok::ident ||
            (ts[i - 4].text != "eq" && ts[i - 4].text != "eventQueue"))
            continue;
        if (!(is(ts[i - 5], ".") || is(ts[i - 5], "->")))
            continue;
        if (!is(ts[i - 6], ")"))
            continue; // plain-ident receiver: own-queue schedule
        report(cx, f.path, ts[i].line, "D8",
               "'" + name + "(' on an event queue fetched from a "
               "looked-up component (cross-shard-domain hazard)");
    }
}

/** D9: a method of a CAIS_OWNED_BY_DOMAIN class scheduling on a
 *  queue that is not its own (`sinkEq->schedule(...)`, `shq.shard(1)`
 *  fetched into a named handle, ...) outside CAIS_CROSS_SHARD_CHANNEL
 *  code. The component's own queue is by convention the member or
 *  context handle named `eq` / `eventQueue`; anything else reached
 *  from an owned class is somebody else's domain, and only declared
 *  channels may talk across domains (DESIGN.md §6f). Call-result
 *  receivers (`lookup(x).eq().schedule(`) are rule D8's shape. */
void
ruleD9(Ctx &cx, const LexedFile &f, const ScopeMap &sm)
{
    if (!startsWith(f.path, "src/"))
        return;
    const auto &ts = f.toks;
    for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident)
            continue;
        const std::string &name = ts[i].text;
        if (name != "schedule" && name != "scheduleAfter" &&
            name != "scheduleAt")
            continue;
        if (!is(ts[i + 1], "("))
            continue;
        if (!(is(ts[i - 1], ".") || is(ts[i - 1], "->")))
            continue;
        std::string recv;
        if (ts[i - 2].kind == Tok::ident) {
            recv = ts[i - 2].text;
        } else if (is(ts[i - 2], "]")) {
            // Indexed receiver: queues[s]->schedule(...).
            int depth = 0;
            for (std::size_t k = i - 1; k-- > 0;) {
                if (is(ts[k], "]"))
                    ++depth;
                else if (is(ts[k], "[") && --depth == 0) {
                    if (k > 0 && ts[k - 1].kind == Tok::ident)
                        recv = ts[k - 1].text + "[]";
                    break;
                }
                if (k == 0)
                    break;
            }
        }
        if (recv.empty())
            continue; // call-result receivers are rule D8's shape
        std::string base = recv.substr(0, recv.find('['));
        if (base == "eq" || base == "eventQueue" || base == "this")
            continue;
        const std::string &cls = sm.encClass[i];
        if (cls.empty() || !cx.ownedClasses.count(cls))
            continue;
        if (!sm.encFn[i].empty() && cx.channelFns.count(sm.encFn[i]))
            continue;
        report(cx, f.path, ts[i].line, "D9",
               "'" + name + "(' on queue '" + recv +
                   "' from domain-owned class '" + cls +
                   "' outside a cross-shard channel");
    }
}

/** D10: a fabric-resident class (src/noc/, src/switchcompute/,
 *  src/gpu/, or the sharded event core) holding mutable members with
 *  no CAIS_OWNED_BY_DOMAIN declaration — nothing says which shard
 *  domain may touch it, so the ownership audit has a blind spot. */
void
ruleD10(Ctx &cx, const LexedFile &f, const ScopeMap &sm)
{
    bool inScope = startsWith(f.path, "src/noc/") ||
                   startsWith(f.path, "src/switchcompute/") ||
                   startsWith(f.path, "src/gpu/") ||
                   pathContains(f.path, "common/sharded_event_queue");
    if (!inScope)
        return;
    for (const ScopeMap::Cls &c : sm.classes) {
        if (c.name.empty() || !c.hasMember || c.owned)
            continue;
        report(cx, f.path, c.headLine, "D10",
               "class '" + c.name +
                   "' holds mutable members but declares no owning "
                   "shard domain (CAIS_OWNED_BY_DOMAIN)");
    }
}

/** D11: a CAIS_SHARD_SHARED field touched outside
 *  CAIS_CROSS_SHARD_CHANNEL code. Shared cells (credit batches, the
 *  worker-barrier counters) are only coherent inside the sanctioned
 *  channels — the outbox merge and the safeHorizon-trimmed credit
 *  path; any other access races the window loop. */
void
ruleD11(Ctx &cx, const LexedFile &f, const ScopeMap &sm)
{
    if (!startsWith(f.path, "src/"))
        return;
    const auto &ts = f.toks;
    bool declWindow = false; // window carries the CAIS_SHARD_SHARED marker
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (is(t, ";") || is(t, "{") || is(t, "}")) {
            declWindow = false;
            continue;
        }
        if (t.kind != Tok::ident)
            continue;
        if (is(t, "CAIS_SHARD_SHARED")) {
            declWindow = true;
            continue;
        }
        if (!cx.sharedFields.count(t.text))
            continue;
        if (declWindow)
            continue; // the declaration itself
        if (i + 1 < ts.size() && is(ts[i + 1], "("))
            continue; // ctor init list / same-named call
        if (!sm.encFn[i].empty() && cx.channelFns.count(sm.encFn[i]))
            continue;
        report(cx, f.path, t.line, "D11",
               "shard-shared field '" + t.text +
                   "' accessed outside a cross-shard channel");
    }
}

/** True for a number token spelling a floating-point literal. */
bool
floatLiteral(const std::string &text)
{
    if (text.size() > 1 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X'))
        return false; // hex: 'e'/'E' are digits, '.' cannot appear
    if (text.find('.') != std::string::npos)
        return true;
    return text.find('e') != std::string::npos ||
           text.find('E') != std::string::npos;
}

/** D12: floating-point arithmetic funneled into a cycle-typed value
 *  in a hot-path directory — `static_cast<Cycle>(...)` whose
 *  argument mentions double/float or a floating literal. Cycle math
 *  must go through common/intmath.hh (ceilDiv, SerDivider) so event
 *  times stay exact across platforms and FP-contraction settings. */
void
ruleD12(Ctx &cx, const LexedFile &f)
{
    if (!startsWith(f.path, "src/noc/") &&
        !startsWith(f.path, "src/gpu/") &&
        !startsWith(f.path, "src/switchcompute/"))
        return;
    const auto &ts = f.toks;
    for (std::size_t i = 0; i + 4 < ts.size(); ++i) {
        if (ts[i].kind != Tok::ident || ts[i].text != "static_cast" ||
            !is(ts[i + 1], "<") || ts[i + 2].kind != Tok::ident ||
            ts[i + 2].text != "Cycle" || !is(ts[i + 3], ">") ||
            !is(ts[i + 4], "("))
            continue;
        // Scan the cast argument for floating-point content.
        int depth = 1;
        std::string culprit;
        for (std::size_t j = i + 5; j < ts.size() && depth > 0; ++j) {
            if (is(ts[j], "("))
                ++depth;
            else if (is(ts[j], ")"))
                --depth;
            else if (ts[j].kind == Tok::ident &&
                     (ts[j].text == "double" || ts[j].text == "float"))
                culprit = ts[j].text;
            else if (ts[j].kind == Tok::number &&
                     floatLiteral(ts[j].text) && culprit.empty())
                culprit = ts[j].text;
        }
        if (culprit.empty())
            continue;
        report(cx, f.path, ts[i].line, "D12",
               "static_cast<Cycle>(...) over floating-point '" +
                   culprit + "' in a hot path");
    }
}

/** Drop findings covered by a valid suppression; report bad ones. */
void
applySuppressions(const LexedFile &f, std::vector<Finding> &all)
{
    // Lines that carry code tokens, sorted. An own-line suppression
    // covers the next such line, so a comment block may continue
    // between the allow() and the statement it guards.
    std::vector<int> codeLines;
    codeLines.reserve(f.toks.size());
    for (const Token &t : f.toks)
        codeLines.push_back(t.line);
    std::sort(codeLines.begin(), codeLines.end());
    codeLines.erase(std::unique(codeLines.begin(), codeLines.end()),
                    codeLines.end());
    auto nextCodeLine = [&](int line) {
        auto it = std::upper_bound(codeLines.begin(), codeLines.end(),
                                   line);
        return it == codeLines.end() ? -1 : *it;
    };

    for (const Suppression &s : f.sups) {
        if (!s.valid) {
            all.push_back({f.path, s.line, "X1",
                           "malformed cais-lint suppression: " + s.error,
                           "use: // cais-lint: allow(<rule>) -- "
                           "<justification>"});
            continue;
        }
        all.erase(std::remove_if(all.begin(), all.end(),
                                 [&](const Finding &fd) {
                                     if (fd.file != f.path ||
                                         !s.rules.count(fd.rule))
                                         return false;
                                     if (fd.line == s.line)
                                         return true;
                                     return s.ownLine &&
                                            fd.line ==
                                                nextCodeLine(s.line);
                                 }),
                  all.end());
    }
}

} // namespace

// ------------------------------------------------------------------
// Public API
// ------------------------------------------------------------------

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
        {"D1",
         "range-for / iterator loop over std::unordered_map or "
         "std::unordered_set in src/",
         "iterate a deterministic structure (std::map, sorted vector, "
         "or an index array) instead"},
        {"D2", "associative container keyed on a raw pointer",
         "key on a stable id (port index, packet id) instead of an "
         "allocation-ordered address"},
        {"D3",
         "wall-clock time or unseeded randomness outside "
         "src/common/rng.* and bench/",
         "draw from cais::Rng seeded via RunConfig::seed"},
        {"D4",
         "mutable namespace-scope or function-static state outside "
         "the whitelist",
         "move the state into a simulation object owned by System / "
         "the run"},
        {"D5", "<cmath> / ceil / floor in src/noc/ or src/gpu/",
         "use common/intmath.hh (ceilDiv, SerDivider) for exact "
         "integer math"},
        {"D6", "std::function used as an EventQueue callback",
         "pass the lambda directly; EventQueue::Callback is "
         "InlineEvent (no heap, no type erasure overhead)"},
        {"D7",
         "iteration over an unordered container returned by a "
         "function in src/ (model code feeding simulation state)",
         "return a std::map / sorted vector, or sort the result "
         "before iterating"},
        {"D8",
         "EventQueue schedule on a queue fetched from a looked-up "
         "component (cross-shard-domain hazard under the sharded "
         "event core)",
         "schedule on your own queue and let links/mailboxes carry "
         "work across components; cross-shard schedules must clear "
         "the conservative lookahead (DESIGN.md §6f)"},
        {"D9",
         "schedule call on another component's event queue from a "
         "CAIS_OWNED_BY_DOMAIN class outside a declared cross-shard "
         "channel",
         "deliver through a CreditLink / the sharded outbox, or mark "
         "the function CAIS_CROSS_SHARD_CHANNEL with a determinism "
         "argument (DESIGN.md §6f)"},
        {"D10",
         "mutable member state in a fabric-resident class "
         "(src/noc/, src/switchcompute/, src/gpu/, sharded event "
         "core) with no CAIS_OWNED_BY_DOMAIN declaration",
         "declare the owning shard domain with "
         "CAIS_OWNED_BY_DOMAIN(...) from common/types.hh so the "
         "ownership audit covers the class"},
        {"D11",
         "CAIS_SHARD_SHARED field accessed outside "
         "CAIS_CROSS_SHARD_CHANNEL code",
         "touch shared cells only from the sanctioned cross-shard "
         "channels (outbox merge, safeHorizon-trimmed credit "
         "returns)"},
        {"D12",
         "static_cast<Cycle>(...) over floating-point operands in "
         "src/noc/, src/gpu/ or src/switchcompute/ hot paths",
         "compute cycle values with common/intmath.hh (ceilDiv, "
         "SerDivider) so event times stay exact; truncating a double "
         "ties determinism to FP rounding"},
        {"X1", "malformed cais-lint suppression comment",
         "use: // cais-lint: allow(<rule>) -- <justification>"},
    };
    return table;
}

void
Linter::addSource(std::string path, std::string content)
{
    // Normalize path separators so rules and baselines are
    // platform-independent.
    for (char &c : path)
        if (c == '\\')
            c = '/';
    sources.push_back({std::move(path), std::move(content)});
}

std::vector<Finding>
Linter::run(const Options &opts)
{
    std::vector<LexedFile> lexed;
    lexed.reserve(sources.size());
    for (const Source &s : sources)
        lexed.push_back(lex(s.path, s.content));

    // Cross-file name pools for D1/D7.
    std::set<std::string> aliases, unorderedVars, unorderedFns;
    for (const LexedFile &f : lexed)
        collectAliases(f, aliases);
    for (const LexedFile &f : lexed) {
        collectUnorderedVars(f, aliases, unorderedVars);
        collectUnorderedFns(f, aliases, unorderedFns);
    }

    // Cross-file pools and per-file scope maps for D9/D10/D11.
    std::set<std::string> ownedClasses, channelFns, sharedFields;
    std::vector<ScopeMap> maps;
    maps.reserve(lexed.size());
    for (const LexedFile &f : lexed) {
        collectChannelFns(f, channelFns);
        collectSharedFields(f, sharedFields);
        maps.push_back(buildScopeMap(f));
        for (const ScopeMap::Cls &c : maps.back().classes)
            if (c.owned && !c.name.empty())
                ownedClasses.insert(c.name);
    }

    std::vector<Finding> findings;
    for (std::size_t fi = 0; fi < lexed.size(); ++fi) {
        const LexedFile &f = lexed[fi];
        std::vector<Finding> local;
        Ctx fcx{opts,       unorderedVars, unorderedFns, ownedClasses,
                channelFns, sharedFields,  local};
        ruleD1(fcx, f);
        ruleD2(fcx, f);
        ruleD3(fcx, f);
        ruleD4(fcx, f);
        ruleD5(fcx, f);
        ruleD6(fcx, f);
        ruleD7(fcx, f);
        ruleD8(fcx, f);
        ruleD9(fcx, f, maps[fi]);
        ruleD10(fcx, f, maps[fi]);
        ruleD11(fcx, f, maps[fi]);
        ruleD12(fcx, f);
        applySuppressions(f, local);
        findings.insert(findings.end(),
                        std::make_move_iterator(local.begin()),
                        std::make_move_iterator(local.end()));
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::string
writeBaseline(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "# cais-lint baseline: one accepted finding per line,\n"
           "# format rule|file|line. Regenerate with --write-baseline.\n";
    for (const Finding &f : findings)
        out << f.rule << '|' << f.file << '|' << f.line << '\n';
    return out.str();
}

std::string
writeFindingsJson(const std::vector<Finding> &findings,
                  std::size_t files_scanned)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "cais-lint-v1");
    w.field("filesScanned", static_cast<std::uint64_t>(files_scanned));
    w.field("totalFindings",
            static_cast<std::uint64_t>(findings.size()));
    w.key("counts").beginObject();
    for (const RuleInfo &r : ruleTable()) {
        int n = static_cast<int>(std::count_if(
            findings.begin(), findings.end(),
            [&](const Finding &f) { return f.rule == r.id; }));
        w.field(r.id, n);
    }
    w.endObject();
    w.key("findings").beginArray();
    for (const Finding &f : findings) {
        w.beginObject();
        w.field("file", f.file);
        w.field("line", f.line);
        w.field("rule", f.rule);
        w.field("message", f.message);
        w.field("hint", f.hint);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

int
applyBaseline(std::vector<Finding> &findings,
              const std::string &baseline_text)
{
    std::set<std::string> keys;
    std::istringstream in(baseline_text);
    std::string line;
    while (std::getline(in, line)) {
        while (!line.empty() &&
               std::isspace(static_cast<unsigned char>(line.back())))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    std::set<std::string> used;
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding &f) {
                                      std::string key =
                                          f.rule + "|" + f.file + "|" +
                                          std::to_string(f.line);
                                      if (!keys.count(key))
                                          return false;
                                      used.insert(key);
                                      return true;
                                  }),
                   findings.end());
    return static_cast<int>(keys.size() - used.size());
}

std::string
formatFinding(const Finding &f)
{
    std::string s = f.file + ":" + std::to_string(f.line) + ": [" +
                    f.rule + "] " + f.message;
    if (!f.hint.empty())
        s += " (fix: " + f.hint + ")";
    return s;
}

} // namespace cais::lint
