/**
 * @file
 * cais-lint command-line driver.
 *
 *   cais_lint [--root DIR] [--baseline FILE] [--write-baseline FILE]
 *             [--d4-allow SUBSTR]... [--json] [--json-out FILE]
 *             [--list-rules] [paths...]
 *
 * With no paths, lints src/, bench/ and tests/ under --root (default:
 * the current directory). --json replaces the text report on stdout
 * with a cais-lint-v1 JSON document; --json-out writes the same
 * document to FILE while keeping the text report (for CI artifact
 * upload). Exit status is the same in all output modes and is the
 * machine-readable verdict: 0 clean, 1 findings, 2 usage or I/O
 * error.
 */

#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace cais::lint;

namespace
{

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp" ||
           ext == ".h";
}

/** Collect lintable files under @p p (file or directory), sorted. */
bool
collect(const fs::path &p, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
        out.push_back(p);
        return true;
    }
    if (!fs::is_directory(p, ec)) {
        std::fprintf(stderr, "cais_lint: no such file or directory: %s\n",
                     p.string().c_str());
        return false;
    }
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
        if (ec)
            break;
        if (it->is_regular_file(ec) && lintableFile(it->path()))
            out.push_back(it->path());
    }
    return true;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--baseline FILE] [--write-baseline FILE]\n"
        "          [--d4-allow SUBSTR]... [--json] [--json-out FILE]\n"
        "          [--list-rules] [paths...]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::string baselinePath, writeBaselinePath, jsonOutPath;
    bool jsonStdout = false;
    std::vector<std::string> paths;
    Options opts;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto nextArg = [&](std::string &dst) {
            if (i + 1 >= argc)
                return false;
            dst = argv[++i];
            return true;
        };
        if (a == "--list-rules") {
            for (const RuleInfo &r : ruleTable())
                std::printf("%s  %s\n    fix: %s\n", r.id, r.summary,
                            r.hint);
            return 0;
        } else if (a == "--root") {
            std::string v;
            if (!nextArg(v))
                return usage(argv[0]);
            root = v;
        } else if (a == "--baseline") {
            if (!nextArg(baselinePath))
                return usage(argv[0]);
        } else if (a == "--write-baseline") {
            if (!nextArg(writeBaselinePath))
                return usage(argv[0]);
        } else if (a == "--json") {
            jsonStdout = true;
        } else if (a == "--json-out") {
            if (!nextArg(jsonOutPath))
                return usage(argv[0]);
        } else if (a == "--d4-allow") {
            std::string v;
            if (!nextArg(v))
                return usage(argv[0]);
            opts.d4Whitelist.push_back(v);
        } else if (!a.empty() && a[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(a);
        }
    }
    std::error_code rootEc;
    if (!fs::is_directory(root, rootEc)) {
        std::fprintf(stderr, "cais_lint: --root is not a directory: %s\n",
                     root.string().c_str());
        return 2;
    }

    // Default directories are best-effort (a tree may lack bench/);
    // an explicitly named path that is missing is an error.
    bool defaults = paths.empty();
    if (defaults)
        paths = {"src", "bench", "tests"};

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (defaults && !fs::exists(root / p, ec))
            continue;
        if (!collect(root / p, files))
            return 2;
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    Linter linter;
    for (const fs::path &f : files) {
        std::string content;
        if (!readFile(f, content)) {
            std::fprintf(stderr, "cais_lint: cannot read %s\n",
                         f.string().c_str());
            return 2;
        }
        // Report paths relative to the root so baselines are
        // machine-independent.
        std::error_code ec;
        fs::path rel = fs::relative(f, root, ec);
        linter.addSource((ec ? f : rel).generic_string(),
                         std::move(content));
    }

    std::vector<Finding> findings = linter.run(opts);

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cais_lint: cannot write %s\n",
                         writeBaselinePath.c_str());
            return 2;
        }
        out << writeBaseline(findings);
        std::printf("cais_lint: wrote %zu finding(s) to %s\n",
                    findings.size(), writeBaselinePath.c_str());
        return 0;
    }

    if (!baselinePath.empty()) {
        std::string text;
        if (!readFile(baselinePath, text)) {
            std::fprintf(stderr, "cais_lint: cannot read baseline %s\n",
                         baselinePath.c_str());
            return 2;
        }
        int stale = applyBaseline(findings, text);
        if (stale > 0)
            std::fprintf(stderr,
                         "cais_lint: note: %d stale baseline entr%s "
                         "(fixed findings; consider regenerating)\n",
                         stale, stale == 1 ? "y" : "ies");
    }

    if (!jsonOutPath.empty()) {
        std::ofstream out(jsonOutPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cais_lint: cannot write %s\n",
                         jsonOutPath.c_str());
            return 2;
        }
        out << writeFindingsJson(findings, files.size());
    }

    if (jsonStdout) {
        std::fputs(writeFindingsJson(findings, files.size()).c_str(),
                   stdout);
        return findings.empty() ? 0 : 1;
    }

    for (const Finding &f : findings)
        std::printf("%s\n", formatFinding(f).c_str());

    if (findings.empty()) {
        std::printf("cais_lint: %zu file(s) clean\n", files.size());
        return 0;
    }
    std::printf("cais_lint: %zu new finding(s) in %zu file(s)\n",
                findings.size(), files.size());
    return 1;
}
