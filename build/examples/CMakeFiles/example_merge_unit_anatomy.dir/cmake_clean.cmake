file(REMOVE_RECURSE
  "CMakeFiles/example_merge_unit_anatomy.dir/merge_unit_anatomy.cpp.o"
  "CMakeFiles/example_merge_unit_anatomy.dir/merge_unit_anatomy.cpp.o.d"
  "example_merge_unit_anatomy"
  "example_merge_unit_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_merge_unit_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
