# Empty dependencies file for example_merge_unit_anatomy.
# This may be replaced when dependencies are built.
