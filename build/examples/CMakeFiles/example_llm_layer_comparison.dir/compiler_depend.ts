# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_llm_layer_comparison.
