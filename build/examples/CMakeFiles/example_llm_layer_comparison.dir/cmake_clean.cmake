file(REMOVE_RECURSE
  "CMakeFiles/example_llm_layer_comparison.dir/llm_layer_comparison.cpp.o"
  "CMakeFiles/example_llm_layer_comparison.dir/llm_layer_comparison.cpp.o.d"
  "example_llm_layer_comparison"
  "example_llm_layer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_llm_layer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
