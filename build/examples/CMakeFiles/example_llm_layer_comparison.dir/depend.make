# Empty dependencies file for example_llm_layer_comparison.
# This may be replaced when dependencies are built.
