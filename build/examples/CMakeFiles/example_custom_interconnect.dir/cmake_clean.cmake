file(REMOVE_RECURSE
  "CMakeFiles/example_custom_interconnect.dir/custom_interconnect.cpp.o"
  "CMakeFiles/example_custom_interconnect.dir/custom_interconnect.cpp.o.d"
  "example_custom_interconnect"
  "example_custom_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
