# Empty compiler generated dependencies file for example_custom_interconnect.
# This may be replaced when dependencies are built.
