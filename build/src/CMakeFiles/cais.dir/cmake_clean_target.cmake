file(REMOVE_RECURSE
  "libcais.a"
)
