# Empty compiler generated dependencies file for cais.
# This may be replaced when dependencies are built.
