
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/area_model.cc" "src/CMakeFiles/cais.dir/analysis/area_model.cc.o" "gcc" "src/CMakeFiles/cais.dir/analysis/area_model.cc.o.d"
  "/root/repo/src/analysis/bandwidth_probe.cc" "src/CMakeFiles/cais.dir/analysis/bandwidth_probe.cc.o" "gcc" "src/CMakeFiles/cais.dir/analysis/bandwidth_probe.cc.o.d"
  "/root/repo/src/analysis/trace.cc" "src/CMakeFiles/cais.dir/analysis/trace.cc.o" "gcc" "src/CMakeFiles/cais.dir/analysis/trace.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/cais.dir/common/config.cc.o" "gcc" "src/CMakeFiles/cais.dir/common/config.cc.o.d"
  "/root/repo/src/common/event_queue.cc" "src/CMakeFiles/cais.dir/common/event_queue.cc.o" "gcc" "src/CMakeFiles/cais.dir/common/event_queue.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/cais.dir/common/log.cc.o" "gcc" "src/CMakeFiles/cais.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cais.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cais.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/cais.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/cais.dir/common/stats.cc.o.d"
  "/root/repo/src/compiler/cais_lowering.cc" "src/CMakeFiles/cais.dir/compiler/cais_lowering.cc.o" "gcc" "src/CMakeFiles/cais.dir/compiler/cais_lowering.cc.o.d"
  "/root/repo/src/compiler/index_analysis.cc" "src/CMakeFiles/cais.dir/compiler/index_analysis.cc.o" "gcc" "src/CMakeFiles/cais.dir/compiler/index_analysis.cc.o.d"
  "/root/repo/src/compiler/kernel_ir.cc" "src/CMakeFiles/cais.dir/compiler/kernel_ir.cc.o" "gcc" "src/CMakeFiles/cais.dir/compiler/kernel_ir.cc.o.d"
  "/root/repo/src/compiler/tb_grouping.cc" "src/CMakeFiles/cais.dir/compiler/tb_grouping.cc.o" "gcc" "src/CMakeFiles/cais.dir/compiler/tb_grouping.cc.o.d"
  "/root/repo/src/dataflow/fusion_planner.cc" "src/CMakeFiles/cais.dir/dataflow/fusion_planner.cc.o" "gcc" "src/CMakeFiles/cais.dir/dataflow/fusion_planner.cc.o.d"
  "/root/repo/src/dataflow/op_graph.cc" "src/CMakeFiles/cais.dir/dataflow/op_graph.cc.o" "gcc" "src/CMakeFiles/cais.dir/dataflow/op_graph.cc.o.d"
  "/root/repo/src/dataflow/tile_dependency.cc" "src/CMakeFiles/cais.dir/dataflow/tile_dependency.cc.o" "gcc" "src/CMakeFiles/cais.dir/dataflow/tile_dependency.cc.o.d"
  "/root/repo/src/dataflow/traffic_control.cc" "src/CMakeFiles/cais.dir/dataflow/traffic_control.cc.o" "gcc" "src/CMakeFiles/cais.dir/dataflow/traffic_control.cc.o.d"
  "/root/repo/src/gpu/gpu_config.cc" "src/CMakeFiles/cais.dir/gpu/gpu_config.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/gpu_config.cc.o.d"
  "/root/repo/src/gpu/gpu_core.cc" "src/CMakeFiles/cais.dir/gpu/gpu_core.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/gpu_core.cc.o.d"
  "/root/repo/src/gpu/hbm.cc" "src/CMakeFiles/cais.dir/gpu/hbm.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/hbm.cc.o.d"
  "/root/repo/src/gpu/hub.cc" "src/CMakeFiles/cais.dir/gpu/hub.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/hub.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/CMakeFiles/cais.dir/gpu/kernel.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/kernel.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/CMakeFiles/cais.dir/gpu/sm.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/sm.cc.o.d"
  "/root/repo/src/gpu/synchronizer.cc" "src/CMakeFiles/cais.dir/gpu/synchronizer.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/synchronizer.cc.o.d"
  "/root/repo/src/gpu/tb_scheduler.cc" "src/CMakeFiles/cais.dir/gpu/tb_scheduler.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/tb_scheduler.cc.o.d"
  "/root/repo/src/gpu/thread_block.cc" "src/CMakeFiles/cais.dir/gpu/thread_block.cc.o" "gcc" "src/CMakeFiles/cais.dir/gpu/thread_block.cc.o.d"
  "/root/repo/src/isa/address_expr.cc" "src/CMakeFiles/cais.dir/isa/address_expr.cc.o" "gcc" "src/CMakeFiles/cais.dir/isa/address_expr.cc.o.d"
  "/root/repo/src/isa/instr.cc" "src/CMakeFiles/cais.dir/isa/instr.cc.o" "gcc" "src/CMakeFiles/cais.dir/isa/instr.cc.o.d"
  "/root/repo/src/noc/arbiter.cc" "src/CMakeFiles/cais.dir/noc/arbiter.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/arbiter.cc.o.d"
  "/root/repo/src/noc/credit_link.cc" "src/CMakeFiles/cais.dir/noc/credit_link.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/credit_link.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/cais.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/CMakeFiles/cais.dir/noc/packet.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/packet.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/CMakeFiles/cais.dir/noc/routing.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/routing.cc.o.d"
  "/root/repo/src/noc/switch_chip.cc" "src/CMakeFiles/cais.dir/noc/switch_chip.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/switch_chip.cc.o.d"
  "/root/repo/src/noc/switch_port.cc" "src/CMakeFiles/cais.dir/noc/switch_port.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/switch_port.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/CMakeFiles/cais.dir/noc/topology.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/topology.cc.o.d"
  "/root/repo/src/noc/virtual_channel.cc" "src/CMakeFiles/cais.dir/noc/virtual_channel.cc.o" "gcc" "src/CMakeFiles/cais.dir/noc/virtual_channel.cc.o.d"
  "/root/repo/src/runtime/execution_strategy.cc" "src/CMakeFiles/cais.dir/runtime/execution_strategy.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/execution_strategy.cc.o.d"
  "/root/repo/src/runtime/simulation_driver.cc" "src/CMakeFiles/cais.dir/runtime/simulation_driver.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/simulation_driver.cc.o.d"
  "/root/repo/src/runtime/strategy_cais.cc" "src/CMakeFiles/cais.dir/runtime/strategy_cais.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_cais.cc.o.d"
  "/root/repo/src/runtime/strategy_coconet.cc" "src/CMakeFiles/cais.dir/runtime/strategy_coconet.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_coconet.cc.o.d"
  "/root/repo/src/runtime/strategy_fuselib.cc" "src/CMakeFiles/cais.dir/runtime/strategy_fuselib.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_fuselib.cc.o.d"
  "/root/repo/src/runtime/strategy_ladm.cc" "src/CMakeFiles/cais.dir/runtime/strategy_ladm.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_ladm.cc.o.d"
  "/root/repo/src/runtime/strategy_nvls_tp.cc" "src/CMakeFiles/cais.dir/runtime/strategy_nvls_tp.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_nvls_tp.cc.o.d"
  "/root/repo/src/runtime/strategy_t3.cc" "src/CMakeFiles/cais.dir/runtime/strategy_t3.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/strategy_t3.cc.o.d"
  "/root/repo/src/runtime/system.cc" "src/CMakeFiles/cais.dir/runtime/system.cc.o" "gcc" "src/CMakeFiles/cais.dir/runtime/system.cc.o.d"
  "/root/repo/src/switchcompute/cam_table.cc" "src/CMakeFiles/cais.dir/switchcompute/cam_table.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/cam_table.cc.o.d"
  "/root/repo/src/switchcompute/eviction.cc" "src/CMakeFiles/cais.dir/switchcompute/eviction.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/eviction.cc.o.d"
  "/root/repo/src/switchcompute/group_sync_table.cc" "src/CMakeFiles/cais.dir/switchcompute/group_sync_table.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/group_sync_table.cc.o.d"
  "/root/repo/src/switchcompute/merge_unit.cc" "src/CMakeFiles/cais.dir/switchcompute/merge_unit.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/merge_unit.cc.o.d"
  "/root/repo/src/switchcompute/merging_table.cc" "src/CMakeFiles/cais.dir/switchcompute/merging_table.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/merging_table.cc.o.d"
  "/root/repo/src/switchcompute/nvls_unit.cc" "src/CMakeFiles/cais.dir/switchcompute/nvls_unit.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/nvls_unit.cc.o.d"
  "/root/repo/src/switchcompute/switch_compute.cc" "src/CMakeFiles/cais.dir/switchcompute/switch_compute.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/switch_compute.cc.o.d"
  "/root/repo/src/switchcompute/throttle.cc" "src/CMakeFiles/cais.dir/switchcompute/throttle.cc.o" "gcc" "src/CMakeFiles/cais.dir/switchcompute/throttle.cc.o.d"
  "/root/repo/src/workload/collectives.cc" "src/CMakeFiles/cais.dir/workload/collectives.cc.o" "gcc" "src/CMakeFiles/cais.dir/workload/collectives.cc.o.d"
  "/root/repo/src/workload/gemm_model.cc" "src/CMakeFiles/cais.dir/workload/gemm_model.cc.o" "gcc" "src/CMakeFiles/cais.dir/workload/gemm_model.cc.o.d"
  "/root/repo/src/workload/llm_config.cc" "src/CMakeFiles/cais.dir/workload/llm_config.cc.o" "gcc" "src/CMakeFiles/cais.dir/workload/llm_config.cc.o.d"
  "/root/repo/src/workload/transformer.cc" "src/CMakeFiles/cais.dir/workload/transformer.cc.o" "gcc" "src/CMakeFiles/cais.dir/workload/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
