# Empty dependencies file for hw_overhead.
# This may be replaced when dependencies are built.
