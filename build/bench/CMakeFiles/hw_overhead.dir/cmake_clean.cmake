file(REMOVE_RECURSE
  "CMakeFiles/hw_overhead.dir/hw_overhead.cc.o"
  "CMakeFiles/hw_overhead.dir/hw_overhead.cc.o.d"
  "hw_overhead"
  "hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
