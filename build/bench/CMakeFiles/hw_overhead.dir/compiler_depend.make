# Empty compiler generated dependencies file for hw_overhead.
# This may be replaced when dependencies are built.
