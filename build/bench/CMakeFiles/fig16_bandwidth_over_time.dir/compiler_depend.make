# Empty compiler generated dependencies file for fig16_bandwidth_over_time.
# This may be replaced when dependencies are built.
