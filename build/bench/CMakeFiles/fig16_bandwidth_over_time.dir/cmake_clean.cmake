file(REMOVE_RECURSE
  "CMakeFiles/fig16_bandwidth_over_time.dir/fig16_bandwidth_over_time.cc.o"
  "CMakeFiles/fig16_bandwidth_over_time.dir/fig16_bandwidth_over_time.cc.o.d"
  "fig16_bandwidth_over_time"
  "fig16_bandwidth_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_bandwidth_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
