file(REMOVE_RECURSE
  "CMakeFiles/fig14_table_size_sensitivity.dir/fig14_table_size_sensitivity.cc.o"
  "CMakeFiles/fig14_table_size_sensitivity.dir/fig14_table_size_sensitivity.cc.o.d"
  "fig14_table_size_sensitivity"
  "fig14_table_size_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_table_size_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
