# Empty compiler generated dependencies file for fig13_merge_table.
# This may be replaced when dependencies are built.
