file(REMOVE_RECURSE
  "CMakeFiles/fig13_merge_table.dir/fig13_merge_table.cc.o"
  "CMakeFiles/fig13_merge_table.dir/fig13_merge_table.cc.o.d"
  "fig13_merge_table"
  "fig13_merge_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_merge_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
