# Empty compiler generated dependencies file for fig02_comm_compute_scaling.
# This may be replaced when dependencies are built.
