file(REMOVE_RECURSE
  "CMakeFiles/fig02_comm_compute_scaling.dir/fig02_comm_compute_scaling.cc.o"
  "CMakeFiles/fig02_comm_compute_scaling.dir/fig02_comm_compute_scaling.cc.o.d"
  "fig02_comm_compute_scaling"
  "fig02_comm_compute_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_comm_compute_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
