file(REMOVE_RECURSE
  "CMakeFiles/abl_graph_optimizer.dir/abl_graph_optimizer.cc.o"
  "CMakeFiles/abl_graph_optimizer.dir/abl_graph_optimizer.cc.o.d"
  "abl_graph_optimizer"
  "abl_graph_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_graph_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
