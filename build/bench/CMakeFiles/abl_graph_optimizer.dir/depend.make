# Empty dependencies file for abl_graph_optimizer.
# This may be replaced when dependencies are built.
