file(REMOVE_RECURSE
  "CMakeFiles/fig18_nvls_validation.dir/fig18_nvls_validation.cc.o"
  "CMakeFiles/fig18_nvls_validation.dir/fig18_nvls_validation.cc.o.d"
  "fig18_nvls_validation"
  "fig18_nvls_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_nvls_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
