# Empty compiler generated dependencies file for fig18_nvls_validation.
# This may be replaced when dependencies are built.
