# Empty dependencies file for fig12_sublayer.
# This may be replaced when dependencies are built.
