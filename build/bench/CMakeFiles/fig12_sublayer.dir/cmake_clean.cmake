file(REMOVE_RECURSE
  "CMakeFiles/fig12_sublayer.dir/fig12_sublayer.cc.o"
  "CMakeFiles/fig12_sublayer.dir/fig12_sublayer.cc.o.d"
  "fig12_sublayer"
  "fig12_sublayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sublayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
