file(REMOVE_RECURSE
  "CMakeFiles/abl_throttle.dir/abl_throttle.cc.o"
  "CMakeFiles/abl_throttle.dir/abl_throttle.cc.o.d"
  "abl_throttle"
  "abl_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
