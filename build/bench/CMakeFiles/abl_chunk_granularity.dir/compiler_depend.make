# Empty compiler generated dependencies file for abl_chunk_granularity.
# This may be replaced when dependencies are built.
