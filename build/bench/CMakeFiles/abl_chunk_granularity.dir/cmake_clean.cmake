file(REMOVE_RECURSE
  "CMakeFiles/abl_chunk_granularity.dir/abl_chunk_granularity.cc.o"
  "CMakeFiles/abl_chunk_granularity.dir/abl_chunk_granularity.cc.o.d"
  "abl_chunk_granularity"
  "abl_chunk_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chunk_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
