# Empty dependencies file for tab02_scaledown_validation.
# This may be replaced when dependencies are built.
