file(REMOVE_RECURSE
  "CMakeFiles/tab02_scaledown_validation.dir/tab02_scaledown_validation.cc.o"
  "CMakeFiles/tab02_scaledown_validation.dir/tab02_scaledown_validation.cc.o.d"
  "tab02_scaledown_validation"
  "tab02_scaledown_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_scaledown_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
