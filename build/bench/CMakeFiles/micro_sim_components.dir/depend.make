# Empty dependencies file for micro_sim_components.
# This may be replaced when dependencies are built.
