file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_components.dir/micro_sim_components.cc.o"
  "CMakeFiles/micro_sim_components.dir/micro_sim_components.cc.o.d"
  "micro_sim_components"
  "micro_sim_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
