# Empty dependencies file for cais_tests.
# This may be replaced when dependencies are built.
