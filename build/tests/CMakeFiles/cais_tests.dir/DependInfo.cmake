
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_expr.cc" "tests/CMakeFiles/cais_tests.dir/test_address_expr.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_address_expr.cc.o.d"
  "/root/repo/tests/test_area_model.cc" "tests/CMakeFiles/cais_tests.dir/test_area_model.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_area_model.cc.o.d"
  "/root/repo/tests/test_collectives.cc" "tests/CMakeFiles/cais_tests.dir/test_collectives.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_collectives.cc.o.d"
  "/root/repo/tests/test_compiler.cc" "tests/CMakeFiles/cais_tests.dir/test_compiler.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_compiler.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/cais_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_eviction_throttle.cc" "tests/CMakeFiles/cais_tests.dir/test_eviction_throttle.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_eviction_throttle.cc.o.d"
  "/root/repo/tests/test_fabric.cc" "tests/CMakeFiles/cais_tests.dir/test_fabric.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_fabric.cc.o.d"
  "/root/repo/tests/test_fusion_planner.cc" "tests/CMakeFiles/cais_tests.dir/test_fusion_planner.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_fusion_planner.cc.o.d"
  "/root/repo/tests/test_gpu_model.cc" "tests/CMakeFiles/cais_tests.dir/test_gpu_model.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_gpu_model.cc.o.d"
  "/root/repo/tests/test_group_sync.cc" "tests/CMakeFiles/cais_tests.dir/test_group_sync.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_group_sync.cc.o.d"
  "/root/repo/tests/test_hub.cc" "tests/CMakeFiles/cais_tests.dir/test_hub.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_hub.cc.o.d"
  "/root/repo/tests/test_instr.cc" "tests/CMakeFiles/cais_tests.dir/test_instr.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_instr.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/cais_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_isa_properties.cc" "tests/CMakeFiles/cais_tests.dir/test_isa_properties.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_isa_properties.cc.o.d"
  "/root/repo/tests/test_log.cc" "tests/CMakeFiles/cais_tests.dir/test_log.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_log.cc.o.d"
  "/root/repo/tests/test_merge_unit.cc" "tests/CMakeFiles/cais_tests.dir/test_merge_unit.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_merge_unit.cc.o.d"
  "/root/repo/tests/test_noc_link.cc" "tests/CMakeFiles/cais_tests.dir/test_noc_link.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_noc_link.cc.o.d"
  "/root/repo/tests/test_nvls_unit.cc" "tests/CMakeFiles/cais_tests.dir/test_nvls_unit.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_nvls_unit.cc.o.d"
  "/root/repo/tests/test_op_graph.cc" "tests/CMakeFiles/cais_tests.dir/test_op_graph.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_op_graph.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/cais_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rng_config.cc" "tests/CMakeFiles/cais_tests.dir/test_rng_config.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_rng_config.cc.o.d"
  "/root/repo/tests/test_routing.cc" "tests/CMakeFiles/cais_tests.dir/test_routing.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_routing.cc.o.d"
  "/root/repo/tests/test_simulation_driver.cc" "tests/CMakeFiles/cais_tests.dir/test_simulation_driver.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_simulation_driver.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/cais_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_strategies.cc" "tests/CMakeFiles/cais_tests.dir/test_strategies.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_strategies.cc.o.d"
  "/root/repo/tests/test_switch_chip.cc" "tests/CMakeFiles/cais_tests.dir/test_switch_chip.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_switch_chip.cc.o.d"
  "/root/repo/tests/test_switch_compute_dispatch.cc" "tests/CMakeFiles/cais_tests.dir/test_switch_compute_dispatch.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_switch_compute_dispatch.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/cais_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_thread_block.cc" "tests/CMakeFiles/cais_tests.dir/test_thread_block.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_thread_block.cc.o.d"
  "/root/repo/tests/test_tile_dependency.cc" "tests/CMakeFiles/cais_tests.dir/test_tile_dependency.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_tile_dependency.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/cais_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_transformer_stack.cc" "tests/CMakeFiles/cais_tests.dir/test_transformer_stack.cc.o" "gcc" "tests/CMakeFiles/cais_tests.dir/test_transformer_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cais.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
