/**
 * @file
 * Anatomy of the CAIS merge unit: drives a single switch with
 * hand-crafted ld.cais / red.cais packets and narrates the
 * micro-function state transitions of Sec. III-A / Fig. 6 —
 * session allocation, Content-Array deferral, Load-Ready caching,
 * reduction accumulation, merged writes, and LRU eviction.
 *
 *   ./example_merge_unit_anatomy [gpus=4]
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "switchcompute/switch_compute.hh"

using namespace cais;

namespace
{

/** File-local packet-id allocator for hand-crafted packets. */
PacketIdAllocator ids;

struct NarratingGpu : public PacketSink
{
    EventQueue *eq = nullptr;
    CreditLink *up = nullptr;
    GpuId id = 0;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        from->returnCredit(vc);
        switch (pkt.type) {
          case PacketType::readReq:
            std::printf("  [%6llu ns] gpu%d: switch fetches %u B at "
                        "0x%llx (home memory read)\n",
                        static_cast<unsigned long long>(eq->now()),
                        id, pkt.reqBytes,
                        static_cast<unsigned long long>(pkt.addr));
            {
                Packet resp = makePacket(ids, PacketType::readResp, id,
                                              pkt.src);
                resp.addr = pkt.addr;
                resp.payloadBytes = pkt.reqBytes;
                resp.cookie = pkt.cookie;
                up->send(std::move(resp));
            }
            return;
          case PacketType::caisLoadResp:
            std::printf("  [%6llu ns] gpu%d: ld.cais response, %u B "
                        "(cookie %llu)\n",
                        static_cast<unsigned long long>(eq->now()),
                        id, pkt.payloadBytes,
                        static_cast<unsigned long long>(pkt.cookie));
            return;
          case PacketType::caisMergedWrite:
            std::printf("  [%6llu ns] gpu%d: merged reduction write, "
                        "%u B carrying %d contributions\n",
                        static_cast<unsigned long long>(eq->now()),
                        id, pkt.payloadBytes, pkt.contribs);
            return;
          default:
            return;
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    Params args = Params::fromArgs(argc, argv);
    int gpus = static_cast<int>(args.getInt("gpus", 4));

    EventQueue eq;
    SwitchParams sp;
    SwitchChip sw(eq, 0, gpus, gpus, sp);
    InSwitchParams ip;
    ip.merge.tableBytesPerPort = 2 * ip.merge.chunkBytes; // tiny table
    SwitchComputeComplex complex(sw, ip);

    std::vector<std::unique_ptr<CreditLink>> ups, downs;
    std::vector<NarratingGpu> sinks(static_cast<std::size_t>(gpus));
    for (GpuId g = 0; g < gpus; ++g) {
        ups.push_back(std::make_unique<CreditLink>(
            eq, "up", 450.0, 250, sp.numVcs, 64, 10000));
        sw.attachUplink(g, ups.back().get());
        downs.push_back(std::make_unique<CreditLink>(
            eq, "dn", 450.0, 250, sp.numVcs, 64, 10000));
        sw.attachDownlink(g, downs.back().get());
        sinks[static_cast<std::size_t>(g)].eq = &eq;
        sinks[static_cast<std::size_t>(g)].id = g;
        sinks[static_cast<std::size_t>(g)].up = ups.back().get();
        downs.back()->setSink(&sinks[static_cast<std::size_t>(g)]);
    }

    std::printf("== micro-function 1: load request merging ==\n");
    std::printf("GPUs 1..%d issue ld.cais to the same address "
                "(home = GPU 0):\n", gpus - 1);
    Addr load_addr = makeAddr(0, 1 << 20);
    for (GpuId g = 1; g < gpus; ++g) {
        Packet p = makePacket(ids, PacketType::caisLoadReq, g, sw.nodeId());
        p.addr = load_addr;
        p.reqBytes = ip.merge.chunkBytes;
        p.expected = gpus - 1;
        p.issuerGpu = g;
        p.cookie = static_cast<std::uint64_t>(100 + g);
        ups[static_cast<std::size_t>(g)]->send(std::move(p));
    }
    eq.runUntil(20 * cyclesPerUs);

    const MergeStats &st = complex.merge().stats();
    std::printf("-> %llu requests, %llu fetch from home, %llu merged "
                "hits\n\n",
                static_cast<unsigned long long>(st.loadReqs.value()),
                static_cast<unsigned long long>(st.fetches.value()),
                static_cast<unsigned long long>(st.loadHits.value()));

    std::printf("== micro-function 2: reduction request merging ==\n");
    std::printf("GPUs 0..%d push red.cais partials for one tile "
                "(home = GPU %d):\n", gpus - 2, gpus - 1);
    Addr red_addr = makeAddr(gpus - 1, 1 << 16);
    for (GpuId g = 0; g < gpus - 1; ++g) {
        Packet p = makePacket(ids, PacketType::caisRedReq, g, sw.nodeId());
        p.addr = red_addr;
        p.payloadBytes = ip.merge.chunkBytes;
        p.expected = gpus - 1;
        p.issuerGpu = g;
        ups[static_cast<std::size_t>(g)]->send(std::move(p));
    }
    eq.runUntil(40 * cyclesPerUs);
    std::printf("-> %llu contributions accumulated, %llu merged "
                "write(s) to home\n\n",
                static_cast<unsigned long long>(st.redReqs.value()),
                static_cast<unsigned long long>(
                    st.mergedWrites.value()));

    std::printf("== eviction: the table holds only 2 sessions ==\n");
    for (int i = 0; i < 4; ++i) {
        Packet p = makePacket(ids, PacketType::caisRedReq, 0, sw.nodeId());
        p.addr = makeAddr(gpus - 1, (2u << 16) + 0x1000u *
                                        static_cast<unsigned>(i));
        p.payloadBytes = ip.merge.chunkBytes;
        p.expected = gpus - 1;
        p.issuerGpu = 0;
        ups[0]->send(std::move(p));
    }
    eq.runUntil(60 * cyclesPerUs);
    std::printf("-> LRU evictions: %llu (partials flushed to home), "
                "live sessions now: %zu\n",
                static_cast<unsigned long long>(
                    complex.merge().evictionStats()
                        .lruEvictions.value()),
                complex.merge().liveSessions());

    eq.runAll();
    std::printf("\nfinal: sessions opened %llu, fully merged %llu, "
                "stagger mean %.2f us\n",
                static_cast<unsigned long long>(
                    st.sessionsOpened.value()),
                static_cast<unsigned long long>(
                    st.sessionsClosed.value()),
                complex.merge().staggerHist().mean() / cyclesPerUs);
    return 0;
}
