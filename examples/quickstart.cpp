/**
 * @file
 * Quickstart: simulate one communication-heavy transformer sub-layer
 * (GEMM-RS + LayerNorm + AG-GEMM) on an 8-GPU DGX-style system under
 * two execution strategies — the NVLS-accelerated sequence-parallel
 * baseline and CAIS — and print the timing and bandwidth metrics.
 *
 *   ./example_quickstart [model=LLaMA-7B] [gpus=8] [dim=0.5] [tok=0.25]
 */

#include <cstdio>

#include "analysis/bandwidth_probe.hh"
#include "common/config.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

int
main(int argc, char **argv)
{
    Params args = Params::fromArgs(argc, argv);

    LlmConfig model = llama7B();
    std::string name = args.getString("model", model.name);
    for (const auto &m : tableOneModels())
        if (m.name == name)
            model = m;

    // Shape-preserving reduction so the demo runs in seconds; pass
    // dim=1 tok=1 for the paper's Table-I dimensions.
    model = model.scaled(args.getDouble("dim", 0.5),
                         args.getDouble("tok", 0.25));

    RunConfig cfg;
    cfg.numGpus = static_cast<int>(args.getInt("gpus", 8));
    cfg.gpu.numSms =
        static_cast<int>(args.getInt("sms", cfg.gpu.numSms));
    // trace=out.json writes a Perfetto-loadable kernel timeline.
    cfg.tracePath = args.getString("trace", "");

    OpGraph graph = buildSubLayer(model, SubLayerId::L1);

    std::printf("workload: %s\n", model.str().c_str());
    std::printf("graph:\n%s\n", graph.str().c_str());

    RunResult base =
        runGraph(makeSpNvls(), graph, cfg, subLayerName(SubLayerId::L1));
    RunResult cais_r =
        runGraph(makeCais(), graph, cfg, subLayerName(SubLayerId::L1));

    std::printf("%-12s %12s %10s %10s %10s %10s\n", "strategy",
                "time (us)", "link-util", "G2S", "S2G", "SM-util");
    for (const RunResult *r : {&base, &cais_r}) {
        std::printf("%-12s %12.1f %10s %10s %10s %10s\n",
                    r->strategy.c_str(), r->makespanUs(),
                    pct(r->avgUtil).c_str(), pct(r->upUtil).c_str(),
                    pct(r->dnUtil).c_str(), pct(r->gpuUtil).c_str());
    }
    std::printf("\nCAIS speedup over SP-NVLS: %.2fx\n",
                speedupOver(base, cais_r));
    if (!cfg.tracePath.empty())
        std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                    cfg.tracePath.c_str());
    std::printf("merge sessions closed: %llu, request stagger: "
                "%.2f us, peak merge table: %llu B/port\n",
                static_cast<unsigned long long>(cais_r.sessionsClosed),
                cais_r.staggerUs,
                static_cast<unsigned long long>(
                    cais_r.peakMergeBytes));
    return 0;
}
