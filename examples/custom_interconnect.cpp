/**
 * @file
 * Using the lower-level fabric/system API directly: build a custom
 * interconnect (GPU count, switch count, bandwidth, latency), define
 * tensors, hand-craft a kernel with compute + remote reductions, and
 * run it — no workload/strategy layer involved. Also demonstrates the
 * compiler pass on a kernel IR and the deterministic routing.
 *
 *   ./example_custom_interconnect [gpus=4] [switches=2] [bw=300]
 */

#include <cstdio>

#include "common/config.hh"
#include "compiler/cais_lowering.hh"
#include "runtime/system.hh"

using namespace cais;

int
main(int argc, char **argv)
{
    Params args = Params::fromArgs(argc, argv);

    // --- 1. a custom fabric -----------------------------------------
    SystemConfig sc;
    sc.fabric.numGpus = static_cast<int>(args.getInt("gpus", 4));
    sc.fabric.numSwitches =
        static_cast<int>(args.getInt("switches", 2));
    sc.fabric.perGpuBytesPerCycle = args.getDouble("bw", 300.0);
    sc.fabric.linkLatency = static_cast<Cycle>(
        args.getInt("latency_ns", 200));
    sc.gpu.numSms = static_cast<int>(args.getInt("sms", 16));
    sc.gpu.jitterSigma = 0.02;

    System sys(sc);
    int G = sys.numGpus();
    std::printf("fabric: %s\n", sc.fabric.str().c_str());
    std::printf("gpu   : %s\n\n", sc.gpu.str().c_str());

    // --- 2. the compiler pass on a toy kernel IR ---------------------
    IrKernel ir;
    ir.name = "toy.reduce";
    ir.gridX = 8;
    MemInstr red;
    red.op = Opcode::redGlobal;
    red.remote = true;
    red.bytesPerTb = 64 * 1024;
    red.addr = AddressExpr::term(AddrVar::blockIdxX, 64 * 1024);
    ir.accesses.push_back(red);

    LoweringResult lowered = lowerToCais(ir, sys.allocGroups(8));
    std::printf("compiler: %d instruction(s) lowered to CAIS; "
                "%d TB groups\n",
                lowered.numLowered, lowered.plan.numGroups);
    std::printf("  %s\n\n", lowered.kernel.accesses[0].str().c_str());

    // --- 3. a hand-built kernel: every GPU reduces 8 tiles into a
    //        row-sharded output via red.cais ------------------------
    TensorInfo &out = sys.defineTensor(
        "toy.out", TensorLayout::rowShardedHome, 8 * 128, 256, 2, 128,
        G);

    KernelDesc k;
    k.name = "toy.reduce";
    k.grids.resize(static_cast<std::size_t>(G));
    k.producesTracker = out.tracker;
    k.preLaunchSync = true;
    k.preAccessSync = true;
    for (GpuId g = 0; g < G; ++g) {
        for (int t = 0; t < out.numTiles; ++t) {
            TbDesc tb;
            tb.computeCycles = 5000;
            tb.group =
                lowered.plan.groupOfTb[static_cast<std::size_t>(t)];
            if (out.tileOwner(t) == g) {
                tb.producesTile = t;
                tb.produceBytes = out.bytesPerTile;
            } else {
                RemoteOp op;
                op.kind = RemoteOpKind::caisRed;
                op.base = out.tileAddr(t);
                op.bytes = out.bytesPerTile;
                op.expected = G - 1;
                tb.pushOps.push_back(op);
            }
            k.grids[static_cast<std::size_t>(g)].push_back(tb);
        }
    }
    sys.addKernel(std::move(k));
    sys.run();

    std::printf("run: makespan %.1f us, tracker complete: %s\n",
                static_cast<double>(sys.makespan()) / cyclesPerUs,
                sys.tracker(out.tracker).complete() ? "yes" : "no");
    std::printf("fabric moved %.2f MB of wire data; mean link "
                "utilization %.1f%%\n",
                static_cast<double>(sys.fabric().totalWireBytes()) /
                    (1 << 20),
                100.0 * sys.fabric().avgUtilization(0, sys.makespan()));

    // --- 4. merge effectiveness --------------------------------------
    std::uint64_t red_reqs = 0, merged = 0;
    for (SwitchId s = 0; s < sys.numSwitches(); ++s) {
        red_reqs += sys.switchCompute(s).merge().stats()
                        .redReqs.value();
        merged += sys.switchCompute(s).merge().stats()
                      .mergedWrites.value();
    }
    std::printf("merge unit: %llu red.cais contributions collapsed "
                "into %llu merged writes\n",
                static_cast<unsigned long long>(red_reqs),
                static_cast<unsigned long long>(merged));

    // --- 5. deterministic routing demo -------------------------------
    const DeterministicRouting &r = sys.fabric().routing();
    std::printf("\nrouting: tile 0 of toy.out always converges on "
                "switch %d (hash of 0x%llx)\n",
                r.switchForAddr(out.tileAddr(0)),
                static_cast<unsigned long long>(out.tileAddr(0)));
    return 0;
}
