/**
 * @file
 * Compare every execution strategy on a full transformer layer
 * (forward or backward) of a Table-I model: per-strategy timing,
 * bandwidth, GPU utilization and a kernel timeline for the two most
 * interesting contenders.
 *
 *   ./example_llm_layer_comparison [model=Mega-GPT-8B] [pass=fwd]
 *       [gpus=8] [dim=0.5] [tok=0.25]
 */

#include <cstdio>

#include "analysis/bandwidth_probe.hh"
#include "common/config.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

int
main(int argc, char **argv)
{
    Params args = Params::fromArgs(argc, argv);

    LlmConfig model = megaGpt8B();
    std::string name = args.getString("model", model.name);
    for (const auto &m : tableOneModels())
        if (m.name == name)
            model = m;
    model = model.scaled(args.getDouble("dim", 0.5),
                         args.getDouble("tok", 0.25));

    Pass pass = args.getString("pass", "fwd") == "bwd"
                    ? Pass::backward
                    : Pass::forward;

    RunConfig cfg;
    cfg.numGpus = static_cast<int>(args.getInt("gpus", 8));

    OpGraph graph = buildTransformerLayer(model, pass);
    std::printf("workload: %s, %s pass, one layer\n\n",
                model.str().c_str(),
                pass == Pass::forward ? "forward" : "backward");

    std::printf("%-14s %10s %9s %8s %8s %8s %9s\n", "strategy",
                "time (us)", "speedup", "link", "G2S", "S2G", "SM");

    std::vector<RunResult> results;
    for (const StrategySpec &spec : allStrategies())
        results.push_back(runGraph(spec, graph, cfg, "layer"));

    double cais_us = results.back().makespanUs();
    for (const RunResult &r : results) {
        std::printf("%-14s %10.1f %8.2fx %8s %8s %8s %9s\n",
                    r.strategy.c_str(), r.makespanUs(),
                    r.makespanUs() / cais_us, pct(r.avgUtil).c_str(),
                    pct(r.upUtil).c_str(), pct(r.dnUtil).c_str(),
                    pct(r.gpuUtil).c_str());
    }

    // Timelines: the serialized NVLS baseline vs the CAIS pipeline.
    for (const RunResult &r : results) {
        if (r.strategy != "SP-NVLS" && r.strategy != "CAIS")
            continue;
        std::printf("\n%s kernel timeline:\n", r.strategy.c_str());
        for (const KernelTiming &k : r.kernels) {
            std::printf("  %-22s %8.1f -> %8.1f us %s\n",
                        k.name.c_str(),
                        static_cast<double>(k.start) / cyclesPerUs,
                        static_cast<double>(k.finish) / cyclesPerUs,
                        k.comm ? "[comm]" : "");
        }
    }

    std::printf("\nCAIS merge activity: %llu load reqs (%llu merged), "
                "%llu red reqs (%llu merged), stagger %.2f us\n",
                static_cast<unsigned long long>(
                    results.back().mergeLoadReqs),
                static_cast<unsigned long long>(
                    results.back().mergeLoadHits),
                static_cast<unsigned long long>(
                    results.back().mergeRedReqs),
                static_cast<unsigned long long>(
                    results.back().mergeRedHits),
                results.back().staggerUs);
    return 0;
}
