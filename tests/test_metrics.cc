/**
 * @file
 * Unit tests for the observability backbone (DESIGN.md §6d): the
 * hierarchical MetricRegistry and its snapshot pattern queries, the
 * shared JSON writer/parser, the schema-versioned run report, and the
 * cais_report renderer (driven in-process via cais_report_core).
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "report.hh" // tools/cais_report core

using namespace cais;

namespace
{

TEST(MetricRegistry, RegistersAndSnapshotsEveryKind)
{
    MetricRegistry reg;
    Counter c;
    c.inc(42);
    Accumulator a;
    a.sample(2.0);
    a.sample(4.0);
    Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    TimeSeries ts(100);
    ts.record(50, 7.0);

    reg.addCounter("sw0.pkts", &c);
    reg.addAccumulator("sw0.lat", &a);
    reg.addHistogram("sw0.stagger", &h);
    reg.addTimeSeries("sw0.bw", &ts);
    reg.addGauge("sw0.util", [] { return 0.5; });
    reg.addGaugeU64("sw0.peak", [] { return std::uint64_t(99); });

    EXPECT_EQ(reg.size(), 6u);
    EXPECT_TRUE(reg.has("sw0.pkts"));
    EXPECT_FALSE(reg.has("sw0.nope"));

    MetricSnapshot snap = reg.snapshot();
    const MetricValue *pkts = snap.find("sw0.pkts");
    ASSERT_NE(pkts, nullptr);
    EXPECT_EQ(pkts->kind, MetricKind::counter);
    EXPECT_EQ(pkts->u64, 42u);

    const MetricValue *lat = snap.find("sw0.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 2u);
    EXPECT_DOUBLE_EQ(lat->mean, 3.0);

    const MetricValue *stagger = snap.find("sw0.stagger");
    ASSERT_NE(stagger, nullptr);
    EXPECT_EQ(stagger->kind, MetricKind::histogram);
    EXPECT_EQ(stagger->count, 1u);

    const MetricValue *bw = snap.find("sw0.bw");
    ASSERT_NE(bw, nullptr);
    EXPECT_EQ(bw->binWidth, 100u);
    ASSERT_FALSE(bw->bins.empty());
    EXPECT_DOUBLE_EQ(bw->bins[0], 7.0);

    EXPECT_DOUBLE_EQ(snap.find("sw0.util")->value, 0.5);
    EXPECT_EQ(snap.find("sw0.peak")->u64, 99u);
}

TEST(MetricRegistry, SnapshotReadsAtCallTime)
{
    MetricRegistry reg;
    Counter c;
    reg.addCounter("c", &c);
    c.inc(5);
    // Registration stores a reader, not a value: the increment after
    // addCounter must be visible.
    EXPECT_EQ(reg.snapshot().find("c")->u64, 5u);
}

TEST(MetricRegistry, RejectsDuplicateAndEmptyPaths)
{
    MetricRegistry reg;
    Counter c;
    reg.addCounter("dup", &c);
    EXPECT_DEATH(reg.addCounter("dup", &c), "duplicate metric path");
    EXPECT_DEATH(reg.addCounter("", &c), "empty path");
}

TEST(MetricSnapshot, PatternMatching)
{
    // '*' matches any run of characters, including dots.
    EXPECT_TRUE(MetricSnapshot::matches("switch*.merge.loadReqs",
                                        "switch12.merge.loadReqs"));
    EXPECT_TRUE(MetricSnapshot::matches("*", "anything.at.all"));
    EXPECT_TRUE(MetricSnapshot::matches("a.*.c", "a.b.x.c"));
    EXPECT_TRUE(MetricSnapshot::matches("exact", "exact"));
    EXPECT_FALSE(MetricSnapshot::matches("exact", "exactly"));
    // The stagger aggregate must not swallow the load/red variants.
    EXPECT_FALSE(MetricSnapshot::matches(
        "switch*.merge.stagger", "switch0.merge.loadStagger"));
    EXPECT_FALSE(
        MetricSnapshot::matches("a.*.c", "a.b.d"));
}

TEST(MetricSnapshot, AggregatesOverPatterns)
{
    MetricRegistry reg;
    Counter c0, c1, other;
    c0.inc(10);
    c1.inc(32);
    other.inc(1000);
    reg.addCounter("sw0.merge.loadReqs", &c0);
    reg.addCounter("sw1.merge.loadReqs", &c1);
    reg.addCounter("sw0.merge.redReqs", &other);

    MetricSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.sumU64("sw*.merge.loadReqs"), 42u);
    EXPECT_EQ(snap.maxU64("sw*.merge.loadReqs"), 32u);
    EXPECT_DOUBLE_EQ(snap.sum("sw*.merge.loadReqs"), 42.0);

    int visited = 0;
    snap.forEach("sw*.merge.loadReqs",
                 [&](const std::string &path, const MetricValue &) {
        // forEach visits in path order.
        EXPECT_EQ(path, visited == 0 ? "sw0.merge.loadReqs"
                                     : "sw1.merge.loadReqs");
        ++visited;
    });
    EXPECT_EQ(visited, 2);
}

struct TestProbe : public Probe
{
    Counter hits;

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".hits", &hits);
    }
};

TEST(Probe, SelfRegistersUnderPrefix)
{
    TestProbe p;
    p.hits.inc(3);
    MetricRegistry reg;
    p.registerMetrics(reg, "switch0.unit");
    EXPECT_EQ(reg.snapshot().find("switch0.unit.hits")->u64, 3u);
}

TEST(JsonWriter, RoundTripsThroughParser)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "a \"quoted\"\nname")
        .field("count", std::uint64_t(18446744073709551615ull))
        .field("pi", 3.25)
        .field("neg", std::int64_t(-7))
        .field("on", true)
        .key("list")
        .beginArray()
        .value(1)
        .value(2)
        .endArray()
        .key("nothing")
        .null()
        .endObject();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(jsonParse(w.str(), v, error)) << error;
    EXPECT_EQ(v.getString("name"), "a \"quoted\"\nname");
    EXPECT_DOUBLE_EQ(v.getNumber("pi"), 3.25);
    EXPECT_DOUBLE_EQ(v.getNumber("neg"), -7.0);
    ASSERT_NE(v.find("on"), nullptr);
    EXPECT_TRUE(v.find("on")->boolVal);
    ASSERT_NE(v.find("list"), nullptr);
    ASSERT_EQ(v.find("list")->elems.size(), 2u);
    EXPECT_DOUBLE_EQ(v.find("list")->elems[1].numVal, 2.0);
    EXPECT_TRUE(v.find("nothing")->isNull());
}

TEST(JsonWriter, NonFiniteDoublesBecomeZero)
{
    JsonWriter w;
    w.beginObject()
        .field("inf", std::numeric_limits<double>::infinity())
        .field("nan", std::numeric_limits<double>::quiet_NaN())
        .endObject();
    JsonValue v;
    std::string error;
    ASSERT_TRUE(jsonParse(w.str(), v, error)) << error;
    EXPECT_DOUBLE_EQ(v.getNumber("inf"), 0.0);
    EXPECT_DOUBLE_EQ(v.getNumber("nan"), 0.0);
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(jsonParse("{\"a\": }", v, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(jsonParse("", v, error));
    EXPECT_FALSE(jsonParse("{\"a\": 1} trailing", v, error));
}

TEST(MetricSnapshot, WriteJsonIsParseable)
{
    MetricRegistry reg;
    Counter c;
    c.inc(7);
    Histogram h(0.0, 10.0, 10);
    h.sample(2.0);
    h.sample(8.0);
    reg.addCounter("sw0.pkts", &c);
    reg.addHistogram("sw0.stagger", &h);

    JsonWriter w;
    reg.snapshot().writeJson(w);
    JsonValue v;
    std::string error;
    ASSERT_TRUE(jsonParse(w.str(), v, error)) << error;
    const JsonValue *pkts = v.find("sw0.pkts");
    ASSERT_NE(pkts, nullptr);
    EXPECT_EQ(pkts->getString("kind"), "counter");
    EXPECT_DOUBLE_EQ(pkts->getNumber("value"), 7.0);
    const JsonValue *stagger = v.find("sw0.stagger");
    ASSERT_NE(stagger, nullptr);
    EXPECT_EQ(stagger->getString("kind"), "histogram");
    EXPECT_DOUBLE_EQ(stagger->getNumber("count"), 2.0);
}

/** A small but complete report document for the renderer tests. */
std::string
makeReport(std::uint64_t seed, std::uint64_t loadReqs)
{
    RunConfig cfg;
    cfg.seed = seed;
    RunResult r;
    r.strategy = "CAIS";
    r.workload = "L1";
    r.makespan = 1000 + seed;
    r.eventsExecuted = 5000;
    KernelTiming k;
    k.name = "ag_gemm";
    k.start = 0;
    k.finish = 900;
    k.comm = true;
    r.kernels.push_back(k);

    // The registry stores non-owning readers, but snapshot() copies
    // the values out, so the counter only needs to outlive that call.
    MetricRegistry reg;
    Counter c;
    c.inc(loadReqs);
    reg.addCounter("switch0.merge.loadReqs", &c);
    return renderMetricsReport(cfg, r, reg.snapshot());
}

TEST(MetricsReport, RendersSchemaVersionedParseableJson)
{
    std::string text = makeReport(1, 10);
    JsonValue v;
    std::string error;
    ASSERT_TRUE(jsonParse(text, v, error)) << error;
    EXPECT_EQ(v.getString("schema"), metricsSchemaVersion);
    EXPECT_EQ(v.getString("strategy"), "CAIS");
    ASSERT_NE(v.find("config"), nullptr);
    EXPECT_DOUBLE_EQ(v.find("config")->getNumber("seed"), 1.0);
    ASSERT_NE(v.find("result"), nullptr);
    EXPECT_DOUBLE_EQ(v.find("result")->getNumber("makespan"), 1001.0);
    ASSERT_NE(v.find("metrics"), nullptr);
    ASSERT_NE(v.find("metrics")->find("switch0.merge.loadReqs"),
              nullptr);
    ASSERT_NE(v.find("kernels"), nullptr);
    ASSERT_EQ(v.find("kernels")->elems.size(), 1u);
    EXPECT_EQ(v.find("kernels")->elems[0].getString("name"),
              "ag_gemm");
}

TEST(CaisReport, LoadValidatesSchema)
{
    report::Report rep;
    std::string error;
    EXPECT_TRUE(report::load(makeReport(1, 10), "a.json", rep, error))
        << error;

    EXPECT_FALSE(report::load("{not json", "x", rep, error));
    EXPECT_FALSE(report::load("{\"schema\": \"other-v9\"}", "x", rep,
                              error));
    EXPECT_NE(error.find("schema"), std::string::npos);
    EXPECT_FALSE(report::load(
        "{\"schema\": \"cais-metrics-v1\"}", "x", rep, error));
    EXPECT_NE(error.find("result"), std::string::npos);
}

TEST(CaisReport, LoadFileRejectsMissingMalformedAndDirectoryPaths)
{
    namespace fs = std::filesystem;
    report::Report rep;
    std::string error;

    EXPECT_FALSE(
        report::loadFile("/nonexistent/run.json", rep, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);

    fs::path dir =
        fs::temp_directory_path() / "cais_report_loadfile_test";
    fs::create_directories(dir);

    // A directory opens fine with fopen() but cannot be read; the
    // error must say so rather than report a JSON parse failure.
    error.clear();
    EXPECT_FALSE(report::loadFile(dir.string(), rep, error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);

    fs::path bad = dir / "bad.json";
    std::ofstream(bad) << "{\"schema\": \"cais-metrics-v1\", ";
    error.clear();
    EXPECT_FALSE(report::loadFile(bad.string(), rep, error));
    EXPECT_FALSE(error.empty());

    fs::path good = dir / "good.json";
    std::ofstream(good) << makeReport(1, 10);
    error.clear();
    EXPECT_TRUE(report::loadFile(good.string(), rep, error)) << error;
    EXPECT_EQ(rep.path, good.string());

    fs::remove_all(dir);
}

TEST(CaisReport, SummaryListsResultScalars)
{
    report::Report rep;
    std::string error;
    ASSERT_TRUE(report::load(makeReport(1, 10), "a.json", rep, error));
    std::string s = report::summary(rep);
    EXPECT_NE(s.find("makespan"), std::string::npos);
    EXPECT_NE(s.find("1001"), std::string::npos);
    EXPECT_NE(s.find("CAIS"), std::string::npos);
}

TEST(CaisReport, DiffShowsPercentDeltas)
{
    report::Report a, b;
    std::string error;
    ASSERT_TRUE(report::load(makeReport(1, 10), "a.json", a, error));
    ASSERT_TRUE(report::load(makeReport(101, 15), "b.json", b, error));
    std::string d = report::diff(a, b);
    // makespan 1001 -> 1101 is +9.99%; the merge counter moved too.
    EXPECT_NE(d.find("makespan"), std::string::npos);
    EXPECT_NE(d.find("+9.99%"), std::string::npos);
    EXPECT_NE(d.find("switch0.merge.loadReqs"), std::string::npos);
}

TEST(MetricRegistry, HistogramSnapshotCarriesTailPercentiles)
{
    MetricRegistry reg;
    Histogram h(0.0, 1000.0, 1000);
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i));
    reg.addHistogram("lat", &h);

    MetricSnapshot snap = reg.snapshot();
    const MetricValue *v = snap.find("lat");
    ASSERT_NE(v, nullptr);
    EXPECT_GT(v->p999, v->p99);
    EXPECT_GT(v->p99, v->p50);
    EXPECT_NEAR(v->p999, 999.0, 2.0);

    JsonWriter w;
    reg.snapshot().writeJson(w);
    EXPECT_NE(w.str().find("\"p999\""), std::string::npos);
}

TEST(MetricRegistry, ComputedTimeSeriesReadsAtSnapshotTime)
{
    MetricRegistry reg;
    std::vector<double> backing{1.0};
    reg.addTimeSeriesFn("fabric.utilSeries", 2000,
                        [&backing] { return backing; });
    backing.push_back(2.0); // must be visible: reader, not a copy

    MetricSnapshot snap = reg.snapshot();
    const MetricValue *v = snap.find("fabric.utilSeries");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, MetricKind::timeSeries);
    EXPECT_EQ(v->binWidth, 2000u);
    ASSERT_EQ(v->bins.size(), 2u);
    EXPECT_DOUBLE_EQ(v->bins[1], 2.0);
}

/** makeReport() plus a histogram and an extra counter under a
 *  caller-chosen path, for the percentile / added-removed views. */
std::string
makeReportWith(std::uint64_t seed, const std::string &extra_path)
{
    RunConfig cfg;
    cfg.seed = seed;
    RunResult r;
    r.strategy = "CAIS";
    r.workload = "L1";
    r.makespan = 1000 + seed;

    MetricRegistry reg;
    Counter c;
    c.inc(seed);
    reg.addCounter(extra_path, &c);
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i % 50) + (seed == 1 ? 0 : 25));
    reg.addHistogram("switch0.merge.stagger", &h);
    return renderMetricsReport(cfg, r, reg.snapshot());
}

TEST(CaisReport, SummaryRendersHistogramPercentiles)
{
    report::Report rep;
    std::string error;
    ASSERT_TRUE(report::load(makeReportWith(1, "a.only"), "a.json",
                             rep, error));
    std::string s = report::summary(rep);
    EXPECT_NE(s.find("p999"), std::string::npos);
    EXPECT_NE(s.find("switch0.merge.stagger"), std::string::npos);
}

TEST(CaisReport, DiffRendersPercentilesAndAddedRemovedPaths)
{
    report::Report a, b;
    std::string error;
    ASSERT_TRUE(report::load(makeReportWith(1, "a.only"), "a.json", a,
                             error));
    ASSERT_TRUE(report::load(makeReportWith(2, "b.only"), "b.json", b,
                             error));
    std::string d = report::diff(a, b);
    // Histogram percentile shift is rendered...
    EXPECT_NE(d.find("p999 A -> B"), std::string::npos);
    EXPECT_NE(d.find("switch0.merge.stagger"), std::string::npos);
    // ...and paths present in only one report are called out rather
    // than silently skipped.
    EXPECT_NE(d.find("only in A"), std::string::npos);
    EXPECT_NE(d.find("- a.only"), std::string::npos);
    EXPECT_NE(d.find("only in B"), std::string::npos);
    EXPECT_NE(d.find("+ b.only"), std::string::npos);
}

} // namespace
