/**
 * @file
 * Tests for the cais-bound static performance-bound model (§6h) and
 * the V8/V9 post-run verification gate. The golden tables lock the
 * exact composite bound of every strategy on the flat fabric and on
 * nvl72 (the paper's Fig. 12 matrix), double-checking soundness:
 * every simulated makespan stays at or above its bound. Property
 * tests assert the bound is monotone in the machine resources it
 * models — giving the machine more link bandwidth, more SMs or more
 * HBM bandwidth can only lower (never raise) the floor.
 */

#include <gtest/gtest.h>

#include "analysis/bound_model.hh"
#include "analysis/causal_profile.hh"
#include "analysis/verify.hh"
#include "noc/topology.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

LlmConfig
fastModel()
{
    return llama7B().scaled(0.25, 0.125);
}

RunConfig
presetConfig(const std::string &preset)
{
    RunConfig cfg;
    cfg.topology = preset;
    if (!preset.empty())
        cfg.numGpus = FabricParams::preset(preset).numGpus;
    return cfg;
}

/** Flat plus every tiered preset. */
std::vector<std::string>
allShapes()
{
    std::vector<std::string> shapes = {""};
    for (const std::string &n : FabricParams::presetNames())
        shapes.push_back(n);
    return shapes;
}

/** Bound of a constructed-and-lowered (but never run) System. */
BoundResult
staticBound(const StrategySpec &spec, const OpGraph &graph,
            const RunConfig &cfg, const BoundOptions &opts = {})
{
    System sys(cfg.toSystemConfig(spec));
    GraphLowering lowering(sys, graph, spec.opts);
    lowering.lower();
    return computeBound(sys, opts);
}

struct Golden
{
    const char *name;
    Cycle makespan;
    Cycle bound;
};

/** llama7B().scaled(0.25, 0.125), SubLayer L1, default RunConfig. */
const Golden kFlat[] = {
    {"TP-NVLS", 44454ull, 13339ull},
    {"SP-NVLS", 49329ull, 15339ull},
    {"CoCoNet", 65018ull, 24231ull},
    {"FuseLib", 50608ull, 12282ull},
    {"T3", 44861ull, 12282ull},
    {"CoCoNet-NVLS", 47062ull, 23909ull},
    {"FuseLib-NVLS", 41711ull, 10909ull},
    {"T3-NVLS", 38836ull, 7398ull},
    {"LADM", 89330ull, 36987ull},
    {"CAIS-Base", 37374ull, 7898ull},
    {"CAIS", 35113ull, 5441ull},
};

/** Same workload on the nvl72 preset (LADM runs in its own test so
 *  ctest -j can overlap the slowest 72-GPU simulation). */
const Golden kNvl72[] = {
    {"TP-NVLS", 51083ull, 12956ull},
    {"SP-NVLS", 53516ull, 14956ull},
    {"CoCoNet", 196782ull, 46201ull},
    {"FuseLib", 180171ull, 46201ull},
    {"T3", 148925ull, 46201ull},
    {"CoCoNet-NVLS", 48414ull, 23909ull},
    {"FuseLib-NVLS", 48405ull, 10909ull},
    {"T3-NVLS", 43674ull, 7015ull},
    {"CAIS-Base", 42463ull, 7515ull},
    {"CAIS", 41678ull, 5441ull},
};

template <std::size_t N>
void
expectGoldenBounds(const std::string &preset,
                   const Golden (&table)[N])
{
    RunConfig cfg = presetConfig(preset);
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const Golden &gold : table) {
        RunResult r =
            runGraph(strategyByName(gold.name), g, cfg, "L1");
        EXPECT_EQ(r.makespan, gold.makespan)
            << preset << " / " << gold.name;
        EXPECT_EQ(r.boundComposite, gold.bound)
            << preset << " / " << gold.name;
        // Soundness: the run never beats its own floor (V8 would
        // also have aborted the run, but state it explicitly).
        EXPECT_GE(r.makespan, r.boundComposite)
            << preset << " / " << gold.name;
        EXPECT_FALSE(r.boundBinding.empty())
            << preset << " / " << gold.name;
        // The RunResult mirror is the max of its own classes.
        Cycle mx = std::max(
            {r.boundCompute, r.boundHbm, r.boundLink, r.boundMerge,
             r.boundCritPath});
        EXPECT_EQ(r.boundComposite, mx)
            << preset << " / " << gold.name;
    }
}

} // namespace

// ---------------------------------------------------------------
// Golden sim-vs-bound tables (Fig. 12 matrix, flat and nvl72).
// ---------------------------------------------------------------

TEST(BoundModel, FlatStrategiesMatchGoldenBounds)
{
    expectGoldenBounds("", kFlat);
}

TEST(BoundModel, Nvl72StrategiesMatchGoldenBounds)
{
    expectGoldenBounds("nvl72", kNvl72);
}

TEST(BoundModel, Nvl72LadmMatchesGoldenBound)
{
    RunConfig cfg = presetConfig("nvl72");
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunResult r = runGraph(strategyByName("LADM"), g, cfg, "L1");
    EXPECT_EQ(r.makespan, 2432792ull);
    EXPECT_EQ(r.boundComposite, 375153ull);
    EXPECT_EQ(r.boundBinding, "linkSerialization");
    EXPECT_GE(r.makespan, r.boundComposite);
}

// ---------------------------------------------------------------
// Static analyzer properties (no simulation involved).
// ---------------------------------------------------------------

TEST(BoundModel, StaticBoundMatchesRunResultAndIsRunInvariant)
{
    // computeBound is read-only over descriptors/config, so the
    // pre-run static value must equal what runGraph reports.
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    BoundResult b = staticBound(spec, g, cfg);
    RunResult r = runGraph(spec, g, cfg, "L1");
    EXPECT_EQ(b.composite, r.boundComposite);
    EXPECT_EQ(b.smCompute, r.boundCompute);
    EXPECT_EQ(b.hbm, r.boundHbm);
    EXPECT_EQ(b.linkSerialization, r.boundLink);
    EXPECT_EQ(b.mergeService, r.boundMerge);
    EXPECT_EQ(b.criticalPath, r.boundCritPath);
    EXPECT_EQ(b.binding, r.boundBinding);
}

TEST(BoundModel, CompositeIsMaxOfClassesAndBindingNamesIt)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const char *name : {"CAIS", "LADM", "TP-NVLS"}) {
        StrategySpec spec = strategyByName(name);
        BoundResult b = staticBound(spec, g, RunConfig{});
        Cycle mx = std::max({b.smCompute, b.hbm, b.linkSerialization,
                             b.mergeService, b.criticalPath});
        EXPECT_EQ(b.composite, mx) << name;
        EXPECT_EQ(b.byName(b.binding), b.composite) << name;
        EXPECT_GT(b.composite, 0ull) << name;
    }
}

TEST(BoundModel, ByNameResolvesEveryClassAndRejectsUnknown)
{
    BoundResult b;
    b.smCompute = 1;
    b.hbm = 2;
    b.linkSerialization = 3;
    b.mergeService = 4;
    b.criticalPath = 5;
    EXPECT_EQ(b.byName("smCompute"), 1ull);
    EXPECT_EQ(b.byName("hbm"), 2ull);
    EXPECT_EQ(b.byName("linkSerialization"), 3ull);
    EXPECT_EQ(b.byName("mergeService"), 4ull);
    EXPECT_EQ(b.byName("criticalPath"), 5ull);
    EXPECT_EQ(b.byName("nonesuch"), 0ull);
}

TEST(BoundModel, JsonCarriesSchemaAndEveryClass)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    BoundResult b = staticBound(strategyByName("CAIS"), g,
                                RunConfig{});
    std::string j = b.json();
    EXPECT_NE(j.find(boundSchemaVersion), std::string::npos);
    for (const char *key :
         {"smCompute", "hbm", "linkSerialization", "mergeService",
          "criticalPath", "composite", "binding"})
        EXPECT_NE(j.find(key), std::string::npos) << key;
}

// ---------------------------------------------------------------
// Monotonicity: more machine never raises the floor. Checked on the
// flat fabric and on every tiered preset.
// ---------------------------------------------------------------

TEST(BoundModel, BoundIsMonotoneInLinkBandwidthAcrossPresets)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const std::string &shape : allShapes()) {
        for (const char *name : {"CAIS", "CoCoNet"}) {
            StrategySpec spec = strategyByName(name);
            RunConfig cfg = presetConfig(shape);
            BoundResult base = staticBound(spec, g, cfg);
            cfg.perGpuBwPerDir *= 2.0;
            BoundResult faster = staticBound(spec, g, cfg);
            EXPECT_LE(faster.composite, base.composite)
                << "shape '" << shape << "' / " << name;
            EXPECT_LE(faster.linkSerialization,
                      base.linkSerialization)
                << "shape '" << shape << "' / " << name;
            EXPECT_LE(faster.mergeService, base.mergeService)
                << "shape '" << shape << "' / " << name;
        }
    }
}

TEST(BoundModel, BoundIsMonotoneInSmThroughputAcrossPresets)
{
    // SM-count monotonicity is an analyzer property over a FIXED
    // kernel set, so it is varied through the throughput scale
    // (slots x2 == twice the SMs serving the same TBs). Raising
    // cfg.gpu.numSms instead re-lowers the workload: the memory-
    // bound TB cost model splits hbmBytesPerCycle over the resident
    // TBs, so more SMs legitimately slow individual TBs down and
    // both the simulated makespan and its floor may rise together.
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const std::string &shape : allShapes()) {
        for (const char *name : {"CAIS", "CoCoNet"}) {
            StrategySpec spec = strategyByName(name);
            RunConfig cfg = presetConfig(shape);
            BoundResult base = staticBound(spec, g, cfg);
            BoundOptions more;
            more.smThroughputScale = 2.0;
            BoundResult bigger = staticBound(spec, g, cfg, more);
            EXPECT_LE(bigger.composite, base.composite)
                << "shape '" << shape << "' / " << name;
            EXPECT_LE(bigger.smCompute, base.smCompute)
                << "shape '" << shape << "' / " << name;
            EXPECT_LE(bigger.criticalPath, base.criticalPath)
                << "shape '" << shape << "' / " << name;
        }
    }
}

TEST(BoundModel, BoundIsMonotoneInHbmBandwidthAcrossPresets)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const std::string &shape : allShapes()) {
        for (const char *name : {"CAIS", "CoCoNet"}) {
            StrategySpec spec = strategyByName(name);
            RunConfig cfg = presetConfig(shape);
            BoundResult base = staticBound(spec, g, cfg);
            cfg.gpu.hbmBytesPerCycle *= 2.0;
            BoundResult faster = staticBound(spec, g, cfg);
            EXPECT_LE(faster.composite, base.composite)
                << "shape '" << shape << "' / " << name;
            EXPECT_LE(faster.hbm, base.hbm)
                << "shape '" << shape << "' / " << name;
        }
    }
}

TEST(BoundModel, DefectScalesOnlyEverInflateTheBound)
{
    // The seeded-defect hooks shrink the modelled throughput; the
    // bound must move the other way (up), and a scale of exactly 1
    // must be a no-op.
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    BoundResult base = staticBound(spec, g, cfg);
    BoundResult same = staticBound(spec, g, cfg, BoundOptions{});
    EXPECT_EQ(same.composite, base.composite);

    BoundOptions slow_sm;
    slow_sm.smThroughputScale = 0.25;
    BoundResult sm = staticBound(spec, g, cfg, slow_sm);
    EXPECT_GE(sm.smCompute, base.smCompute);
    EXPECT_GE(sm.composite, base.composite);

    BoundOptions slow_link;
    slow_link.linkBandwidthScale = 0.25;
    BoundResult ln = staticBound(spec, g, cfg, slow_link);
    EXPECT_GE(ln.linkSerialization, base.linkSerialization);
    EXPECT_GE(ln.composite, base.composite);
}

// ---------------------------------------------------------------
// V8: seeded bound defects trip the post-run gate.
// ---------------------------------------------------------------

TEST(BoundModel, V8TripsOnInflatedSmThroughputBound)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    RunResult r = runGraph(spec, g, cfg, "L1");

    BoundOptions defect;
    defect.smThroughputScale = 0.01; // modelled SMs 100x too slow
    BoundResult bad = staticBound(spec, g, cfg, defect);
    ASSERT_GT(bad.composite, r.makespan);

    System sys(cfg.toSystemConfig(spec));
    verify::VerifyResult v = verify::verifyPostRun(
        sys, bad, r.makespan, nullptr, {});
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.diagnostics[0].id, "V8");
    // The diagnostic names the violating resource and carries the
    // concrete numbers.
    bool named = false;
    for (const verify::Diagnostic &d : v.diagnostics)
        for (const std::string &p : d.path)
            if (p.find("resource:") == 0)
                named = true;
    EXPECT_TRUE(named);
    EXPECT_NE(v.diagnostics[0].message.find(
                  std::to_string(r.makespan)),
              std::string::npos);
}

TEST(BoundModel, V8TripsOnLoweredLinkBandwidthBound)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("LADM"); // link-bound already
    RunConfig cfg;
    RunResult r = runGraph(spec, g, cfg, "L1");

    BoundOptions defect;
    defect.linkBandwidthScale = 0.01; // modelled wires 100x too slow
    BoundResult bad = staticBound(spec, g, cfg, defect);
    ASSERT_GT(bad.composite, r.makespan);

    System sys(cfg.toSystemConfig(spec));
    verify::VerifyResult v = verify::verifyPostRun(
        sys, bad, r.makespan, nullptr, {});
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.diagnostics[0].id, "V8");
    bool link = false;
    for (const verify::Diagnostic &d : v.diagnostics)
        for (const std::string &p : d.path)
            if (p == "resource:linkSerialization")
                link = true;
    EXPECT_TRUE(link);
}

TEST(BoundModel, V8StaysQuietOnHealthyBoundAndHonorsSuppression)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    RunResult r = runGraph(spec, g, cfg, "L1");
    BoundResult good = staticBound(spec, g, cfg);
    System sys(cfg.toSystemConfig(spec));

    EXPECT_TRUE(
        verify::verifyPostRun(sys, good, r.makespan, nullptr, {})
            .ok());

    BoundOptions defect;
    defect.smThroughputScale = 0.01;
    BoundResult bad = staticBound(spec, g, cfg, defect);
    verify::Options suppress;
    suppress.suppress = {"V8"};
    EXPECT_TRUE(verify::verifyPostRun(sys, bad, r.makespan, nullptr,
                                      suppress)
                    .ok());
}

// ---------------------------------------------------------------
// V9: unexplained slack over the configured ratio.
// ---------------------------------------------------------------

TEST(BoundModel, V9FiresWhenSlackIsUnexplained)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    RunResult r = runGraph(spec, g, cfg, "L1");
    BoundResult b = staticBound(spec, g, cfg);
    ASSERT_GT(static_cast<double>(r.makespan),
              1.01 * static_cast<double>(b.composite));
    System sys(cfg.toSystemConfig(spec));

    verify::Options o;
    o.v9SlackRatio = 1.01;

    // No attribution at all: the slack cannot be explained.
    verify::VerifyResult none =
        verify::verifyPostRun(sys, b, r.makespan, nullptr, o);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.diagnostics[0].id, "V9");
    EXPECT_NE(none.diagnostics[0].message.find("no profiler"),
              std::string::npos);

    // A low-coverage attribution: V9 fires and names the dominant
    // wait class.
    Attribution thin;
    thin.makespan = r.makespan;
    thin.byClass[static_cast<std::size_t>(
        WaitClass::creditStall)] = r.makespan / 10;
    verify::VerifyResult low =
        verify::verifyPostRun(sys, b, r.makespan, &thin, o);
    ASSERT_FALSE(low.ok());
    EXPECT_EQ(low.diagnostics[0].id, "V9");
    EXPECT_NE(low.diagnostics[0].message.find("creditStall"),
              std::string::npos);
}

TEST(BoundModel, V9AcceptsExplainedSlackAndHonorsControls)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");
    RunConfig cfg;
    RunResult r = runGraph(spec, g, cfg, "L1");
    BoundResult b = staticBound(spec, g, cfg);
    System sys(cfg.toSystemConfig(spec));

    verify::Options o;
    o.v9SlackRatio = 1.01;

    // Full attribution: the profiler explains the slack, no V9.
    Attribution full;
    full.makespan = r.makespan;
    full.byClass[static_cast<std::size_t>(WaitClass::smCompute)] =
        r.makespan;
    EXPECT_TRUE(
        verify::verifyPostRun(sys, b, r.makespan, &full, o).ok());

    // Ratio 0 disables the rule entirely.
    verify::Options off;
    EXPECT_TRUE(
        verify::verifyPostRun(sys, b, r.makespan, nullptr, off)
            .ok());

    // A generous ratio the run stays under: no diagnostic.
    verify::Options generous;
    generous.v9SlackRatio = 1000.0;
    EXPECT_TRUE(
        verify::verifyPostRun(sys, b, r.makespan, nullptr, generous)
            .ok());

    // Explicit suppression wins even when the ratio would fire.
    verify::Options suppressed;
    suppressed.v9SlackRatio = 1.01;
    suppressed.suppress = {"V9"};
    EXPECT_TRUE(verify::verifyPostRun(sys, b, r.makespan, nullptr,
                                      suppressed)
                    .ok());
}

// ---------------------------------------------------------------
// The gate is read-only: gated and suppressed runs are bit-identical.
// ---------------------------------------------------------------

TEST(BoundModel, GatedRunIsBitIdenticalToSuppressedRun)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    StrategySpec spec = strategyByName("CAIS");

    RunConfig gated; // verify on, V8 armed, V9 armed via the ratio
    gated.boundSlackRatio = 1000.0;

    RunConfig suppressed;
    suppressed.verifySuppress = {"V8", "V9"};

    RunResult a = runGraph(spec, g, gated, "L1");
    RunResult b = runGraph(spec, g, suppressed, "L1");
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.boundComposite, b.boundComposite);
}
