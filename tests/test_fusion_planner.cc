/** @file Tests for the graph-level dataflow optimizer. */

#include <gtest/gtest.h>

#include "dataflow/fusion_planner.hh"
#include "workload/transformer.hh"

using namespace cais;

TEST(FusionPlanner, ClassifiesSubLayerTraffic)
{
    OpGraph g = buildSubLayer(llama7B(), SubLayerId::L1);
    // gemm-rs pushes reductions upstream; ag-gemm pulls downstream.
    EXPECT_EQ(FusionPlanner::classify(g, 0), TrafficDir::gpuToSwitch);
    EXPECT_EQ(FusionPlanner::classify(g, 1), TrafficDir::gpuToSwitch);
    EXPECT_EQ(FusionPlanner::classify(g, 2), TrafficDir::none);
    EXPECT_EQ(FusionPlanner::classify(g, 3), TrafficDir::switchToGpu);
    EXPECT_EQ(FusionPlanner::classify(g, 4), TrafficDir::switchToGpu);
}

TEST(FusionPlanner, PairsComplementaryGemms)
{
    OpGraph g = buildSubLayer(llama7B(), SubLayerId::L1);
    FusionPlan p = FusionPlanner().plan(g);

    ASSERT_EQ(p.asymmetricPairs.size(), 1u);
    auto [a, c] = p.asymmetricPairs[0];
    EXPECT_EQ(a, 0); // gemm-rs
    EXPECT_EQ(c, 4); // ag-gemm
    EXPECT_EQ(p.of(a).overlapsWith, c);
    EXPECT_EQ(p.of(c).overlapsWith, a);

    // Disjoint SM halves.
    EXPECT_DOUBLE_EQ(p.of(a).smFrom, 0.0);
    EXPECT_DOUBLE_EQ(p.of(a).smTo, 0.5);
    EXPECT_DOUBLE_EQ(p.of(c).smFrom, 0.5);
    EXPECT_DOUBLE_EQ(p.of(c).smTo, 1.0);
}

TEST(FusionPlanner, TileDepsFollowOption)
{
    OpGraph g = buildSubLayer(llama7B(), SubLayerId::L2);
    FusionOptions on;
    FusionPlan p1 = FusionPlanner().plan(g, on);
    for (const auto &s : p1.sched)
        EXPECT_TRUE(s.tileLevelDeps);

    FusionOptions off;
    off.enableTileDeps = false;
    off.enableAsymmetricOverlap = false;
    FusionPlan p2 = FusionPlanner().plan(g, off);
    for (const auto &s : p2.sched) {
        EXPECT_FALSE(s.tileLevelDeps);
        EXPECT_EQ(s.overlapsWith, invalidId);
        EXPECT_DOUBLE_EQ(s.smFrom, 0.0);
        EXPECT_DOUBLE_EQ(s.smTo, 1.0);
    }
}

TEST(FusionPlanner, RespectsPairDistance)
{
    OpGraph g = buildSubLayer(llama7B(), SubLayerId::L1);
    FusionOptions opt;
    opt.maxPairDistance = 1; // ag-gemm is several hops downstream
    FusionPlan p = FusionPlanner().plan(g, opt);
    EXPECT_TRUE(p.asymmetricPairs.empty());
}

TEST(FusionPlanner, FullLayerFindsBothPairs)
{
    OpGraph g = buildTransformerLayer(llama7B(), Pass::forward);
    FusionPlan p = FusionPlanner().plan(g);
    // attn.outproj <-> ffn.fc1 and ffn.fc2 <-> (next layer absent):
    // at least the intra-layer pair must be found.
    EXPECT_GE(p.asymmetricPairs.size(), 1u);
    for (auto [a, c] : p.asymmetricPairs) {
        EXPECT_EQ(g.node(a).kind, OpKind::gemmRowParallel);
        EXPECT_EQ(g.node(c).kind, OpKind::gemmColParallel);
    }
}

TEST(FusionPlanner, DirNames)
{
    EXPECT_STREQ(trafficDirName(TrafficDir::gpuToSwitch), "G2S");
    EXPECT_STREQ(trafficDirName(TrafficDir::switchToGpu), "S2G");
    EXPECT_STREQ(trafficDirName(TrafficDir::balanced), "balanced");
}
