/**
 * @file
 * Tests for the thread-block state machine: compute/pull overlap,
 * pre-access gating, push retirement semantics, and jitter bounds.
 */

#include <gtest/gtest.h>

#include "runtime/system.hh"

using namespace cais;

namespace
{

struct TbRig
{
    SystemConfig sc;
    std::unique_ptr<System> sys;
    TbRunContext ctx;

    TbRig()
    {
        sc.fabric.numGpus = 2;
        sc.fabric.numSwitches = 1;
        sc.gpu.numSms = 2;
        sc.gpu.jitterSigma = 0.0;
        sc.gpu.maxStartSkew = 0;
        sys = std::make_unique<System>(sc);
        ctx = sys->gpu(0).tbContext(2);
    }
};

} // namespace

TEST(ThreadBlock, ComputeOnlyFinishesAfterDuration)
{
    TbRig rig;
    KernelDesc k;
    k.name = "t";
    TbDesc tb;
    tb.computeCycles = 500;

    bool produced = false, finished = false;
    Cycle at = 0;
    TbRun run(rig.ctx, 0, k, tb, 0,
              [&](TbRun &) { produced = true; },
              [&](TbRun &) {
                  finished = true;
                  at = rig.sys->eq().now();
              });
    run.start();
    rig.sys->eq().runAll();
    EXPECT_TRUE(produced);
    EXPECT_TRUE(finished);
    EXPECT_EQ(at, 500u);
}

TEST(ThreadBlock, PullsOverlapCompute)
{
    // A TB with 500 cycles of compute and a remote pull finishing
    // later must take max(compute, pull), not the sum.
    TbRig rig;
    KernelDesc k;
    k.name = "t";
    TbDesc tb;
    tb.computeCycles = 500;
    RemoteOp op;
    op.kind = RemoteOpKind::plainLoad;
    op.base = makeAddr(1, 0x1000);
    op.bytes = 64 * 1024; // ~1.3 us round trip
    tb.pullOps.push_back(op);

    Cycle at = 0;
    TbRun run(rig.ctx, 0, k, tb, 0, nullptr,
              [&](TbRun &) { at = rig.sys->eq().now(); });
    run.start();
    rig.sys->eq().runAll();
    // Far less than compute+transfer serialized, and at least the
    // transfer itself.
    EXPECT_GT(at, 1000u);
    EXPECT_LT(at, 4000u);

    // Reference: the same pull alone takes nearly the same time.
    TbRig rig2;
    TbDesc tb2 = tb;
    tb2.computeCycles = 0;
    Cycle at2 = 0;
    TbRun run2(rig2.ctx, 0, k, tb2, 0, nullptr,
               [&](TbRun &) { at2 = rig2.sys->eq().now(); });
    run2.start();
    rig2.sys->eq().runAll();
    EXPECT_NEAR(static_cast<double>(at),
                static_cast<double>(at2), 600.0);
}

TEST(ThreadBlock, PushesArePostedWrites)
{
    // The CTA retires before its pushes are delivered; delivery still
    // happens afterwards.
    TbRig rig;
    TensorInfo &t = rig.sys->defineTensor(
        "o", TensorLayout::rowShardedHome, 2 * 128, 16, 2, 128, 1);
    KernelDesc k;
    k.name = "t";
    TbDesc tb;
    tb.computeCycles = 10;
    RemoteOp op;
    op.kind = RemoteOpKind::plainWrite;
    op.base = t.tileAddr(1); // homed on GPU 1
    op.bytes = t.bytesPerTile;
    tb.pushOps.push_back(op);

    Cycle finished_at = 0;
    TbRun run(rig.ctx, 0, k, tb, 0, nullptr,
              [&](TbRun &) { finished_at = rig.sys->eq().now(); });
    run.start();
    rig.sys->eq().runAll();
    EXPECT_LT(finished_at, 200u); // retired right after compute
    EXPECT_TRUE(rig.sys->tracker(t.tracker).ready(1, 1)); // delivered
}

TEST(ThreadBlock, PreAccessSyncGatesCaisLoads)
{
    // Two GPUs' TBs in one group: the first to arrive waits at the
    // pre-access rendezvous for the peer (expected = G-1 = 1 means a
    // single requester releases immediately; use both TBs pulling).
    TbRig rig;
    KernelDesc k;
    k.name = "t";
    k.preAccessSync = true;
    TbDesc tb;
    tb.computeCycles = 0;
    tb.group = 3;
    RemoteOp op;
    op.kind = RemoteOpKind::caisLoad;
    op.base = makeAddr(0, 0x9000);
    op.bytes = 4096;
    op.expected = 1;
    tb.pullOps.push_back(op);

    int done = 0;
    TbRunContext c1 = rig.sys->gpu(1).tbContext(2);
    TbRun r1(c1, 1, k, tb, 0, nullptr, [&](TbRun &) { ++done; });
    r1.start();
    // Alone, GPU 1's TB waits: pre-access expects G-1 = 1 requester —
    // it IS the single requester, so it releases and completes.
    rig.sys->eq().runAll();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(rig.sys->gpu(1).synchronizer().releases(), 1u);
}

TEST(ThreadBlock, JitterStaysWithinClampBounds)
{
    SystemConfig sc;
    sc.fabric.numGpus = 2;
    sc.fabric.numSwitches = 1;
    sc.gpu.jitterSigma = 0.3;
    sc.gpu.maxStartSkew = 0;
    System sys(sc);
    KernelDesc k;
    k.name = "t";
    TbDesc tb;
    tb.computeCycles = 1000;

    for (int i = 0; i < 50; ++i) {
        Cycle start = sys.eq().now();
        Cycle end = 0;
        TbRunContext ctx = sys.gpu(0).tbContext(2);
        TbRun run(ctx, 0, k, tb, i, nullptr,
                  [&](TbRun &) { end = sys.eq().now(); });
        run.start();
        sys.eq().runAll();
        Cycle dur = end - start;
        EXPECT_GE(dur, 500u);  // clamp floor 0.5x
        EXPECT_LE(dur, 1800u); // clamp ceiling 1.8x
    }
}
