/** @file Tests for logging/formatting helpers. */

#include <gtest/gtest.h>

#include <thread>

#include "common/log.hh"
#include "common/types.hh"

using namespace cais;

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("empty"), "empty");
    // Long strings are not truncated.
    std::string big(500, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 500u);
}

TEST(Log, LevelsRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::quiet);
    EXPECT_EQ(logLevel(), LogLevel::quiet);
    inform("suppressed %d", 1); // must not crash
    setLogLevel(LogLevel::verbose);
    informVerbose("verbose %d", 2);
    setLogLevel(before);
}

TEST(Log, ScopedLevelOverridesAndRestores)
{
    LogLevel before = logLevel();
    {
        ScopedLogLevel quiet(LogLevel::quiet);
        EXPECT_EQ(logLevel(), LogLevel::quiet);
        {
            ScopedLogLevel verbose(LogLevel::verbose);
            EXPECT_EQ(logLevel(), LogLevel::verbose);
        }
        EXPECT_EQ(logLevel(), LogLevel::quiet);
    }
    EXPECT_EQ(logLevel(), before);
    // The override is thread-local: another thread sees the global.
    {
        ScopedLogLevel quiet(LogLevel::quiet);
        LogLevel seen = LogLevel::quiet;
        std::thread t([&] { seen = logLevel(); });
        t.join();
        EXPECT_EQ(seen, before);
    }
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(LogDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(Types, AddressHomeEncoding)
{
    for (GpuId g : {0, 1, 7, 31}) {
        Addr a = makeAddr(g, 0x12345);
        EXPECT_EQ(addrHomeGpu(a), g);
        EXPECT_EQ(addrOffset(a), 0x12345u);
    }
    EXPECT_EQ(cyclesPerUs, 1000u);
    EXPECT_EQ(cyclesPerMs, 1000u * 1000u);
}
