/**
 * @file
 * Tests for the assembled fabric: routing convergence end to end,
 * utilization accounting across links, bidirectional traffic, and
 * configuration validation.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"

using namespace cais;

namespace
{

struct CountingSink : public PacketSink
{
    int got = 0;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        (void)pkt;
        ++got;
        from->returnCredit(vc);
    }
};

FabricParams
params(int gpus = 4, int switches = 2)
{
    FabricParams p;
    p.numGpus = gpus;
    p.numSwitches = switches;
    return p;
}

} // namespace

TEST(Fabric, ForwardsGpuToGpuThroughHashedSwitch)
{
    PacketIdAllocator ids;
    EventQueue eq;
    Fabric f(eq, params());
    CountingSink sinks[4];
    for (GpuId g = 0; g < 4; ++g)
        f.attachGpu(g, &sinks[g]);

    Addr addr = makeAddr(2, 0x1000);
    Packet p = makePacket(ids, PacketType::writeReq, 0, 2);
    p.addr = addr;
    p.payloadBytes = 512;
    f.sendFromGpu(0, std::move(p));
    eq.runAll();

    EXPECT_EQ(sinks[2].got, 1);
    // The hashed switch carried it; the other switch is untouched.
    SwitchId s = f.routeAddr(addr);
    EXPECT_EQ(f.switchChip(s).packetsForwarded(), 1u);
    EXPECT_EQ(f.switchChip(1 - s).packetsForwarded(), 0u);
}

TEST(Fabric, MergeableRequestsConvergeOnOneSwitch)
{
    PacketIdAllocator ids;
    EventQueue eq;
    Fabric f(eq, params());
    CountingSink sinks[4];
    for (GpuId g = 0; g < 4; ++g)
        f.attachGpu(g, &sinks[g]);

    // Same address from every GPU must use the same switch
    // (merging convergence, Sec. III-A.5) even without a compute
    // handler (packets forward to the home GPU here).
    Addr addr = makeAddr(3, 0x42000);
    SwitchId expect = f.routeAddr(addr);
    for (GpuId g = 0; g < 3; ++g) {
        Packet p = makePacket(ids, PacketType::writeReq, g, 3);
        p.addr = addr;
        p.payloadBytes = 64;
        f.sendFromGpu(g, std::move(p));
    }
    eq.runAll();
    EXPECT_EQ(f.switchChip(expect).packetsForwarded(), 3u);
    EXPECT_EQ(sinks[3].got, 3);
}

TEST(Fabric, SyncTrafficRoutesByGroup)
{
    PacketIdAllocator ids;
    EventQueue eq;
    FabricParams fp = params();
    Fabric f(eq, fp);
    CountingSink sinks[4];
    for (GpuId g = 0; g < 4; ++g)
        f.attachGpu(g, &sinks[g]);

    GroupId grp = 17;
    SwitchId expect = f.routeGroup(grp);
    // Without a compute handler the packet forwards like unicast; the
    // point under test is the group-hash switch selection.
    Packet p = makePacket(ids, PacketType::groupSyncReq, 0, 1);
    p.group = grp;
    p.expected = 4;
    p.issuerGpu = 0;
    f.sendFromGpu(0, std::move(p));
    eq.runAll();
    EXPECT_EQ(sinks[1].got, 1);
    EXPECT_GT(f.uplink(0, expect).totalPackets(), 0u);
    for (SwitchId s = 0; s < 2; ++s) {
        if (s != expect) {
            EXPECT_EQ(f.uplink(0, s).totalPackets(), 0u);
        }
    }
}

TEST(Fabric, UtilizationAccountsBothDirections)
{
    PacketIdAllocator ids;
    EventQueue eq;
    Fabric f(eq, params(2, 1));
    CountingSink sinks[2];
    f.attachGpu(0, &sinks[0]);
    f.attachGpu(1, &sinks[1]);

    Packet p = makePacket(ids, PacketType::writeReq, 0, 1);
    p.addr = makeAddr(1, 0);
    p.payloadBytes = 1 << 16;
    f.sendFromGpu(0, std::move(p));
    eq.runAll();

    Cycle end = eq.now();
    EXPECT_GT(f.dirUtilization(true, 0, end), 0.0);  // up: g0->sw
    EXPECT_GT(f.dirUtilization(false, 0, end), 0.0); // down: sw->g1
    EXPECT_GT(f.totalWireBytes(), 2u * (1u << 16));  // both hops
    EXPECT_FALSE(f.utilizationSeries(0, end).empty());
}

TEST(Fabric, PerLinkBandwidthSplitsAcrossSwitches)
{
    FabricParams p4 = params(8, 4);
    EXPECT_DOUBLE_EQ(p4.perLinkBytesPerCycle(), 450.0 / 4.0);
    FabricParams p2 = params(8, 2);
    EXPECT_DOUBLE_EQ(p2.perLinkBytesPerCycle(), 225.0);
    EXPECT_NE(p4.str().find("8 GPUs"), std::string::npos);
}

TEST(FabricDeathTest, InvalidConfigsAreFatal)
{
    FabricParams bad = params();
    bad.numGpus = 1;
    EXPECT_DEATH(bad.validate(), "at least 2 GPUs");
    FabricParams bad2 = params();
    bad2.sw.numVcs = 2;
    EXPECT_DEATH(bad2.validate(), "VCs");
}
