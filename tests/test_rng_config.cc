/** @file Tests for the deterministic RNG and parameter parsing. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"

using namespace cais;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 5);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 5);
        lo |= v == 3;
        hi |= v == 5;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Params, ParsesTypedValues)
{
    Params p;
    EXPECT_TRUE(p.parseToken("gpus=8"));
    EXPECT_TRUE(p.parseToken("bw=450.5"));
    EXPECT_TRUE(p.parseToken("name=llama"));
    EXPECT_TRUE(p.parseToken("fast=true"));
    EXPECT_FALSE(p.parseToken("notkv"));
    EXPECT_FALSE(p.parseToken("=bad"));

    EXPECT_EQ(p.getInt("gpus", 0), 8);
    EXPECT_DOUBLE_EQ(p.getDouble("bw", 0.0), 450.5);
    EXPECT_EQ(p.getString("name", ""), "llama");
    EXPECT_TRUE(p.getBool("fast", false));
    EXPECT_EQ(p.getInt("missing", 42), 42);
}

TEST(Params, LaterValuesOverrideAndKeysKeepOrder)
{
    Params p;
    p.parseToken("a=1");
    p.parseToken("b=2");
    p.parseToken("a=3");
    EXPECT_EQ(p.getInt("a", 0), 3);
    ASSERT_EQ(p.keys().size(), 2u);
    EXPECT_EQ(p.keys()[0], "a");
    EXPECT_EQ(p.keys()[1], "b");
}
