/** @file Tests for eviction policy, merging table, CAM and throttle. */

#include <gtest/gtest.h>

#include "switchcompute/cam_table.hh"
#include "switchcompute/eviction.hh"
#include "switchcompute/throttle.hh"

using namespace cais;

TEST(CamTable, LookupInsertErase)
{
    CamLookupTable cam;
    EXPECT_EQ(cam.lookup(0x1000, true), CamLookupTable::noSlot);
    cam.insert(0x1000, true, 3);
    cam.insert(0x1000, false, 5); // same addr, other type
    EXPECT_EQ(cam.lookup(0x1000, true), 3);
    EXPECT_EQ(cam.lookup(0x1000, false), 5);
    cam.erase(0x1000, true);
    EXPECT_EQ(cam.lookup(0x1000, true), CamLookupTable::noSlot);
    EXPECT_EQ(cam.size(), 1u);
}

TEST(CamTableDeathTest, DuplicateInsertPanics)
{
    CamLookupTable cam;
    cam.insert(0x10, true, 0);
    EXPECT_DEATH(cam.insert(0x10, true, 1), "duplicate");
}

TEST(MergingTable, CapacityInEntries)
{
    MergingTable tbl(3 * 4096, 4096);
    EXPECT_EQ(tbl.capacityEntries(), 3u);
    EXPECT_NE(tbl.allocate(1 << 12, true), nullptr);
    EXPECT_NE(tbl.allocate(2 << 12, true), nullptr);
    EXPECT_NE(tbl.allocate(3 << 12, false), nullptr);
    EXPECT_TRUE(tbl.full());
    EXPECT_EQ(tbl.allocate(4 << 12, true), nullptr);
}

TEST(MergingTable, ReleaseRecyclesSlots)
{
    MergingTable tbl(2 * 4096, 4096);
    MergeEntry *a = tbl.allocate(0x1000, true);
    tbl.allocate(0x2000, true);
    EXPECT_TRUE(tbl.full());
    tbl.release(a);
    EXPECT_FALSE(tbl.full());
    EXPECT_EQ(tbl.liveEntries(), 1u);
    EXPECT_NE(tbl.allocate(0x3000, false), nullptr);
    EXPECT_EQ(tbl.peakEntries(), 2u);
}

TEST(MergingTable, UnboundedNeverFull)
{
    MergingTable tbl(0, 4096);
    for (int i = 0; i < 1000; ++i)
        ASSERT_NE(tbl.allocate(static_cast<Addr>(i) << 12, false),
                  nullptr);
    EXPECT_FALSE(tbl.full());
    EXPECT_EQ(tbl.peakBytes(), 1000u * 4096u);
}

TEST(EvictionPolicy, PicksLruAmongEvictable)
{
    // Bounded table: slots are pre-reserved, so entry pointers stay
    // valid across allocations.
    MergingTable tbl(16 * 4096, 4096);
    EvictionPolicy pol(1000);

    MergeEntry *a = tbl.allocate(0x1000, false);
    a->lastAccess = 100;
    MergeEntry *b = tbl.allocate(0x2000, false);
    b->lastAccess = 50;
    MergeEntry *c = tbl.allocate(0x3000, true); // loadWait: protected
    c->lastAccess = 10;

    EXPECT_EQ(pol.pickLruVictim(tbl), b);
    b->lastAccess = 200;
    EXPECT_EQ(pol.pickLruVictim(tbl), a);
}

TEST(EvictionPolicy, LoadWaitNeverEvicted)
{
    MergingTable tbl(16 * 4096, 4096);
    EvictionPolicy pol(1000);
    tbl.allocate(0x1000, true); // loadWait
    EXPECT_EQ(pol.pickLruVictim(tbl), nullptr);
    EXPECT_TRUE(pol.expired(tbl, 1u << 20).empty());
}

TEST(EvictionPolicy, TimeoutCollectsStaleSessions)
{
    MergingTable tbl(16 * 4096, 4096);
    EvictionPolicy pol(1000);
    MergeEntry *a = tbl.allocate(0x1000, false);
    a->lastAccess = 0;
    MergeEntry *b = tbl.allocate(0x2000, false);
    b->lastAccess = 900;
    auto victims = pol.expired(tbl, 1500);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0], a);
}

TEST(Throttle, HintsWhenGpuRunsAhead)
{
    ThrottleController tc(4, 3, 2000, 100);
    std::vector<GpuId> hinted;
    tc.setHintCallback([&](GpuId g, GroupId, Cycle pause) {
        hinted.push_back(g);
        EXPECT_EQ(pause, 2000u);
    });

    // GPU 0 opens 4 unmatched contributions in group 1.
    for (int i = 0; i < 4; ++i)
        tc.onContribution(1, 0, static_cast<Cycle>(i) * 200);
    ASSERT_EQ(hinted.size(), 1u);
    EXPECT_EQ(hinted[0], 0);
    EXPECT_EQ(tc.unmatched(1, 0), 4);
}

TEST(Throttle, SessionCloseDecrementsContributors)
{
    ThrottleController tc(4, 100, 2000, 100);
    tc.onContribution(2, 0, 0);
    tc.onContribution(2, 1, 0);
    EXPECT_EQ(tc.unmatched(2, 0), 1);
    NodeMask closed;
    closed.set(0);
    closed.set(1);
    tc.onSessionClose(2, closed);
    EXPECT_EQ(tc.unmatched(2, 0), 0);
    EXPECT_EQ(tc.unmatched(2, 1), 0);
}

TEST(Throttle, HintIntervalRateLimits)
{
    ThrottleController tc(2, 1, 500, 1000);
    int hints = 0;
    tc.setHintCallback([&](GpuId, GroupId, Cycle) { ++hints; });
    for (int i = 0; i < 10; ++i)
        tc.onContribution(0, 0, 100 + static_cast<Cycle>(i));
    EXPECT_EQ(hints, 1); // within one interval
    tc.onContribution(0, 0, 5000);
    EXPECT_EQ(hints, 2);
}

TEST(Throttle, IgnoresUngroupedTraffic)
{
    ThrottleController tc(2, 1, 500, 10);
    int hints = 0;
    tc.setHintCallback([&](GpuId, GroupId, Cycle) { ++hints; });
    for (int i = 0; i < 10; ++i)
        tc.onContribution(invalidId, 0, static_cast<Cycle>(i) * 100);
    EXPECT_EQ(hints, 0);
}
