/** @file Tests for standalone collectives and the analytic models. */

#include <gtest/gtest.h>

#include "workload/collectives.hh"

using namespace cais;

namespace
{

SystemConfig
collectiveConfig()
{
    SystemConfig c;
    c.fabric.numGpus = 4;
    c.fabric.numSwitches = 2;
    c.gpu.numSms = 8;
    c.gpu.jitterSigma = 0.0;
    c.gpu.maxStartSkew = 0;
    c.gpu.kernelLaunchOverhead = 0;
    return c;
}

} // namespace

TEST(Collectives, NvlsAllReduceCompletesAllReplicas)
{
    System sys(collectiveConfig());
    CollectiveBench b = buildNvlsAllReduce(sys, 8 << 20, 18);
    sys.run();
    EXPECT_GT(sys.makespan(), 0u);
    EXPECT_TRUE(sys.tracker(
        sys.kernel(b.kernel).producesTracker).complete());
}

TEST(Collectives, NvlsAllReduceNearAnalyticTime)
{
    SystemConfig cfg = collectiveConfig();
    System sys(cfg);
    std::uint64_t bytes = 16 << 20;
    CollectiveBench b = buildNvlsAllReduce(sys, bytes, 18);
    sys.run();

    // Compare with the analytic model at protocol-derated bandwidth.
    double analytic = nvlsAllReduceAnalyticCycles(
        4, cfg.fabric.perGpuBytesPerCycle /
            (1.0 + 1.0 / protocolPadDivisor),
        b.bytes, 2 * cfg.fabric.linkLatency);
    double sim = static_cast<double>(sys.makespan());
    EXPECT_NEAR(sim / analytic, 1.0, 0.40);
}

TEST(Collectives, SoftwareAllReduceSlowerThanNvls)
{
    std::uint64_t bytes = 8 << 20;
    System a(collectiveConfig());
    CollectiveBench nv = buildNvlsAllReduce(a, bytes, 18);
    a.run();
    System b(collectiveConfig());
    CollectiveBench sw = buildSoftwareAllReduce(b, bytes, 18);
    b.run();
    EXPECT_EQ(nv.bytes, sw.bytes);
    // NVLS saves the 2(G-1)/G vs (G+1)/G volume difference.
    EXPECT_GT(b.makespan(), a.makespan());
    EXPECT_TRUE(b.tracker(
        b.kernel(sw.kernel).producesTracker).complete());
}

TEST(Collectives, AnalyticBandwidthScalesWithMessageSize)
{
    // Latency amortizes: bus bandwidth grows and saturates.
    double bw_small = allReduceBusBw(
        8, 1 << 20,
        nvlsAllReduceAnalyticCycles(8, 450.0, 1 << 20, 1000));
    double bw_big = allReduceBusBw(
        8, 1 << 30,
        nvlsAllReduceAnalyticCycles(8, 450.0, 1 << 30, 1000));
    EXPECT_GT(bw_big, bw_small);
    // Asymptote: 2(G-1)/(G+1) x per-direction bandwidth.
    EXPECT_NEAR(bw_big, 450.0 * 14.0 / 9.0, 10.0);
}

TEST(Collectives, PrecontributeMakesTensorReady)
{
    System sys(collectiveConfig());
    TensorInfo &t = sys.defineTensor(
        "pre", TensorLayout::perGpuPrivate, 4 * 128, 64, 2, 128, 3);
    EXPECT_FALSE(sys.tracker(t.tracker).complete());
    precontribute(sys, t);
    EXPECT_TRUE(sys.tracker(t.tracker).complete());
}
