/** @file Tests for strategy presets and graph lowering. */

#include <gtest/gtest.h>

#include "runtime/execution_strategy.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig c;
    c.fabric.numGpus = 4;
    c.fabric.numSwitches = 2;
    c.gpu.numSms = 8;
    c.gpu.jitterSigma = 0.0;
    c.gpu.maxStartSkew = 0;
    return c;
}

LlmConfig
tinyModel()
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.5);
    m.batch = 1;
    return m;
}

} // namespace

TEST(Strategies, RegistryContainsPaperBaselines)
{
    auto all = allStrategies();
    ASSERT_EQ(all.size(), 11u);
    EXPECT_EQ(all[0].name, "TP-NVLS");
    EXPECT_EQ(all[1].name, "SP-NVLS");
    EXPECT_EQ(all[8].name, "LADM");
    EXPECT_EQ(all[9].name, "CAIS-Base");
    EXPECT_EQ(all[10].name, "CAIS");
}

TEST(Strategies, LookupByNameIncludesAblations)
{
    EXPECT_EQ(strategyByName("CAIS-Partial").unifiedDataVc, true);
    EXPECT_FALSE(strategyByName("CAIS-w/o-Coord").opts.caisCoordination);
    EXPECT_TRUE(strategyByName("CAIS-w/o-Coord").opts.graphOptimizer);
    EXPECT_DEATH(strategyByName("NoSuch"), "unknown strategy");
}

TEST(Strategies, PresetFlagsMatchDescriptions)
{
    EXPECT_TRUE(makeTpNvls().opts.reassociateToAllReduce);
    EXPECT_FALSE(makeSpNvls().opts.reassociateToAllReduce);
    EXPECT_EQ(makeT3(true).opts.collectives, CollectiveImpl::t3);
    EXPECT_TRUE(makeT3(true).opts.t3NvlsReduction);
    EXPECT_FALSE(makeT3(false).opts.t3NvlsAllGather);
    EXPECT_GT(makeCoconet(false).opts.perCommTbOverhead, 0u);
    EXPECT_EQ(makeFuselib(false).opts.perCommTbOverhead, 0u);
    EXPECT_TRUE(makeCais().opts.caisCoordination);
    EXPECT_FALSE(makeCaisBase().opts.graphOptimizer);
}

TEST(Lowering, CaisFoldsCollectivesIntoComputeKernels)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeCais().opts);
    low.lower();

    // CAIS: gemm-rs, ln, stage, ag-gemm -> 4 kernels, no standalone
    // collective kernels with multimem ops.
    EXPECT_EQ(sys.numKernels(), 4u);
    // The RS op's kernel is the producing GEMM (folded).
    EXPECT_EQ(low.opKernel(1), low.opKernel(0));
    // AG materializes as the stage kernel feeding the consumer.
    EXPECT_NE(low.opTensor(3), nullptr);

    // GEMM-RS TBs push red.cais; no kernel-level barriers anywhere.
    for (std::size_t k = 0; k < sys.numKernels(); ++k)
        EXPECT_TRUE(sys.kernel(static_cast<KernelId>(k))
                        .kernelDeps.empty());
}

TEST(Lowering, CaisCoordinationAddsGroupsAndSync)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeCais().opts);
    low.lower();

    const KernelDesc &gemm_rs = sys.kernel(low.opKernel(0));
    EXPECT_TRUE(gemm_rs.preLaunchSync);
    EXPECT_TRUE(gemm_rs.preAccessSync);
    bool any_group = false;
    for (const auto &tb : gemm_rs.grids[0])
        any_group |= tb.group != invalidId;
    EXPECT_TRUE(any_group);

    // CAIS-Base: no groups, no sync, but barriers between operators.
    System sys2(tinyConfig());
    GraphLowering low2(sys2, g, makeCaisBase().opts);
    low2.lower();
    const KernelDesc &base_rs = sys2.kernel(low2.opKernel(0));
    EXPECT_FALSE(base_rs.preLaunchSync);
    for (const auto &tb : base_rs.grids[0])
        EXPECT_EQ(tb.group, invalidId);
    const KernelDesc &base_ln = sys2.kernel(low2.opKernel(2));
    EXPECT_FALSE(base_ln.kernelDeps.empty());
}

TEST(Lowering, NvlsStrategyEmitsCollectiveKernels)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeSpNvls().opts);
    low.lower();

    // gemm, nvls-rs, ln, nvls-ag, gemm -> 5 kernels with barriers.
    EXPECT_EQ(sys.numKernels(), 5u);
    int comm = 0;
    for (std::size_t k = 0; k < sys.numKernels(); ++k)
        comm += sys.kernel(static_cast<KernelId>(k)).commKernel;
    EXPECT_EQ(comm, 2);
}

TEST(Lowering, ReassociationCollapsesRsAgIntoAllReduce)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeTpNvls().opts);
    low.lower();

    // gemm, nvls-ar, ln, gemm (AG is a no-op on replicated data).
    EXPECT_EQ(sys.numKernels(), 4u);
    EXPECT_EQ(low.opKernel(3), low.opKernel(2));
    EXPECT_EQ(low.opTensor(3), low.opTensor(2));
}

TEST(Lowering, T3FusesReductionIntoGemm)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeT3(false).opts);
    low.lower();

    const KernelDesc &gemm = sys.kernel(low.opKernel(0));
    bool has_dma_push = false;
    for (const auto &tb : gemm.grids[1])
        for (const auto &op : tb.pushOps)
            has_dma_push |= op.kind == RemoteOpKind::plainWrite;
    EXPECT_TRUE(has_dma_push);
    // T3-NVLS routes the DMA through the switch reducer instead.
    System sys2(tinyConfig());
    GraphLowering low2(sys2, g, makeT3(true).opts);
    low2.lower();
    bool has_red = false;
    for (const auto &tb : sys2.kernel(low2.opKernel(0)).grids[1])
        for (const auto &op : tb.pushOps)
            has_red |= op.kind == RemoteOpKind::caisRed;
    EXPECT_TRUE(has_red);
}

TEST(Lowering, LadmPullsEveryPeerPartial)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeLadm().opts);
    low.lower();

    // Find the LADM AR kernel and check each TB pulls G-1 partials.
    bool found = false;
    for (std::size_t k = 0; k < sys.numKernels(); ++k) {
        const KernelDesc &kd = sys.kernel(static_cast<KernelId>(k));
        if (kd.name.find("ladm") == std::string::npos)
            continue;
        found = true;
        for (const auto &tb : kd.grids[0])
            EXPECT_EQ(tb.pullOps.size(), 3u);
    }
    EXPECT_TRUE(found);
}

TEST(Lowering, AsymmetricOverlapAssignsSmHalves)
{
    System sys(tinyConfig());
    OpGraph g = buildSubLayer(tinyModel(), SubLayerId::L1);
    GraphLowering low(sys, g, makeCais().opts);
    low.lower();

    const KernelDesc &rs = sys.kernel(low.opKernel(0));
    const KernelDesc &ag = sys.kernel(low.opKernel(4));
    EXPECT_DOUBLE_EQ(rs.smFrom, 0.0);
    EXPECT_DOUBLE_EQ(rs.smTo, 0.5);
    EXPECT_DOUBLE_EQ(ag.smFrom, 0.5);
    EXPECT_DOUBLE_EQ(ag.smTo, 1.0);
}
