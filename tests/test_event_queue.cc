/** @file Unit tests for the discrete-event simulation core. */

#include <gtest/gtest.h>

#include <random>

#include "common/event_queue.hh"

using namespace cais;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleFurtherEvents)
{
    EventQueue eq;
    int hits = 0;
    std::function<void()> chain = [&] {
        ++hits;
        if (hits < 10)
            eq.scheduleAfter(5, chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(hits, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int hits = 0;
    for (Cycle t = 0; t < 100; t += 10)
        eq.schedule(t, [&] { ++hits; });
    std::uint64_t n = eq.runUntil(45);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(hits, 5);
    EXPECT_EQ(eq.size(), 5u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, RunAllHonorsEventBudget)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.scheduleAfter(1, forever); };
    eq.schedule(0, forever);
    std::uint64_t n = eq.runAll(1000);
    EXPECT_EQ(n, 1000u);
}

TEST(EventQueue, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

// ---------------------------------------------------------------------
// Bucketed-vs-heap scheduler equivalence and boundary behavior.
// ---------------------------------------------------------------------

/** Both scheduler kinds must produce the same execution order. */
static std::vector<int>
runRandomSchedule(EventQueue::SchedulerKind kind, unsigned seed)
{
    EventQueue eq(kind);
    std::vector<int> order;
    std::mt19937 rng(seed);
    // Mixed same-cycle bursts, in-window deltas, and far-heap deltas.
    std::uniform_int_distribution<Cycle> delta(0, 3 * EventQueue::nearWindow);
    int id = 0;
    for (int i = 0; i < 64; ++i)
        eq.schedule(delta(rng), [&order, tag = id++] {
            order.push_back(tag);
        });
    // Self-scheduling events interleave with the static batch.
    int hops = 0;
    std::function<void()> chain = [&] {
        order.push_back(1000 + hops);
        if (++hops < 256)
            eq.scheduleAfter(1 + static_cast<Cycle>(hops % 97), chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    return order;
}

TEST(EventQueue, SchedulerKindsAgreeOnRandomSchedule)
{
    for (unsigned seed : {1u, 2u, 42u}) {
        auto bucketed =
            runRandomSchedule(EventQueue::SchedulerKind::bucketed, seed);
        auto heap = runRandomSchedule(EventQueue::SchedulerKind::heap, seed);
        EXPECT_EQ(bucketed, heap) << "seed " << seed;
    }
}

TEST(EventQueue, SameCycleFifoAcrossBucketAndHeap)
{
    // Events landing on one cycle run in insertion order even when
    // some were scheduled via the near ring and some via the far
    // heap (scheduled before time advanced into the window).
    EventQueue eq(EventQueue::SchedulerKind::bucketed);
    std::vector<int> order;
    const Cycle target = 2 * EventQueue::nearWindow;
    eq.schedule(target, [&] { order.push_back(0); });            // far heap
    eq.schedule(target - 10, [&] {                               // far heap
        eq.scheduleAfter(10, [&] { order.push_back(1); });       // near ring
        eq.schedule(target, [&] { order.push_back(2); });        // near ring
    });
    eq.schedule(target, [&] { order.push_back(3); });            // far heap
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(EventQueue, BucketWindowBoundaryCrossing)
{
    EventQueue eq(EventQueue::SchedulerKind::bucketed);
    std::vector<Cycle> fired;
    auto hit = [&] { fired.push_back(eq.now()); };
    // Straddle the near-window edge: in-window, last in-window
    // cycle, first out-of-window cycle, and far beyond.
    eq.schedule(EventQueue::nearWindow - 1, hit);
    eq.schedule(EventQueue::nearWindow, hit);
    eq.schedule(EventQueue::nearWindow + 1, hit);
    eq.schedule(10 * EventQueue::nearWindow, hit);
    eq.runAll();
    EXPECT_EQ(fired,
              (std::vector<Cycle>{EventQueue::nearWindow - 1,
                                  EventQueue::nearWindow,
                                  EventQueue::nearWindow + 1,
                                  10 * EventQueue::nearWindow}));
}

TEST(EventQueue, RunUntilLeavesFarEventsPending)
{
    EventQueue eq(EventQueue::SchedulerKind::bucketed);
    int near_hits = 0, far_hits = 0;
    eq.schedule(100, [&] { ++near_hits; });
    eq.schedule(5 * EventQueue::nearWindow, [&] { ++far_hits; });
    eq.runUntil(200);
    EXPECT_EQ(near_hits, 1);
    EXPECT_EQ(far_hits, 0);
    EXPECT_EQ(eq.now(), 200u);
    EXPECT_EQ(eq.size(), 1u);
    eq.runAll();
    EXPECT_EQ(far_hits, 1);
}

TEST(EventQueue, ResetReproducesTieBreaks)
{
    EventQueue eq(EventQueue::SchedulerKind::bucketed);
    auto run = [&] {
        std::vector<int> order;
        for (int i = 0; i < 4; ++i)
            eq.schedule(5, [&order, i] { order.push_back(i); });
        eq.schedule(2 * EventQueue::nearWindow,
                    [&order] { order.push_back(99); });
        eq.runAll();
        return order;
    };
    auto first = run();
    eq.reset();
    EXPECT_EQ(eq.executed(), 0u);
    auto second = run();
    EXPECT_EQ(first, second);
}

TEST(EventQueue, KindSelectionFromEnv)
{
    setenv("CAIS_EVENTQ", "heap", 1);
    EXPECT_EQ(EventQueue().kind(), EventQueue::SchedulerKind::heap);
    setenv("CAIS_EVENTQ", "bucketed", 1);
    EXPECT_EQ(EventQueue().kind(), EventQueue::SchedulerKind::bucketed);
    unsetenv("CAIS_EVENTQ");
    EXPECT_EQ(EventQueue().kind(), EventQueue::SchedulerKind::bucketed);
}

// ---------------------------------------------------------------------
// InlineEvent: allocation-free move-only callback storage.
// ---------------------------------------------------------------------

namespace
{

/** Counts destructor runs to verify InlineEvent lifetime handling. */
struct DtorCounter
{
    int *count;
    explicit DtorCounter(int *c) : count(c) {}
    DtorCounter(DtorCounter &&o) noexcept : count(o.count)
    {
        o.count = nullptr;
    }
    DtorCounter &operator=(DtorCounter &&) = delete;
    ~DtorCounter()
    {
        if (count)
            ++*count;
    }
    void operator()() const {}
};

} // namespace

TEST(InlineEvent, InvokesStoredCallable)
{
    int hits = 0;
    InlineEvent ev([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(ev));
    ev();
    EXPECT_EQ(hits, 1);
}

TEST(InlineEvent, DefaultConstructedIsEmpty)
{
    InlineEvent ev;
    EXPECT_FALSE(static_cast<bool>(ev));
}

TEST(InlineEvent, MoveTransfersCallableAndEmptiesSource)
{
    int hits = 0;
    InlineEvent a([&hits] { ++hits; });
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
}

TEST(InlineEvent, DestroysStoredCallableExactlyOnce)
{
    int dtors = 0;
    {
        InlineEvent ev{DtorCounter(&dtors)};
        InlineEvent moved(std::move(ev));
        EXPECT_EQ(dtors, 0); // moved-from shells don't count
    }
    EXPECT_EQ(dtors, 1);
}

TEST(InlineEvent, MoveAssignDestroysPreviousCallable)
{
    int first = 0, second = 0;
    InlineEvent ev{DtorCounter(&first)};
    ev = InlineEvent{DtorCounter(&second)};
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
    ev = InlineEvent();
    EXPECT_EQ(second, 1);
}

TEST(InlineEvent, HoldsPacketSizedCaptureInline)
{
    // The whole point: a capture the size of a Packet plus routing
    // context must fit the inline buffer (compile-time checked by
    // the static_asserts in InlineEvent; exercised here at runtime).
    struct Big
    {
        unsigned char blob[96];
    } big = {};
    big.blob[95] = 7;
    int out = 0;
    InlineEvent ev([big, &out] { out = big.blob[95]; });
    ev();
    EXPECT_EQ(out, 7);
}
