/** @file Unit tests for the discrete-event simulation core. */

#include <gtest/gtest.h>

#include "common/event_queue.hh"

using namespace cais;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleFurtherEvents)
{
    EventQueue eq;
    int hits = 0;
    std::function<void()> chain = [&] {
        ++hits;
        if (hits < 10)
            eq.scheduleAfter(5, chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(hits, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int hits = 0;
    for (Cycle t = 0; t < 100; t += 10)
        eq.schedule(t, [&] { ++hits; });
    std::uint64_t n = eq.runUntil(45);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(hits, 5);
    EXPECT_EQ(eq.size(), 5u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, RunAllHonorsEventBudget)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.scheduleAfter(1, forever); };
    eq.schedule(0, forever);
    std::uint64_t n = eq.runAll(1000);
    EXPECT_EQ(n, 1000u);
}

TEST(EventQueue, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
