/**
 * @file
 * Tests for the deterministic parallel sweep runner: bit-identical
 * results between serial and threaded execution, submission-order
 * results, exception propagation, worker-count resolution, and
 * packet-id isolation between concurrently live Systems.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "runtime/sweep.hh"
#include "runtime/system.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

/** Small 4-GPU/2-switch configuration shared by the sweep tests. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    return cfg;
}

/** Strategy x sub-layer grid over a scaled-down model. */
std::vector<SweepJob>
smallGrid()
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    RunConfig cfg = smallConfig();

    std::vector<SweepJob> jobs;
    for (const char *name : {"CAIS", "SP-NVLS", "TP-NVLS"}) {
        for (SubLayerId sub : {SubLayerId::L1, SubLayerId::L2}) {
            jobs.push_back(makeSweepJob(strategyByName(name),
                                        buildSubLayer(m, sub), cfg,
                                        subLayerName(sub)));
        }
    }
    return jobs;
}

/** Field-by-field bit equality of two harvested results. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.strategy, b.strategy);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.upUtil, b.upUtil);
    EXPECT_EQ(a.dnUtil, b.dnUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.staggerSamples, b.staggerSamples);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.mergeLoadHits, b.mergeLoadHits);
    EXPECT_EQ(a.mergeRedHits, b.mergeRedHits);
    EXPECT_EQ(a.mergeFetches, b.mergeFetches);
    EXPECT_EQ(a.lruEvictions, b.lruEvictions);
    EXPECT_EQ(a.timeoutEvictions, b.timeoutEvictions);
    EXPECT_EQ(a.throttleHints, b.throttleHints);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    EXPECT_EQ(a.commKernelCycles, b.commKernelCycles);
    EXPECT_EQ(a.computeKernelCycles, b.computeKernelCycles);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        EXPECT_EQ(a.kernels[k].name, b.kernels[k].name);
        EXPECT_EQ(a.kernels[k].start, b.kernels[k].start);
        EXPECT_EQ(a.kernels[k].finish, b.kernels[k].finish);
        EXPECT_EQ(a.kernels[k].comm, b.kernels[k].comm);
    }
    EXPECT_EQ(a.utilBinWidth, b.utilBinWidth);
    ASSERT_EQ(a.utilSeries.size(), b.utilSeries.size());
    for (std::size_t k = 0; k < a.utilSeries.size(); ++k)
        EXPECT_EQ(a.utilSeries[k], b.utilSeries[k]);
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    std::vector<SweepJob> jobs = smallGrid();
    std::vector<RunResult> serial = SweepRunner(1).run(jobs);
    std::vector<RunResult> parallel = SweepRunner(4).run(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(Sweep, ResultsKeepSubmissionOrder)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunConfig cfg = smallConfig();

    std::vector<SweepJob> jobs;
    for (int i = 0; i < 6; ++i) {
        jobs.push_back(makeSweepJob(strategyByName("CAIS"), g, cfg,
                                    "job-" + std::to_string(i)));
    }
    std::vector<RunResult> results = SweepRunner(4).run(jobs);
    ASSERT_EQ(results.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)].workload,
                  "job-" + std::to_string(i));
}

TEST(Sweep, FirstSubmittedExceptionPropagates)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunConfig cfg = smallConfig();

    std::vector<SweepJob> jobs;
    jobs.push_back(makeSweepJob(strategyByName("CAIS"), g, cfg, "ok"));
    for (int i = 1; i <= 2; ++i) {
        SweepJob bad;
        bad.spec = strategyByName("CAIS");
        bad.graph = [i]() -> OpGraph {
            throw std::runtime_error("boom-" + std::to_string(i));
        };
        bad.cfg = cfg;
        bad.workload = "bad";
        jobs.push_back(std::move(bad));
    }

    try {
        SweepRunner(4).run(jobs);
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error &e) {
        // Earliest failing job in submission order wins, regardless
        // of which worker hit its exception first.
        EXPECT_STREQ(e.what(), "boom-1");
    }
}

TEST(Sweep, DefaultThreadsHonorsCaisJobs)
{
    ::setenv("CAIS_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultThreads(), 3);
    ::setenv("CAIS_JOBS", "0", 1); // invalid -> hardware fallback
    EXPECT_GE(SweepRunner::defaultThreads(), 1);
    ::unsetenv("CAIS_JOBS");
    EXPECT_GE(SweepRunner::defaultThreads(), 1);
    EXPECT_EQ(SweepRunner(2).threads(), 2);
}

TEST(Sweep, LivePacketIdsAreIsolatedPerSystem)
{
    // Two Systems alive at once draw from independent, fabric-owned
    // packet-id allocators that restart from zero per System.
    SystemConfig sc;
    sc.fabric.numGpus = 4;
    sc.fabric.numSwitches = 2;
    System s1(sc);
    System s2(sc);

    PacketIdAllocator &a = s1.fabric().packetIds();
    PacketIdAllocator &b = s2.fabric().packetIds();
    EXPECT_EQ(a.issued(), 0u);
    EXPECT_EQ(b.issued(), 0u);
    EXPECT_EQ(a.next(), 1u);
    EXPECT_EQ(a.next(), 2u);
    EXPECT_EQ(b.next(), 1u); // unaffected by s1's allocations
    EXPECT_EQ(a.next(), 3u); // unaffected by s2's allocations
}

TEST(Sweep, CappedThreadsBoundsJobsTimesShards)
{
    // Sequential jobs (shards 1): want passes through untouched.
    EXPECT_EQ(SweepRunner::cappedThreads(8, 1, 4), 8);
    // Sharded jobs: jobs x shards is held within the machine.
    EXPECT_EQ(SweepRunner::cappedThreads(8, 4, 16), 4);
    EXPECT_EQ(SweepRunner::cappedThreads(8, 4, 32), 8);
    EXPECT_EQ(SweepRunner::cappedThreads(2, 4, 32), 2);
    // Shards alone exceeding the machine still leave one worker.
    EXPECT_EQ(SweepRunner::cappedThreads(8, 16, 4), 1);
    EXPECT_EQ(SweepRunner::cappedThreads(8, 4, 1), 1);
    // Unknown hardware concurrency: trust the requested count.
    EXPECT_EQ(SweepRunner::cappedThreads(8, 4, 0), 8);
    // Degenerate inputs clamp instead of dividing by zero.
    EXPECT_EQ(SweepRunner::cappedThreads(0, 0, 4), 1);
}

TEST(Sweep, ShardedJobsMatchSequentialJobsThroughTheRunner)
{
    // The cap must only change worker counts, never results: a sweep
    // of sharded jobs returns the same bits as the same sweep run
    // sequentially sharded=1, through pools of different sizes.
    std::vector<SweepJob> seqJobs = smallGrid();
    std::vector<SweepJob> shardedJobs = smallGrid();
    for (SweepJob &j : shardedJobs)
        j.cfg.shards = 3; // flat 4x2 has 3 domains

    std::vector<RunResult> seq = SweepRunner(1).run(seqJobs);
    std::vector<RunResult> sharded = SweepRunner(4).run(shardedJobs);
    ASSERT_EQ(seq.size(), sharded.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(seq[i], sharded[i]);
    }
}
