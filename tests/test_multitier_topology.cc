/**
 * @file
 * Multi-tier topology properties: every preset at every supported
 * GPU count builds the right link set with full-bisection tier
 * bandwidth, the hierarchical routing helpers stay inside their
 * tier's node-id ranges while covering every rail and spine, and
 * impossible tier shapes are rejected with clear messages before a
 * System can be constructed.
 */

#include <gtest/gtest.h>

#include <set>

#include "noc/network.hh"
#include "runtime/simulation_driver.hh"

using namespace cais;

namespace
{

/** GPU counts the sweep probes; withGpus keeps each preset's
 *  per-group size, so invalid combinations are skipped explicitly. */
const int kGpuSweep[] = {8, 16, 32, 72};

std::vector<std::pair<std::string, FabricParams>>
sweepShapes()
{
    std::vector<std::pair<std::string, FabricParams>> shapes;
    for (const std::string &name : FabricParams::presetNames()) {
        for (int gpus : kGpuSweep) {
            FabricParams p =
                FabricParams::preset(name).withGpus(gpus);
            if (!p.validationError().empty())
                continue;
            shapes.emplace_back(name + "@" + std::to_string(gpus),
                                p);
        }
    }
    return shapes;
}

} // namespace

TEST(MultiTierTopology, SweepCoversEveryPresetUpTo72Gpus)
{
    std::set<std::string> presets;
    int maxGpus = 0;
    for (const auto &[label, p] : sweepShapes()) {
        presets.insert(label.substr(0, label.find('@')));
        maxGpus = std::max(maxGpus, p.numGpus);
    }
    EXPECT_EQ(presets.size(), FabricParams::presetNames().size());
    EXPECT_EQ(maxGpus, 72);
}

TEST(MultiTierTopology, LinkCountMatchesTierShape)
{
    for (const auto &[label, p] : sweepShapes()) {
        SCOPED_TRACE(label);
        EventQueue eq;
        Fabric f(eq, p);
        int links = 0;
        f.forEachLink([&](const CreditLink &) { ++links; });
        int expected = p.multiTier()
            ? 2 * p.numGpus * p.railsPerGroup +
                  2 * p.numLeaves() * p.numSpines
            : 2 * p.numGpus * p.numSwitches;
        EXPECT_EQ(links, expected);
    }
}

TEST(MultiTierTopology, AggregateBandwidthIsConserved)
{
    for (const auto &[label, p] : sweepShapes()) {
        SCOPED_TRACE(label);
        // A GPU's injection bandwidth splits evenly over its uplinks.
        EXPECT_NEAR(p.perLinkBytesPerCycle() *
                        static_cast<double>(p.uplinksPerGpu()),
                    p.perGpuBytesPerCycle, 1e-9);
        if (!p.multiTier())
            continue;
        // Full bisection: each group's rails reach the spines with at
        // least the group's aggregate injection bandwidth.
        double groupInjection =
            static_cast<double>(p.gpusPerGroup()) *
            p.perGpuBytesPerCycle;
        double groupTierUp = static_cast<double>(p.railsPerGroup) *
                             static_cast<double>(p.numSpines) *
                             p.effectiveTierLinkBytesPerCycle();
        EXPECT_NEAR(groupTierUp, groupInjection, 1e-9);
    }
}

TEST(MultiTierTopology, RoutingCoverageStaysInTierRanges)
{
    for (const auto &[label, p] : sweepShapes()) {
        SCOPED_TRACE(label);
        EventQueue eq;
        Fabric f(eq, p);
        const int G = p.numGpus;
        const int rails = p.uplinksPerGpu();

        for (GpuId g = 0; g < G; g += std::max(1, G / 8)) {
            std::set<int> mergeNodes;
            for (int chunk = 0; chunk < 64; ++chunk) {
                Addr a = makeAddr(g, static_cast<Addr>(chunk) *
                                         p.interleaveBytes);
                int node = f.mergeNode(g, a);
                ASSERT_TRUE(f.isSwitchNode(node));
                mergeNodes.insert(node);
                if (p.multiTier()) {
                    // The merge node is a leaf of g's own group.
                    int s = node - G;
                    int grp = p.groupOfGpu(g);
                    EXPECT_GE(s, p.leafIndex(grp, 0));
                    EXPECT_LT(s, p.leafIndex(grp + 1, 0));
                    // The spine for the same address is a spine.
                    int spine = f.spineNodeForAddr(a);
                    EXPECT_GE(spine - G, p.numLeaves());
                    EXPECT_LT(spine - G, p.numSwitches);
                } else {
                    EXPECT_EQ(node, G + f.routeAddr(a));
                }
            }
            // Address hashing spreads one GPU's chunks over all its
            // rails (flat: all switches).
            EXPECT_EQ(static_cast<int>(mergeNodes.size()), rails);
        }

        if (p.multiTier()) {
            // Group hashing covers every spine once enough groups
            // exist, and never leaves the spine range.
            std::set<int> spines;
            for (GroupId grp = 0; grp < 64; ++grp) {
                int node = f.spineNodeForGroup(grp);
                EXPECT_GE(node - G, p.numLeaves());
                EXPECT_LT(node - G, p.numSwitches);
                spines.insert(node);
            }
            EXPECT_EQ(static_cast<int>(spines.size()), p.numSpines);
        }
    }
}

TEST(MultiTierTopology, WithGpusRescalesGroupCount)
{
    FabricParams p = FabricParams::preset("nvl72").withGpus(16);
    EXPECT_TRUE(p.validationError().empty());
    EXPECT_EQ(p.numGroups, 2);
    EXPECT_EQ(p.gpusPerGroup(), 8);
    EXPECT_EQ(p.numSwitches, p.numLeaves() + p.numSpines);
}

TEST(MultiTierTopology, RejectsIndivisibleGpuCount)
{
    FabricParams p = FabricParams::preset("nvl72").withGpus(10);
    EXPECT_NE(p.validationError().find("divisible"),
              std::string::npos);
}

TEST(MultiTierTopology, RejectsSwitchCountMismatch)
{
    FabricParams p = FabricParams::preset("rail-optimized-2node");
    p.numSwitches += 1;
    EXPECT_NE(p.validationError().find("does not match the tier"),
              std::string::npos);
}

TEST(MultiTierTopology, RejectsTierShapeWithoutSpines)
{
    FabricParams p;
    p.numGpus = 16;
    p.numGroups = 2;
    p.railsPerGroup = 4;
    p.numSpines = 0;
    p.numSwitches = 8;
    EXPECT_NE(p.validationError().find("needs spine switches"),
              std::string::npos);
}

TEST(MultiTierTopology, RejectsNodeMaskOverflow)
{
    FabricParams p = FabricParams::preset("nvl72").withGpus(120);
    // 120 GPUs -> 15 groups x 4 rails + 6 spines = 66 switches;
    // 186 nodes overflow the 128-bit participant masks.
    EXPECT_NE(p.validationError().find("session masks"),
              std::string::npos);
}

TEST(MultiTierTopology, RunConfigRejectsUnknownPreset)
{
    RunConfig c;
    c.topology = "no-such-fabric";
    EXPECT_NE(c.validationError().find("unknown topology preset"),
              std::string::npos);
}

TEST(MultiTierTopology, RunConfigAcceptsEveryPresetAtItsOwnScale)
{
    for (const std::string &name : FabricParams::presetNames()) {
        SCOPED_TRACE(name);
        RunConfig c;
        c.topology = name;
        c.numGpus = FabricParams::preset(name).numGpus;
        EXPECT_EQ(c.validationError(), "");
    }
}
