/** @file Tests for the in-switch compute complex dispatch rules. */

#include <gtest/gtest.h>

#include <memory>

#include "switchcompute/switch_compute.hh"

using namespace cais;

namespace
{

struct DispatchRig
{
    PacketIdAllocator ids;
    EventQueue eq;
    SwitchParams sp;
    std::unique_ptr<SwitchChip> sw;
    std::unique_ptr<SwitchComputeComplex> complex;

    DispatchRig()
    {
        sw = std::make_unique<SwitchChip>(eq, 0, 4, 4, sp);
        complex = std::make_unique<SwitchComputeComplex>(
            *sw, InSwitchParams{});
    }
};

} // namespace

TEST(SwitchCompute, WantsInSwitchTrafficOnly)
{
    DispatchRig rig;
    const SwitchComputeComplex &c = *rig.complex;

    auto mk = [&](PacketType t, int dst) {
        Packet p = makePacket(rig.ids, t, 0, dst);
        return p;
    };

    EXPECT_TRUE(c.wants(mk(PacketType::multimemSt, 4)));
    EXPECT_TRUE(c.wants(mk(PacketType::multimemLdReduceReq, 4)));
    EXPECT_TRUE(c.wants(mk(PacketType::multimemRed, 4)));
    EXPECT_TRUE(c.wants(mk(PacketType::caisLoadReq, 4)));
    EXPECT_TRUE(c.wants(mk(PacketType::caisRedReq, 4)));
    EXPECT_TRUE(c.wants(mk(PacketType::groupSyncReq, 4)));

    // Plain data traffic forwards.
    EXPECT_FALSE(c.wants(mk(PacketType::writeReq, 2)));
    EXPECT_FALSE(c.wants(mk(PacketType::readReq, 2)));
    EXPECT_FALSE(c.wants(mk(PacketType::writeAck, 2)));
}

TEST(SwitchCompute, ReadRespDispatchByDestination)
{
    DispatchRig rig;
    const SwitchComputeComplex &c = *rig.complex;

    // Addressed to this switch: a unit fetch response.
    Packet to_switch = makePacket(rig.ids, PacketType::readResp, 1,
                                       rig.sw->nodeId());
    EXPECT_TRUE(c.wants(to_switch));

    // GPU-to-GPU P2P read response: forwarded.
    Packet p2p = makePacket(rig.ids, PacketType::readResp, 1, 2);
    EXPECT_FALSE(c.wants(p2p));
}

TEST(SwitchComputeDeathTest, UnknownCookieTagPanics)
{
    DispatchRig rig;
    Packet bogus = makePacket(rig.ids, PacketType::readResp, 1,
                                   rig.sw->nodeId());
    bogus.cookie = 12345; // no unit tag in the top byte
    EXPECT_DEATH(rig.complex->handlePacket(std::move(bogus)),
                 "cookie");
}

TEST(SwitchCompute, InstallsItselfAsHandler)
{
    // Constructing the complex wires it into the switch; in-switch
    // packets delivered through links are consumed, not forwarded.
    DispatchRig rig;
    auto up = std::make_unique<CreditLink>(rig.eq, "up", 450.0, 10,
                                           rig.sp.numVcs, 16, 1000);
    rig.sw->attachUplink(0, up.get());
    auto down = std::make_unique<CreditLink>(rig.eq, "dn", 450.0, 10,
                                             rig.sp.numVcs, 16, 1000);
    rig.sw->attachDownlink(0, down.get());

    Packet sync = makePacket(rig.ids, PacketType::groupSyncReq, 0,
                                  rig.sw->nodeId());
    sync.group = 1;
    sync.expected = 4;
    sync.issuerGpu = 0;
    up->send(std::move(sync));
    rig.eq.runAll();
    EXPECT_EQ(rig.sw->packetsConsumed(), 1u);
    EXPECT_EQ(rig.complex->sync().requests(), 1u);
}

TEST(SwitchCompute, CookieTagsAreDisjoint)
{
    EXPECT_NE(cookieTagMerge, cookieTagNvls);
    EXPECT_EQ(cookieTagMerge & cookieIdMask, 0u);
    EXPECT_EQ(cookieTagNvls & cookieIdMask, 0u);
    std::uint64_t id = 0xdeadbeef;
    EXPECT_EQ((cookieTagMerge | id) & cookieIdMask, id);
}
