/**
 * @file
 * Tests for the Group Sync Table (switch side) and the GPU-side
 * synchronizer handshake.
 */

#include <gtest/gtest.h>

#include <memory>

#include "switchcompute/switch_compute.hh"

using namespace cais;

namespace
{

struct SinkStub : public PacketSink
{
    std::vector<Packet> got;
    std::vector<Cycle> at;
    EventQueue *eq = nullptr;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        from->returnCredit(vc);
        got.push_back(pkt);
        at.push_back(eq->now());
    }
};

struct SyncRig
{
    PacketIdAllocator ids;
    EventQueue eq;
    SwitchParams sp;
    std::unique_ptr<SwitchChip> sw;
    std::unique_ptr<SwitchComputeComplex> complex;
    std::vector<std::unique_ptr<CreditLink>> ups, downs;
    SinkStub gpus[4];

    SyncRig()
    {
        sw = std::make_unique<SwitchChip>(eq, 0, 4, 4, sp);
        complex = std::make_unique<SwitchComputeComplex>(
            *sw, InSwitchParams{});
        for (GpuId g = 0; g < 4; ++g) {
            ups.push_back(std::make_unique<CreditLink>(
                eq, "up", 450.0, 250, sp.numVcs, 64, 10000));
            sw->attachUplink(g, ups.back().get());
            downs.push_back(std::make_unique<CreditLink>(
                eq, "dn", 450.0, 250, sp.numVcs, 64, 10000));
            sw->attachDownlink(g, downs.back().get());
            gpus[g].eq = &eq;
            downs.back()->setSink(&gpus[g]);
        }
    }

    void
    reg(GpuId g, GroupId grp, SyncPhase phase, int expected)
    {
        Packet p = makePacket(ids, PacketType::groupSyncReq, g, 4);
        p.group = grp;
        p.cookie = static_cast<std::uint64_t>(phase);
        p.expected = expected;
        p.issuerGpu = g;
        ups[static_cast<std::size_t>(g)]->send(std::move(p));
    }
};

} // namespace

TEST(GroupSyncTable, ReleasesWhenAllRegistered)
{
    SyncRig rig;
    for (GpuId g = 0; g < 4; ++g)
        rig.reg(g, 7, SyncPhase::preLaunch, 4);
    rig.eq.runAll();

    EXPECT_EQ(rig.complex->sync().releases(), 1u);
    EXPECT_EQ(rig.complex->sync().pendingGroups(), 0u);
    for (GpuId g = 0; g < 4; ++g) {
        ASSERT_EQ(rig.gpus[g].got.size(), 1u);
        EXPECT_EQ(rig.gpus[g].got[0].type,
                  PacketType::groupSyncRelease);
        EXPECT_EQ(rig.gpus[g].got[0].group, 7);
    }
}

TEST(GroupSyncTable, NoReleaseUntilLastGpu)
{
    SyncRig rig;
    for (GpuId g = 0; g < 3; ++g)
        rig.reg(g, 9, SyncPhase::preLaunch, 4);
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->sync().releases(), 0u);
    EXPECT_EQ(rig.complex->sync().pendingGroups(), 1u);

    rig.reg(3, 9, SyncPhase::preLaunch, 4);
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->sync().releases(), 1u);
}

TEST(GroupSyncTable, PhasesAreIndependentRendezvous)
{
    SyncRig rig;
    for (GpuId g = 0; g < 4; ++g)
        rig.reg(g, 3, SyncPhase::preLaunch, 4);
    // Pre-access for the same group with fewer participants (the
    // home GPU reads locally).
    for (GpuId g = 0; g < 3; ++g)
        rig.reg(g, 3, SyncPhase::preAccess, 3);
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->sync().releases(), 2u);
    // GPU 3 only sees the pre-launch release.
    EXPECT_EQ(rig.gpus[3].got.size(), 1u);
    EXPECT_EQ(rig.gpus[0].got.size(), 2u);
}

TEST(GroupSyncTable, DuplicateRegistrationCountedOnce)
{
    SyncRig rig;
    rig.reg(0, 5, SyncPhase::preLaunch, 2);
    rig.reg(0, 5, SyncPhase::preLaunch, 2);
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->sync().releases(), 0u);
    rig.reg(1, 5, SyncPhase::preLaunch, 2);
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->sync().releases(), 1u);
}

TEST(GroupSyncTable, RoundTripIsAboutOneMicrosecond)
{
    // Link latency 250 ns each way: registration + release should
    // cost ~0.5-1 us, the figure the paper quotes for the handshake.
    SyncRig rig;
    for (GpuId g = 0; g < 4; ++g)
        rig.reg(g, 11, SyncPhase::preLaunch, 4);
    rig.eq.runAll();
    ASSERT_FALSE(rig.gpus[0].at.empty());
    EXPECT_LE(rig.gpus[0].at[0], 1200u);
    EXPECT_GE(rig.gpus[0].at[0], 500u);
}

TEST(GroupSyncTable, WindowHistogramRecordsSpread)
{
    SyncRig rig;
    rig.reg(0, 13, SyncPhase::preLaunch, 2);
    rig.eq.runUntil(10000);
    rig.reg(1, 13, SyncPhase::preLaunch, 2);
    rig.eq.runAll();
    ASSERT_EQ(rig.complex->sync().windowHist().count(), 1u);
    EXPECT_NEAR(rig.complex->sync().windowHist().mean(), 10000.0,
                600.0);
}
