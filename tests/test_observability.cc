/**
 * @file
 * End-to-end tests of the observability layer's two contracts
 * (DESIGN.md §6d):
 *
 *  1. Instrumentation is determinism-neutral: a run with deep tracing
 *     and the metrics report enabled is bit-identical -- makespan,
 *     eventsExecuted, every counter -- to the same run with both off.
 *  2. The artifacts are well-formed: the metrics report parses, is
 *     schema-versioned and carries per-switch merge/sync metrics; the
 *     trace parses and contains the switch-side lanes.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "common/json.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

namespace
{

using namespace cais;

/** The Fig. 13-style configuration: every random stream exercised. */
RunConfig
obsConfig()
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.unboundedMergeTable = true;
    cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    cfg.gpu.jitterSigma = 0.05;
    return cfg;
}

RunResult
runObs(const RunConfig &cfg)
{
    OpGraph g =
        buildSubLayer(llama7B().scaled(0.25, 0.25), SubLayerId::L1);
    return runGraph(strategyByName("CAIS"), g, cfg, "L1");
}

/** Same contract as the Fig. 13 determinism suite: exact equality on
 *  every field, doubles included. */
void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.staggerSamples, b.staggerSamples);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.mergeLoadHits, b.mergeLoadHits);
    EXPECT_EQ(a.mergeRedHits, b.mergeRedHits);
    EXPECT_EQ(a.mergeFetches, b.mergeFetches);
    EXPECT_EQ(a.lruEvictions, b.lruEvictions);
    EXPECT_EQ(a.timeoutEvictions, b.timeoutEvictions);
    EXPECT_EQ(a.throttleHints, b.throttleHints);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    EXPECT_EQ(a.commKernelCycles, b.commKernelCycles);
    EXPECT_EQ(a.computeKernelCycles, b.computeKernelCycles);
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].start, b.kernels[i].start);
        EXPECT_EQ(a.kernels[i].finish, b.kernels[i].finish);
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(Observability, TracingAndMetricsArePerturbationFree)
{
    RunConfig plain = obsConfig();
    RunResult base = runObs(plain);

    RunConfig instrumented = obsConfig();
    instrumented.tracePath = "/tmp/cais_test_obs_trace.json";
    instrumented.metricsPath = "/tmp/cais_test_obs_metrics.json";
    instrumented.traceSampleCycles = 500; // dense sampling on purpose
    std::remove(instrumented.tracePath.c_str());
    std::remove(instrumented.metricsPath.c_str());
    RunResult traced = runObs(instrumented);

    expectBitIdentical(base, traced);

    std::remove(instrumented.tracePath.c_str());
    std::remove(instrumented.metricsPath.c_str());
}

TEST(Observability, MetricsReportCarriesSwitchSideMetrics)
{
    RunConfig cfg = obsConfig();
    cfg.metricsPath = "/tmp/cais_test_obs_report.json";
    std::remove(cfg.metricsPath.c_str());
    RunResult r = runObs(cfg);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(slurp(cfg.metricsPath), doc, error))
        << error;
    EXPECT_EQ(doc.getString("schema"), metricsSchemaVersion);

    // The result echo matches the in-process RunResult exactly.
    const JsonValue *result = doc.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_DOUBLE_EQ(result->getNumber("makespan"),
                     static_cast<double>(r.makespan));
    EXPECT_DOUBLE_EQ(result->getNumber("eventsExecuted"),
                     static_cast<double>(r.eventsExecuted));

    // Per-switch-port merge, eviction and sync metrics are present.
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->find("switch0.merge.loadReqs"), nullptr);
    EXPECT_NE(metrics->find("switch0.merge.port0.peakBytes"), nullptr);
    EXPECT_NE(metrics->find("switch0.merge.evictions.lru"), nullptr);
    EXPECT_NE(metrics->find("switch0.sync.requests"), nullptr);
    EXPECT_NE(metrics->find("switch1.chip.forwarded"), nullptr);
    EXPECT_NE(metrics->find("gpu0.hbm.bytes"), nullptr);
    EXPECT_NE(metrics->find("eventq.executed"), nullptr);

    // And the kernel timeline round-trips.
    const JsonValue *kernels = doc.find("kernels");
    ASSERT_NE(kernels, nullptr);
    EXPECT_EQ(kernels->elems.size(), r.kernels.size());

    std::remove(cfg.metricsPath.c_str());
}

TEST(Observability, DeepTraceHasSwitchLanesAndCounters)
{
    RunConfig cfg = obsConfig();
    cfg.tracePath = "/tmp/cais_test_obs_deep_trace.json";
    std::remove(cfg.tracePath.c_str());
    runObs(cfg);

    std::string text = slurp(cfg.tracePath);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(text, doc, error)) << error;
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    EXPECT_FALSE(doc.find("traceEvents")->elems.empty());

    // Switch-side lanes: merge-session spans, the group-sync lane,
    // the per-port occupancy counter track, per-VC queue depth and
    // the HBM bandwidth track.
    EXPECT_NE(text.find("\"cat\":\"merge-load\""), std::string::npos);
    EXPECT_NE(text.find("group sync"), std::string::npos);
    EXPECT_NE(text.find("table B"), std::string::npos);
    EXPECT_NE(text.find("downlink depth"), std::string::npos);
    EXPECT_NE(text.find("HBM B/cyc"), std::string::npos);
    EXPECT_NE(text.find("link util %"), std::string::npos);

    std::remove(cfg.tracePath.c_str());
}

TEST(Observability, SamplePeriodDoesNotChangeResults)
{
    // Different sampling periods change only how many counter points
    // land in the trace, never the simulation itself.
    RunConfig coarse = obsConfig();
    coarse.tracePath = "/tmp/cais_test_obs_coarse.json";
    coarse.traceSampleCycles = 10000;
    RunConfig fine = obsConfig();
    fine.tracePath = "/tmp/cais_test_obs_fine.json";
    fine.traceSampleCycles = 100;

    RunResult a = runObs(coarse);
    RunResult b = runObs(fine);
    expectBitIdentical(a, b);

    std::remove(coarse.tracePath.c_str());
    std::remove(fine.tracePath.c_str());
}

} // namespace
