/** @file Tests for the Chrome-trace exporter and its driver wiring. */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analysis/trace.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

TEST(Trace, SpansRenderWithMicrosecondTimestamps)
{
    TraceCollector tc;
    tc.addSpan("gemm", "compute", 0, 2, 1000, 5000);
    std::string json = tc.toJson();
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1"), std::string::npos);   // 1 us
    EXPECT_NE(json.find("\"dur\":4"), std::string::npos);  // 4 us
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Trace, CountersAndMetadata)
{
    TraceCollector tc;
    tc.nameProcess(1, "fabric");
    tc.nameLane(0, 3, "GPU 3");
    tc.addCounter("util", 1, 2000, 87.5);
    tc.addInstant("evict", "merge", 1, 0, 500);
    std::string json = tc.toJson();
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("GPU 3"), std::string::npos);
    EXPECT_NE(json.find("\"value\":87.5"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_EQ(tc.numEvents(), 4u);
}

TEST(Trace, EscapesQuotesAndBackslashes)
{
    TraceCollector tc;
    tc.addSpan("a\"b\\c", "x", 0, 0, 0, 1);
    std::string json = tc.toJson();
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(Trace, DriverWritesLoadableFile)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.tracePath = "/tmp/cais_test_trace.json";
    std::remove(cfg.tracePath.c_str());

    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    runGraph(strategyByName("CAIS"), g, cfg, "L1");

    std::ifstream in(cfg.tracePath);
    ASSERT_TRUE(in.good());
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Kernel spans for the fused CAIS pipeline and the util counter.
    EXPECT_NE(json.find("gemm-rs"), std::string::npos);
    EXPECT_NE(json.find("stage"), std::string::npos);
    EXPECT_NE(json.find("link util %"), std::string::npos);
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
    std::remove(cfg.tracePath.c_str());
}

TEST(Trace, KernelGpuSpansAreWithinKernelLifetime)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);

    System sys(cfg.toSystemConfig(strategyByName("SP-NVLS")));
    GraphLowering low(sys, g, strategyByName("SP-NVLS").opts);
    low.lower();
    sys.run();

    for (std::size_t k = 0; k < sys.numKernels(); ++k) {
        for (GpuId gpu = 0; gpu < sys.numGpus(); ++gpu) {
            auto [s0, s1] =
                sys.kernelGpuSpan(static_cast<KernelId>(k), gpu);
            if (s1 == 0)
                continue;
            EXPECT_LE(s0, s1);
            EXPECT_GE(s0,
                      sys.kernelStartTime(static_cast<KernelId>(k)));
            EXPECT_LE(
                s1, sys.kernelFinishTime(static_cast<KernelId>(k)));
        }
    }
}
