/** @file Tests for the operator graph and transformer builders. */

#include <gtest/gtest.h>

#include "dataflow/op_graph.hh"
#include "workload/transformer.hh"

using namespace cais;

TEST(OpGraph, AddAndQuery)
{
    OpGraph g;
    OpId a = g.addOp(OpKind::gemmRowParallel, "g1", 256, 128, 512, {});
    OpId b = g.addOp(OpKind::reduceScatter, "rs", 256, 128, 0, {a});
    OpId c = g.addOp(OpKind::layerNorm, "ln", 256, 128, 0, {b});
    g.validate();

    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g.node(b).inputs.front(), a);
    auto cons = g.consumers(b);
    ASSERT_EQ(cons.size(), 1u);
    EXPECT_EQ(cons[0], c);
    EXPECT_TRUE(isCommOp(g.node(b).kind));
    EXPECT_FALSE(isCommOp(g.node(a).kind));
}

TEST(OpGraph, FlopsModel)
{
    OpGraph g;
    OpId a = g.addOp(OpKind::gemmColParallel, "g", 64, 32, 16, {});
    EXPECT_DOUBLE_EQ(g.node(a).flops(), 2.0 * 64 * 32 * 16);
    EXPECT_EQ(g.node(a).outputBytes(), 64u * 32u * 2u);
}

TEST(OpGraphDeathTest, ForwardReferencePanics)
{
    OpGraph g;
    g.addOp(OpKind::elementwise, "e", 8, 8, 0, {5});
    EXPECT_DEATH(g.validate(), "earlier");
}

TEST(Transformer, SubLayersAreRsLnAgChains)
{
    LlmConfig m = llama7B();
    for (SubLayerId id : {SubLayerId::L1, SubLayerId::L2,
                          SubLayerId::L3, SubLayerId::L4}) {
        OpGraph g = buildSubLayer(m, id);
        ASSERT_EQ(g.size(), 5u) << subLayerName(id);
        EXPECT_EQ(g.node(0).kind, OpKind::gemmRowParallel);
        EXPECT_EQ(g.node(1).kind, OpKind::reduceScatter);
        EXPECT_EQ(g.node(2).kind, OpKind::layerNorm);
        EXPECT_EQ(g.node(3).kind, OpKind::allGather);
        EXPECT_EQ(g.node(4).kind, OpKind::gemmColParallel);
        EXPECT_TRUE(g.node(2).rowSharded);
    }
}

TEST(Transformer, BackwardSubLayersDoubleGemmFlops)
{
    LlmConfig m = megaGpt4B();
    OpGraph fwd = buildSubLayer(m, SubLayerId::L1);
    OpGraph bwd = buildSubLayer(m, SubLayerId::L3);
    EXPECT_DOUBLE_EQ(fwd.node(0).flopScale, 1.0);
    EXPECT_DOUBLE_EQ(bwd.node(0).flopScale, 2.0);
}

TEST(Transformer, SubLayerShapesMatchPaper)
{
    LlmConfig m = llama7B();
    // L1: out-proj (K = hidden) then FFN1 (N = ffnHidden).
    OpGraph l1 = buildSubLayer(m, SubLayerId::L1);
    EXPECT_EQ(l1.node(0).inner, m.hidden);
    EXPECT_EQ(l1.node(4).cols, m.ffnHidden);
    // L2: FFN2 (K = ffn) then QKV projection (N = 3h).
    OpGraph l2 = buildSubLayer(m, SubLayerId::L2);
    EXPECT_EQ(l2.node(0).inner, m.ffnHidden);
    EXPECT_EQ(l2.node(4).cols, 3 * m.hidden);
}

TEST(Transformer, FullLayerStructure)
{
    LlmConfig m = megaGpt4B();
    OpGraph g = buildTransformerLayer(m, Pass::forward);
    g.validate();

    int gemms = 0, comms = 0, lns = 0, attn = 0;
    for (const auto &n : g.ops()) {
        if (n.kind == OpKind::gemmColParallel ||
            n.kind == OpKind::gemmRowParallel)
            ++gemms;
        if (isCommOp(n.kind))
            ++comms;
        if (n.kind == OpKind::layerNorm)
            ++lns;
        if (n.kind == OpKind::attentionCore)
            ++attn;
    }
    EXPECT_EQ(gemms, 4); // qkv, out-proj, fc1, fc2
    EXPECT_EQ(comms, 4); // ag, rs per block
    EXPECT_EQ(lns, 2);
    EXPECT_EQ(attn, 1);
}

TEST(Transformer, BackwardLayerScalesGemms)
{
    LlmConfig m = megaGpt4B();
    OpGraph f = buildTransformerLayer(m, Pass::forward);
    OpGraph b = buildTransformerLayer(m, Pass::backward);
    ASSERT_EQ(f.size(), b.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
        const OpNode &fn = f.ops()[i];
        const OpNode &bn = b.ops()[i];
        if (fn.kind == OpKind::gemmColParallel ||
            fn.kind == OpKind::gemmRowParallel) {
            EXPECT_DOUBLE_EQ(bn.flopScale, 2.0 * fn.flopScale);
        }
    }
}

TEST(LlmConfig, TableOneValues)
{
    auto models = tableOneModels();
    ASSERT_EQ(models.size(), 3u);
    EXPECT_EQ(models[0].hidden, 2048);
    EXPECT_EQ(models[0].ffnHidden, 8192);
    EXPECT_EQ(models[0].batch, 16);
    EXPECT_EQ(models[1].hidden, 3072);
    EXPECT_EQ(models[2].name, "LLaMA-7B");
    EXPECT_EQ(models[2].seqLen, 3072);
    EXPECT_EQ(models[2].tokens(), 3 * 3072);
}

TEST(LlmConfig, ScaledKeeps128Alignment)
{
    LlmConfig s = llama7B().scaled(0.5, 0.25);
    EXPECT_EQ(s.hidden % 128, 0);
    EXPECT_EQ(s.ffnHidden % 128, 0);
    EXPECT_EQ(s.seqLen % 128, 0);
    EXPECT_EQ(s.hidden, 2048);
    // Table II: full scale doubles the Table-I dims.
    EXPECT_EQ(llamaFullScale().hidden, 2 * llama7B().hidden);
}
