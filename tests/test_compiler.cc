/**
 * @file
 * Tests for the compiler passes: static index analysis, TB grouping,
 * and CAIS lowering (Sec. III-B.1 / Fig. 8a).
 */

#include <gtest/gtest.h>

#include "compiler/cais_lowering.hh"
#include "compiler/index_analysis.hh"

using namespace cais;

namespace
{

IrKernel
stageKernel()
{
    // A stage/AllGather-consumer kernel: loads a remote row-block
    // whose index depends only on blockIdx.x -> GPU-invariant.
    IrKernel k;
    k.name = "ag.stage";
    k.gridX = 16;
    MemInstr ld;
    ld.op = Opcode::ldGlobal;
    ld.remote = true;
    ld.bytesPerTb = 1 << 20;
    ld.addr = AddressExpr::term(AddrVar::blockIdxX, 1 << 20);
    k.accesses.push_back(ld);
    return k;
}

IrKernel
gemmRsKernel()
{
    // GEMM-RS: reduction pushes keyed by (blockIdx.y, blockIdx.x).
    IrKernel k;
    k.name = "gemm-rs";
    k.gridX = 4;
    k.gridY = 8;
    k.flopsPerTb = 1 << 24;
    MemInstr red;
    red.op = Opcode::redGlobal;
    red.remote = true;
    red.bytesPerTb = 32768;
    red.addr = AddressExpr::term(AddrVar::blockIdxY, 1 << 18) +
               AddressExpr::term(AddrVar::blockIdxX, 32768);
    k.accesses.push_back(red);
    return k;
}

IrKernel
gpuVariantKernel()
{
    // Index contains the GPU id: different GPUs touch different
    // addresses -> not mergeable.
    IrKernel k;
    k.name = "private";
    k.gridX = 8;
    MemInstr ld;
    ld.op = Opcode::ldGlobal;
    ld.remote = true;
    ld.bytesPerTb = 4096;
    ld.addr = AddressExpr::term(AddrVar::blockIdxX, 4096) +
              AddressExpr::term(AddrVar::gpuId, 1 << 30);
    k.accesses.push_back(ld);
    return k;
}

} // namespace

TEST(IndexAnalysis, GpuInvariantLoadIsMergeable)
{
    auto cls = analyzeKernel(stageKernel());
    ASSERT_EQ(cls.size(), 1u);
    EXPECT_TRUE(cls[0].gpuInvariant);
    EXPECT_TRUE(cls[0].remote);
    EXPECT_TRUE(cls[0].mergeableLoad);
    EXPECT_FALSE(cls[0].mergeableReduction);
}

TEST(IndexAnalysis, GpuVariantIsNotMergeable)
{
    auto cls = analyzeKernel(gpuVariantKernel());
    EXPECT_FALSE(cls[0].gpuInvariant);
    EXPECT_FALSE(cls[0].mergeable());
}

TEST(IndexAnalysis, LocalAccessIsNotMergeable)
{
    IrKernel k = stageKernel();
    k.accesses[0].remote = false;
    EXPECT_FALSE(hasMergeableAccess(k));
}

TEST(IndexAnalysis, ReductionMergeability)
{
    auto cls = analyzeKernel(gemmRsKernel());
    EXPECT_TRUE(cls[0].mergeableReduction);
    EXPECT_FALSE(cls[0].mergeableLoad);
}

TEST(TbGrouping, OneGroupPerBlockIdx)
{
    auto plan = groupTbs(gemmRsKernel(), 100);
    EXPECT_TRUE(plan.grouped);
    EXPECT_EQ(plan.numGroups, 32);
    EXPECT_EQ(plan.firstGroup, 100);
    // Group ids are dense and unique per linear blockIdx.
    for (int tb = 0; tb < 32; ++tb)
        EXPECT_EQ(plan.groupOfTb[static_cast<std::size_t>(tb)],
                  100 + tb);
}

TEST(TbGrouping, UngroupedWhenNothingMergeable)
{
    auto plan = groupTbs(gpuVariantKernel(), 0);
    EXPECT_FALSE(plan.grouped);
    for (GroupId g : plan.groupOfTb)
        EXPECT_EQ(g, invalidId);
}

TEST(CaisLowering, RewritesLoadsAndReductions)
{
    auto ld = lowerToCais(stageKernel(), 0);
    EXPECT_EQ(ld.numLowered, 1);
    EXPECT_EQ(ld.kernel.accesses[0].op, Opcode::ldCais);
    EXPECT_TRUE(ld.kernel.accesses[0].caisFlag);

    auto red = lowerToCais(gemmRsKernel(), 50);
    EXPECT_EQ(red.numLowered, 1);
    EXPECT_EQ(red.kernel.accesses[0].op, Opcode::redCais);
    EXPECT_TRUE(red.kernel.accesses[0].caisFlag);
}

TEST(CaisLowering, LeavesUnmergeableKernelsUntouched)
{
    auto res = lowerToCais(gpuVariantKernel(), 0);
    EXPECT_EQ(res.numLowered, 0);
    EXPECT_EQ(res.kernel.accesses[0].op, Opcode::ldGlobal);
    EXPECT_FALSE(res.kernel.accesses[0].caisFlag);
    EXPECT_FALSE(res.plan.grouped);
}

TEST(CaisLowering, PreservesAddressExpressions)
{
    IrKernel k = stageKernel();
    auto res = lowerToCais(k, 0);
    EXPECT_TRUE(res.kernel.accesses[0].addr == k.accesses[0].addr);
    EXPECT_EQ(res.kernel.accesses[0].bytesPerTb,
              k.accesses[0].bytesPerTb);
}

TEST(IrKernel, ValidateAndRender)
{
    IrKernel k = gemmRsKernel();
    k.validate();
    std::string s = k.str();
    EXPECT_NE(s.find("gemm-rs"), std::string::npos);
    EXPECT_NE(s.find("red.global"), std::string::npos);
    EXPECT_EQ(IrKernel::linearTb(3, 2, 4), 11);
}
