/**
 * @file
 * cais-lint rule tests: each determinism rule D1..D8 gets at least
 * one positive fixture (the hazard is reported) and one negative
 * fixture (the deterministic idiom passes), plus coverage of the
 * suppression-comment grammar and the baseline diff machinery.
 *
 * Fixtures are inline snippets linted under virtual paths like
 * "src/fixture.cc" -- the path decides which rules apply, exactly as
 * in a real run over the tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.hh"
#include "lint.hh"

namespace
{

using cais::lint::applyBaseline;
using cais::lint::Finding;
using cais::lint::Linter;
using cais::lint::Options;
using cais::lint::writeBaseline;

/** Lint one snippet under one virtual path. */
std::vector<Finding>
lintOne(const std::string &path, const std::string &src,
        const Options &opts = Options{})
{
    Linter l;
    l.addSource(path, src);
    return l.run(opts);
}

/** Count findings for @p rule. */
int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(fs.begin(), fs.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

// --------------------------------------------------------------------
// D1: iteration over unordered containers in src/
// --------------------------------------------------------------------

TEST(LintD1, RangeForOverUnorderedMapIsFlagged)
{
    auto fs = lintOne("src/runtime/x.cc",
                      "#include <unordered_map>\n"
                      "void f() {\n"
                      "    std::unordered_map<int, int> m;\n"
                      "    for (auto &kv : m) { (void)kv; }\n"
                      "}\n");
    ASSERT_EQ(countRule(fs, "D1"), 1);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(LintD1, IteratorLoopOverUnorderedSetIsFlagged)
{
    auto fs = lintOne("src/runtime/x.cc",
                      "#include <unordered_set>\n"
                      "void f() {\n"
                      "    std::unordered_set<int> s;\n"
                      "    for (auto it = s.begin(); it != s.end(); ++it) {}\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D1"), 1);
}

TEST(LintD1, MemberDeclaredInHeaderIsFlaggedInSourceFile)
{
    // The hazard member lives in a header; the loop in a .cc. The
    // linter pools unordered-container names across files.
    Linter l;
    l.addSource("src/runtime/tbl.hh",
                "#include <unordered_map>\n"
                "struct T { std::unordered_map<int, int> live; };\n");
    l.addSource("src/runtime/tbl.cc",
                "#include \"tbl.hh\"\n"
                "void dump(T &t) {\n"
                "    for (auto &kv : t.live) { (void)kv; }\n"
                "}\n");
    auto fs = l.run();
    ASSERT_EQ(countRule(fs, "D1"), 1);
    EXPECT_EQ(fs[0].file, "src/runtime/tbl.cc");
}

TEST(LintD1, OrderedMapAndLookupOnlyUsePass)
{
    auto fs = lintOne("src/runtime/x.cc",
                      "#include <map>\n"
                      "#include <unordered_map>\n"
                      "void f() {\n"
                      "    std::map<int, int> ordered;\n"
                      "    for (auto &kv : ordered) { (void)kv; }\n"
                      "    std::unordered_map<int, int> m;\n"
                      "    auto it = m.find(3);\n"
                      "    if (it != m.end()) m.erase(it);\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D1"), 0);
}

TEST(LintD1, TestsAndBenchAreOutOfScope)
{
    std::string src = "#include <unordered_map>\n"
                      "void f() {\n"
                      "    std::unordered_map<int, int> m;\n"
                      "    for (auto &kv : m) { (void)kv; }\n"
                      "}\n";
    EXPECT_EQ(countRule(lintOne("tests/t.cc", src), "D1"), 0);
    EXPECT_EQ(countRule(lintOne("bench/b.cc", src), "D1"), 0);
}

// --------------------------------------------------------------------
// D2: containers keyed on raw pointers
// --------------------------------------------------------------------

TEST(LintD2, PointerKeyedMapIsFlagged)
{
    auto fs = lintOne("src/noc/x.hh",
                      "#include <unordered_map>\n"
                      "struct Link;\n"
                      "struct S {\n"
                      "    CAIS_OWNED_BY_DOMAIN(parent);\n"
                      "    std::unordered_map<const Link *, int> portOf;\n"
                      "};\n");
    ASSERT_EQ(countRule(fs, "D2"), 1);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 5);
}

TEST(LintD2, PointerKeyedStdMapIsFlagged)
{
    auto fs = lintOne("src/noc/x.hh",
                      "#include <map>\n"
                      "struct S { std::map<void *, int> m; };\n");
    EXPECT_EQ(countRule(fs, "D2"), 1);
}

TEST(LintD2, IdKeyedMapAndPointerValuePass)
{
    auto fs = lintOne("src/noc/x.hh",
                      "#include <map>\n"
                      "#include <unordered_map>\n"
                      "struct Link;\n"
                      "struct S {\n"
                      "    std::unordered_map<int, Link *> byPort;\n"
                      "    std::map<std::uint64_t, Link *> byId;\n"
                      "};\n");
    EXPECT_EQ(countRule(fs, "D2"), 0);
}

// --------------------------------------------------------------------
// D3: wall-clock / unseeded randomness
// --------------------------------------------------------------------

TEST(LintD3, WallClockAndUnseededRandomnessAreFlagged)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "#include <chrono>\n"
        "void f() {\n"
        "    auto t = std::chrono::system_clock::now();\n"
        "    std::random_device rd;\n"
        "    int r = rand();\n"
        "    (void)t; (void)rd; (void)r;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D3"), 3);
}

TEST(LintD3, RngImplementationAndBenchAreExempt)
{
    std::string src = "#include <chrono>\n"
                      "void f() {\n"
                      "    auto t = std::chrono::steady_clock::now();\n"
                      "    (void)t;\n"
                      "}\n";
    EXPECT_EQ(countRule(lintOne("src/common/rng.cc", src), "D3"), 0);
    EXPECT_EQ(countRule(lintOne("bench/perf.cc", src), "D3"), 0);
    EXPECT_EQ(countRule(lintOne("src/gpu/x.cc", src), "D3"), 1);
}

TEST(LintD3, SeededSimulationRngPasses)
{
    auto fs = lintOne("src/gpu/x.cc",
                      "#include \"common/rng.hh\"\n"
                      "double f(cais::Rng &rng) {\n"
                      "    return rng.uniform(0.0, 1.0);\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D3"), 0);
}

// --------------------------------------------------------------------
// D4: mutable namespace-scope / function-static state
// --------------------------------------------------------------------

TEST(LintD4, NamespaceScopeMutableIsFlagged)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "int g_counter = 0;\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 1);
}

TEST(LintD4, FunctionStaticMutableIsFlagged)
{
    auto fs = lintOne("src/common/x.cc",
                      "int next() {\n"
                      "    static int n = 0;\n"
                      "    return ++n;\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 1);
}

TEST(LintD4, ConstantsAndLocalsPass)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "const int kTableSize = 320;\n"
                      "constexpr double kPi = 3.14159;\n"
                      "static constexpr int kVcs = 8;\n"
                      "int f() {\n"
                      "    int local = 0;\n"
                      "    return local + kTableSize + kVcs;\n"
                      "}\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 0);
}

TEST(LintD4, WhitelistedPathIsExempt)
{
    std::string src = "namespace cais {\n"
                      "int g_counter = 0;\n"
                      "}\n";
    Options opts;
    opts.d4Whitelist.push_back("src/common/x.cc");
    EXPECT_EQ(countRule(lintOne("src/common/x.cc", src, opts), "D4"), 0);
    EXPECT_EQ(countRule(lintOne("src/common/y.cc", src, opts), "D4"), 1);
}

// --------------------------------------------------------------------
// D5: float math in NoC / GPU hot paths
// --------------------------------------------------------------------

TEST(LintD5, CmathIncludeAndCeilAreFlaggedInNoc)
{
    auto fs = lintOne("src/noc/x.cc",
                      "#include <cmath>\n"
                      "int cycles(double bytes, double bw) {\n"
                      "    return static_cast<int>(std::ceil(bytes / bw));\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D5"), 2); // the include and the call
}

TEST(LintD5, IntegerMathInNocPassesAndOtherDirsAreExempt)
{
    auto fs = lintOne("src/noc/x.cc",
                      "#include \"common/intmath.hh\"\n"
                      "int cycles(int bytes, int bw) {\n"
                      "    return cais::ceilDiv(bytes, bw);\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D5"), 0);

    // ceil in the model layer (not noc/gpu) is out of D5's scope.
    auto other = lintOne("src/model/x.cc",
                         "#include <cmath>\n"
                         "double f(double x) { return std::ceil(x); }\n");
    EXPECT_EQ(countRule(other, "D5"), 0);
}

// --------------------------------------------------------------------
// D6: std::function as event callback
// --------------------------------------------------------------------

TEST(LintD6, StdFunctionInsideScheduleIsFlagged)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "#include <functional>\n"
        "void f(cais::EventQueue &eq) {\n"
        "    std::function<void()> cb = [] {};\n"
        "    eq.scheduleAfter(10, std::function<void()>(cb));\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D6"), 1);
}

TEST(LintD6, PlainLambdaCallbackPasses)
{
    auto fs = lintOne("src/runtime/x.cc",
                      "void f(cais::EventQueue &eq) {\n"
                      "    eq.scheduleAfter(10, [] {});\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D6"), 0);
}

// --------------------------------------------------------------------
// D7: iteration over unordered containers returned by functions
// --------------------------------------------------------------------

TEST(LintD7, RangeForOverFunctionResultIsFlagged)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> liveSet();\n"
        "void f() {\n"
        "    for (auto &kv : liveSet()) { (void)kv; }\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "D7"), 1);
    EXPECT_EQ(fs[0].line, 4);
    // D1 deliberately skips idents followed by '(' -- D7 owns this.
    EXPECT_EQ(countRule(fs, "D1"), 0);
}

TEST(LintD7, BeginOnFunctionResultIsFlagged)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "#include <unordered_set>\n"
        "struct T { std::unordered_set<int> pending() const; };\n"
        "int f(const T &t) {\n"
        "    return *t.pending().begin();\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "D7"), 1);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(LintD7, DeclarationPooledFromHeaderFlagsCallInSource)
{
    Linter l;
    l.addSource("src/runtime/tbl.hh",
                "#include <unordered_map>\n"
                "struct T { std::unordered_map<int, int> live() const; };\n");
    l.addSource("src/runtime/tbl.cc",
                "#include \"tbl.hh\"\n"
                "void dump(const T &t) {\n"
                "    for (auto &kv : t.live()) { (void)kv; }\n"
                "}\n");
    auto fs = l.run();
    ASSERT_EQ(countRule(fs, "D7"), 1);
    EXPECT_EQ(fs[0].file, "src/runtime/tbl.cc");
}

TEST(LintD7, OrderedReturnTypeAndLookupOnlyUsePass)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "#include <map>\n"
        "#include <unordered_map>\n"
        "std::map<int, int> ordered();\n"
        "std::unordered_map<int, int> lookup();\n"
        "int f() {\n"
        "    for (auto &kv : ordered()) { (void)kv; }\n"
        "    return lookup().count(3);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D7"), 0);
}

TEST(LintD7, TestsAndBenchAreOutOfScope)
{
    std::string src = "#include <unordered_map>\n"
                      "std::unordered_map<int, int> liveSet();\n"
                      "void f() {\n"
                      "    for (auto &kv : liveSet()) { (void)kv; }\n"
                      "}\n";
    EXPECT_EQ(countRule(lintOne("tests/t.cc", src), "D7"), 0);
    EXPECT_EQ(countRule(lintOne("bench/b.cc", src), "D7"), 0);
}

TEST(LintD7, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> liveSet();\n"
        "void f() {\n"
        "    // cais-lint: allow(D7) -- order-insensitive sum\n"
        "    for (auto &kv : liveSet()) { (void)kv; }\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D7"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// D8: schedule on a queue fetched from a looked-up component
// --------------------------------------------------------------------

TEST(LintD8, ScheduleOnLookedUpComponentQueueIsFlagged)
{
    // The classic cross-shard hazard: grab another component through
    // a lookup call, then schedule straight onto its queue.
    auto fs = lintOne(
        "src/runtime/x.cc",
        "void f(cais::Fabric &fab, int s) {\n"
        "    fab.switchAt(s).eq().schedule(100, [] {});\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "D8"), 1);
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintD8, ScheduleAfterThroughPointerChainIsFlagged)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "void f(cais::Fabric *fab, int s) {\n"
        "    fab->switchAt(s)->eventQueue().scheduleAfter(10, [] {});\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D8"), 1);
}

TEST(LintD8, OwnQueueSchedulingPasses)
{
    // A component scheduling on its own queue — including through the
    // plain-ident getter idiom the switch-compute units use — is the
    // supported pattern and must not need suppressions.
    auto fs = lintOne(
        "src/noc/x.cc",
        "void f(cais::EventQueue &eq, cais::SwitchChip &sw) {\n"
        "    eq.scheduleAfter(10, [] {});\n"
        "    sw.eventQueue().scheduleAfter(5, [] {});\n"
        "    sw.eq().schedule(7, [] {});\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D8"), 0);
}

TEST(LintD8, TestsAndBenchAreOutOfScope)
{
    std::string src =
        "void f(cais::Fabric &fab) {\n"
        "    fab.switchAt(0).eq().schedule(1, [] {});\n"
        "}\n";
    EXPECT_EQ(countRule(lintOne("tests/t.cc", src), "D8"), 0);
    EXPECT_EQ(countRule(lintOne("bench/b.cc", src), "D8"), 0);
}

TEST(LintD8, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/runtime/x.cc",
        "void f(cais::Fabric &fab) {\n"
        "    // cais-lint: allow(D8) -- pre-run wiring, queues idle\n"
        "    fab.switchAt(0).eq().schedule(1, [] {});\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D8"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// D9: owned-class scheduling on a foreign queue handle
// --------------------------------------------------------------------

TEST(LintD9, ForeignQueueHandleInOwnedClassIsFlagged)
{
    auto fs = lintOne("src/noc/x.hh",
                      "struct Relay {\n"
                      "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                      "    cais::EventQueue &eq;\n"
                      "    cais::EventQueue *peerEq;\n"
                      "    void push() {\n"
                      "        peerEq->schedule(10, [] {});\n"
                      "    }\n"
                      "};\n");
    ASSERT_EQ(countRule(fs, "D9"), 1);
    EXPECT_EQ(fs[0].line, 6);
}

TEST(LintD9, OutOfLineMethodOfClassOwnedInHeaderIsFlagged)
{
    // The ownership declaration lives in the header; the hazard in
    // the matching .cc. Owned-class names are pooled across files and
    // the out-of-line definition resolves the class from `Relay::`.
    Linter l;
    l.addSource("src/noc/relay.hh",
                "struct Relay {\n"
                "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                "    cais::EventQueue *peerEq;\n"
                "    void push();\n"
                "};\n");
    l.addSource("src/noc/relay.cc",
                "#include \"relay.hh\"\n"
                "void\n"
                "Relay::push()\n"
                "{\n"
                "    peerEq->scheduleAt(5, [] {});\n"
                "}\n");
    auto fs = l.run();
    ASSERT_EQ(countRule(fs, "D9"), 1);
    EXPECT_EQ(fs[0].file, "src/noc/relay.cc");
    EXPECT_EQ(fs[0].line, 5);
}

TEST(LintD9, IndexedQueueReceiverIsFlagged)
{
    auto fs = lintOne(
        "src/common/x.hh",
        "struct Core {\n"
        "    CAIS_OWNED_BY_DOMAIN(barrier);\n"
        "    std::vector<cais::EventQueue *> queues;\n"
        "    void kick() { queues[1]->scheduleAfter(1, [] {}); }\n"
        "};\n");
    ASSERT_EQ(countRule(fs, "D9"), 1);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(LintD9, CrossShardChannelFunctionIsExempt)
{
    // The sanctioned idiom: the cross-domain delivery is declared a
    // channel in the header, so its definition may touch the sink's
    // queue (CreditLink::tryIssue in the real tree).
    Linter l;
    l.addSource("src/noc/relay.hh",
                "struct Relay {\n"
                "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                "    cais::EventQueue *sinkEq;\n"
                "    CAIS_CROSS_SHARD_CHANNEL void deliver();\n"
                "};\n");
    l.addSource("src/noc/relay.cc",
                "#include \"relay.hh\"\n"
                "void\n"
                "Relay::deliver()\n"
                "{\n"
                "    sinkEq->schedule(1, [] {});\n"
                "}\n");
    EXPECT_EQ(countRule(l.run(), "D9"), 0);
}

TEST(LintD9, OwnQueueAndUnownedClassPass)
{
    // `eq` is by convention the component's own queue; a class with
    // no ownership declaration is not in D9's scope (D10 will demand
    // the annotation separately when the class is fabric-resident).
    auto fs = lintOne("src/runtime/x.hh",
                      "struct Owned {\n"
                      "    CAIS_OWNED_BY_DOMAIN(host);\n"
                      "    cais::EventQueue &eq;\n"
                      "    void go() { eq.scheduleAfter(3, [] {}); }\n"
                      "};\n"
                      "struct Plain {\n"
                      "    cais::EventQueue *peerEq;\n"
                      "    void go() { peerEq->schedule(3, [] {}); }\n"
                      "};\n");
    EXPECT_EQ(countRule(fs, "D9"), 0);
}

TEST(LintD9, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/noc/x.hh",
        "struct Relay {\n"
        "    CAIS_OWNED_BY_DOMAIN(sender);\n"
        "    cais::EventQueue *peerEq;\n"
        "    void push() {\n"
        "        // cais-lint: allow(D9) -- wiring phase, queues idle\n"
        "        peerEq->schedule(10, [] {});\n"
        "    }\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "D9"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// D10: fabric-resident class without an ownership declaration
// --------------------------------------------------------------------

TEST(LintD10, UnannotatedMutableClassInNocIsFlagged)
{
    auto fs = lintOne("src/noc/x.hh",
                      "struct Port {\n"
                      "    int credits = 0;\n"
                      "    bool busy = false;\n"
                      "};\n");
    ASSERT_EQ(countRule(fs, "D10"), 1);
    EXPECT_EQ(fs[0].line, 1);
}

TEST(LintD10, UnannotatedClassInSwitchComputeIsFlagged)
{
    auto fs = lintOne("src/switchcompute/x.cc",
                      "namespace cais {\n"
                      "namespace {\n"
                      "struct Probe {\n"
                      "    cais::Cycle firstSeen;\n"
                      "    std::uint64_t hits;\n"
                      "};\n"
                      "} // namespace\n"
                      "} // namespace cais\n");
    ASSERT_EQ(countRule(fs, "D10"), 1);
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintD10, ShardedEventCoreIsInScope)
{
    auto fs = lintOne("src/common/sharded_event_queue.hh",
                      "class Window {\n"
                      "  public:\n"
                      "    void run();\n"
                      "  private:\n"
                      "    std::uint64_t gen = 0;\n"
                      "};\n");
    EXPECT_EQ(countRule(fs, "D10"), 1);
}

TEST(LintD10, AnnotatedClassAndPureInterfacePass)
{
    auto fs = lintOne("src/gpu/x.hh",
                      "struct Slot {\n"
                      "    CAIS_OWNED_BY_DOMAIN(host);\n"
                      "    int tb = -1;\n"
                      "};\n"
                      "class Sink {\n"
                      "  public:\n"
                      "    virtual ~Sink() = default;\n"
                      "    virtual void acceptPacket(int vc) = 0;\n"
                      "};\n");
    EXPECT_EQ(countRule(fs, "D10"), 0);
}

TEST(LintD10, NonFabricDirectoriesAreOutOfScope)
{
    std::string src = "struct Plan {\n"
                      "    int steps = 0;\n"
                      "};\n";
    EXPECT_EQ(countRule(lintOne("src/compiler/x.hh", src), "D10"), 0);
    EXPECT_EQ(countRule(lintOne("src/runtime/x.hh", src), "D10"), 0);
    EXPECT_EQ(countRule(lintOne("tests/t.hh", src), "D10"), 0);
}

TEST(LintD10, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/noc/x.hh",
        "// cais-lint: allow(D10) -- scratch POD, never fabric-wired\n"
        "struct Scratch {\n"
        "    int tmp = 0;\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "D10"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// D11: shard-shared field accessed outside a channel
// --------------------------------------------------------------------

TEST(LintD11, SharedFieldAccessOutsideChannelIsFlagged)
{
    auto fs = lintOne("src/noc/x.hh",
                      "struct Link {\n"
                      "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                      "    CAIS_SHARD_SHARED int creditBatch = 0;\n"
                      "    void poke() { creditBatch += 1; }\n"
                      "};\n");
    ASSERT_EQ(countRule(fs, "D11"), 1);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(LintD11, FieldDeclaredInHeaderIsFlaggedInSourceFile)
{
    Linter l;
    l.addSource("src/noc/link.hh",
                "struct Link {\n"
                "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                "    CAIS_SHARD_SHARED int creditBatch = 0;\n"
                "    void drain();\n"
                "};\n");
    l.addSource("src/noc/link.cc",
                "#include \"link.hh\"\n"
                "void\n"
                "Link::drain()\n"
                "{\n"
                "    creditBatch = 0;\n"
                "}\n");
    auto fs = l.run();
    ASSERT_EQ(countRule(fs, "D11"), 1);
    EXPECT_EQ(fs[0].file, "src/noc/link.cc");
    EXPECT_EQ(fs[0].line, 5);
}

TEST(LintD11, AccessThroughAnotherObjectIsFlagged)
{
    auto fs = lintOne("src/common/x.hh",
                      "struct Core {\n"
                      "    CAIS_OWNED_BY_DOMAIN(barrier);\n"
                      "    CAIS_SHARD_SHARED bool stopFlag = false;\n"
                      "};\n"
                      "inline void\n"
                      "halt(Core &c)\n"
                      "{\n"
                      "    c.stopFlag = true;\n"
                      "}\n");
    ASSERT_EQ(countRule(fs, "D11"), 1);
    EXPECT_EQ(fs[0].line, 8);
}

TEST(LintD11, ChannelFunctionAndCtorInitPass)
{
    // The declaration itself, a ctor-init-list mention, and accesses
    // inside a declared channel are all sanctioned.
    Linter l;
    l.addSource("src/noc/link.hh",
                "struct Link {\n"
                "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                "    CAIS_SHARD_SHARED int creditBatch;\n"
                "    Link();\n"
                "    CAIS_CROSS_SHARD_CHANNEL void returnCredit();\n"
                "};\n");
    l.addSource("src/noc/link.cc",
                "#include \"link.hh\"\n"
                "Link::Link() : creditBatch(0) {}\n"
                "void\n"
                "Link::returnCredit()\n"
                "{\n"
                "    creditBatch += 1;\n"
                "    auto trim = [this] { creditBatch = 0; };\n"
                "    trim();\n"
                "}\n");
    EXPECT_EQ(countRule(l.run(), "D11"), 0);
}

TEST(LintD11, TestsAndBenchAreOutOfScope)
{
    Linter l;
    l.addSource("src/noc/link.hh",
                "struct Link {\n"
                "    CAIS_OWNED_BY_DOMAIN(sender);\n"
                "    CAIS_SHARD_SHARED int creditBatch = 0;\n"
                "};\n");
    l.addSource("tests/t.cc",
                "#include \"link.hh\"\n"
                "void probe(Link &l) { l.creditBatch = 9; }\n");
    EXPECT_EQ(countRule(l.run(), "D11"), 0);
}

TEST(LintD11, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/noc/x.hh",
        "struct Link {\n"
        "    CAIS_OWNED_BY_DOMAIN(sender);\n"
        "    CAIS_SHARD_SHARED int creditBatch = 0;\n"
        "    void poke() {\n"
        "        // cais-lint: allow(D11) -- read-only diagnostic\n"
        "        int x = creditBatch;\n"
        "        (void)x;\n"
        "    }\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "D11"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// D12: floating-point arithmetic on cycle-typed values in hot paths
// --------------------------------------------------------------------

TEST(LintD12, CastOfDoubleExpressionIsFlagged)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "Cycle f(Cycle c, double mult) {\n"
        "    return static_cast<Cycle>(\n"
        "        static_cast<double>(c) * mult);\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "D12"), 1);
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintD12, CastOverFloatingLiteralIsFlagged)
{
    auto fs = lintOne(
        "src/noc/x.cc",
        "Cycle f(Cycle c) {\n"
        "    return static_cast<Cycle>(c * 1.5);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 1);
}

TEST(LintD12, CastOverExponentLiteralIsFlagged)
{
    // 4e3 has no dot but is still a double literal; 0x1E is not.
    auto fs = lintOne(
        "src/switchcompute/x.cc",
        "Cycle f(Cycle c) {\n"
        "    Cycle a = static_cast<Cycle>(c + 4e3);\n"
        "    Cycle b = static_cast<Cycle>(c + 0x1E);\n"
        "    return a + b;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 1);
}

TEST(LintD12, FloatKeywordInsideCastIsFlagged)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "Cycle f(Cycle c, float scale) {\n"
        "    return static_cast<Cycle>(static_cast<float>(c) *\n"
        "                              scale);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 1);
}

TEST(LintD12, IntegerOnlyCastPasses)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "Cycle f(int n) {\n"
        "    return static_cast<Cycle>(n) * 2;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 0);
}

TEST(LintD12, IntmathHelpersPass)
{
    auto fs = lintOne(
        "src/noc/x.cc",
        "Cycle f(std::uint64_t bytes, const SerDivider &bw) {\n"
        "    return bw.cycles(bytes) + ceilDiv(bytes, 4096);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 0);
}

TEST(LintD12, OutsideHotPathDirectoriesIsNotInScope)
{
    // The bound model and benches legitimately mix doubles with
    // cycle casts; D12 is scoped to the simulation hot paths.
    std::string src = "Cycle f(double v) {\n"
                      "    return static_cast<Cycle>(v);\n"
                      "}\n";
    EXPECT_EQ(countRule(lintOne("src/analysis/x.cc", src), "D12"), 0);
    EXPECT_EQ(countRule(lintOne("src/runtime/x.cc", src), "D12"), 0);
    EXPECT_EQ(countRule(lintOne("bench/x.cc", src), "D12"), 0);
}

TEST(LintD12, SuppressionCommentIsHonored)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "Cycle f(Cycle c, double mult) {\n"
        "    // cais-lint: allow(D12) -- seeded jitter, truncated\n"
        "    return static_cast<Cycle>(\n"
        "        static_cast<double>(c) * mult);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "D12"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

// --------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------

TEST(LintSuppress, SameLineSuppressionDropsTheFinding)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "int g = 0; // cais-lint: allow(D4) -- test fixture\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 0);
    EXPECT_EQ(countRule(fs, "X1"), 0);
}

TEST(LintSuppress, OwnLineSuppressionCoversNextCodeLine)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "// cais-lint: allow(D4) -- spans a comment\n"
                      "// block that keeps explaining the exemption\n"
                      "int g = 0;\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 0);
}

TEST(LintSuppress, WrongRuleDoesNotSuppress)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "int g = 0; // cais-lint: allow(D1) -- wrong rule\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 1);
}

TEST(LintSuppress, MissingJustificationIsReportedAsX1)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "int g = 0; // cais-lint: allow(D4)\n"
                      "}\n");
    EXPECT_EQ(countRule(fs, "D4"), 1) << "must not suppress";
    EXPECT_EQ(countRule(fs, "X1"), 1);
}

TEST(LintSuppress, UnknownRuleIdIsReportedAsX1)
{
    auto fs = lintOne("src/common/x.cc",
                      "int x = 0; // cais-lint: allow(D99) -- nope\n");
    EXPECT_EQ(countRule(fs, "X1"), 1);
}

// --------------------------------------------------------------------
// Baseline diffing
// --------------------------------------------------------------------

TEST(LintBaseline, RoundTripSuppressesKnownFindings)
{
    std::string hazard = "namespace cais {\n"
                         "int g = 0;\n"
                         "}\n";
    auto first = lintOne("src/common/x.cc", hazard);
    ASSERT_EQ(countRule(first, "D4"), 1);

    std::string base = writeBaseline(first);
    auto second = lintOne("src/common/x.cc", hazard);
    int stale = applyBaseline(second, base);
    EXPECT_TRUE(second.empty());
    EXPECT_EQ(stale, 0);
}

TEST(LintBaseline, NewFindingsSurviveTheBaseline)
{
    auto old = lintOne("src/common/x.cc",
                       "namespace cais {\nint g = 0;\n}\n");
    std::string base = writeBaseline(old);

    // Same old hazard plus a new one two lines later.
    auto now = lintOne("src/common/x.cc",
                       "namespace cais {\n"
                       "int g = 0;\n"
                       "int h = 0;\n"
                       "}\n");
    applyBaseline(now, base);
    ASSERT_EQ(now.size(), 1u);
    EXPECT_EQ(now[0].line, 3);
}

TEST(LintBaseline, StaleEntriesAreCountedNotFatal)
{
    auto clean = lintOne("src/common/x.cc", "const int k = 1;\n");
    ASSERT_TRUE(clean.empty());
    int stale = applyBaseline(clean, "# comment\nD4|src/common/x.cc|2\n");
    EXPECT_EQ(stale, 1);
    EXPECT_TRUE(clean.empty());
}

// --------------------------------------------------------------------
// --json output (schema cais-lint-v1)
// --------------------------------------------------------------------

TEST(LintJson, FindingsDocumentParsesAndCarriesCounts)
{
    auto fs = lintOne("src/common/x.cc",
                      "namespace cais {\n"
                      "int g = 0;\n"
                      "}\n");
    ASSERT_EQ(countRule(fs, "D4"), 1);

    std::string doc = cais::lint::writeFindingsJson(fs, 1);
    cais::JsonValue v;
    std::string err;
    ASSERT_TRUE(cais::jsonParse(doc, v, err)) << err;
    EXPECT_EQ(v.getString("schema"), "cais-lint-v1");
    EXPECT_EQ(v.getNumber("filesScanned"), 1.0);
    EXPECT_EQ(v.getNumber("totalFindings"), 1.0);

    const cais::JsonValue *counts = v.find("counts");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->getNumber("D4"), 1.0);
    // Every rule of the table appears, zero or not.
    EXPECT_EQ(counts->members.size(), cais::lint::ruleTable().size());

    const cais::JsonValue *findings = v.find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_EQ(findings->elems.size(), 1u);
    EXPECT_EQ(findings->elems[0].getString("rule"), "D4");
    EXPECT_EQ(findings->elems[0].getString("file"), "src/common/x.cc");
    EXPECT_EQ(findings->elems[0].getNumber("line"), 2.0);
}

TEST(LintJson, CleanRunEmitsEmptyFindingsArray)
{
    std::vector<Finding> none;
    std::string doc = cais::lint::writeFindingsJson(none, 42);
    cais::JsonValue v;
    std::string err;
    ASSERT_TRUE(cais::jsonParse(doc, v, err)) << err;
    EXPECT_EQ(v.getNumber("filesScanned"), 42.0);
    EXPECT_EQ(v.getNumber("totalFindings"), 0.0);
    const cais::JsonValue *findings = v.find("findings");
    ASSERT_NE(findings, nullptr);
    EXPECT_TRUE(findings->isArray());
    EXPECT_TRUE(findings->elems.empty());
}

// --------------------------------------------------------------------
// Lexer robustness: rules must not fire inside comments or strings
// --------------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsAreInvisible)
{
    auto fs = lintOne(
        "src/gpu/x.cc",
        "// std::random_device in a comment\n"
        "/* rand() in a block comment */\n"
        "const char *s = \"std::random_device rand() time(\";\n"
        "const char *r = R\"(std::random_device)\";\n");
    EXPECT_EQ(fs.size(), 0u) << cais::lint::formatFinding(fs[0]);
}

TEST(LintLexer, RuleTableCoversAllRules)
{
    std::vector<std::string> want = {"D1", "D2",  "D3",  "D4",
                                     "D5", "D6",  "D7",  "D8",
                                     "D9", "D10", "D11", "D12",
                                     "X1"};
    const auto &table = cais::lint::ruleTable();
    ASSERT_EQ(table.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(table[i].id, want[i]);
}

} // namespace
