/**
 * @file
 * Determinism regression for the event-core overhaul: the bucketed
 * scheduler (default) and the legacy single-heap scheduler (behind
 * CAIS_EVENTQ=heap) implement the same (when, seq) total order, so a
 * full end-to-end run must produce bit-identical results — makespan,
 * utilizations, merge-unit counters, per-kernel timings, and a
 * StatRegistry snapshot of live counters — under either one.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "common/stats.hh"
#include "runtime/execution_strategy.hh"
#include "runtime/simulation_driver.hh"
#include "runtime/system.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

/** Pin CAIS_EVENTQ while a test body runs. */
class ScopedEventqEnv
{
  public:
    explicit ScopedEventqEnv(const char *kind)
    {
        setenv("CAIS_EVENTQ", kind, 1);
    }
    ~ScopedEventqEnv() { unsetenv("CAIS_EVENTQ"); }
};

RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    return cfg;
}

LlmConfig
smallModel()
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    return m;
}

/** End-to-end run under @p kind, harvested through runGraph. */
RunResult
runSmall(const char *kind, const char *strategy, SubLayerId sub)
{
    ScopedEventqEnv env(kind);
    return runGraph(strategyByName(strategy),
                    buildSubLayer(smallModel(), sub), smallConfig(),
                    subLayerName(sub));
}

/**
 * End-to-end run under @p kind with a live System, snapshotting the
 * merge-unit counters through a StatRegistry.
 */
std::map<std::string, double>
snapshotSmall(const char *kind)
{
    ScopedEventqEnv env(kind);
    StrategySpec spec = strategyByName("CAIS");
    OpGraph graph = buildSubLayer(smallModel(), SubLayerId::L2);
    RunConfig cfg = smallConfig();

    System sys(cfg.toSystemConfig(spec));
    GraphLowering lowering(sys, graph, spec.opts);
    lowering.lower();
    sys.run();

    StatRegistry reg;
    for (SwitchId s = 0; s < sys.numSwitches(); ++s) {
        const MergeStats &ms = sys.switchCompute(s).merge().stats();
        std::string p = "switch" + std::to_string(s) + ".merge.";
        reg.add(p + "loadReqs", &ms.loadReqs);
        reg.add(p + "redReqs", &ms.redReqs);
        reg.add(p + "loadHits", &ms.loadHits);
        reg.add(p + "redHits", &ms.redHits);
        reg.add(p + "fetches", &ms.fetches);
        reg.add(p + "mergedWrites", &ms.mergedWrites);
        reg.add(p + "unmergedWrites", &ms.unmergedWrites);
        reg.add(p + "sessionsOpened", &ms.sessionsOpened);
        reg.add(p + "sessionsClosed", &ms.sessionsClosed);
    }
    auto snap = reg.snapshot();
    snap["makespan"] = static_cast<double>(sys.makespan());
    snap["events"] = static_cast<double>(sys.eq().executed());
    return snap;
}

/** Field-by-field bit equality of two harvested results. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.upUtil, b.upUtil);
    EXPECT_EQ(a.dnUtil, b.dnUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.staggerSamples, b.staggerSamples);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.mergeLoadHits, b.mergeLoadHits);
    EXPECT_EQ(a.mergeRedHits, b.mergeRedHits);
    EXPECT_EQ(a.mergeFetches, b.mergeFetches);
    EXPECT_EQ(a.lruEvictions, b.lruEvictions);
    EXPECT_EQ(a.timeoutEvictions, b.timeoutEvictions);
    EXPECT_EQ(a.throttleHints, b.throttleHints);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    EXPECT_EQ(a.commKernelCycles, b.commKernelCycles);
    EXPECT_EQ(a.computeKernelCycles, b.computeKernelCycles);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        EXPECT_EQ(a.kernels[k].name, b.kernels[k].name);
        EXPECT_EQ(a.kernels[k].start, b.kernels[k].start);
        EXPECT_EQ(a.kernels[k].finish, b.kernels[k].finish);
    }
    EXPECT_EQ(a.utilSeries, b.utilSeries);
}

} // namespace

TEST(EventDeterminism, BucketedMatchesHeapAcrossStrategies)
{
    for (const char *strategy : {"CAIS", "SP-NVLS", "LADM"}) {
        for (SubLayerId sub : {SubLayerId::L1, SubLayerId::L3}) {
            RunResult bucketed = runSmall("bucketed", strategy, sub);
            RunResult heap = runSmall("heap", strategy, sub);
            SCOPED_TRACE(std::string(strategy) + "/" + subLayerName(sub));
            expectIdentical(bucketed, heap);
        }
    }
}

TEST(EventDeterminism, StatSnapshotsBitIdentical)
{
    auto bucketed = snapshotSmall("bucketed");
    auto heap = snapshotSmall("heap");
    ASSERT_EQ(bucketed.size(), heap.size());
    for (const auto &[name, value] : bucketed) {
        ASSERT_TRUE(heap.count(name)) << name;
        EXPECT_EQ(value, heap.at(name)) << name;
    }
}

TEST(EventDeterminism, RepeatedRunsAreBitIdentical)
{
    RunResult first = runSmall("bucketed", "CAIS", SubLayerId::L2);
    RunResult second = runSmall("bucketed", "CAIS", SubLayerId::L2);
    expectIdentical(first, second);
}
