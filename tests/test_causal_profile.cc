/**
 * @file
 * Causal critical-path profiler tests (DESIGN.md §6g), locking the
 * three contracts:
 *
 *  1. The backward walk is exact: on a hand-built miniature wait-for
 *     graph with a known critical path, analyze() reproduces the
 *     golden attribution and segment list.
 *  2. Zero event-stream perturbation: a profiled run is bit-identical
 *     -- RunResult fields and metrics-report bytes -- to the same run
 *     without a profiler, on the flat shape and on a sharded tiered
 *     run.
 *  3. Shard determinism: the cais-profile-v1 artifact is
 *     byte-identical between shards=1 and shards=4, and coverage on a
 *     real run stays >= 95% of makespan.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analysis/causal_profile.hh"
#include "analysis/report.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "noc/topology.hh"
#include "report.hh" // tools/cais_report core
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

namespace
{

using namespace cais;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// --- 1. golden miniature ---------------------------------------------

/**
 * Hand-built chain, forward in time (makespan 100):
 *
 *   [ 0, 10] kernel K   launch            (self-continued to t=0)
 *   [10, 40] link  L    linkSerialization (caused by K at t=10)
 *   [40, 90] tb    T    smCompute         (caused by L at t=40)
 *   [90,100] kernel K   depWait           (caused by T at t=90)
 *
 * plus a decoy edge ending after the makespan that the walk must
 * ignore.
 */
class GoldenProfile : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        K = profnode::kernel(0);
        T = profnode::tb(0, 0, 0);
        L = profnode::link(0);
        prof.record(K, WaitClass::launch, 0, 10, K, 0);
        prof.record(L, WaitClass::linkSerialization, 10, 40, K, 10);
        prof.record(T, WaitClass::smCompute, 40, 90, L, 40);
        prof.record(K, WaitClass::depWait, 90, 100, T, 90);
        // Decoy: ends past the walk start, must never be selected.
        prof.record(K, WaitClass::hbm, 95, 120, T, 95);
        prof.finalize();
    }

    CausalProfiler prof;
    ProfNode K = 0, T = 0, L = 0;
};

TEST_F(GoldenProfile, WalkReproducesKnownAttribution)
{
    Attribution a = prof.analyze(K, 100);

    EXPECT_EQ(a.makespan, 100u);
    EXPECT_EQ(a.attributed(), 100u);
    EXPECT_DOUBLE_EQ(a.coverage(), 1.0);
    auto cycles = [&](WaitClass c) {
        return a.byClass[static_cast<std::size_t>(c)];
    };
    EXPECT_EQ(cycles(WaitClass::launch), 10u);
    EXPECT_EQ(cycles(WaitClass::linkSerialization), 30u);
    EXPECT_EQ(cycles(WaitClass::smCompute), 50u);
    EXPECT_EQ(cycles(WaitClass::depWait), 10u);
    EXPECT_EQ(cycles(WaitClass::hbm), 0u); // decoy ignored
    EXPECT_EQ(cycles(WaitClass::unattributed), 0u);

    // The path comes back in forward time order, gap-free.
    ASSERT_EQ(a.path.size(), 4u);
    EXPECT_EQ(a.path[0].node, K);
    EXPECT_EQ(a.path[0].cls, WaitClass::launch);
    EXPECT_EQ(a.path[0].t0, 0u);
    EXPECT_EQ(a.path[0].t1, 10u);
    EXPECT_EQ(a.path[1].node, L);
    EXPECT_EQ(a.path[1].cls, WaitClass::linkSerialization);
    EXPECT_EQ(a.path[2].node, T);
    EXPECT_EQ(a.path[2].cls, WaitClass::smCompute);
    EXPECT_EQ(a.path[3].node, K);
    EXPECT_EQ(a.path[3].cls, WaitClass::depWait);
    for (std::size_t i = 1; i < a.path.size(); ++i)
        EXPECT_EQ(a.path[i].t0, a.path[i - 1].t1);
}

TEST_F(GoldenProfile, UnreachedCyclesStayUnattributed)
{
    // Walking from a node with no incoming edges explains nothing;
    // the remainder lands in 'unattributed' and still sums to the
    // makespan (the invariant the coverage gate relies on).
    Attribution a = prof.analyze(profnode::hbm(3), 100);
    EXPECT_EQ(a.attributed(), 0u);
    EXPECT_EQ(a.byClass[static_cast<std::size_t>(
                  WaitClass::unattributed)],
              100u);
    EXPECT_DOUBLE_EQ(a.coverage(), 0.0);
}

TEST_F(GoldenProfile, JsonArtifactIsWellFormed)
{
    Attribution a = prof.analyze(K, 100);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(
        jsonParse(prof.toJson(a, "CAIS", "mini"), doc, error))
        << error;
    EXPECT_EQ(doc.getString("schema"), "cais-profile-v1");
    EXPECT_EQ(doc.getString("strategy"), "CAIS");
    EXPECT_EQ(doc.getString("workload"), "mini");
    EXPECT_DOUBLE_EQ(doc.getNumber("makespan"), 100.0);
    EXPECT_DOUBLE_EQ(doc.getNumber("coverage"), 1.0);
    const JsonValue *attr = doc.find("attribution");
    ASSERT_NE(attr, nullptr);
    EXPECT_EQ(attr->elems.size(),
              static_cast<std::size_t>(WaitClass::numClasses));
    const JsonValue *path = doc.find("criticalPath");
    ASSERT_NE(path, nullptr);
    EXPECT_EQ(path->elems.size(), 4u);
    EXPECT_EQ(path->elems[1].getString("class"),
              "linkSerialization");
}

TEST(CausalProfile, ScopedCauseProvidesAmbientProvenance)
{
    CausalProfiler prof;
    ProfNode A = profnode::hub(0), B = profnode::hub(1);
    {
        CausalProfiler::ScopedCause sc(&prof, A, 7);
        prof.record(B, WaitClass::hubInjection, 7, 20);
    }
    // Outside any scope, a cause-less record self-continues.
    prof.record(A, WaitClass::smCompute, 0, 7);
    prof.finalize();

    Attribution a = prof.analyze(B, 20);
    EXPECT_EQ(a.attributed(), 20u);
    ASSERT_EQ(a.path.size(), 2u);
    EXPECT_EQ(a.path[0].node, A);
    EXPECT_EQ(a.path[0].cls, WaitClass::smCompute);
    EXPECT_EQ(a.path[1].node, B);
    EXPECT_EQ(a.path[1].cls, WaitClass::hubInjection);
}

TEST_F(GoldenProfile, ReportToolRendersProfileViews)
{
    Attribution a = prof.analyze(K, 100);
    std::string text = prof.toJson(a, "CAIS", "mini");

    report::Report rep;
    std::string error;
    ASSERT_TRUE(report::load(text, "p.json", rep, error)) << error;
    EXPECT_TRUE(rep.isProfile());

    std::string attr = report::attribution(rep);
    EXPECT_NE(attr.find("smCompute"), std::string::npos);
    EXPECT_NE(attr.find("coverage: 100.0%"), std::string::npos);

    std::string path = report::criticalPath(rep);
    EXPECT_NE(path.find("4 segments"), std::string::npos);
    EXPECT_NE(path.find("linkSerialization"), std::string::npos);

    // Self-diff: every class delta is +0.00%.
    std::string d = report::attributionDiff(rep, rep);
    EXPECT_NE(d.find("+0.00%"), std::string::npos);
    EXPECT_EQ(d.find("n/a"), std::string::npos);
    std::string pd = report::criticalPathDiff(rep, rep);
    EXPECT_NE(pd.find("smCompute"), std::string::npos);

    // A metrics report is rejected by the profile views with a
    // pointer at the right flag, not rendered as garbage.
    RunConfig cfg;
    RunResult r;
    MetricRegistry reg;
    report::Report metrics;
    ASSERT_TRUE(report::load(
        renderMetricsReport(cfg, r, reg.snapshot()), "m.json",
        metrics, error));
    EXPECT_FALSE(metrics.isProfile());
    EXPECT_NE(report::attribution(metrics).find("cais-profile-v1"),
              std::string::npos);
}

// --- 2/3. end-to-end contracts ---------------------------------------

RunConfig
flatConfig()
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.unboundedMergeTable = true;
    cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    cfg.gpu.jitterSigma = 0.05;
    return cfg;
}

RunConfig
tieredConfig()
{
    RunConfig cfg;
    cfg.topology = "nvl72";
    cfg.numGpus = 16; // 2 groups keeps the test fast
    return cfg;
}

RunResult
runProfiled(RunConfig cfg)
{
    OpGraph g =
        buildSubLayer(llama7B().scaled(0.25, 0.125), SubLayerId::L1);
    return runGraph(strategyByName("CAIS"), g, cfg, "L1");
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].start, b.kernels[i].start);
        EXPECT_EQ(a.kernels[i].finish, b.kernels[i].finish);
    }
    ASSERT_EQ(a.utilSeries.size(), b.utilSeries.size());
    for (std::size_t i = 0; i < a.utilSeries.size(); ++i)
        EXPECT_EQ(a.utilSeries[i], b.utilSeries[i]);
}

TEST(CausalProfile, ProfiledFlatRunIsBitIdentical)
{
    RunConfig plain = flatConfig();
    plain.metricsPath = "/tmp/cais_test_prof_off_m.json";
    RunConfig profiled = flatConfig();
    profiled.metricsPath = "/tmp/cais_test_prof_on_m.json";
    profiled.profilePath = "/tmp/cais_test_prof_on_p.json";

    RunResult base = runProfiled(plain);
    RunResult withProf = runProfiled(profiled);
    expectBitIdentical(base, withProf);

    // The whole report must match to the byte: the profiler may not
    // perturb a single counter anywhere in the machine.
    EXPECT_EQ(slurp(plain.metricsPath), slurp(profiled.metricsPath));

    std::remove(plain.metricsPath.c_str());
    std::remove(profiled.metricsPath.c_str());
    std::remove(profiled.profilePath.c_str());
}

TEST(CausalProfile, ProfiledShardedTieredRunIsBitIdentical)
{
    RunConfig plain = tieredConfig();
    plain.shards = 4;
    RunConfig profiled = tieredConfig();
    profiled.shards = 4;
    profiled.profilePath = "/tmp/cais_test_prof_sh_p.json";

    expectBitIdentical(runProfiled(plain), runProfiled(profiled));
    std::remove(profiled.profilePath.c_str());
}

TEST(CausalProfile, AttributionIsByteIdenticalAcrossShardCounts)
{
    RunConfig seq = tieredConfig();
    seq.shards = 1;
    seq.profilePath = "/tmp/cais_test_prof_s1.json";
    RunConfig sharded = tieredConfig();
    sharded.shards = 4;
    sharded.profilePath = "/tmp/cais_test_prof_s4.json";

    runProfiled(seq);
    runProfiled(sharded);
    EXPECT_EQ(slurp(seq.profilePath), slurp(sharded.profilePath));

    std::remove(seq.profilePath.c_str());
    std::remove(sharded.profilePath.c_str());
}

TEST(CausalProfile, RealRunCoversAtLeast95PercentOfMakespan)
{
    RunConfig cfg = flatConfig();
    cfg.profilePath = "/tmp/cais_test_prof_cov.json";
    RunResult r = runProfiled(cfg);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(jsonParse(slurp(cfg.profilePath), doc, error))
        << error;
    EXPECT_EQ(doc.getString("schema"), "cais-profile-v1");
    EXPECT_DOUBLE_EQ(doc.getNumber("makespan"),
                     static_cast<double>(r.makespan));
    EXPECT_GE(doc.getNumber("coverage"), 0.95);

    // attribution[] (with the unattributed remainder) accounts for
    // every makespan cycle exactly once.
    const JsonValue *attr = doc.find("attribution");
    ASSERT_NE(attr, nullptr);
    double sum = 0.0, sum_attr = 0.0;
    for (const JsonValue &e : attr->elems) {
        sum += e.getNumber("cycles");
        if (e.getString("class") != "unattributed")
            sum_attr += e.getNumber("cycles");
    }
    EXPECT_DOUBLE_EQ(sum, doc.getNumber("makespan"));
    EXPECT_DOUBLE_EQ(sum_attr, doc.getNumber("attributedCycles"));

    std::remove(cfg.profilePath.c_str());
}

} // namespace
