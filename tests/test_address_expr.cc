/** @file Tests for affine address expressions and GPU-invariance. */

#include <gtest/gtest.h>

#include "isa/address_expr.hh"

using namespace cais;

TEST(AddressExpr, ConstantEvaluates)
{
    auto e = AddressExpr::constant(4096);
    EXPECT_EQ(e.eval({}), 4096);
    EXPECT_TRUE(e.gpuInvariant());
}

TEST(AddressExpr, AffineEvaluation)
{
    // base + 64*blockIdx.x + 8*chunk
    auto e = AddressExpr::constant(1000) +
             AddressExpr::term(AddrVar::blockIdxX, 64) +
             AddressExpr::term(AddrVar::chunkIdx, 8);
    AddrBindings b;
    b.blockIdxX = 3;
    b.chunkIdx = 2;
    EXPECT_EQ(e.eval(b), 1000 + 192 + 16);
}

TEST(AddressExpr, GpuInvarianceDetection)
{
    auto inv = AddressExpr::term(AddrVar::blockIdxX, 128);
    EXPECT_TRUE(inv.gpuInvariant());

    auto var = inv + AddressExpr::term(AddrVar::gpuId, 1 << 20);
    EXPECT_FALSE(var.gpuInvariant());

    // Subtracting the gpu term restores invariance.
    auto back = var - AddressExpr::term(AddrVar::gpuId, 1 << 20);
    EXPECT_TRUE(back.gpuInvariant());
}

TEST(AddressExpr, ScalingMultipliesEverything)
{
    auto e = (AddressExpr::constant(2) +
              AddressExpr::term(AddrVar::blockIdxY, 3))
                 .scaled(4);
    EXPECT_EQ(e.constantPart(), 8);
    EXPECT_EQ(e.coeff(AddrVar::blockIdxY), 12);
}

TEST(AddressExpr, InPlaceBuilders)
{
    AddressExpr e;
    e.addTerm(AddrVar::threadIdxX, 4).addConst(100);
    AddrBindings b;
    b.threadIdxX = 8;
    EXPECT_EQ(e.eval(b), 132);
}

TEST(AddressExpr, EqualityAndStr)
{
    auto a = AddressExpr::term(AddrVar::blockIdxX, 64);
    auto b = AddressExpr::term(AddrVar::blockIdxX, 64);
    EXPECT_TRUE(a == b);
    EXPECT_NE(a.str().find("blockIdx.x"), std::string::npos);
}

TEST(AddressExpr, SameBlockIdxSameAddressAcrossGpus)
{
    // The core compiler property: a gpu-invariant expression yields
    // identical addresses for TBs with equal blockIdx on any GPU.
    auto e = AddressExpr::constant(1 << 16) +
             AddressExpr::term(AddrVar::blockIdxX, 4096);
    for (int tb = 0; tb < 8; ++tb) {
        AddrBindings g0, g7;
        g0.blockIdxX = g7.blockIdxX = tb;
        g0.gpuId = 0;
        g7.gpuId = 7;
        EXPECT_EQ(e.eval(g0), e.eval(g7));
    }
}
