/** @file Tests for the experiment driver: config mapping and the
 *  harvested metrics. */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

TEST(Driver, ConfigMapsIntoSystemConfig)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.chunkBytes = 8192;
    cfg.mergeTableEntriesPerPort = 100;
    StrategySpec spec = strategyByName("CAIS");
    SystemConfig sc = cfg.toSystemConfig(spec);

    EXPECT_EQ(sc.fabric.numGpus, 4);
    EXPECT_EQ(sc.fabric.numSwitches, 2);
    EXPECT_EQ(sc.gpu.chunkBytes, 8192u);
    EXPECT_EQ(sc.inswitch.merge.chunkBytes, 8192u);
    // entries x chunk bytes.
    EXPECT_EQ(sc.inswitch.merge.tableBytesPerPort, 100u * 8192u);
    // Deterministic routing interleave matches the chunk.
    EXPECT_EQ(sc.fabric.interleaveBytes, 8192u);
    // Throttling is a coordination feature.
    EXPECT_TRUE(sc.inswitch.merge.throttleEnabled);
    EXPECT_FALSE(cfg.toSystemConfig(strategyByName("CAIS-Base"))
                     .inswitch.merge.throttleEnabled);
}

TEST(Driver, ExplicitTableBytesOverrideEntries)
{
    RunConfig cfg;
    cfg.mergeTableBytesPerPort = 12345 * 4096ull;
    SystemConfig sc = cfg.toSystemConfig(strategyByName("CAIS"));
    EXPECT_EQ(sc.inswitch.merge.tableBytesPerPort, 12345u * 4096u);

    RunConfig unbounded;
    unbounded.unboundedMergeTable = true;
    EXPECT_EQ(unbounded.toSystemConfig(strategyByName("CAIS"))
                  .inswitch.merge.tableBytesPerPort,
              0u);
}

TEST(Driver, UnifiedVcFlagReachesTheSwitch)
{
    RunConfig cfg;
    EXPECT_TRUE(cfg.toSystemConfig(strategyByName("CAIS-Partial"))
                    .fabric.sw.unifiedDataVc);
    EXPECT_FALSE(cfg.toSystemConfig(strategyByName("CAIS"))
                     .fabric.sw.unifiedDataVc);
}

TEST(Driver, ResultCarriesKernelTimeline)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunResult r = runGraph(strategyByName("SP-NVLS"), g, cfg, "L1");

    ASSERT_EQ(r.kernels.size(), 5u);
    int comm = 0;
    for (const KernelTiming &k : r.kernels) {
        EXPECT_LE(k.start, k.finish);
        EXPECT_LE(k.finish, r.makespan);
        comm += k.comm;
    }
    EXPECT_EQ(comm, 2);
    EXPECT_GT(r.commKernelCycles, 0u);
    EXPECT_GT(r.computeKernelCycles, 0u);
    EXPECT_EQ(r.strategy, "SP-NVLS");
    EXPECT_EQ(r.workload, "L1");
    EXPECT_EQ(r.utilBinWidth, cfg.utilBinWidth);
    EXPECT_NEAR(r.makespanUs() * 1000.0,
                static_cast<double>(r.makespan), 1.0);
}

TEST(Driver, BarrierBaselineCommComputeDontOverlap)
{
    // For the serialized baseline, comm + compute kernel time covers
    // nearly the whole makespan (phases are disjoint).
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunResult r = runGraph(strategyByName("SP-NVLS"), g, cfg, "L1");
    Cycle covered = r.commKernelCycles + r.computeKernelCycles;
    EXPECT_GT(static_cast<double>(covered),
              0.85 * static_cast<double>(r.makespan));
    EXPECT_LE(covered, r.makespan + 10);
}
