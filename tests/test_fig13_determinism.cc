/**
 * @file
 * Fig. 13 determinism regression: the merge-table sizing experiment
 * (unbounded table, large start skew, scheduling jitter -- the
 * configuration that exercises every random stream in the simulator)
 * must be bit-identical across runs with the same seed, and the seed
 * must actually steer the skew/jitter streams.
 *
 * This guards the hazards cais-lint polices (unordered iteration,
 * pointer-keyed maps, unseeded randomness): any of them regressing
 * shows up here as a flaky metric long before it corrupts a paper
 * figure.
 */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

namespace
{

using namespace cais;

/** A scaled-down Fig. 13(a)-style run: measure required table size
 *  under the uncoordinated drift regime. */
RunConfig
fig13Config(std::uint64_t seed)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.seed = seed;
    cfg.unboundedMergeTable = true;
    cfg.gpu.maxStartSkew = 35 * cyclesPerUs;
    cfg.gpu.jitterSigma = 0.05;
    return cfg;
}

RunResult
runFig13(const std::string &strategy, std::uint64_t seed)
{
    OpGraph g =
        buildSubLayer(llama7B().scaled(0.25, 0.25), SubLayerId::L1);
    return runGraph(strategyByName(strategy), g, fig13Config(seed),
                    "L1");
}

/** Every integer field must match exactly; no tolerance anywhere. */
void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.staggerSamples, b.staggerSamples);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.mergeLoadHits, b.mergeLoadHits);
    EXPECT_EQ(a.mergeRedHits, b.mergeRedHits);
    EXPECT_EQ(a.mergeFetches, b.mergeFetches);
    EXPECT_EQ(a.lruEvictions, b.lruEvictions);
    EXPECT_EQ(a.timeoutEvictions, b.timeoutEvictions);
    EXPECT_EQ(a.throttleHints, b.throttleHints);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    EXPECT_EQ(a.commKernelCycles, b.commKernelCycles);
    EXPECT_EQ(a.computeKernelCycles, b.computeKernelCycles);
    // Doubles must match to the bit too: same event order, same
    // accumulation order.
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].start, b.kernels[i].start);
        EXPECT_EQ(a.kernels[i].finish, b.kernels[i].finish);
    }
}

TEST(Fig13Determinism, UncoordinatedRunIsBitIdentical)
{
    // CAIS-w/o-Coord leans hardest on the skew RNG (no pre-launch
    // sync bounds the drift), so it is the most hazard-sensitive.
    RunResult a = runFig13("CAIS-w/o-Coord", 1);
    RunResult b = runFig13("CAIS-w/o-Coord", 1);
    expectBitIdentical(a, b);
    EXPECT_GT(a.peakMergeBytes, 0u);
}

TEST(Fig13Determinism, FullCaisRunIsBitIdentical)
{
    RunResult a = runFig13("CAIS", 1);
    RunResult b = runFig13("CAIS", 1);
    expectBitIdentical(a, b);
}

TEST(Fig13Determinism, SeedSteersTheRandomStreams)
{
    // A different master seed must change the jitter/skew draws --
    // otherwise RunConfig::seed is not actually plumbed through.
    RunResult a = runFig13("CAIS-w/o-Coord", 1);
    RunResult b = runFig13("CAIS-w/o-Coord", 2);
    EXPECT_NE(a.makespan, b.makespan);
}

TEST(Fig13Determinism, DefaultSeedMatchesExplicitOne)
{
    OpGraph g =
        buildSubLayer(llama7B().scaled(0.25, 0.25), SubLayerId::L1);
    RunConfig def = fig13Config(1);
    RunConfig expl = fig13Config(1);
    def.seed = RunConfig{}.seed; // the documented default
    RunResult a = runGraph(strategyByName("CAIS"), g, def, "L1");
    RunResult b = runGraph(strategyByName("CAIS"), g, expl, "L1");
    expectBitIdentical(a, b);
}

} // namespace
