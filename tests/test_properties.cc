/**
 * @file
 * Property-based (parameterized) sweeps over simulator invariants:
 * conservation of merged traffic, routing determinism across fabric
 * shapes, completion across GPU counts and chunk sizes.
 */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

// --------------------------------------------------------------------
// Fabric-shape sweep: the sub-layer completes and conserves traffic
// for every (gpus, switches) combination.
// --------------------------------------------------------------------

class FabricShape
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FabricShape, SubLayerCompletesAndMergesFully)
{
    auto [gpus, switches] = GetParam();
    RunConfig cfg;
    cfg.numGpus = gpus;
    cfg.numSwitches = switches;
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 2;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunResult r = runGraph(strategyByName("CAIS"), g, cfg, "L1");

    EXPECT_GT(r.makespan, 0u);
    // Load-merge conservation: one fetch per (G-1) requests.
    EXPECT_EQ(r.mergeFetches + r.mergeLoadHits, r.mergeLoadReqs);
    if (r.mergeLoadReqs > 0) {
        double per_fetch = static_cast<double>(r.mergeLoadReqs) /
                           static_cast<double>(r.mergeFetches);
        EXPECT_NEAR(per_fetch, static_cast<double>(gpus - 1), 0.6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FabricShape,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(4, 2),
                      std::make_tuple(4, 4), std::make_tuple(8, 4),
                      std::make_tuple(8, 2)));

// --------------------------------------------------------------------
// Chunk-granularity sweep: payload conservation is granularity-
// independent (coarser chunks = fewer, larger packets).
// --------------------------------------------------------------------

class ChunkSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ChunkSweep, PayloadVolumeIsGranularityInvariant)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    cfg.chunkBytes = GetParam();
    cfg.gpu.jitterSigma = 0.0;
    cfg.gpu.maxStartSkew = 0;
    // Chunks coarser than the session base alignment straddle
    // interleave blocks by design here -- the sweep's whole point is
    // that the fabric still conserves payload when a chunk splits
    // across switches. cais-verify's V3 flags exactly that hazard.
    cfg.verifySuppress = {"V3"};
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 2;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunResult r = runGraph(strategyByName("CAIS"), g, cfg, "L1");

    // The payload the fabric must move is set by the workload, not
    // the packetization: gemm pushes + merged writes + stage loads.
    // cais-lint: allow(D4) -- intra-suite reference captured on the
    // first param; gtest runs value-params in declaration order
    static std::uint64_t reference = 0;
    std::uint64_t payload = r.wireBytes;
    if (reference == 0)
        reference = payload;
    EXPECT_NEAR(static_cast<double>(payload),
                static_cast<double>(reference),
                0.15 * static_cast<double>(reference));
}

INSTANTIATE_TEST_SUITE_P(Granularity, ChunkSweep,
                         ::testing::Values(2048u, 4096u, 8192u,
                                           16384u));

// --------------------------------------------------------------------
// Strategy sweep: determinism — identical runs produce identical
// makespans (the simulator is seeded and event-ordered).
// --------------------------------------------------------------------

class StrategyDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StrategyDeterminism, RepeatRunsAreBitIdentical)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2;
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 1;
    OpGraph g = buildSubLayer(m, SubLayerId::L2);
    StrategySpec spec = strategyByName(GetParam());
    RunResult a = runGraph(spec, g, cfg, "L2");
    RunResult b = runGraph(spec, g, cfg, "L2");
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyDeterminism,
                         ::testing::Values("TP-NVLS", "SP-NVLS",
                                           "CoCoNet", "FuseLib", "T3",
                                           "T3-NVLS", "LADM",
                                           "CAIS-Base", "CAIS"));

// --------------------------------------------------------------------
// Merge-table capacity sweep: smaller tables must never break
// correctness (eviction keeps forward progress), only performance.
// --------------------------------------------------------------------

class TableSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TableSweep, BoundedTablesPreserveCompletion)
{
    RunConfig cfg;
    cfg.numGpus = 8;
    cfg.numSwitches = 4;
    cfg.mergeTableEntriesPerPort = GetParam();
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    m.batch = 2;
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunResult r =
        runGraph(strategyByName("CAIS-w/o-Coord"), g, cfg, "L1");
    EXPECT_GT(r.makespan, 0u);
    // Capacity in bytes is respected.
    EXPECT_LE(r.peakMergeBytes,
              static_cast<std::uint64_t>(GetParam()) * cfg.chunkBytes);
}

INSTANTIATE_TEST_SUITE_P(Capacities, TableSweep,
                         ::testing::Values(2, 4, 16, 64, 320));
