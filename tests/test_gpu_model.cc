/** @file Tests for GPU-side components: SM pool, scheduler, HBM,
 *  synchronizer, hub chunking, cost models. */

#include <gtest/gtest.h>

#include "gpu/gpu_core.hh"
#include "workload/gemm_model.hh"

using namespace cais;

TEST(SmPool, AcquireReleaseAndPartition)
{
    EventQueue eq;
    SmPool pool(eq, 4, 2); // 8 slots
    EXPECT_EQ(pool.freeCount(), 8);

    // Restrict to the lower half: SMs 0-1 -> 4 slots.
    std::vector<int> slots;
    for (int i = 0; i < 4; ++i) {
        int s = pool.acquire(0.0, 0.5);
        ASSERT_GE(s, 0);
        slots.push_back(s);
    }
    EXPECT_EQ(pool.acquire(0.0, 0.5), -1);
    EXPECT_TRUE(pool.hasFree(0.5, 1.0));
    pool.release(slots[0]);
    EXPECT_GE(pool.acquire(0.0, 0.5), 0);
}

TEST(SmPool, UtilizationAccounting)
{
    EventQueue eq;
    SmPool pool(eq, 2, 1); // 2 slots
    int s = pool.acquire(0.0, 1.0);
    eq.schedule(100, [&] { pool.release(s); });
    eq.runAll();
    eq.runUntil(200);
    // One of two slots busy for 100 of 200 cycles -> 25%.
    EXPECT_NEAR(pool.utilization(200), 0.25, 1e-9);
}

TEST(TbScheduler, DispatchesFifoWithinBucket)
{
    EventQueue eq;
    SmPool pool(eq, 1, 1); // single slot
    TbScheduler sched(pool);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        sched.enqueue(0.0, 1.0, 1, [&, i](int slot) {
            order.push_back(i);
            // Hold the slot; released below.
            eq.scheduleAfter(10, [&, slot] {
                pool.release(slot);
                sched.pump();
            });
        });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TbScheduler, PriorityDispatchesCommFirst)
{
    EventQueue eq;
    SmPool pool(eq, 1, 1);
    TbScheduler sched(pool);
    // Occupy the slot so both queue up.
    int held = pool.acquire(0.0, 1.0);
    std::vector<std::string> order;
    sched.enqueue(0.0, 1.0, 1, [&](int) { order.push_back("compute"); });
    sched.enqueue(0.0, 1.0, 0, [&](int) { order.push_back("comm"); });
    pool.release(held);
    sched.pump();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], "comm");
}

TEST(TbScheduler, SpillsIntoIdlePartnerPartition)
{
    EventQueue eq;
    SmPool pool(eq, 4, 1);
    TbScheduler sched(pool);
    int dispatched = 0;
    // 4 TBs confined to the upper half (2 slots) spill into the idle
    // lower half under the work-conserving second pass.
    for (int i = 0; i < 4; ++i)
        sched.enqueue(0.5, 1.0, 1, [&](int) { ++dispatched; });
    EXPECT_EQ(dispatched, 4);
}

TEST(HbmModel, SerializesBandwidth)
{
    EventQueue eq;
    HbmModel hbm(eq, 100.0, 50);
    std::vector<Cycle> done;
    hbm.access(1000, [&] { done.push_back(eq.now()); }); // 10 cyc
    hbm.access(1000, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 60u);  // 10 + 50 latency
    EXPECT_EQ(done[1], 70u);  // starts at 10, +10 +50
    EXPECT_EQ(hbm.totalBytes(), 2000u);
}

TEST(GemmModel, TbCostScalesWithK)
{
    GpuParams gp;
    GemmTiling t;
    Cycle c1 = gemmTbCycles(gp, t, 1024);
    Cycle c2 = gemmTbCycles(gp, t, 2048);
    EXPECT_NEAR(static_cast<double>(c2) / static_cast<double>(c1),
                2.0, 0.01);
    // 2*128*128*2048 FLOP at ~4875 effective FLOP/cycle ~ 13.8 us.
    EXPECT_NEAR(static_cast<double>(c2), 13800.0, 600.0);
}

TEST(GemmModel, MemBoundCost)
{
    GpuParams gp;
    Cycle c = memBoundTbCycles(gp, 1 << 20, 2.0);
    EXPECT_GT(c, 1000u);
    EXPECT_LT(c, 20000u);
    EXPECT_GE(memBoundTbCycles(gp, 1, 1.0), 1u);
}

TEST(GpuParams, ValidationCatchesBadConfigs)
{
    GpuParams p;
    p.validate();
    EXPECT_EQ(fullScaleH100().numSms, 132);
    EXPECT_EQ(halfScaleH100().numSms, 66);
    GpuParams bad = p;
    bad.chunkBytes = 64;
    EXPECT_DEATH(bad.validate(), "128");
}

TEST(Kernel, HelpersAndValidation)
{
    KernelDesc k;
    k.name = "t";
    k.grids.resize(2);
    TbDesc tb;
    tb.computeCycles = 10;
    k.grids[0].push_back(tb);
    k.grids[0].push_back(tb);
    k.grids[1].push_back(tb);
    EXPECT_EQ(k.totalTbs(), 3u);
    EXPECT_EQ(k.computeWork(0), 20u);
    k.validate(2);

    EXPECT_TRUE(isPullKind(RemoteOpKind::caisLoad));
    EXPECT_TRUE(isPullKind(RemoteOpKind::nvlsLdReduce));
    EXPECT_FALSE(isPullKind(RemoteOpKind::caisRed));
    EXPECT_TRUE(isCaisKind(RemoteOpKind::caisRed));
    EXPECT_FALSE(isCaisKind(RemoteOpKind::plainWrite));
}
