/** @file Tests for tile trackers and the address map. */

#include <gtest/gtest.h>

#include "dataflow/tile_dependency.hh"

using namespace cais;

TEST(TileTracker, ReadyAtNeedThreshold)
{
    TileTracker t("x", 2, 4, 1000);
    EXPECT_FALSE(t.ready(0, 0));
    t.contribute(0, 0, 999);
    EXPECT_FALSE(t.ready(0, 0));
    t.contribute(0, 0, 1);
    EXPECT_TRUE(t.ready(0, 0));
    EXPECT_FALSE(t.ready(1, 0)); // per-GPU readiness
}

TEST(TileTracker, WaitersFireOnceOnReadiness)
{
    TileTracker t("x", 1, 2, 100);
    int fired = 0;
    t.waitFor(0, 1, [&] { ++fired; });
    t.contribute(0, 1, 50);
    EXPECT_EQ(fired, 0);
    t.contribute(0, 1, 50);
    EXPECT_EQ(fired, 1);
    t.contribute(0, 1, 100); // over-contribution: no re-fire
    EXPECT_EQ(fired, 1);
}

TEST(TileTracker, ImmediateCallbackWhenAlreadyReady)
{
    TileTracker t("x", 1, 1, 10);
    t.contribute(0, 0, 10);
    int fired = 0;
    t.waitFor(0, 0, [&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(TileTracker, CompletenessOverRelevantPairs)
{
    TileTracker t("rs", 4, 4, 100);
    // Shard-style relevance: tile t matters only at GPU t.
    t.setRelevance([](GpuId g, int tile) { return g == tile; });
    int complete = 0;
    t.waitComplete([&] { ++complete; });
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(complete, 0);
        t.contribute(i, i, 100);
    }
    EXPECT_EQ(complete, 1);
    EXPECT_TRUE(t.complete());
    EXPECT_DOUBLE_EQ(t.progress(), 1.0);
}

TEST(TileTracker, IrrelevantContributionsDontComplete)
{
    TileTracker t("rs", 2, 2, 100);
    t.setRelevance([](GpuId g, int tile) { return g == tile; });
    t.contribute(0, 1, 100); // irrelevant pair
    t.contribute(1, 0, 100); // irrelevant pair
    EXPECT_FALSE(t.complete());
    EXPECT_DOUBLE_EQ(t.progress(), 0.0);
}

TEST(TileTracker, ReductionSemanticsViaNeedFactor)
{
    // A reduction output needs G contributions of tile bytes.
    const std::uint64_t tile_bytes = 4096;
    TileTracker t("red", 1, 1, tile_bytes * 4);
    for (int c = 0; c < 3; ++c)
        t.contribute(0, 0, tile_bytes);
    EXPECT_FALSE(t.ready(0, 0));
    t.contribute(0, 0, tile_bytes);
    EXPECT_TRUE(t.ready(0, 0));
}

TEST(AddressMap, DispatchesToCoveringRange)
{
    TileTracker t("x", 2, 4, 4096);
    AddressMap m;
    m.addRange(0x10000, 4 * 4096, &t, 0, 4096);

    EXPECT_TRUE(m.dispatch(0, 0x10000, 4096, 0));
    EXPECT_TRUE(t.ready(0, 0));
    EXPECT_TRUE(m.dispatch(1, 0x10000 + 3 * 4096, 4096, 0));
    EXPECT_TRUE(t.ready(1, 3));
    EXPECT_FALSE(m.dispatch(0, 0x90000, 64, 0));
    EXPECT_EQ(m.unmatchedArrivals(), 1u);
}

TEST(AddressMap, ContribMultiplierScalesBytes)
{
    TileTracker t("red", 1, 1, 4 * 4096);
    AddressMap m;
    m.addRange(0x1000, 4096, &t, 0, 4096);
    // A merged write representing 4 contributions readies the tile.
    EXPECT_TRUE(m.dispatch(0, 0x1000, 4096, 4));
    EXPECT_TRUE(t.ready(0, 0));
}

TEST(AddressMap, PayloadSpanningTilesSplitsBytes)
{
    TileTracker t("x", 1, 2, 2048);
    AddressMap m;
    m.addRange(0, 2 * 2048, &t, 0, 2048);
    // 4096 bytes starting at offset 1024: 1024 into tile 0, 2048 into
    // tile 1 (clamped at range end).
    m.dispatch(0, 1024, 4096, 0);
    EXPECT_FALSE(t.ready(0, 0));
    EXPECT_TRUE(t.ready(0, 1));
    m.dispatch(0, 0, 1024, 0);
    EXPECT_TRUE(t.ready(0, 0));
}

TEST(AddressMap, MultipleRangesBinarySearch)
{
    TileTracker a("a", 1, 1, 64), b("b", 1, 1, 64);
    AddressMap m;
    m.addRange(0x2000, 64, &b, 0, 64);
    m.addRange(0x1000, 64, &a, 0, 64);
    EXPECT_TRUE(m.dispatch(0, 0x1000, 64, 0));
    EXPECT_TRUE(m.dispatch(0, 0x2000, 64, 0));
    EXPECT_TRUE(a.ready(0, 0));
    EXPECT_TRUE(b.ready(0, 0));
}
