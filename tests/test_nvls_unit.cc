/**
 * @file
 * Tests for the stock NVLS unit: multicast store, gather-reduce, and
 * push-reduce, through a 4-GPU/1-switch rig.
 */

#include <gtest/gtest.h>

#include <memory>

#include "switchcompute/switch_compute.hh"

using namespace cais;

namespace
{

struct NvlsGpuStub : public PacketSink
{
    PacketIdAllocator ids;
    std::vector<Packet> got;
    CreditLink *up = nullptr;
    GpuId id = 0;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        from->returnCredit(vc);
        if (pkt.type == PacketType::readReq) {
            Packet resp = makePacket(ids, PacketType::readResp, id,
                                          pkt.src);
            resp.addr = pkt.addr;
            resp.payloadBytes = pkt.reqBytes;
            if (pkt.padResponse)
                resp.padBytes = pkt.reqBytes / protocolPadDivisor;
            resp.cookie = pkt.cookie;
            up->send(std::move(resp));
            return;
        }
        got.push_back(pkt);
    }
};

struct NvlsRig
{
    PacketIdAllocator ids;
    EventQueue eq;
    SwitchParams sp;
    std::unique_ptr<SwitchChip> sw;
    std::unique_ptr<SwitchComputeComplex> complex;
    std::vector<std::unique_ptr<CreditLink>> ups, downs;
    NvlsGpuStub gpus[4];

    NvlsRig()
    {
        sw = std::make_unique<SwitchChip>(eq, 0, 4, 4, sp);
        complex = std::make_unique<SwitchComputeComplex>(
            *sw, InSwitchParams{});
        for (GpuId g = 0; g < 4; ++g) {
            ups.push_back(std::make_unique<CreditLink>(
                eq, "up", 450.0, 50, sp.numVcs, 64, 10000));
            sw->attachUplink(g, ups.back().get());
            downs.push_back(std::make_unique<CreditLink>(
                eq, "dn", 450.0, 50, sp.numVcs, 64, 10000));
            sw->attachDownlink(g, downs.back().get());
            gpus[g].id = g;
            gpus[g].up = ups.back().get();
            downs.back()->setSink(&gpus[g]);
        }
    }
};

} // namespace

TEST(NvlsUnit, MulticastStoreReplicatesToPeers)
{
    NvlsRig rig;
    Packet st = makePacket(rig.ids, PacketType::multimemSt, 1, 4);
    st.addr = makeAddr(62, 0x1000);
    st.payloadBytes = 4096;
    st.issuerGpu = 1;
    st.cookie = 77;
    rig.ups[1]->send(std::move(st));
    rig.eq.runAll();

    EXPECT_EQ(rig.complex->nvls().multicasts(), 1u);
    // Peers 0, 2, 3 receive the data; the issuer gets a posted ack.
    for (GpuId g : {0, 2, 3}) {
        ASSERT_EQ(rig.gpus[g].got.size(), 1u) << "gpu " << g;
        EXPECT_EQ(rig.gpus[g].got[0].type, PacketType::writeReq);
        EXPECT_EQ(rig.gpus[g].got[0].payloadBytes, 4096u);
    }
    ASSERT_EQ(rig.gpus[1].got.size(), 1u);
    EXPECT_EQ(rig.gpus[1].got[0].type, PacketType::writeAck);
    EXPECT_EQ(rig.gpus[1].got[0].cookie, 77u);
}

TEST(NvlsUnit, GatherReduceFetchesAllReplicas)
{
    NvlsRig rig;
    Packet ld = makePacket(rig.ids, PacketType::multimemLdReduceReq, 2, 4);
    ld.addr = makeAddr(62, 0x2000);
    ld.reqBytes = 4096;
    ld.expected = 4;
    ld.issuerGpu = 2;
    ld.cookie = 55;
    rig.ups[2]->send(std::move(ld));
    rig.eq.runAll();

    EXPECT_EQ(rig.complex->nvls().gatherReduces(), 1u);
    EXPECT_EQ(rig.complex->nvls().pendingSessions(), 0u);
    // The requester received exactly one reduced response.
    ASSERT_EQ(rig.gpus[2].got.size(), 1u);
    EXPECT_EQ(rig.gpus[2].got[0].type,
              PacketType::multimemLdReduceResp);
    EXPECT_EQ(rig.gpus[2].got[0].cookie, 55u);
    // Every GPU's uplink carried one 4 KiB replica toward the switch.
    for (GpuId g = 0; g < 4; ++g)
        EXPECT_GE(rig.ups[g]->totalPayloadBytes(), 4096u);
}

TEST(NvlsUnit, PushReduceUpdatesAllReplicas)
{
    NvlsRig rig;
    Addr addr = makeAddr(62, 0x3000);
    for (GpuId g = 0; g < 4; ++g) {
        Packet red = makePacket(rig.ids, PacketType::multimemRed, g, 4);
        red.addr = addr;
        red.payloadBytes = 4096;
        red.expected = 4;
        red.issuerGpu = g;
        rig.ups[g]->send(std::move(red));
    }
    rig.eq.runAll();

    EXPECT_EQ(rig.complex->nvls().pushReduces(), 1u);
    for (GpuId g = 0; g < 4; ++g) {
        ASSERT_EQ(rig.gpus[g].got.size(), 1u);
        EXPECT_EQ(rig.gpus[g].got[0].type, PacketType::writeReq);
        EXPECT_EQ(rig.gpus[g].got[0].contribs, 4);
    }
}

TEST(NvlsUnitDeathTest, DuplicateRedContributionPanics)
{
    NvlsRig rig;
    Addr addr = makeAddr(62, 0x4000);
    auto mk = [&] {
        Packet red = makePacket(rig.ids, PacketType::multimemRed, 0, 4);
        red.addr = addr;
        red.payloadBytes = 64;
        red.expected = 4;
        red.issuerGpu = 0;
        return red;
    };
    rig.ups[0]->send(mk());
    rig.ups[0]->send(mk());
    EXPECT_DEATH(rig.eq.runAll(), "duplicate");
}
