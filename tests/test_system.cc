/** @file Tests for the System assembly and kernel execution engine. */

#include <gtest/gtest.h>

#include "runtime/system.hh"

using namespace cais;

namespace
{

SystemConfig
smallConfig(int gpus = 2, int switches = 1)
{
    SystemConfig c;
    c.fabric.numGpus = gpus;
    c.fabric.numSwitches = switches;
    c.gpu.numSms = 4;
    c.gpu.jitterSigma = 0.0;
    c.gpu.maxStartSkew = 0;
    c.gpu.kernelLaunchOverhead = 0;
    return c;
}

} // namespace

TEST(System, TensorLayouts)
{
    System sys(smallConfig(4));

    TensorInfo &sharded = sys.defineTensor(
        "s", TensorLayout::rowShardedHome, 10 * 128, 256, 2, 128, 4);
    EXPECT_EQ(sharded.numTiles, 10);
    // Balanced shards: 3,3,2,2.
    EXPECT_EQ(sharded.tileOwner(0), 0);
    EXPECT_EQ(sharded.tileOwner(2), 0);
    EXPECT_EQ(sharded.tileOwner(3), 1);
    EXPECT_EQ(sharded.tileOwner(6), 2);
    EXPECT_EQ(sharded.tileOwner(7), 2);
    EXPECT_EQ(sharded.tileOwner(8), 3);
    EXPECT_EQ(sharded.tileOwner(9), 3);
    EXPECT_EQ(addrHomeGpu(sharded.tileAddr(7)), 2);

    TensorInfo &rep = sys.defineTensor(
        "r", TensorLayout::replicated, 4 * 128, 64, 2, 128, 1);
    EXPECT_EQ(rep.tileAddr(1) - rep.tileAddr(0), rep.bytesPerTile);

    TensorInfo &priv = sys.defineTensor(
        "p", TensorLayout::perGpuPrivate, 2 * 128, 64, 2, 128, 1);
    EXPECT_NE(priv.tileAddrAt(0, 0), priv.tileAddrAt(1, 0));
    EXPECT_EQ(addrHomeGpu(priv.tileAddrAt(3, 0)), 3);
}

TEST(System, LocalAllocationsAreDisjoint)
{
    System sys(smallConfig());
    Addr a = sys.allocLocal(0, 10000);
    Addr b = sys.allocLocal(0, 10000);
    EXPECT_GE(b - a, 10000u);
    EXPECT_EQ(addrHomeGpu(a), 0);
    Addr s1 = sys.allocShared(5000);
    Addr s2 = sys.allocShared(5000);
    EXPECT_GE(s2 - s1, 5000u);
}

TEST(System, GroupIdsAreUnique)
{
    System sys(smallConfig());
    GroupId a = sys.allocGroups(10);
    GroupId b = sys.allocGroups(5);
    EXPECT_EQ(b, a + 10);
}

TEST(System, RunsComputeOnlyKernel)
{
    System sys(smallConfig());
    KernelDesc k;
    k.name = "compute";
    k.grids.resize(2);
    for (GpuId g = 0; g < 2; ++g)
        for (int i = 0; i < 16; ++i) {
            TbDesc tb;
            tb.computeCycles = 1000;
            k.grids[g].push_back(tb);
        }
    sys.addKernel(std::move(k));
    sys.run();
    // 16 TBs over 8 slots = 2 waves of 1000 cycles.
    EXPECT_EQ(sys.makespan(), 2000u);
}

TEST(System, KernelBarrierOrdersExecution)
{
    System sys(smallConfig());
    auto make = [&](const char *name) {
        KernelDesc k;
        k.name = name;
        k.grids.resize(2);
        TbDesc tb;
        tb.computeCycles = 500;
        k.grids[0].push_back(tb);
        k.grids[1].push_back(tb);
        return k;
    };
    KernelDesc a = make("a");
    KernelId ka = sys.addKernel(std::move(a));
    KernelDesc b = make("b");
    b.kernelDeps = {ka};
    KernelId kb = sys.addKernel(std::move(b));
    sys.run();
    EXPECT_EQ(sys.kernelStartTime(kb), sys.kernelFinishTime(ka));
    EXPECT_EQ(sys.makespan(), 1000u);
}

TEST(System, TileDepsLaunchConsumersEarly)
{
    System sys(smallConfig());
    TensorInfo &t = sys.defineTensor(
        "x", TensorLayout::perGpuPrivate, 2 * 128, 64, 2, 128, 1);

    // Producer: tile 0 fast (100 cyc), tile 1 slow (1000 cyc).
    KernelDesc prod;
    prod.name = "prod";
    prod.grids.resize(2);
    prod.producesTracker = t.tracker;
    for (GpuId g = 0; g < 2; ++g)
        for (int i = 0; i < 2; ++i) {
            TbDesc tb;
            tb.computeCycles = i == 0 ? 100 : 1000;
            tb.producesTile = i;
            tb.produceBytes = t.bytesPerTile;
            prod.grids[g].push_back(tb);
        }
    sys.addKernel(std::move(prod));

    // Consumer with per-tile deps: its tile-0 TB must not wait for
    // the slow producer tile.
    KernelDesc cons;
    cons.name = "cons";
    cons.grids.resize(2);
    for (GpuId g = 0; g < 2; ++g)
        for (int i = 0; i < 2; ++i) {
            TbDesc tb;
            tb.computeCycles = 10;
            tb.deps.push_back(TileRef{t.tracker, i, g});
            cons.grids[g].push_back(tb);
        }
    sys.addKernel(std::move(cons));
    sys.run();
    // Pipeline: 1000 (slow tile) + 10 (its consumer), not 1010+100.
    EXPECT_EQ(sys.makespan(), 1010u);
}

TEST(System, PushedDataCompletesTrackerRemotely)
{
    System sys(smallConfig());
    TensorInfo &out = sys.defineTensor(
        "o", TensorLayout::rowShardedHome, 2 * 128, 64, 2, 128, 2);

    // Each GPU owns one tile; the peer pushes its contribution.
    KernelDesc k;
    k.name = "push";
    k.grids.resize(2);
    k.producesTracker = out.tracker;
    for (GpuId g = 0; g < 2; ++g) {
        for (int i = 0; i < 2; ++i) {
            TbDesc tb;
            tb.computeCycles = 50;
            if (out.tileOwner(i) == g) {
                tb.producesTile = i;
                tb.produceBytes = out.bytesPerTile;
            } else {
                RemoteOp op;
                op.kind = RemoteOpKind::plainWrite;
                op.base = out.tileAddr(i);
                op.bytes = out.bytesPerTile;
                tb.pushOps.push_back(op);
            }
            k.grids[g].push_back(tb);
        }
    }
    sys.addKernel(std::move(k));
    sys.run();
    EXPECT_TRUE(sys.tracker(out.tracker).complete());
    EXPECT_GT(sys.makespan(), 500u); // link latency is on the path
}

TEST(System, StartSkewStaggersUncoordinatedSources)
{
    SystemConfig cfg = smallConfig();
    cfg.gpu.maxStartSkew = 10 * cyclesPerUs;
    System sys(cfg);
    KernelDesc k;
    k.name = "src";
    k.grids.resize(2);
    TbDesc tb;
    tb.computeCycles = 10;
    k.grids[0].push_back(tb);
    k.grids[1].push_back(tb);
    sys.addKernel(std::move(k));
    sys.run();
    // The straggling GPU delays completion well beyond the compute.
    EXPECT_GT(sys.makespan(), 1000u);
}

TEST(SystemDeathTest, UnsatisfiableDependencyReportsDeadlock)
{
    System sys(smallConfig());
    TensorInfo &t = sys.defineTensor(
        "never", TensorLayout::perGpuPrivate, 128, 64, 2, 128, 1);
    KernelDesc k;
    k.name = "waiter";
    k.grids.resize(2);
    TbDesc tb;
    tb.computeCycles = 10;
    tb.deps.push_back(TileRef{t.tracker, 0, 0});
    k.grids[0].push_back(tb);
    sys.addKernel(std::move(k));
    EXPECT_DEATH(sys.run(), "deadlock");
}
