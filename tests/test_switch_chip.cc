/** @file Tests for the NVSwitch chip model (forwarding, HOL, units). */

#include <gtest/gtest.h>

#include <memory>

#include "noc/switch_chip.hh"

using namespace cais;

namespace
{

struct GpuStub : public PacketSink
{
    EventQueue *eq = nullptr;
    std::vector<Packet> got;
    bool autoCredit = true;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        got.push_back(pkt);
        if (autoCredit)
            from->returnCredit(vc);
    }
};

struct SyncEater : public SwitchComputeHandler
{
    int eaten = 0;

    bool
    wants(const Packet &pkt) const override
    {
        return pkt.type == PacketType::groupSyncReq;
    }

    void
    handlePacket(Packet &&pkt) override
    {
        (void)pkt;
        ++eaten;
    }
};

/** Two GPUs attached to one switch via credit links. */
struct MiniFabric
{
    PacketIdAllocator ids;
    EventQueue eq;
    SwitchParams sp;
    std::unique_ptr<SwitchChip> sw;
    std::vector<std::unique_ptr<CreditLink>> ups;
    std::vector<std::unique_ptr<CreditLink>> downs;
    GpuStub gpu0, gpu1;

    explicit MiniFabric(int out_depth = 256)
    {
        sp.outQueueDepth = out_depth;
        sw = std::make_unique<SwitchChip>(eq, 0, 2, 2, sp);
        for (GpuId g = 0; g < 2; ++g) {
            ups.push_back(std::make_unique<CreditLink>(
                eq, "up", 100.0, 10, sp.numVcs, 16, 1000));
            sw->attachUplink(g, ups.back().get());
            // One credit per VC so a credit-withholding sink
            // exercises real backpressure.
            downs.push_back(std::make_unique<CreditLink>(
                eq, "dn", 100.0, 10, sp.numVcs, 1, 1000));
            sw->attachDownlink(g, downs.back().get());
        }
        gpu0.eq = &eq;
        gpu1.eq = &eq;
        downs[0]->setSink(&gpu0);
        downs[1]->setSink(&gpu1);
    }
};

} // namespace

TEST(SwitchChip, ForwardsUnicastToDestination)
{
    MiniFabric f;
    Packet p = makePacket(f.ids, PacketType::writeReq, 0, 1);
    p.payloadBytes = 256;
    f.ups[0]->send(std::move(p));
    f.eq.runAll();
    ASSERT_EQ(f.gpu1.got.size(), 1u);
    EXPECT_TRUE(f.gpu0.got.empty());
    EXPECT_EQ(f.sw->packetsForwarded(), 1u);
}

TEST(SwitchChip, ComputeHandlerConsumesItsTraffic)
{
    MiniFabric f;
    SyncEater eater;
    f.sw->setComputeHandler(&eater);

    Packet sync = makePacket(f.ids, PacketType::groupSyncReq, 0, 2);
    sync.group = 5;
    sync.expected = 2;
    f.ups[0]->send(std::move(sync));
    Packet data = makePacket(f.ids, PacketType::writeReq, 0, 1);
    data.payloadBytes = 64;
    f.ups[0]->send(std::move(data));
    f.eq.runAll();

    EXPECT_EQ(eater.eaten, 1);
    EXPECT_EQ(f.sw->packetsConsumed(), 1u);
    EXPECT_EQ(f.gpu1.got.size(), 1u);
}

TEST(SwitchChip, SendToGpuBypassesForwardingBound)
{
    MiniFabric f(1);
    Packet p = makePacket(f.ids, PacketType::readReq, 2, 1);
    p.reqBytes = 64;
    f.sw->sendToGpu(std::move(p));
    f.eq.runAll();
    EXPECT_EQ(f.gpu1.got.size(), 1u);
    EXPECT_EQ(f.sw->packetsGenerated(), 1u);
}

TEST(SwitchChip, HeadOfLineBlockingWithinVcOnly)
{
    // Tiny output queue + a sink that withholds credits: the blocked
    // reduction VC must not stall response-class traffic.
    MiniFabric f(1);
    f.gpu1.autoCredit = false;

    for (int i = 0; i < 4; ++i) {
        Packet p = makePacket(f.ids, PacketType::writeReq, 0, 1);
        p.payloadBytes = 900;
        f.ups[0]->send(std::move(p));
    }
    Packet r = makePacket(f.ids, PacketType::readResp, 0, 1);
    r.payloadBytes = 64;
    f.ups[0]->send(std::move(r));
    f.eq.runAll();

    bool resp_arrived = false;
    for (const auto &pkt : f.gpu1.got)
        resp_arrived |= pkt.type == PacketType::readResp;
    EXPECT_TRUE(resp_arrived);
    // The writeReq stream is stalled behind the credit-less VC.
    EXPECT_LT(f.gpu1.got.size(), 5u);
}

TEST(SwitchChip, PeakInputOccupancyTracksBackpressure)
{
    MiniFabric f(1);
    f.gpu1.autoCredit = false;
    for (int i = 0; i < 6; ++i) {
        Packet p = makePacket(f.ids, PacketType::writeReq, 0, 1);
        p.payloadBytes = 128;
        f.ups[0]->send(std::move(p));
    }
    f.eq.runAll();
    EXPECT_GE(f.sw->peakInputOccupancy(), 2u);
}

TEST(SwitchChip, UnifiedDataVcCollapsesClasses)
{
    EXPECT_EQ(policedVc(VcClass::response, true), VcClass::reduction);
    EXPECT_EQ(policedVc(VcClass::multicast, true), VcClass::reduction);
    EXPECT_EQ(policedVc(VcClass::reduction, true), VcClass::reduction);
    EXPECT_EQ(policedVc(VcClass::sync, true), VcClass::sync);
    EXPECT_EQ(policedVc(VcClass::response, false), VcClass::response);
}
