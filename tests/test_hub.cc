/**
 * @file
 * Tests for the GPU hub through a real 2-GPU fabric: chunking, job
 * completion semantics, read service, write landing + tracking,
 * injection windows, the CAIS load cap, and throttle-hint pauses.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_core.hh"
#include "runtime/system.hh"

using namespace cais;

namespace
{

struct HubRig
{
    SystemConfig sc;
    std::unique_ptr<System> sys;

    explicit HubRig(int gpus = 2)
    {
        sc.fabric.numGpus = gpus;
        sc.fabric.numSwitches = 1;
        sc.gpu.numSms = 2;
        sc.gpu.jitterSigma = 0.0;
        sc.gpu.maxStartSkew = 0;
        sys = std::make_unique<System>(sc);
    }

    GpuHub &hub(GpuId g) { return sys->gpu(g).hub(); }
    EventQueue &eq() { return sys->eq(); }
};

} // namespace

TEST(Hub, ChunkifySplitsAtGranularity)
{
    HubRig rig;
    RemoteOp op;
    op.kind = RemoteOpKind::caisLoad;
    op.base = makeAddr(1, 0x1000);
    op.bytes = 3 * 4096 + 100;
    op.expected = 1;
    auto chunks = rig.hub(0).chunkify(op);
    ASSERT_EQ(chunks.size(), 4u);
    EXPECT_EQ(chunks[0].bytes, 4096u);
    EXPECT_EQ(chunks[3].bytes, 100u);
    EXPECT_EQ(chunks[2].addr, op.base + 2 * 4096);
    for (const auto &c : chunks)
        EXPECT_EQ(c.expected, 1);
}

TEST(Hub, EmptyJobCompletesImmediately)
{
    HubRig rig;
    bool injected = false, complete = false;
    auto job = std::make_unique<HubJob>();
    job->onInjected = [&] { injected = true; };
    job->onComplete = [&] { complete = true; };
    rig.hub(0).submit(std::move(job));
    EXPECT_TRUE(injected);
    EXPECT_TRUE(complete);
    EXPECT_TRUE(rig.hub(0).idle());
}

TEST(Hub, PlainLoadRoundTrip)
{
    HubRig rig;
    bool complete = false;
    auto job = std::make_unique<HubJob>();
    RemoteOp op;
    op.kind = RemoteOpKind::plainLoad;
    op.base = makeAddr(1, 0x2000);
    op.bytes = 8192;
    for (auto &c : rig.hub(0).chunkify(op))
        job->chunks.push_back(c);
    job->onComplete = [&] { complete = true; };
    rig.hub(0).submit(std::move(job));
    rig.eq().runAll();
    EXPECT_TRUE(complete);
    EXPECT_TRUE(rig.hub(0).idle());
    // The peer served the data from its HBM.
    EXPECT_EQ(rig.hub(1).bytesServed(), 8192u);
}

TEST(Hub, PlainWriteLandsAndTracks)
{
    HubRig rig;
    TensorInfo &t = rig.sys->defineTensor(
        "dst", TensorLayout::rowShardedHome, 2 * 128, 16, 2, 128, 1);
    // Tile 1 is homed on GPU 1; write it from GPU 0.
    auto job = std::make_unique<HubJob>();
    RemoteOp op;
    op.kind = RemoteOpKind::plainWrite;
    op.base = t.tileAddr(1);
    op.bytes = t.bytesPerTile;
    for (auto &c : rig.hub(0).chunkify(op))
        job->chunks.push_back(c);
    rig.hub(0).submit(std::move(job));
    rig.eq().runAll();
    EXPECT_TRUE(rig.sys->tracker(t.tracker).ready(1, 1));
    EXPECT_FALSE(rig.sys->tracker(t.tracker).ready(0, 1));
}

TEST(Hub, InjectionWindowBacklogsJobs)
{
    HubRig rig;
    // A burst far larger than the window queues but still drains.
    auto job = std::make_unique<HubJob>();
    RemoteOp op;
    op.kind = RemoteOpKind::plainWrite;
    op.base = makeAddr(1, 0x10000);
    op.bytes = static_cast<std::uint64_t>(
                   rig.sc.gpu.maxInflightChunks + 64) *
               4096;
    for (auto &c : rig.hub(0).chunkify(op))
        job->chunks.push_back(c);
    bool injected = false;
    job->onInjected = [&] { injected = true; };
    rig.hub(0).submit(std::move(job));
    EXPECT_FALSE(injected); // window holds part of the burst back
    EXPECT_LE(rig.hub(0).inflight(), rig.sc.gpu.maxInflightChunks);
    rig.eq().runAll();
    EXPECT_TRUE(injected);
    EXPECT_TRUE(rig.hub(0).idle());
}

TEST(Hub, CaisLoadCapLimitsOutstanding)
{
    HubRig rig;
    int cap = rig.sc.gpu.maxCaisLoadOutstanding;
    auto job = std::make_unique<HubJob>();
    job->group = 1;
    RemoteOp op;
    op.kind = RemoteOpKind::caisLoad;
    op.base = makeAddr(1, 0x20000);
    op.bytes = static_cast<std::uint64_t>(cap + 100) * 4096;
    op.expected = 1;
    for (auto &c : rig.hub(0).chunkify(op))
        job->chunks.push_back(c);
    bool complete = false;
    job->onComplete = [&] { complete = true; };
    rig.hub(0).submit(std::move(job));
    // Before any response can arrive, at most `cap` loads are out.
    rig.eq().runUntil(100);
    EXPECT_LE(rig.hub(0).chunksInjected(),
              static_cast<std::uint64_t>(cap));
    rig.eq().runAll();
    EXPECT_TRUE(complete);
}

TEST(Hub, ThrottleHintPausesGroupTraffic)
{
    HubRig rig;
    GpuHub &hub = rig.hub(0);

    // Deliver a synthetic throttle hint for group 7, then submit
    // mergeable traffic of that group: it must not inject before the
    // pause deadline.
    PacketIdAllocator ids;
    Packet hint = makePacket(ids, PacketType::throttleHint, 2, 0);
    hint.group = 7;
    hint.cookie = 5000; // pause cycles
    rig.sys->fabric().switchChip(0).sendToGpu(std::move(hint));
    rig.eq().runUntil(2000);
    EXPECT_EQ(hub.throttlePauses(), 1u);

    auto job = std::make_unique<HubJob>();
    job->group = 7;
    RemoteOp op;
    op.kind = RemoteOpKind::caisRed;
    op.base = makeAddr(1, 0x30000);
    op.bytes = 4096;
    op.expected = 1;
    for (auto &c : hub.chunkify(op))
        job->chunks.push_back(c);
    hub.submit(std::move(job));

    std::uint64_t before = hub.chunksInjected();
    rig.eq().runUntil(4000); // still inside the pause window
    EXPECT_EQ(hub.chunksInjected(), before);
    rig.eq().runAll();
    EXPECT_GT(hub.chunksInjected(), before);
}

TEST(Hub, SyncPacketsBypassTheWindow)
{
    HubRig rig;
    Synchronizer &sync = rig.sys->gpu(0).synchronizer();
    Synchronizer &sync1 = rig.sys->gpu(1).synchronizer();
    int released = 0;
    sync.requestSync(42, SyncPhase::preLaunch, 2,
                     [&] { ++released; });
    sync1.requestSync(42, SyncPhase::preLaunch, 2,
                      [&] { ++released; });
    rig.eq().runAll();
    EXPECT_EQ(released, 2);
    EXPECT_EQ(sync.pendingCount(), 0u);
}
