/** @file Unit tests for the statistics package. */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace cais;

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMeanMinMax)
{
    Accumulator a;
    for (double v : {3.0, 1.0, 2.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, BinsSamplesWithOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0); // underflow
    h.sample(0.5);
    h.sample(5.5);
    h.sample(25.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    const auto &bins = h.binCounts();
    EXPECT_EQ(bins.front(), 1u);
    EXPECT_EQ(bins.back(), 1u);
    EXPECT_EQ(bins[1], 1u);
    EXPECT_EQ(bins[6], 1u);
}

TEST(Histogram, PercentileInterpolates)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    double p50 = h.percentile(0.5);
    EXPECT_NEAR(p50, 50.0, 1.5);
    double p90 = h.percentile(0.9);
    EXPECT_NEAR(p90, 90.0, 1.5);
}

TEST(Accumulator, ZeroSampleReadingsAreFinite)
{
    // The documented contract: every reading of an empty accumulator
    // is 0.0 -- never NaN or +/-infinity -- so report writers can
    // serialize without guarding.
    Accumulator a;
    EXPECT_TRUE(std::isfinite(a.mean()));
    EXPECT_TRUE(std::isfinite(a.min()));
    EXPECT_TRUE(std::isfinite(a.max()));
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    a.sample(5.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Histogram, ZeroSamplePercentileIsRangeStart)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileClampsFraction)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
}

TEST(Histogram, NanFractionBehavesLikeZero)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isfinite(h.percentile(nan)));
    EXPECT_DOUBLE_EQ(h.percentile(nan), h.percentile(0.0));
}

TEST(TimeSeries, RecordsIntoBins)
{
    TimeSeries ts(100);
    ts.record(50, 10.0);
    ts.record(150, 20.0);
    ts.record(199, 5.0);
    EXPECT_DOUBLE_EQ(ts.binValue(0), 10.0);
    EXPECT_DOUBLE_EQ(ts.binValue(1), 25.0);
    EXPECT_DOUBLE_EQ(ts.binValue(2), 0.0);
}

TEST(TimeSeries, IntervalSpreadsProportionally)
{
    TimeSeries ts(100);
    // 30 bytes over [50, 200): 50 cycles in bin0, 100 in bin1.
    ts.recordInterval(50, 200, 30.0);
    EXPECT_NEAR(ts.binValue(0), 10.0, 1e-9);
    EXPECT_NEAR(ts.binValue(1), 20.0, 1e-9);
}

TEST(TimeSeries, MeanOverRange)
{
    TimeSeries ts(10);
    ts.record(5, 10.0);
    ts.record(15, 30.0);
    EXPECT_DOUBLE_EQ(ts.meanOver(0, 2), 20.0);
}

TEST(StatRegistry, SnapshotsRegisteredStats)
{
    StatRegistry reg;
    Counter c;
    c.inc(7);
    Accumulator a;
    a.sample(2.0);
    a.sample(4.0);
    reg.add("pkts", &c);
    reg.add("lat", &a);
    auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("pkts"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("lat"), 3.0);
    EXPECT_NE(reg.dump().find("pkts = 7"), std::string::npos);
}
