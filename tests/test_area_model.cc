/** @file Tests for the Sec. V-D hardware-overhead model and the
 *  bandwidth reporting helpers. */

#include <gtest/gtest.h>

#include "analysis/area_model.hh"
#include "analysis/bandwidth_probe.hh"

using namespace cais;

TEST(AreaModel, SwitchExtensionNearHalfSquareMillimeter)
{
    AreaBreakdown a =
        switchExtensionArea(SwitchAreaConfig{}, ProcessParams{});
    // Paper: ~0.50 mm^2 under TSMC 12 nm, <1% of the NVSwitch die.
    EXPECT_NEAR(a.totalMm2, 0.50, 0.15);
    EXPECT_LT(a.totalMm2 / ProcessParams{}.nvswitchDieMm2, 0.01);
    EXPECT_GT(a.mergingTableMm2, 0.0);
    EXPECT_GT(a.camMm2, 0.0);
    EXPECT_GT(a.reductionAlusMm2, 0.0);
}

TEST(AreaModel, GpuSynchronizerTiny)
{
    AreaBreakdown a =
        gpuSynchronizerArea(GpuAreaConfig{}, ProcessParams{});
    // Paper: 0.019 mm^2 per die, <0.01% of an H100.
    EXPECT_NEAR(a.totalMm2, 0.019, 0.008);
    EXPECT_LT(a.totalMm2 / ProcessParams{}.h100DieMm2, 1e-4);
}

TEST(AreaModel, AreaScalesWithTableSize)
{
    SwitchAreaConfig small, big;
    big.mergeTableBytesPerPort = 4 * small.mergeTableBytesPerPort;
    double a = switchExtensionArea(small, ProcessParams{}).totalMm2;
    double b = switchExtensionArea(big, ProcessParams{}).totalMm2;
    EXPECT_GT(b, 2.0 * a);
}

TEST(AreaModel, SystemBoundIndependentOfGpuCount)
{
    // Sec. V-C.2: the bound follows one GPU's outstanding window, not
    // the number of GPUs.
    std::uint64_t b8 = systemMergeTableBound(320, 4096, 4, 8);
    std::uint64_t b32 = systemMergeTableBound(320, 4096, 8, 32);
    EXPECT_EQ(b8, b32);
    // ~1.28 MB, the paper's system-wide bound.
    EXPECT_NEAR(static_cast<double>(b8), 1280.0 * 1024.0, 4e5);
}

TEST(AreaModel, BreakdownRenders)
{
    AreaBreakdown a =
        switchExtensionArea(SwitchAreaConfig{}, ProcessParams{});
    std::string s = a.str();
    EXPECT_NE(s.find("merging table"), std::string::npos);
    EXPECT_NE(s.find("total"), std::string::npos);
}

TEST(BandwidthProbe, PctAndBar)
{
    EXPECT_EQ(pct(0.902), " 90.2%");
    std::string bar = asciiBar(0.5, 10);
    EXPECT_EQ(bar, "#####.....");
    EXPECT_EQ(asciiBar(-1.0, 4), "....");
    EXPECT_EQ(asciiBar(2.0, 4), "####");
}

TEST(BandwidthProbe, DownsampleAverages)
{
    std::vector<double> s{1, 1, 3, 3, 5, 5};
    auto d = downsample(s, 3);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[0], 1.0);
    EXPECT_DOUBLE_EQ(d[1], 3.0);
    EXPECT_DOUBLE_EQ(d[2], 5.0);
    EXPECT_EQ(downsample(s, 10).size(), s.size());
}

TEST(BandwidthProbe, RenderSeriesProducesRows)
{
    std::vector<double> s(100, 0.75);
    std::string out = renderSeries(s, 1000, 10);
    // Ten rows, each with a percentage and a bar.
    int rows = 0;
    for (char c : out)
        rows += c == '\n';
    EXPECT_EQ(rows, 10);
    EXPECT_NE(out.find("75.0%"), std::string::npos);
}
