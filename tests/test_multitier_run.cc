/**
 * @file
 * End-to-end runs on the tiered fabric presets: every strategy
 * completes on nvl72 and both rail-optimized shapes with the exact
 * deterministic makespan/wire-bytes locked in, the static verifier
 * stays clean, the verify gate stays read-only, and repeated runs are
 * bit-identical. The locked numbers double as the hierarchical-merge
 * correctness witness: a leaf that dropped or double-counted a
 * partial reduction would shift them.
 */

#include <gtest/gtest.h>

#include "analysis/verify.hh"
#include "noc/topology.hh"
#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

LlmConfig
fastModel()
{
    return llama7B().scaled(0.25, 0.125);
}

RunConfig
presetConfig(const char *preset)
{
    RunConfig cfg;
    cfg.topology = preset;
    cfg.numGpus = FabricParams::preset(preset).numGpus;
    return cfg;
}

struct Golden
{
    const char *name;
    Cycle makespan;
    std::uint64_t wireBytes;
};

/** llama7B().scaled(0.25, 0.125), SubLayer L1, preset defaults. */
const Golden kNvl72[] = {
    {"TP-NVLS", 51083ull, 579115008ull},
    {"SP-NVLS", 53516ull, 579115008ull},
    {"CoCoNet", 196782ull, 1916006400ull},
    {"FuseLib", 180171ull, 1916006400ull},
    {"T3", 148925ull, 1597501440ull},
    {"CoCoNet-NVLS", 48414ull, 579115008ull},
    {"FuseLib-NVLS", 48405ull, 579115008ull},
    {"T3-NVLS", 43674ull, 481628160ull},
    {"CAIS-Base", 42463ull, 389191680ull},
    {"CAIS", 41678ull, 389776016ull},
};

const Golden kRail2Node[] = {
    {"TP-NVLS", 48815ull, 131466240ull},
    {"SP-NVLS", 50605ull, 131466240ull},
    {"CoCoNet", 79084ull, 326430720ull},
    {"FuseLib", 62140ull, 326430720ull},
    {"T3", 54164ull, 272166912ull},
    {"CoCoNet-NVLS", 49226ull, 131466240ull},
    {"FuseLib-NVLS", 43875ull, 131466240ull},
    {"T3-NVLS", 41480ull, 108877824ull},
    {"LADM", 190560ull, 1750007808ull},
    {"CAIS-Base", 40844ull, 90178560ull},
    {"CAIS", 41770ull, 90306064ull},
};

const Golden kRail4Node[] = {
    {"TP-NVLS", 50538ull, 259365888ull},
    {"SP-NVLS", 52783ull, 259365888ull},
    {"CoCoNet", 110238ull, 780595200ull},
    {"FuseLib", 95061ull, 780595200ull},
    {"T3", 82226ull, 650833920ull},
    {"CoCoNet-NVLS", 48859ull, 259365888ull},
    {"FuseLib-NVLS", 46515ull, 259365888ull},
    {"T3-NVLS", 43420ull, 215377920ull},
    {"LADM", 563268ull, 8369602560ull},
    {"CAIS-Base", 42124ull, 175610880ull},
    {"CAIS", 43017ull, 175869104ull},
};

template <std::size_t N>
void
expectGolden(const char *preset, const Golden (&table)[N])
{
    RunConfig cfg = presetConfig(preset);
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const Golden &gold : table) {
        RunResult r =
            runGraph(strategyByName(gold.name), g, cfg, "L1");
        EXPECT_EQ(r.makespan, gold.makespan)
            << preset << " / " << gold.name;
        EXPECT_EQ(r.wireBytes, gold.wireBytes)
            << preset << " / " << gold.name;
    }
}

} // namespace

TEST(MultiTierRun, Nvl72StrategiesMatchGolden)
{
    expectGolden("nvl72", kNvl72);
}

// LADM floods the fabric with read-modify-write traffic and is by far
// the slowest 72-GPU run; keep it in its own test so ctest -j can
// overlap it with the rest of the suite.
TEST(MultiTierRun, Nvl72LadmMatchesGolden)
{
    RunConfig cfg = presetConfig("nvl72");
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunResult r = runGraph(strategyByName("LADM"), g, cfg, "L1");
    EXPECT_EQ(r.makespan, 2432792ull);
    EXPECT_EQ(r.wireBytes, 46223032320ull);
}

TEST(MultiTierRun, RailOptimized2NodeStrategiesMatchGolden)
{
    expectGolden("rail-optimized-2node", kRail2Node);
}

TEST(MultiTierRun, RailOptimized4NodeStrategiesMatchGolden)
{
    expectGolden("rail-optimized-4node", kRail4Node);
}

TEST(MultiTierRun, TieredRunsAreDeterministic)
{
    RunConfig cfg = presetConfig("nvl72");
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunResult a = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    RunResult b = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
}

TEST(MultiTierRun, VerifyGateStaysReadOnlyOnTieredFabric)
{
    RunConfig on = presetConfig("rail-optimized-2node");
    on.verify = true;
    RunConfig off = on;
    off.verify = false;
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunResult a = runGraph(strategyByName("CAIS"), g, on, "L1");
    RunResult b = runGraph(strategyByName("CAIS"), g, off, "L1");
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

TEST(MultiTierRun, HierarchicalMergingEngagesOnTieredFabrics)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const char *preset :
         {"nvl72", "rail-optimized-2node", "rail-optimized-4node"}) {
        SCOPED_TRACE(preset);
        RunConfig cfg = presetConfig(preset);
        RunResult r = runGraph(strategyByName("CAIS"), g, cfg, "L1");
        // In-switch merging carried real traffic and every reduction
        // session retired (a stuck leaf/spine handoff would leave
        // sessions open or deadlock the run outright).
        EXPECT_GT(r.mergeRedReqs, 0u);
        EXPECT_GT(r.mergeLoadReqs, 0u);
        EXPECT_GT(r.sessionsClosed, 0u);
    }
}

TEST(MultiTierRun, StaticVerifierIsCleanOnEveryTieredPreset)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const char *preset :
         {"nvl72", "rail-optimized-2node", "rail-optimized-4node"}) {
        RunConfig cfg = presetConfig(preset);
        for (const StrategySpec &spec : allStrategies()) {
            verify::Options o;
            o.workload = "L1";
            verify::VerifyResult res =
                verify::verifyRun(spec, g, cfg, o);
            EXPECT_TRUE(res.ok()) << preset << " / " << spec.name
                                  << "\n" << res.text();
        }
    }
}
