/** @file Tests for the credit-based link model. */

#include <gtest/gtest.h>

#include "noc/credit_link.hh"

using namespace cais;

namespace
{

/** Sink capturing delivered packets; credits return immediately. */
struct CaptureSink : public PacketSink
{
    std::vector<Packet> got;
    std::vector<Cycle> at;
    EventQueue *eq = nullptr;
    bool autoCredit = true;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        got.push_back(pkt);
        at.push_back(eq->now());
        if (autoCredit)
            from->returnCredit(vc);
    }
};

Packet
dataPacket(PacketIdAllocator &ids, std::uint32_t payload)
{
    Packet p = makePacket(ids, PacketType::writeReq, 0, 1);
    p.payloadBytes = payload;
    return p;
}

} // namespace

TEST(CreditLink, DeliversAfterSerializationPlusLatency)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 100.0, 250, 8, 4, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    link.setSink(&sink);

    link.send(dataPacket(ids, 984)); // wire = 1000 B -> 10 cycles
    eq.runAll();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.at[0], 10u + 250u);
}

TEST(CreditLink, BackToBackSerialization)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 100.0, 0, 8, 8, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    link.setSink(&sink);

    for (int i = 0; i < 3; ++i)
        link.send(dataPacket(ids, 984)); // 10 cycles each
    eq.runAll();
    ASSERT_EQ(sink.got.size(), 3u);
    EXPECT_EQ(sink.at[0], 10u);
    EXPECT_EQ(sink.at[1], 20u);
    EXPECT_EQ(sink.at[2], 30u);
}

TEST(CreditLink, CreditsThrottleWhenSinkHoldsBuffers)
{
    PacketIdAllocator ids;
    EventQueue eq;
    // 1 credit per VC: the second packet must wait for the credit.
    CreditLink link(eq, "l", 1000.0, 10, 8, 1, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    sink.autoCredit = false;
    link.setSink(&sink);

    link.send(dataPacket(ids, 984));
    link.send(dataPacket(ids, 984));
    eq.runAll();
    ASSERT_EQ(sink.got.size(), 1u); // stalled without credit

    link.returnCredit(static_cast<int>(VcClass::reduction));
    eq.runAll();
    EXPECT_EQ(sink.got.size(), 2u);
}

TEST(CreditLink, VcsIsolateBlockedTraffic)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 1000.0, 10, 8, 1, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    sink.autoCredit = false;
    link.setSink(&sink);

    // Fill the reduction VC (credit 1), then block it.
    link.send(dataPacket(ids, 100));
    link.send(dataPacket(ids, 100));
    // A response-class packet still flows: no HOL across VCs.
    Packet resp = makePacket(ids, PacketType::readResp, 0, 1);
    resp.payloadBytes = 100;
    link.send(std::move(resp));
    eq.runAll();
    ASSERT_EQ(sink.got.size(), 2u);
    EXPECT_EQ(sink.got[1].type, PacketType::readResp);
}

TEST(CreditLink, UtilizationAccountsWireBytes)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 100.0, 0, 8, 8, 100);
    CaptureSink sink;
    sink.eq = &eq;
    link.setSink(&sink);
    link.send(dataPacket(ids, 984));
    eq.runAll();
    EXPECT_EQ(link.totalWireBytes(), 1000u);
    EXPECT_EQ(link.totalPayloadBytes(), 984u);
    EXPECT_EQ(link.totalPackets(), 1u);
    EXPECT_EQ(link.busyCycles(), 10u);
    EXPECT_NEAR(link.utilization().binValue(0), 1000.0, 1e-9);
}

TEST(CreditLink, PadBytesOccupyWireOnly)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 100.0, 0, 8, 8, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    link.setSink(&sink);
    Packet p = dataPacket(ids, 684);
    p.padBytes = 300; // wire = 684 + 300 + 16 = 1000
    link.send(std::move(p));
    eq.runAll();
    EXPECT_EQ(link.totalWireBytes(), 1000u);
    EXPECT_EQ(link.totalPayloadBytes(), 684u);
}

TEST(CreditLink, DequeueCallbackFiresPerPacket)
{
    PacketIdAllocator ids;
    EventQueue eq;
    CreditLink link(eq, "l", 100.0, 5, 8, 8, 1000);
    CaptureSink sink;
    sink.eq = &eq;
    link.setSink(&sink);
    int dequeues = 0;
    link.setDequeueCallback([&](int) { ++dequeues; });
    link.send(dataPacket(ids, 100));
    link.send(dataPacket(ids, 100));
    eq.runAll();
    EXPECT_EQ(dequeues, 2);
}
