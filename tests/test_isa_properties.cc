/**
 * @file
 * Parameterized property sweeps over the ISA/packet layers and the
 * NVLS collective across fabric sizes.
 */

#include <gtest/gtest.h>

#include "isa/instr.hh"
#include "noc/packet.hh"
#include "workload/collectives.hh"

using namespace cais;

// --------------------------------------------------------------------
// Every opcode: name is PTX-ish, mode/semantic classification is
// total, and CAIS opcodes always align mode with semantics.
// --------------------------------------------------------------------

class OpcodeSweep : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeSweep, ClassificationIsTotalAndConsistent)
{
    Opcode op = GetParam();
    EXPECT_NE(std::string(opcodeName(op)), "?");

    CommMode mode = commMode(op);
    MemSemantic sem = memSemantic(op);

    if (isCais(op)) {
        // The paper's alignment property.
        if (sem == MemSemantic::read)
            EXPECT_EQ(mode, CommMode::pull);
        else
            EXPECT_EQ(mode, CommMode::push);
    }
    if (isMultimem(op)) {
        EXPECT_NE(mode, CommMode::local);
    }
    EXPECT_FALSE(isCais(op) && isMultimem(op));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeSweep,
    ::testing::Values(Opcode::ldGlobal, Opcode::stGlobal,
                      Opcode::redGlobal, Opcode::multimemSt,
                      Opcode::multimemLdReduce, Opcode::multimemRed,
                      Opcode::ldCais, Opcode::redCais));

// --------------------------------------------------------------------
// Every packet type: default VC class is valid, policing is
// idempotent and never touches non-data classes.
// --------------------------------------------------------------------

class PacketTypeSweep : public ::testing::TestWithParam<PacketType>
{
};

TEST_P(PacketTypeSweep, VcAssignmentAndPolicing)
{
    PacketType t = GetParam();
    VcClass vc = defaultVcClass(t);
    EXPECT_LT(static_cast<int>(vc),
              static_cast<int>(VcClass::numClasses));
    EXPECT_NE(std::string(packetTypeName(t)), "?");

    VcClass once = policedVc(vc, true);
    EXPECT_EQ(policedVc(once, true), once); // idempotent
    EXPECT_EQ(policedVc(vc, false), vc);    // no-op when separate
    if (vc == VcClass::sync || vc == VcClass::control ||
        vc == VcClass::request) {
        EXPECT_EQ(once, vc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPacketTypes, PacketTypeSweep,
    ::testing::Values(
        PacketType::readReq, PacketType::readResp,
        PacketType::writeReq, PacketType::writeAck,
        PacketType::multimemSt, PacketType::multimemLdReduceReq,
        PacketType::multimemLdReduceResp, PacketType::multimemRed,
        PacketType::caisLoadReq, PacketType::caisLoadResp,
        PacketType::caisRedReq, PacketType::caisMergedWrite,
        PacketType::groupSyncReq, PacketType::groupSyncRelease,
        PacketType::throttleHint));

TEST(PacketIds, MonotoneAndUniquePerAllocator)
{
    PacketIdAllocator ids;
    std::uint64_t prev = ids.next();
    for (int i = 0; i < 100; ++i) {
        std::uint64_t id = ids.next();
        EXPECT_GT(id, prev);
        prev = id;
    }
    Packet p = makePacket(ids, PacketType::readReq, 0, 1);
    Packet q = makePacket(ids, PacketType::readReq, 0, 1);
    EXPECT_NE(p.id, q.id);
    EXPECT_EQ(ids.issued(), 103u);
}

TEST(PacketIds, AllocatorsAreIndependent)
{
    // Two simulations alive at once must not perturb each other's
    // id streams: ids are per-allocator, not process-global.
    PacketIdAllocator a, b;
    EXPECT_EQ(a.next(), 1u);
    EXPECT_EQ(b.next(), 1u);
    EXPECT_EQ(a.next(), 2u);
    EXPECT_EQ(b.next(), 2u);
    a.reset();
    EXPECT_EQ(a.next(), 1u);
    EXPECT_EQ(b.next(), 3u);
}

// --------------------------------------------------------------------
// NVLS AllReduce across fabric sizes: completes, and bus bandwidth
// stays within physical bounds for every GPU count.
// --------------------------------------------------------------------

class ArGpuSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ArGpuSweep, BusBandwidthWithinPhysicalBounds)
{
    int gpus = GetParam();
    SystemConfig sc;
    sc.fabric.numGpus = gpus;
    sc.fabric.numSwitches = 2;
    sc.gpu.jitterSigma = 0.0;
    sc.gpu.maxStartSkew = 0;
    System sys(sc);
    CollectiveBench b = buildNvlsAllReduce(sys, 8 << 20, 18);
    sys.run();

    double bw = allReduceBusBw(gpus, b.bytes,
                               static_cast<double>(sys.makespan()));
    // Bus bandwidth can approach but not exceed the per-direction
    // link budget times 2(G-1)/(G+1).
    double ceiling = sc.fabric.perGpuBytesPerCycle * 2.0 *
                     (gpus - 1) / (gpus + 1);
    EXPECT_GT(bw, 0.2 * ceiling);
    EXPECT_LE(bw, ceiling * 1.02);
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, ArGpuSweep,
                         ::testing::Values(2, 4, 8, 16));
