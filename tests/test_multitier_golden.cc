/**
 * @file
 * Bit-equality lock for the multi-tier refactor: the default flat
 * configuration and the "dgx-h100" preset must reproduce the seed's
 * fig12/tab02 numbers exactly, for every strategy. Any change to
 * topology construction, routing, merging, or sync that perturbs the
 * flat path by even one cycle or one wire byte fails here.
 */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

struct Golden
{
    const char *name;
    Cycle makespan;
    std::uint64_t wireBytes;
};

/** Seed numbers: llama7B().scaled(0.25, 0.125), SubLayer L1,
 *  default RunConfig (8 GPUs x 4 switches, seed 1). */
const Golden kSeedL1[] = {
    {"TP-NVLS", 44454ull, 60410880ull},
    {"SP-NVLS", 49329ull, 60410880ull},
    {"CoCoNet", 65018ull, 99348480ull},
    {"FuseLib", 50608ull, 99348480ull},
    {"T3", 44861ull, 82833408ull},
    {"CoCoNet-NVLS", 47062ull, 60410880ull},
    {"FuseLib-NVLS", 41711ull, 60410880ull},
    {"T3-NVLS", 38836ull, 47342592ull},
    {"LADM", 89330ull, 266305536ull},
    {"CAIS-Base", 37374ull, 37969920ull},
    {"CAIS", 35113ull, 38009184ull},
};

void
expectSeedNumbers(const RunConfig &cfg)
{
    OpGraph g =
        buildSubLayer(llama7B().scaled(0.25, 0.125), SubLayerId::L1);
    for (const Golden &gold : kSeedL1) {
        RunResult r =
            runGraph(strategyByName(gold.name), g, cfg, "L1");
        EXPECT_EQ(r.makespan, gold.makespan) << gold.name;
        EXPECT_EQ(r.wireBytes, gold.wireBytes) << gold.name;
    }
}

} // namespace

TEST(MultiTierGolden, FlatDefaultReproducesSeedExactly)
{
    RunConfig cfg;
    expectSeedNumbers(cfg);
}

TEST(MultiTierGolden, DgxH100PresetIsBitIdenticalToFlat)
{
    // The named preset goes through FabricParams::preset() instead of
    // the flat gpus x switches constructor; both must be the same
    // fabric down to the last cycle.
    RunConfig cfg;
    cfg.topology = "dgx-h100";
    expectSeedNumbers(cfg);
}
