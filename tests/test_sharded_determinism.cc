/**
 * @file
 * Bit-equality lock for the sharded conservative-PDES event core
 * (DESIGN.md §6f): a run with shards >= 2 must reproduce the
 * sequential scheduler's RunResult exactly — makespan, event count,
 * utilizations, merge counters, per-kernel timings, utilization
 * series — for every strategy on the flat shape and on every tiered
 * preset, with and without the periodic trace observer, down to the
 * bytes of the metrics report. Also locks the shards plumbing:
 * CAIS_SHARDS resolution, domain-count clamping, and the rejection
 * of zero-lookahead (zero-latency) fabrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "noc/network.hh"
#include "noc/topology.hh"
#include "runtime/execution_strategy.hh"
#include "runtime/simulation_driver.hh"
#include "runtime/system.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

/** Pin CAIS_SHARDS while a test body runs. */
class ScopedShardsEnv
{
  public:
    explicit ScopedShardsEnv(const char *value)
    {
        setenv("CAIS_SHARDS", value, 1);
    }
    ~ScopedShardsEnv() { unsetenv("CAIS_SHARDS"); }
};

LlmConfig
fastModel()
{
    return llama7B().scaled(0.25, 0.125);
}

/** Preset config shrunk to 16 GPUs (2 groups) so the full-strategy
 *  sweep stays fast; flat/dgx shapes keep their preset size. */
RunConfig
presetConfig(const std::string &preset)
{
    RunConfig cfg;
    if (!preset.empty()) {
        cfg.topology = preset;
        FabricParams p = FabricParams::preset(preset);
        cfg.numGpus = p.multiTier() ? 16 : p.numGpus;
    }
    return cfg;
}

RunResult
runWith(RunConfig cfg, const std::string &strategy, int shards)
{
    cfg.shards = shards;
    return runGraph(strategyByName(strategy),
                    buildSubLayer(fastModel(), SubLayerId::L1), cfg,
                    "L1");
}

/** Field-by-field bit equality of two harvested results. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.avgUtil, b.avgUtil);
    EXPECT_EQ(a.upUtil, b.upUtil);
    EXPECT_EQ(a.dnUtil, b.dnUtil);
    EXPECT_EQ(a.gpuUtil, b.gpuUtil);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    EXPECT_EQ(a.staggerUs, b.staggerUs);
    EXPECT_EQ(a.staggerSamples, b.staggerSamples);
    EXPECT_EQ(a.peakMergeBytes, b.peakMergeBytes);
    EXPECT_EQ(a.mergeLoadReqs, b.mergeLoadReqs);
    EXPECT_EQ(a.mergeRedReqs, b.mergeRedReqs);
    EXPECT_EQ(a.mergeLoadHits, b.mergeLoadHits);
    EXPECT_EQ(a.mergeRedHits, b.mergeRedHits);
    EXPECT_EQ(a.mergeFetches, b.mergeFetches);
    EXPECT_EQ(a.lruEvictions, b.lruEvictions);
    EXPECT_EQ(a.timeoutEvictions, b.timeoutEvictions);
    EXPECT_EQ(a.throttleHints, b.throttleHints);
    EXPECT_EQ(a.sessionsClosed, b.sessionsClosed);
    EXPECT_EQ(a.commKernelCycles, b.commKernelCycles);
    EXPECT_EQ(a.computeKernelCycles, b.computeKernelCycles);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        EXPECT_EQ(a.kernels[k].name, b.kernels[k].name);
        EXPECT_EQ(a.kernels[k].start, b.kernels[k].start);
        EXPECT_EQ(a.kernels[k].finish, b.kernels[k].finish);
    }
    EXPECT_EQ(a.utilSeries, b.utilSeries);
}

void
expectShardedMatchesSequential(const RunConfig &cfg, int shards)
{
    for (const StrategySpec &spec : allStrategies()) {
        SCOPED_TRACE(cfg.topology.empty() ? "flat/" + spec.name
                                          : cfg.topology + "/" +
                                                spec.name);
        RunResult seq = runWith(cfg, spec.name, 1);
        RunResult shr = runWith(cfg, spec.name, shards);
        expectIdentical(seq, shr);
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempPath(const char *name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir && *dir ? dir : "/tmp") + "/" + name;
}

} // namespace

TEST(ShardedDeterminism, FlatMatchesSequentialAcrossAllStrategies)
{
    // Default 8 GPUs x 4 switches: 5 domains, so 4 shards exercise
    // the round-robin domain packing (two switches share shard 1).
    expectShardedMatchesSequential(presetConfig(""), 4);
}

TEST(ShardedDeterminism, DgxH100MatchesSequentialAcrossAllStrategies)
{
    expectShardedMatchesSequential(presetConfig("dgx-h100"), 4);
}

TEST(ShardedDeterminism, Nvl72MatchesSequentialAcrossAllStrategies)
{
    // 16 GPUs = 2 groups x 4 rails + spine tier: 4 domains; 4 shards
    // give each domain its own shard, splitting the tier links too.
    expectShardedMatchesSequential(presetConfig("nvl72"), 4);
}

TEST(ShardedDeterminism, Rail2NodeMatchesSequentialAcrossAllStrategies)
{
    expectShardedMatchesSequential(presetConfig("rail-optimized-2node"),
                                   4);
}

TEST(ShardedDeterminism, Rail4NodeMatchesSequentialAcrossAllStrategies)
{
    // 3 shards on a 4-domain shape: the spine tier shares a shard
    // with leaf group 0 while group 1 runs apart, covering the
    // mixed co-located/split tier-link wiring.
    expectShardedMatchesSequential(presetConfig("rail-optimized-4node"),
                                   3);
}

TEST(ShardedDeterminism, EightShardsClampToDomainsOnNvl72)
{
    RunConfig cfg = presetConfig("nvl72");
    RunResult seq = runWith(cfg, "CAIS", 1);
    RunResult shr = runWith(cfg, "CAIS", 8); // > 4 domains: clamped
    expectIdentical(seq, shr);
}

TEST(ShardedDeterminism, ObserverOnAndOffBitIdentical)
{
    // The periodic trace sampler fires at window barriers under
    // sharding; it must neither perturb the run (on vs off) nor see
    // different state than the sequential sampler (trace bytes).
    RunConfig cfg = presetConfig("nvl72");
    cfg.traceSampleCycles = 500;

    RunConfig traced = cfg;
    traced.tracePath = tempPath("cais_shard_trace_seq.json");
    RunResult seqTraced = runWith(traced, "CAIS", 1);
    traced.tracePath = tempPath("cais_shard_trace_shr.json");
    RunResult shrTraced = runWith(traced, "CAIS", 4);
    RunResult shrPlain = runWith(cfg, "CAIS", 4);

    expectIdentical(seqTraced, shrTraced);
    expectIdentical(shrTraced, shrPlain);

    std::string seqJson =
        slurp(tempPath("cais_shard_trace_seq.json"));
    std::string shrJson =
        slurp(tempPath("cais_shard_trace_shr.json"));
    ASSERT_FALSE(seqJson.empty());
    EXPECT_EQ(seqJson, shrJson);
    std::remove(tempPath("cais_shard_trace_seq.json").c_str());
    std::remove(tempPath("cais_shard_trace_shr.json").c_str());
}

TEST(ShardedDeterminism, MetricsReportBytesIdentical)
{
    RunConfig cfg = presetConfig("rail-optimized-4node");
    cfg.metricsPath = tempPath("cais_shard_metrics_seq.json");
    runWith(cfg, "CAIS", 1);
    cfg.metricsPath = tempPath("cais_shard_metrics_shr.json");
    runWith(cfg, "CAIS", 4);

    std::string seqJson =
        slurp(tempPath("cais_shard_metrics_seq.json"));
    std::string shrJson =
        slurp(tempPath("cais_shard_metrics_shr.json"));
    ASSERT_FALSE(seqJson.empty());
    EXPECT_EQ(seqJson, shrJson);
    std::remove(tempPath("cais_shard_metrics_seq.json").c_str());
    std::remove(tempPath("cais_shard_metrics_shr.json").c_str());
}

TEST(ShardedDeterminism, ZeroLookaheadRejected)
{
    RunConfig cfg;
    cfg.linkLatency = 0; // no latency to hide a window behind
    cfg.shards = 4;
    std::string err = cfg.validationError();
    EXPECT_NE(err.find("lookahead"), std::string::npos) << err;

    cfg.shards = 1; // sequential runs don't need lookahead
    EXPECT_EQ(cfg.validationError(), "");
}

TEST(ShardedDeterminism, NegativeShardsRejected)
{
    RunConfig cfg;
    cfg.shards = -2;
    std::string err = cfg.validationError();
    EXPECT_NE(err.find("shards"), std::string::npos) << err;
}

TEST(ShardedDeterminism, EnvResolvesOnlyWhenShardsIsAuto)
{
    RunConfig cfg;
    EXPECT_EQ(cfg.effectiveShards(), 1); // no env, auto -> sequential
    {
        ScopedShardsEnv env("6");
        EXPECT_EQ(cfg.effectiveShards(), 6);
        cfg.shards = 2; // explicit beats the environment
        EXPECT_EQ(cfg.effectiveShards(), 2);
        cfg.shards = 0;
    }
    {
        ScopedShardsEnv env("banana"); // invalid -> sequential
        EXPECT_EQ(cfg.effectiveShards(), 1);
    }
    {
        ScopedShardsEnv env("0"); // < 1 -> sequential
        EXPECT_EQ(cfg.effectiveShards(), 1);
    }
}

TEST(ShardedDeterminism, SystemClampsShardsToDomainCount)
{
    RunConfig cfg;
    cfg.numGpus = 4;
    cfg.numSwitches = 2; // 3 domains: host+GPUs, switch 0, switch 1
    cfg.shards = 8;
    System sys(cfg.toSystemConfig(strategyByName("CAIS")));
    EXPECT_EQ(sys.activeShards(), 3);

    cfg.shards = 1;
    System seq(cfg.toSystemConfig(strategyByName("CAIS")));
    EXPECT_EQ(seq.activeShards(), 1);
}

TEST(ShardedDeterminism, DomainMapCoversEveryShape)
{
    FabricParams flat;
    flat.numGpus = 8;
    flat.numSwitches = 4;
    EXPECT_EQ(Fabric::numDomains(flat), 5);
    // Flat switches round-robin over the non-primary shards.
    EXPECT_EQ(Fabric::switchShard(flat, 0, 3), 1);
    EXPECT_EQ(Fabric::switchShard(flat, 1, 3), 2);
    EXPECT_EQ(Fabric::switchShard(flat, 2, 3), 1);
    EXPECT_EQ(Fabric::switchShard(flat, 3, 3), 2);

    FabricParams nvl = FabricParams::preset("nvl72");
    EXPECT_EQ(Fabric::numDomains(nvl), 11); // 9 groups + spine + host
    // All four rails of one group share that group's domain.
    int s0 = Fabric::switchShard(nvl, 0, 11);
    for (int r = 1; r < nvl.railsPerGroup; ++r)
        EXPECT_EQ(Fabric::switchShard(nvl, r, 11), s0);
    // The spine tier is one domain of its own.
    int spine = Fabric::switchShard(nvl, nvl.numLeaves(), 11);
    EXPECT_EQ(Fabric::switchShard(nvl, nvl.numSwitches - 1, 11), spine);

    // Lookahead: GPU links always cross; tier links only count once
    // some leaf is off the spine shard.
    nvl.tierLinkLatency = 100; // below linkLatency (250)
    EXPECT_EQ(Fabric::crossShardLookahead(nvl, 2), nvl.linkLatency);
    EXPECT_EQ(Fabric::crossShardLookahead(nvl, 11), Cycle{100});
}
