/** @file Tests for the PTX-level instruction descriptors (Fig. 1g/4). */

#include <gtest/gtest.h>

#include "isa/instr.hh"

using namespace cais;

TEST(Instr, OpcodeNamesMatchPtxSyntax)
{
    EXPECT_STREQ(opcodeName(Opcode::multimemSt), "multimem.st");
    EXPECT_STREQ(opcodeName(Opcode::multimemLdReduce),
                 "multimem.ld_reduce");
    EXPECT_STREQ(opcodeName(Opcode::multimemRed), "multimem.red");
    EXPECT_STREQ(opcodeName(Opcode::ldCais), "ld.cais");
    EXPECT_STREQ(opcodeName(Opcode::redCais), "red.cais");
}

TEST(Instr, CaisClassification)
{
    EXPECT_TRUE(isCais(Opcode::ldCais));
    EXPECT_TRUE(isCais(Opcode::redCais));
    EXPECT_FALSE(isCais(Opcode::multimemSt));
    EXPECT_FALSE(isCais(Opcode::ldGlobal));
}

TEST(Instr, MultimemClassification)
{
    EXPECT_TRUE(isMultimem(Opcode::multimemSt));
    EXPECT_TRUE(isMultimem(Opcode::multimemLdReduce));
    EXPECT_TRUE(isMultimem(Opcode::multimemRed));
    EXPECT_FALSE(isMultimem(Opcode::ldCais));
}

/**
 * The push/pull table of Fig. 1(g): NVLS implements AllGather as
 * push-mode stores and ReduceScatter as pull-mode loads, which is
 * exactly the mismatch with compute kernels the paper identifies;
 * the CAIS instructions carry the opposite (matching) modes.
 */
TEST(Instr, CommModesMatchFig1g)
{
    EXPECT_EQ(commMode(Opcode::multimemSt), CommMode::push);
    EXPECT_EQ(commMode(Opcode::multimemLdReduce), CommMode::pull);
    EXPECT_EQ(commMode(Opcode::multimemRed), CommMode::push);
    // CAIS: loads pull on demand, reductions push inline.
    EXPECT_EQ(commMode(Opcode::ldCais), CommMode::pull);
    EXPECT_EQ(commMode(Opcode::redCais), CommMode::push);
    EXPECT_EQ(commMode(Opcode::ldGlobal), CommMode::local);
}

TEST(Instr, MemSemantics)
{
    EXPECT_EQ(memSemantic(Opcode::ldCais), MemSemantic::read);
    EXPECT_EQ(memSemantic(Opcode::multimemLdReduce),
              MemSemantic::read);
    EXPECT_EQ(memSemantic(Opcode::redCais), MemSemantic::write);
    EXPECT_EQ(memSemantic(Opcode::multimemSt), MemSemantic::write);
    EXPECT_EQ(memSemantic(Opcode::redGlobal), MemSemantic::write);
}

TEST(Instr, AlignmentProperty)
{
    // CAIS's central claim, as an ISA-level property: for each CAIS
    // instruction, the communication mode matches the memory
    // semantic (read <-> pull, write <-> push); NVLS AllGather's
    // store breaks it for the consumer side (read needed, push
    // provided).
    auto matches = [](Opcode op) {
        CommMode m = commMode(op);
        MemSemantic s = memSemantic(op);
        return (s == MemSemantic::read && m == CommMode::pull) ||
               (s == MemSemantic::write && m == CommMode::push);
    };
    EXPECT_TRUE(matches(Opcode::ldCais));
    EXPECT_TRUE(matches(Opcode::redCais));
    // A consumer needing reads is handed a push-mode AllGather.
    EXPECT_FALSE(memSemantic(Opcode::multimemSt) == MemSemantic::read);
}

TEST(Instr, MemInstrRendering)
{
    MemInstr mi;
    mi.op = Opcode::ldCais;
    mi.addr = AddressExpr::term(AddrVar::blockIdxX, 4096);
    mi.bytesPerTb = 1024;
    mi.caisFlag = true;
    std::string s = mi.str();
    EXPECT_NE(s.find("ld.cais"), std::string::npos);
    EXPECT_NE(s.find("cais"), std::string::npos);
    EXPECT_NE(s.find("1024"), std::string::npos);
}
