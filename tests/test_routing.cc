/** @file Tests for deterministic routing and round-robin arbitration. */

#include <gtest/gtest.h>

#include "noc/arbiter.hh"
#include "noc/routing.hh"

using namespace cais;

TEST(Routing, DeterministicPerAddress)
{
    DeterministicRouting r(4, 4096);
    for (Addr a = 0; a < 100 * 4096; a += 4096)
        EXPECT_EQ(r.switchForAddr(a), r.switchForAddr(a));
}

TEST(Routing, SameChunkSameSwitch)
{
    // Addresses within one interleave unit converge on one switch —
    // the property that lets mergeable requests meet (Sec. III-A.5).
    DeterministicRouting r(4, 4096);
    Addr base = makeAddr(3, 1 << 20);
    SwitchId s = r.switchForAddr(base);
    for (Addr off = 0; off < 4096; off += 128)
        EXPECT_EQ(r.switchForAddr(base + off), s);
}

TEST(Routing, SpreadsAcrossSwitches)
{
    DeterministicRouting r(4, 4096);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 4000; ++i)
        ++counts[static_cast<std::size_t>(
            r.switchForAddr(static_cast<Addr>(i) * 4096))];
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Routing, GroupRoutingInRangeAndDeterministic)
{
    DeterministicRouting r(4, 4096);
    for (GroupId g = 0; g < 1000; ++g) {
        SwitchId s = r.switchForGroup(g);
        EXPECT_GE(s, 0);
        EXPECT_LT(s, 4);
        EXPECT_EQ(r.switchForGroup(g), s);
    }
}

TEST(Arbiter, RoundRobinFairness)
{
    RoundRobinArbiter arb(4);
    auto all_ready = [](int) { return true; };
    EXPECT_EQ(arb.pick(all_ready), 0);
    EXPECT_EQ(arb.pick(all_ready), 1);
    EXPECT_EQ(arb.pick(all_ready), 2);
    EXPECT_EQ(arb.pick(all_ready), 3);
    EXPECT_EQ(arb.pick(all_ready), 0);
}

TEST(Arbiter, SkipsNotReady)
{
    RoundRobinArbiter arb(4);
    auto only2 = [](int i) { return i == 2; };
    EXPECT_EQ(arb.pick(only2), 2);
    EXPECT_EQ(arb.pick(only2), 2);
    auto none = [](int) { return false; };
    EXPECT_EQ(arb.pick(none), -1);
}

TEST(Arbiter, ResumesAfterLastGrant)
{
    RoundRobinArbiter arb(3);
    auto all = [](int) { return true; };
    EXPECT_EQ(arb.pick(all), 0);
    auto only0 = [](int i) { return i == 0; };
    EXPECT_EQ(arb.pick(only0), 0);
    // After granting 0, input 1 has priority.
    EXPECT_EQ(arb.pick(all), 1);
}
