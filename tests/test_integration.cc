/**
 * @file
 * Integration tests: full sub-layer simulations through runGraph()
 * under every strategy, checking completion, conservation, and the
 * paper's qualitative orderings.
 */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

RunConfig
fastConfig()
{
    RunConfig cfg;
    cfg.numGpus = 8;
    cfg.numSwitches = 4;
    return cfg;
}

LlmConfig
fastModel()
{
    return llama7B().scaled(0.25, 0.125);
}

} // namespace

TEST(Integration, EveryStrategyCompletesTheSubLayer)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    for (const StrategySpec &spec : allStrategies()) {
        RunResult r = runGraph(spec, g, fastConfig(), "L1");
        EXPECT_GT(r.makespan, 0u) << spec.name;
        EXPECT_GT(r.wireBytes, 0u) << spec.name;
        EXPECT_GT(r.gpuUtil, 0.0) << spec.name;
        EXPECT_LE(r.avgUtil, 1.0) << spec.name;
    }
}

TEST(Integration, CaisBeatsEveryBaselineOnSubLayer)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunConfig cfg = fastConfig();
    RunResult cais = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    for (const StrategySpec &spec : allStrategies()) {
        if (spec.name == "CAIS")
            continue;
        RunResult r = runGraph(spec, g, cfg, "L1");
        EXPECT_GT(speedupOver(r, cais), 1.0)
            << "CAIS should beat " << spec.name;
    }
}

TEST(Integration, LadmIsTheSlowestBaseline)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunConfig cfg = fastConfig();
    RunResult ladm = runGraph(strategyByName("LADM"), g, cfg, "L1");
    RunResult cais = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    // The paper reports ~7.6-7.9x; our substrate lands in the same
    // several-fold regime.
    EXPECT_GT(speedupOver(ladm, cais), 2.0);
    for (const StrategySpec &spec : allStrategies()) {
        if (spec.name == "LADM")
            continue;
        RunResult r = runGraph(spec, g, cfg, "L1");
        EXPECT_GT(ladm.makespan, r.makespan)
            << "LADM should trail " << spec.name;
    }
}

TEST(Integration, CoordinationReducesStaggerAndMisses)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunConfig cfg = fastConfig();
    cfg.unboundedMergeTable = true;
    RunResult with = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    RunResult without =
        runGraph(strategyByName("CAIS-w/o-Coord"), g, cfg, "L1");
    EXPECT_LT(with.staggerUs, without.staggerUs);
    EXPECT_LE(with.peakMergeBytes, without.peakMergeBytes);
}

TEST(Integration, MergingConservesHomeTraffic)
{
    // CAIS's merged loads move less wire data than LADM's
    // unmerged per-GPU pulls of the same tensors.
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunConfig cfg = fastConfig();
    RunResult cais = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    RunResult ladm = runGraph(strategyByName("LADM"), g, cfg, "L1");
    EXPECT_LT(cais.wireBytes, ladm.wireBytes);
}

TEST(Integration, FullMergingWithCoordination)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L1);
    RunConfig cfg = fastConfig();
    RunResult r = runGraph(strategyByName("CAIS"), g, cfg, "L1");
    // Every mergeable load hits a session or opens the single fetch:
    // fetches == requests / (G-1), hits == requests - fetches.
    EXPECT_EQ(r.mergeFetches + r.mergeLoadHits, r.mergeLoadReqs);
    EXPECT_NEAR(static_cast<double>(r.mergeLoadHits) /
                    static_cast<double>(r.mergeLoadReqs),
                6.0 / 7.0, 0.05);
}

TEST(Integration, CommKernelTimeDominatesForNvlsBaseline)
{
    // The Fig. 2 regime: at 8 GPUs communication exceeds computation
    // for the serialized NVLS baseline.
    OpGraph g = buildSubLayer(llama7B().scaled(0.5, 0.25),
                              SubLayerId::L1);
    RunResult r =
        runGraph(strategyByName("SP-NVLS"), g, fastConfig(), "L1");
    EXPECT_GT(r.commKernelCycles, 0u);
    EXPECT_GT(r.computeKernelCycles, 0u);
    double ratio = static_cast<double>(r.commKernelCycles) /
                   static_cast<double>(r.computeKernelCycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 4.0);
}

TEST(Integration, TrainingSubLayersAreHeavierThanForward)
{
    RunConfig cfg = fastConfig();
    LlmConfig m = fastModel();
    RunResult fwd = runGraph(strategyByName("CAIS"),
                             buildSubLayer(m, SubLayerId::L1), cfg,
                             "L1");
    RunResult bwd = runGraph(strategyByName("CAIS"),
                             buildSubLayer(m, SubLayerId::L3), cfg,
                             "L3");
    EXPECT_GT(bwd.makespan, fwd.makespan);
}

TEST(Integration, FullLayerRunsUnderCaisAndNvls)
{
    OpGraph g = buildTransformerLayer(fastModel(), Pass::forward);
    RunConfig cfg = fastConfig();
    RunResult cais = runGraph(strategyByName("CAIS"), g, cfg, "layer");
    RunResult nvls =
        runGraph(strategyByName("SP-NVLS"), g, cfg, "layer");
    EXPECT_GT(cais.makespan, 0u);
    EXPECT_GT(speedupOver(nvls, cais), 1.0);
}

TEST(Integration, UtilizationSeriesCoversRun)
{
    OpGraph g = buildSubLayer(fastModel(), SubLayerId::L2);
    RunResult r =
        runGraph(strategyByName("CAIS"), g, fastConfig(), "L2");
    ASSERT_FALSE(r.utilSeries.empty());
    double peak = 0.0;
    for (double v : r.utilSeries) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        peak = std::max(peak, v);
    }
    EXPECT_GT(peak, 0.05);
}

TEST(Integration, GeomeanHelper)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}
