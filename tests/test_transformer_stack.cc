/**
 * @file
 * Tests for the multi-layer transformer stack builder and its
 * steady-state pipelining behaviour under CAIS.
 */

#include <gtest/gtest.h>

#include "runtime/simulation_driver.hh"
#include "workload/transformer.hh"

using namespace cais;

TEST(TransformerStack, ChainsLayersThroughResiduals)
{
    LlmConfig m = megaGpt4B();
    OpGraph one = buildTransformerLayer(m, Pass::forward);
    OpGraph three = buildTransformerStack(m, 3, Pass::forward);
    EXPECT_EQ(three.size(), 3 * one.size());

    // Each layer's first op consumes the previous layer's residual.
    std::size_t per = one.size();
    for (int l = 1; l < 3; ++l) {
        const OpNode &ln = three.ops()[l * per];
        ASSERT_EQ(ln.kind, OpKind::layerNorm);
        ASSERT_EQ(ln.inputs.size(), 1u);
        const OpNode &prev_add =
            three.ops()[static_cast<std::size_t>(ln.inputs[0])];
        EXPECT_EQ(prev_add.kind, OpKind::elementwise);
        EXPECT_NE(prev_add.name.find("dropadd"), std::string::npos);
    }
    three.validate();
}

TEST(TransformerStack, SingleLayerMatchesLayerBuilder)
{
    LlmConfig m = megaGpt4B();
    OpGraph a = buildTransformerLayer(m, Pass::forward);
    OpGraph b = buildTransformerStack(m, 1, Pass::forward);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.ops()[i].kind, b.ops()[i].kind);
        EXPECT_EQ(a.ops()[i].rows, b.ops()[i].rows);
        EXPECT_EQ(a.ops()[i].cols, b.ops()[i].cols);
    }
}

TEST(TransformerStack, SteadyStateAmortizesUnderCais)
{
    // Per-layer time in a 3-layer CAIS pipeline must be below the
    // isolated single-layer time (entry skew amortizes, consecutive
    // layers overlap).
    RunConfig cfg;
    cfg.numGpus = 8;
    LlmConfig m = llama7B().scaled(0.25, 0.125);

    RunResult one = runGraph(strategyByName("CAIS"),
                             buildTransformerLayer(m, Pass::forward),
                             cfg, "layer");
    RunResult stack = runGraph(strategyByName("CAIS"),
                               buildTransformerStack(m, 3,
                                                     Pass::forward),
                               cfg, "stack");
    EXPECT_LT(stack.makespanUs() / 3.0, one.makespanUs());
}

TEST(TransformerStack, BarrierBaselineGainsLessFromStacking)
{
    RunConfig cfg;
    cfg.numGpus = 8;
    LlmConfig m = llama7B().scaled(0.25, 0.125);

    auto per_layer = [&](const char *strat) {
        RunResult one = runGraph(strategyByName(strat),
                                 buildTransformerLayer(m,
                                                       Pass::forward),
                                 cfg, "layer");
        RunResult stack = runGraph(
            strategyByName(strat),
            buildTransformerStack(m, 3, Pass::forward), cfg, "stack");
        return std::make_pair(one.makespanUs(),
                              stack.makespanUs() / 3.0);
    };

    auto [cais_one, cais_stack] = per_layer("CAIS");
    auto [nvls_one, nvls_stack] = per_layer("SP-NVLS");
    double cais_gain = cais_one / cais_stack;
    double nvls_gain = nvls_one / nvls_stack;
    // Cross-layer fusion is CAIS's edge; the barrier baseline only
    // amortizes the entry skew.
    EXPECT_GT(cais_gain, nvls_gain);
}

TEST(TransformerStack, DeterministicAcrossRebuilds)
{
    LlmConfig m = megaGpt8B();
    OpGraph a = buildTransformerStack(m, 2, Pass::backward);
    OpGraph b = buildTransformerStack(m, 2, Pass::backward);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.ops()[i].name, b.ops()[i].name);
}
