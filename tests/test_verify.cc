/** @file Tests for the cais-verify static model checker (§6e). */

#include <gtest/gtest.h>

#include "analysis/verify.hh"
#include "common/json.hh"
#include "workload/transformer.hh"

using namespace cais;

namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig c;
    c.fabric.numGpus = 4;
    c.fabric.numSwitches = 2;
    c.gpu.numSms = 8;
    c.gpu.jitterSigma = 0.0;
    c.gpu.maxStartSkew = 0;
    // Raw MergeParams defaults hold 40 KB / 4096 B = 10 entries per
    // port, below the throttle threshold of 16 — V4 (rightly) flags
    // that; use the shipped 320-entry sizing here.
    c.inswitch.merge.tableBytesPerPort =
        320ull * c.inswitch.merge.chunkBytes;
    return c;
}

/** A valid one-TB-per-GPU kernel skeleton. */
KernelDesc
emptyKernel(const std::string &name, int gpus)
{
    KernelDesc k;
    k.name = name;
    k.grids.resize(static_cast<std::size_t>(gpus));
    for (auto &grid : k.grids) {
        TbDesc tb;
        tb.computeCycles = 10;
        grid.push_back(tb);
    }
    return k;
}

bool
pathContains(const verify::Diagnostic &d, const std::string &what)
{
    for (const std::string &p : d.path)
        if (p.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

// ---------------------------------------------------------------
// Clean configurations stay clean.
// ---------------------------------------------------------------

TEST(Verify, ShippedConfigsProduceZeroDiagnostics)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    RunConfig cfg;
    for (const StrategySpec &spec : allStrategies()) {
        for (SubLayerId L : {SubLayerId::L1, SubLayerId::L3}) {
            OpGraph g = buildSubLayer(m, L);
            verify::VerifyResult r = verify::verifyRun(spec, g, cfg);
            EXPECT_TRUE(r.ok()) << spec.name << ": " << r.text();
            EXPECT_EQ(r.strategy, spec.name);
        }
    }
}

TEST(Verify, RuleTableListsAllNineRules)
{
    const auto &rules = verify::ruleTable();
    ASSERT_EQ(rules.size(), 9u);
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i].id, "V" + std::to_string(i + 1));
        EXPECT_NE(std::string(rules[i].hint), "");
    }
}

// ---------------------------------------------------------------
// V1: seeded channel-dependency cycle
// ---------------------------------------------------------------

TEST(Verify, V1CatchesInjectedVcCycle)
{
    System sys(tinyConfig());
    // A response handler that re-issues a request while holding the
    // response buffer closes request->response->request across the
    // switch: the classic protocol deadlock cycle.
    verify::Options o;
    o.extraCouplings.push_back(
        {true, VcClass::response, VcClass::request});
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V1");
    const auto &path = r.diagnostics[0].path;
    ASSERT_GE(path.size(), 3u);
    // The payload is the cycle itself: closed, and walking both VC
    // classes of the coupling loop.
    EXPECT_EQ(path.front(), path.back());
    EXPECT_TRUE(pathContains(r.diagnostics[0], "(request)"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "(response)"));
    EXPECT_NE(r.diagnostics[0].hint, "");
}

TEST(Verify, V1CleanOnBaselineProtocolAndUnifiedVc)
{
    SystemConfig c = tinyConfig();
    EXPECT_TRUE(verify::verifySystem(System(c)).ok());
    c.fabric.sw.unifiedDataVc = true; // CAIS-Partial collapse
    EXPECT_TRUE(verify::verifySystem(System(c)).ok());
}

TEST(Verify, V1SuppressionSkipsTheRule)
{
    System sys(tinyConfig());
    verify::Options o;
    o.extraCouplings.push_back(
        {true, VcClass::response, VcClass::request});
    o.suppress.insert("V1");
    EXPECT_TRUE(verify::verifySystem(sys, o).ok());
}

// ---------------------------------------------------------------
// V2: seeded credit mismatch
// ---------------------------------------------------------------

TEST(Verify, V2CatchesCreditBufferMismatch)
{
    SystemConfig c = tinyConfig();
    c.fabric.vcCredits = 8; // != sw.vcDepth (256)
    System sys(c);
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V2");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "vcCredits=8"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "vcDepth=256"));
}

// ---------------------------------------------------------------
// V3: seeded two-switch address class / membership mismatch
// ---------------------------------------------------------------

TEST(Verify, V3CatchesChunkStraddlingInterleaveBlocks)
{
    SystemConfig c = tinyConfig();
    System sys(c);
    KernelDesc k = emptyKernel("red", sys.numGpus());
    for (auto &grid : k.grids) {
        RemoteOp op;
        op.kind = RemoteOpKind::caisRed;
        op.base = c.fabric.interleaveBytes / 2; // mid-block start
        op.bytes = c.gpu.chunkBytes;            // ...so it straddles
        op.expected = sys.numGpus();
        grid[0].pushOps.push_back(op);
    }
    sys.addKernel(std::move(k));
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V3");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "addr=0x800"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "sw"));
}

TEST(Verify, V3CatchesParticipantMismatch)
{
    SystemConfig c = tinyConfig();
    System sys(c);
    KernelDesc k = emptyKernel("red", sys.numGpus());
    for (GpuId g = 0; g < sys.numGpus() - 1; ++g) { // one GPU short
        RemoteOp op;
        op.kind = RemoteOpKind::caisRed;
        op.base = 0;
        op.bytes = c.gpu.chunkBytes;
        op.expected = sys.numGpus();
        k.grids[static_cast<std::size_t>(g)][0].pushOps.push_back(op);
    }
    sys.addKernel(std::move(k));
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V3");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "expected=4"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "issuers=3"));
}

// ---------------------------------------------------------------
// V4: seeded oversized TB group
// ---------------------------------------------------------------

TEST(Verify, V4CatchesOversizedTbGroup)
{
    System sys(tinyConfig());
    KernelDesc k = emptyKernel("sync", sys.numGpus());
    k.preLaunchSync = true;
    for (auto &grid : k.grids)
        grid[0].group = 0;
    TbDesc extra = k.grids[0][0]; // second group-0 TB on GPU 0
    k.grids[0].push_back(extra);
    sys.addKernel(std::move(k));
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V4");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "group=0"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "tbs=2"));
}

TEST(Verify, V4CatchesGroupMissingAGpu)
{
    System sys(tinyConfig());
    KernelDesc k = emptyKernel("sync", sys.numGpus());
    k.preLaunchSync = true;
    for (GpuId g = 0; g < sys.numGpus() - 1; ++g)
        k.grids[static_cast<std::size_t>(g)][0].group = 0;
    sys.addKernel(std::move(k));
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V4");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "missing gpu3"));
}

TEST(Verify, V4CatchesUnreachableThrottleThreshold)
{
    SystemConfig c = tinyConfig();
    // 8 entries per port < throttle threshold 16: the hint level can
    // never be reached, so throttling silently does nothing.
    c.inswitch.merge.tableBytesPerPort =
        8ull * c.inswitch.merge.chunkBytes;
    System sys(c);
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V4");
    EXPECT_TRUE(pathContains(r.diagnostics[0],
                             "throttleThreshold=16"));
    EXPECT_TRUE(pathContains(r.diagnostics[0],
                             "tableEntriesPerPort=8"));
}

// ---------------------------------------------------------------
// V5: seeded cyclic kernel graph / same-direction overlap
// ---------------------------------------------------------------

TEST(Verify, V5CatchesKernelDependencyCycle)
{
    System sys(tinyConfig());
    KernelId a = sys.addKernel(emptyKernel("gemm.a", sys.numGpus()));
    KernelDesc kb = emptyKernel("gemm.b", sys.numGpus());
    kb.kernelDeps.push_back(a);
    KernelId b = sys.addKernel(std::move(kb));
    sys.kernel(a).kernelDeps.push_back(b); // close the cycle
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V5");
    const auto &path = r.diagnostics[0].path;
    ASSERT_GE(path.size(), 3u);
    EXPECT_EQ(path.front(), path.back());
    EXPECT_TRUE(pathContains(r.diagnostics[0], "gemm.a"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "gemm.b"));
}

TEST(Verify, V5CatchesSameDirectionOverlapPair)
{
    SystemConfig c = tinyConfig();
    System sys(c);
    // Two unordered kernels on disjoint SM partitions that both pull:
    // the overlap stresses one link direction instead of both.
    for (int i = 0; i < 2; ++i) {
        KernelDesc k = emptyKernel(i ? "pull.hi" : "pull.lo",
                                   sys.numGpus());
        k.smFrom = i ? 0.5 : 0.0;
        k.smTo = i ? 1.0 : 0.5;
        for (auto &grid : k.grids) {
            RemoteOp op;
            op.kind = RemoteOpKind::caisLoad;
            op.base = static_cast<Addr>(i) * 1u << 20;
            op.bytes = c.gpu.chunkBytes;
            op.expected = sys.numGpus();
            grid[0].pullOps.push_back(op);
        }
        sys.addKernel(std::move(k));
    }
    verify::VerifyResult r = verify::verifySystem(sys);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V5");
    EXPECT_TRUE(pathContains(r.diagnostics[0], "pull.lo"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "pull.hi"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "pull"));

    // Ordering the pair legitimizes it.
    sys.kernel(1).kernelDeps.push_back(0);
    EXPECT_TRUE(verify::verifySystem(sys).ok());
}

// ---------------------------------------------------------------
// V6: cross-shard lookahead soundness
// ---------------------------------------------------------------

TEST(Verify, V6AndV7CleanOnEveryPreset)
{
    for (const std::string &name : FabricParams::presetNames()) {
        SystemConfig c = tinyConfig();
        c.fabric = FabricParams::preset(name);
        EXPECT_TRUE(verify::verifySystem(System(c)).ok()) << name;
    }
}

TEST(Verify, V6CleanWithFastTierLinks)
{
    // The tricky lookahead case: tier links faster than rail links
    // lower the window once some leaf lands off the spine shard.
    // V6's independent recomputation must agree with the declared
    // Fabric::crossShardLookahead on it.
    SystemConfig c = tinyConfig();
    c.fabric = FabricParams::preset("rail-optimized-2node");
    c.fabric.tierLinkLatency = 100;
    EXPECT_TRUE(verify::verifySystem(System(c)).ok());
}

TEST(Verify, V6CatchesMisDeclaredLookahead)
{
    System sys(tinyConfig());
    verify::Options o;
    o.v6LookaheadOverride = 1; // window faster than any link
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V6");
    // The violating link is reported as a concrete path: shard
    // count, link name, endpoint node ids, both latencies.
    EXPECT_TRUE(pathContains(r.diagnostics[0], "shards=2"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "node"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "latency=250"));
    EXPECT_TRUE(pathContains(r.diagnostics[0], "declared=1"));
    EXPECT_NE(r.diagnostics[0].hint, "");
}

// ---------------------------------------------------------------
// V7: shard-domain closure
// ---------------------------------------------------------------

TEST(Verify, V7CatchesSwitchMappedToHostShard)
{
    System sys(tinyConfig());
    verify::Options o;
    o.v7DomainOverrideSwitch = 1;
    o.v7DomainOverrideShard = 0; // claim switch 1 lives with the host
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V7");
    // switch 1 on the 4-GPU fabric is node 5: the diagnostic names it
    EXPECT_TRUE(pathContains(r.diagnostics[0], "node 5"));
}

TEST(Verify, V7CatchesRailShardDisagreement)
{
    SystemConfig c = tinyConfig();
    c.fabric = FabricParams::preset("rail-optimized-2node");
    System sys(c);
    verify::Options o;
    o.v7DomainOverrideSwitch = 1; // rail 1 of group 0
    o.v7DomainOverrideShard = 2;  // ...pushed off its group's shard
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    bool sawDisagreement = false;
    for (const verify::Diagnostic &d : r.diagnostics) {
        EXPECT_EQ(d.id, "V7");
        if (d.message.find("rails disagree") != std::string::npos) {
            sawDisagreement = true;
            // rail 1 of group 0 on the 16-GPU shape is node 17
            EXPECT_TRUE(pathContains(d, "node 17"));
        }
    }
    EXPECT_TRUE(sawDisagreement);
}

TEST(Verify, V7CatchesSplitModeMismatchOnShardedSystem)
{
    SystemConfig c = tinyConfig();
    c.shards = 2;
    System sys(c);
    ASSERT_EQ(sys.activeShards(), 2);
    EXPECT_TRUE(verify::verifySystem(sys).ok());
    // Claim switch 0 shares the host shard: its links really are in
    // split-delivery mode, so the claimed map cannot close.
    verify::Options o;
    o.v7DomainOverrideSwitch = 0;
    o.v7DomainOverrideShard = 0;
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    bool sawSplitMismatch = false;
    for (const verify::Diagnostic &d : r.diagnostics)
        if (d.id == "V7" &&
            d.message.find("split-delivery") != std::string::npos)
            sawSplitMismatch = true;
    EXPECT_TRUE(sawSplitMismatch);
}

TEST(Verify, V7CleanOnShardedPresets)
{
    for (const std::string &name : FabricParams::presetNames()) {
        SystemConfig c = tinyConfig();
        c.fabric = FabricParams::preset(name);
        c.shards = 4;
        EXPECT_TRUE(verify::verifySystem(System(c)).ok()) << name;
    }
}

// ---------------------------------------------------------------
// Suppression end-to-end (satellite: verifySuppress)
// ---------------------------------------------------------------

TEST(Verify, V6V7SuppressionSkipsTheRules)
{
    System sys(tinyConfig());
    verify::Options o;
    o.v6LookaheadOverride = 1;
    o.v7DomainOverrideSwitch = 0;
    o.v7DomainOverrideShard = 0;
    EXPECT_FALSE(verify::verifySystem(sys, o).ok());
    o.suppress.insert("V6");
    EXPECT_FALSE(verify::verifySystem(sys, o).ok());
    o.suppress.insert("V7");
    EXPECT_TRUE(verify::verifySystem(sys, o).ok());
}

TEST(Verify, UnknownSuppressIdIsIgnored)
{
    System sys(tinyConfig());
    verify::Options o;
    o.suppress.insert("V99");
    o.suppress.insert("bogus");
    o.v6LookaheadOverride = 1;
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].id, "V6");
}

TEST(Verify, SuppressedRunIsBitIdenticalToUnsuppressed)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    RunConfig cfg;
    cfg.gpu.jitterSigma = 0.0;
    cfg.verify = true;

    OpGraph g1 = buildSubLayer(m, SubLayerId::L1);
    RunResult plain = runGraph(makeCais(), g1, cfg, "L1");

    cfg.verifySuppress = {"V6", "V7", "V99"};
    OpGraph g2 = buildSubLayer(m, SubLayerId::L1);
    RunResult sup = runGraph(makeCais(), g2, cfg, "L1");

    EXPECT_EQ(plain.makespan, sup.makespan);
    EXPECT_EQ(plain.eventsExecuted, sup.eventsExecuted);
    EXPECT_GT(plain.eventsExecuted, 0u);
}

// ---------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------

TEST(Verify, JsonDocumentRoundTrips)
{
    SystemConfig c = tinyConfig();
    c.fabric.vcCredits = 8;
    System sys(c);
    verify::Options o;
    o.strategy = "CAIS";
    o.workload = "L1";
    verify::VerifyResult r = verify::verifySystem(sys, o);
    ASSERT_FALSE(r.ok());

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(r.json(), doc, err)) << err;
    EXPECT_EQ(doc.getString("schema", ""), "cais-verify-v1");
    EXPECT_EQ(doc.getString("strategy", ""), "CAIS");
    EXPECT_EQ(doc.getString("workload", ""), "L1");
    const JsonValue *counts = doc.find("counts");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->getNumber("V2", 0), 1.0);
    EXPECT_EQ(counts->getNumber("V1", -1), 0.0);
    const JsonValue *diags = doc.find("diagnostics");
    ASSERT_NE(diags, nullptr);
    ASSERT_EQ(diags->elems.size(), r.diagnostics.size());
    EXPECT_EQ(diags->elems[0].getString("id", ""), "V2");
    ASSERT_NE(diags->elems[0].find("path"), nullptr);
    EXPECT_FALSE(diags->elems[0].find("path")->elems.empty());
}

TEST(Verify, TextRenderingIncludesHintAndPath)
{
    System sys(tinyConfig());
    verify::Options o;
    o.extraCouplings.push_back(
        {true, VcClass::response, VcClass::request});
    std::string text = verify::verifySystem(sys, o).text();
    EXPECT_NE(text.find("[V1]"), std::string::npos);
    EXPECT_NE(text.find("fix:"), std::string::npos);
    EXPECT_NE(text.find("path:"), std::string::npos);
    EXPECT_NE(text.find(" -> "), std::string::npos);
    EXPECT_EQ(verify::verifySystem(sys).text(),
              "cais-verify: clean (0 diagnostics)\n");
}

// ---------------------------------------------------------------
// RunConfig bounds validation + the runGraph gate
// ---------------------------------------------------------------

TEST(Verify, RunConfigValidationRejectsBadBounds)
{
    RunConfig ok;
    EXPECT_EQ(ok.validationError(), "");

    RunConfig c = ok;
    c.numGpus = 1;
    EXPECT_NE(c.validationError().find("numGpus"), std::string::npos);
    c = ok;
    c.numGpus = 121;
    EXPECT_NE(c.validationError().find("participant masks"),
              std::string::npos);
    c = ok;
    c.topology = "no-such-fabric";
    EXPECT_NE(c.validationError().find("unknown topology preset"),
              std::string::npos);
    c = ok;
    c.numSwitches = 0;
    EXPECT_NE(c.validationError().find("numSwitches"),
              std::string::npos);
    c = ok;
    c.chunkBytes = 0;
    EXPECT_NE(c.validationError().find("power of two"),
              std::string::npos);
    c = ok;
    c.chunkBytes = 3000;
    EXPECT_NE(c.validationError().find("power of two"),
              std::string::npos);
    c = ok;
    c.perGpuBwPerDir = -1.0;
    EXPECT_NE(c.validationError().find("perGpuBwPerDir"),
              std::string::npos);
    c = ok;
    c.maxEvents = 0;
    EXPECT_NE(c.validationError().find("maxEvents"),
              std::string::npos);
    c = ok;
    c.gpu.numSms = 0;
    EXPECT_NE(c.validationError().find("numSms"), std::string::npos);
    c = ok;
    c.shards = -2;
    EXPECT_NE(c.validationError().find("shards must be >= 0"),
              std::string::npos);
}

TEST(Verify, RunConfigValidateIsFatal)
{
    RunConfig c;
    c.chunkBytes = 3000;
    EXPECT_DEATH(c.validate(), "invalid RunConfig");
}

TEST(Verify, RunGraphRejectsInvalidConfigBeforeConstruction)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    OpGraph g = buildSubLayer(m, SubLayerId::L1);
    RunConfig cfg;
    cfg.numGpus = 1;
    EXPECT_DEATH(runGraph(makeCais(), g, cfg, "L1"),
                 "invalid RunConfig");
}

TEST(Verify, GatedRunIsBitIdenticalToUngated)
{
    LlmConfig m = megaGpt4B().scaled(0.25, 0.25);
    RunConfig cfg;
    cfg.gpu.jitterSigma = 0.0;

    cfg.verify = true;
    OpGraph g1 = buildSubLayer(m, SubLayerId::L1);
    RunResult on = runGraph(makeCais(), g1, cfg, "L1");

    cfg.verify = false;
    OpGraph g2 = buildSubLayer(m, SubLayerId::L1);
    RunResult off = runGraph(makeCais(), g2, cfg, "L1");

    EXPECT_EQ(on.makespan, off.makespan);
    EXPECT_EQ(on.eventsExecuted, off.eventsExecuted);
    EXPECT_GT(on.eventsExecuted, 0u);
}

TEST(Verify, GateSuppressionListIsHonored)
{
    // A credit mismatch cannot be seeded through RunConfig (the gate
    // always derives balanced credits), so drive the suppression path
    // through verifySystem options equivalence instead.
    SystemConfig c = tinyConfig();
    c.fabric.vcCredits = 8;
    System sys(c);
    verify::Options o;
    o.suppress.insert("V2");
    EXPECT_TRUE(verify::verifySystem(sys, o).ok());
    EXPECT_FALSE(verify::verifySystem(sys).ok());
}
