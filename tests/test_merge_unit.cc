/**
 * @file
 * Tests for the CAIS merge unit micro-functions through a real
 * 2-GPU/1-switch fabric slice: load merging (fetch once, serve many),
 * reduction merging (accumulate, write once), CAM/merging table
 * behaviour, eviction and stagger accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "switchcompute/switch_compute.hh"

using namespace cais;

namespace
{

struct HomeStub : public PacketSink
{
    PacketIdAllocator ids;
    EventQueue *eq = nullptr;
    std::vector<Packet> got;
    /** Auto-respond to readReq fetches after a fixed delay. */
    CreditLink *up = nullptr; // back-channel to the switch
    GpuId id = 0;
    int switchNode = 0;
    bool serveReads = true;

    void
    acceptPacket(Packet &&pkt, CreditLink *from, int vc) override
    {
        from->returnCredit(vc);
        if (pkt.type == PacketType::readReq && serveReads) {
            Packet resp = makePacket(ids, PacketType::readResp, id,
                                          pkt.src);
            resp.addr = pkt.addr;
            resp.payloadBytes = pkt.reqBytes;
            resp.cookie = pkt.cookie;
            up->send(std::move(resp));
            return;
        }
        got.push_back(pkt);
    }
};

struct MergeRig
{
    PacketIdAllocator ids;
    EventQueue eq;
    SwitchParams sp;
    std::unique_ptr<SwitchChip> sw;
    std::unique_ptr<SwitchComputeComplex> complex;
    std::vector<std::unique_ptr<CreditLink>> ups;
    std::vector<std::unique_ptr<CreditLink>> downs;
    HomeStub gpus[4];
    static constexpr int numGpus = 4;

    explicit MergeRig(std::uint64_t table_bytes = 0,
                      std::uint32_t chunk = 4096)
    {
        sw = std::make_unique<SwitchChip>(eq, 0, numGpus, numGpus, sp);
        InSwitchParams ip;
        ip.merge.chunkBytes = chunk;
        ip.merge.tableBytesPerPort = table_bytes;
        complex = std::make_unique<SwitchComputeComplex>(*sw, ip);
        for (GpuId g = 0; g < numGpus; ++g) {
            ups.push_back(std::make_unique<CreditLink>(
                eq, "up", 450.0, 50, sp.numVcs, 64, 10000));
            sw->attachUplink(g, ups.back().get());
            downs.push_back(std::make_unique<CreditLink>(
                eq, "dn", 450.0, 50, sp.numVcs, 64, 10000));
            sw->attachDownlink(g, downs.back().get());
            gpus[g].eq = &eq;
            gpus[g].id = g;
            gpus[g].switchNode = numGpus;
            gpus[g].up = ups.back().get();
            downs.back()->setSink(&gpus[g]);
        }
    }

    Packet
    loadReq(GpuId from, Addr addr, int expected)
    {
        Packet p = makePacket(ids, PacketType::caisLoadReq, from,
                                   sw->nodeId());
        p.addr = addr;
        p.reqBytes = 4096;
        p.expected = expected;
        p.issuerGpu = from;
        p.cookie = 1000 + static_cast<std::uint64_t>(from);
        return p;
    }

    Packet
    redReq(GpuId from, Addr addr, int expected)
    {
        Packet p = makePacket(ids, PacketType::caisRedReq, from,
                                   sw->nodeId());
        p.addr = addr;
        p.payloadBytes = 4096;
        p.expected = expected;
        p.issuerGpu = from;
        return p;
    }
};

} // namespace

TEST(MergeUnit, LoadMergingFetchesOnce)
{
    MergeRig rig;
    Addr addr = makeAddr(0, 1 << 20);
    // GPUs 1..3 request the same address (home = GPU 0).
    for (GpuId g = 1; g < 4; ++g)
        rig.ups[g]->send(rig.loadReq(g, addr, 3));
    rig.eq.runAll();

    const MergeStats &st = rig.complex->merge().stats();
    EXPECT_EQ(st.loadReqs.value(), 3u);
    EXPECT_EQ(st.fetches.value(), 1u); // fetched from home exactly once
    EXPECT_EQ(st.loadHits.value(), 2u);
    EXPECT_EQ(st.sessionsClosed.value(), 1u);

    // Every requester received its data response.
    for (GpuId g = 1; g < 4; ++g) {
        ASSERT_EQ(rig.gpus[g].got.size(), 1u) << "gpu " << g;
        EXPECT_EQ(rig.gpus[g].got[0].type, PacketType::caisLoadResp);
        EXPECT_EQ(rig.gpus[g].got[0].payloadBytes, 4096u);
        EXPECT_EQ(rig.gpus[g].got[0].cookie,
                  1000u + static_cast<std::uint64_t>(g));
    }
}

TEST(MergeUnit, LateLoadServedFromLoadReadyCache)
{
    MergeRig rig;
    Addr addr = makeAddr(0, 1 << 20);
    rig.ups[1]->send(rig.loadReq(1, addr, 3));
    rig.eq.runUntil(10000); // fetch completes; session is Load-Ready
    EXPECT_EQ(rig.complex->merge().liveSessions(), 1u);

    rig.ups[2]->send(rig.loadReq(2, addr, 3));
    rig.ups[3]->send(rig.loadReq(3, addr, 3));
    rig.eq.runUntil(20000);

    EXPECT_EQ(rig.complex->merge().stats().fetches.value(), 1u);
    EXPECT_EQ(rig.complex->merge().liveSessions(), 0u);
    EXPECT_EQ(rig.gpus[3].got.size(), 1u);
}

TEST(MergeUnit, ReductionMergingWritesOnce)
{
    MergeRig rig;
    Addr addr = makeAddr(2, 1 << 18); // home = GPU 2
    for (GpuId g : {0, 1, 3})
        rig.ups[g]->send(rig.redReq(g, addr, 3));
    rig.eq.runAll();

    const MergeStats &st = rig.complex->merge().stats();
    EXPECT_EQ(st.redReqs.value(), 3u);
    EXPECT_EQ(st.redHits.value(), 2u);
    EXPECT_EQ(st.mergedWrites.value(), 1u);

    // The home GPU received exactly one merged write with the full
    // contribution count.
    ASSERT_EQ(rig.gpus[2].got.size(), 1u);
    const Packet &w = rig.gpus[2].got[0];
    EXPECT_EQ(w.type, PacketType::caisMergedWrite);
    EXPECT_EQ(w.contribs, 3);
    EXPECT_EQ(w.payloadBytes, 4096u);
}

TEST(MergeUnit, DistinctAddressesDistinctSessions)
{
    MergeRig rig;
    rig.ups[0]->send(rig.redReq(0, makeAddr(1, 0x1000), 3));
    rig.ups[1]->send(rig.redReq(1, makeAddr(1, 0x2000), 3));
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->merge().stats().sessionsOpened.value(), 2u);
    EXPECT_EQ(rig.complex->merge().stats().redHits.value(), 0u);
}

TEST(MergeUnit, LoadAndReductionToSameAddrAreSeparate)
{
    MergeRig rig;
    Addr addr = makeAddr(0, 0x4000);
    rig.ups[1]->send(rig.loadReq(1, addr, 3));
    rig.ups[1]->send(rig.redReq(1, addr, 3));
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->merge().stats().sessionsOpened.value(), 2u);
}

TEST(MergeUnit, LruEvictionFlushesPartialReduction)
{
    // Table fits exactly one 4 KiB session per port.
    MergeRig rig(4096);
    Addr a1 = makeAddr(2, 0x1000);
    Addr a2 = makeAddr(2, 0x9000);
    rig.ups[0]->send(rig.redReq(0, a1, 3));
    rig.eq.runUntil(5000);
    rig.ups[1]->send(rig.redReq(1, a2, 3)); // evicts a1's session
    // Stop before the timeout sweep flushes a2's session as well.
    rig.eq.runUntil(20000);

    const MergeUnit &mu = rig.complex->merge();
    EXPECT_EQ(mu.evictionStats().lruEvictions.value(), 1u);
    // The partial (1 contribution) was flushed to the home GPU.
    ASSERT_EQ(rig.gpus[2].got.size(), 1u);
    EXPECT_EQ(rig.gpus[2].got[0].contribs, 1);
}

TEST(MergeUnit, PeakBytesTracksConcurrentSessions)
{
    MergeRig rig; // unbounded
    for (int i = 0; i < 5; ++i)
        rig.ups[0]->send(
            rig.redReq(0, makeAddr(1, 0x1000 + 0x1000 * i), 3));
    rig.eq.runAll();
    EXPECT_EQ(rig.complex->merge().peakTableBytes(1),
              5u * 4096u);
    EXPECT_EQ(rig.complex->merge().peakRedSessions(), 5u);
}

TEST(MergeUnit, StaggerMeasuresFirstToLastArrival)
{
    MergeRig rig;
    Addr addr = makeAddr(3, 0x1000);
    rig.ups[0]->send(rig.redReq(0, addr, 2));
    rig.eq.runUntil(5000); // 5 us gap
    rig.ups[1]->send(rig.redReq(1, addr, 2));
    rig.eq.runAll();
    const Histogram &h = rig.complex->merge().staggerHist();
    ASSERT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.mean(), 5000.0, 300.0);
}

TEST(MergeUnit, MergedTrafficSavesHomeUplinkBytes)
{
    // Compare home->switch bytes with and without sharing: three
    // requesters but a single fetch means the home uplink carries the
    // data once (plus its credit/header costs).
    MergeRig rig;
    Addr addr = makeAddr(0, 1 << 20);
    for (GpuId g = 1; g < 4; ++g)
        rig.ups[g]->send(rig.loadReq(g, addr, 3));
    rig.eq.runAll();
    // Home uplink: one readResp of ~4 KiB (not three).
    EXPECT_LT(rig.ups[0]->totalPayloadBytes(), 2u * 4096u);
    EXPECT_GE(rig.ups[0]->totalPayloadBytes(), 4096u);
}
