/**
 * @file
 * Baselines 4 and 7: FuseLib [44] and FuseLib-NVLS. Like CoCoNet,
 * FuseLib overlaps GEMM with the collective, but executes within a
 * single fused persistent kernel: no per-chunk launch overhead, at
 * the cost of a static SM partition between compute and
 * communication warps.
 */

#include "runtime/execution_strategy.hh"

namespace cais
{

StrategySpec
makeFuselib(bool with_nvls)
{
    StrategySpec s;
    s.name = with_nvls ? "FuseLib-NVLS" : "FuseLib";
    s.opts.collectives = with_nvls ? CollectiveImpl::nvlsPipelined
                                   : CollectiveImpl::softwarePipelined;
    s.opts.reassociateToAllReduce = true;
    s.opts.pipelinedCollectives = true;
    s.opts.commSmFrom = 0.8;
    s.opts.commSmTo = 1.0;
    s.opts.perCommTbOverhead = 0;
    return s;
}

} // namespace cais
