#include "runtime/simulation_driver.hh"

#include <cmath>
#include <cstdlib>

#include "analysis/bound_model.hh"
#include "analysis/causal_profile.hh"
#include "analysis/deep_trace.hh"
#include "analysis/report.hh"
#include "analysis/trace.hh"
#include "analysis/verify.hh"
#include "common/log.hh"
#include "common/metrics.hh"

namespace cais
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

int
RunConfig::effectiveShards() const
{
    if (shards != 0)
        return shards;
    const char *env = std::getenv("CAIS_SHARDS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        return 1;
    return static_cast<int>(v);
}

std::string
RunConfig::validationError() const
{
    if (numGpus < 2)
        return strfmt("numGpus must be >= 2 (got %d)", numGpus);
    if (numGpus > 120)
        return strfmt("numGpus must be <= 120: GPUs and switches "
                      "share the fabric's 128-bit participant masks "
                      "(got %d)",
                      numGpus);
    if (numSwitches < 1)
        return strfmt("numSwitches must be >= 1 (got %d)",
                      numSwitches);
    if (!topology.empty() && !FabricParams::findPreset(topology)) {
        std::string known;
        for (const std::string &n : FabricParams::presetNames())
            known += (known.empty() ? "" : ", ") + n;
        return strfmt("unknown topology preset \"%s\" (expected one "
                      "of: %s)",
                      topology.c_str(), known.c_str());
    }
    if (!isPowerOfTwo(chunkBytes))
        return strfmt("chunkBytes is the address-hash interleave "
                      "width and must be a non-zero power of two "
                      "(got %u)",
                      chunkBytes);
    if (perGpuBwPerDir <= 0.0)
        return strfmt("perGpuBwPerDir must be positive (got %g)",
                      perGpuBwPerDir);
    if (utilBinWidth == 0)
        return "utilBinWidth must be non-zero";
    if (boundSlackRatio < 0.0)
        return strfmt("boundSlackRatio must be >= 0 (got %g)",
                      boundSlackRatio);
    if (maxEvents == 0)
        return "maxEvents must be non-zero";
    if (mergeTimeout == 0)
        return "mergeTimeout must be non-zero";
    if (mergeTableEntriesPerPort < 0)
        return strfmt("mergeTableEntriesPerPort must be >= 0 "
                      "(got %d)",
                      mergeTableEntriesPerPort);
    if (gpu.numSms < 1)
        return strfmt("gpu.numSms must be >= 1 (got %d)",
                      gpu.numSms);
    if (gpu.maxCaisLoadOutstanding < 1)
        return strfmt("gpu.maxCaisLoadOutstanding must be >= 1 "
                      "(got %d)",
                      gpu.maxCaisLoadOutstanding);
    if (shards < 0)
        return strfmt("shards must be >= 0 (0 resolves CAIS_SHARDS; "
                      "got %d)",
                      shards);
    // Fabric-level bounds (VC count, credits, buffer depths) on the
    // derived SystemConfig, so zero-VC / zero-credit setups are
    // rejected here with the same message the Fabric would fatal
    // with instead of constructing a nonsense System.
    SystemConfig sc = toSystemConfig(StrategySpec{});
    std::string fab_err = sc.fabric.validationError();
    if (!fab_err.empty())
        return fab_err;
    // Sharded execution needs lookahead: some latency on every link
    // that crosses shards (checked on the clamped shard count — the
    // count the System would actually run).
    int eff = std::min(effectiveShards(),
                       Fabric::numDomains(sc.fabric));
    if (eff > 1 && Fabric::crossShardLookahead(sc.fabric, eff) == 0)
        return strfmt("shards=%d requires a non-zero cross-shard "
                      "link latency (conservative lookahead); "
                      "linkLatency is 0",
                      effectiveShards());
    return "";
}

void
RunConfig::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        fatal("invalid RunConfig: %s", err.c_str());
}

SystemConfig
RunConfig::toSystemConfig(const StrategySpec &spec) const
{
    SystemConfig sc;
    if (!topology.empty()) {
        sc.fabric = FabricParams::preset(topology).withGpus(numGpus);
    } else {
        sc.fabric.numGpus = numGpus;
        sc.fabric.numSwitches = numSwitches;
    }
    sc.fabric.perGpuBytesPerCycle = perGpuBwPerDir;
    sc.fabric.linkLatency = linkLatency;
    sc.fabric.interleaveBytes = chunkBytes;
    sc.fabric.utilBinWidth = utilBinWidth;
    sc.fabric.sw.unifiedDataVc = spec.unifiedDataVc;

    sc.gpu = gpu;
    sc.gpu.chunkBytes = chunkBytes;
    sc.gpu.seed = seed;
    // Fold the master seed into the skew stream without disturbing
    // the seed == 1 default (which must match the historical runs).
    sc.skewSeed = 0xabcdef12345ull ^ (seed - 1);

    sc.inswitch.merge.chunkBytes = chunkBytes;
    std::uint64_t table_bytes = mergeTableBytesPerPort
        ? mergeTableBytesPerPort
        : static_cast<std::uint64_t>(mergeTableEntriesPerPort) *
              chunkBytes;
    sc.inswitch.merge.tableBytesPerPort =
        unboundedMergeTable ? 0 : table_bytes;
    sc.inswitch.merge.timeout = mergeTimeout;
    sc.inswitch.merge.throttleEnabled = spec.opts.caisCoordination;

    sc.maxEvents = maxEvents;
    sc.shards = effectiveShards();
    return sc;
}

RunResult
runGraph(const StrategySpec &spec, const OpGraph &graph,
         const RunConfig &cfg, const std::string &workload_name)
{
    ScopedLogLevel verbosity(cfg.verbosity);
    cfg.validate();
    System sys(cfg.toSystemConfig(spec));

    // The registry holds non-owning readers; registering before the
    // run costs nothing and cannot perturb it.
    MetricRegistry reg;
    sys.registerMetrics(reg);

    // Deep trace: switch-side lifecycle hooks plus a periodic
    // counter-track sampler that runs outside the event stream, so a
    // traced run stays bit-identical to an untraced one.
    bool tracing = !cfg.tracePath.empty();
    TraceCollector tc;
    DeepTraceProbe probe(sys, tc);
    if (tracing) {
        sys.setTraceHooks(&probe);
        if (cfg.traceSampleCycles > 0)
            sys.setPeriodicObserver(
                cfg.traceSampleCycles,
                [&probe](Cycle at) { probe.sample(at); });
    }

    // Causal profiler: attach before lowering so tile trackers
    // created by the strategy are wired as they are defined.
    bool profiling = !cfg.profilePath.empty();
    CausalProfiler prof;
    if (profiling)
        sys.setProfiler(&prof);

    GraphLowering lowering(sys, graph, spec.opts);
    lowering.lower();

    // Static verification gate (DESIGN.md §6e): a read-only pass over
    // the lowered system, so a verified run is bit-identical to an
    // unverified one.
    if (cfg.verify) {
        verify::Options vo;
        vo.strategy = spec.name;
        vo.workload = workload_name;
        vo.suppress.insert(cfg.verifySuppress.begin(),
                           cfg.verifySuppress.end());
        verify::VerifyResult vr = verify::verifySystem(sys, vo);
        if (!vr.ok())
            fatal("static verification failed for %s / %s:\n%s",
                  spec.name.c_str(), workload_name.c_str(),
                  vr.text().c_str());
    }

    sys.run();

    RunResult r;
    r.strategy = spec.name;
    r.workload = workload_name;
    r.makespan = sys.makespan();

    // Static analytical bound (DESIGN.md §6h): descriptor-only, so
    // computing it never perturbs the finished event state. Harvested
    // into the result for sim-vs-bound reporting and checked by the
    // post-run V8/V9 gate below.
    const BoundResult bound = computeBound(sys);
    r.boundComposite = bound.composite;
    r.boundCompute = bound.smCompute;
    r.boundHbm = bound.hbm;
    r.boundLink = bound.linkSerialization;
    r.boundMerge = bound.mergeService;
    r.boundCritPath = bound.criticalPath;
    r.boundBinding = bound.binding;

    // Everything counter-shaped is harvested from the registry; only
    // the windowed utilization aggregates still need Fabric methods
    // (they are computations over [0, makespan), not plain readings).
    MetricSnapshot snap = reg.snapshot();
    r.eventsExecuted = snap.sumU64("eventq.executed");
    r.wireBytes = snap.sumU64("link.*.wireBytes");
    r.mergeLoadReqs = snap.sumU64("*.merge.loadReqs");
    r.mergeRedReqs = snap.sumU64("*.merge.redReqs");
    r.mergeLoadHits = snap.sumU64("*.merge.loadHits");
    r.mergeRedHits = snap.sumU64("*.merge.redHits");
    r.mergeFetches = snap.sumU64("*.merge.fetches");
    r.sessionsClosed = snap.sumU64("*.merge.sessionsClosed");
    r.lruEvictions = snap.sumU64("*.merge.evictions.lru");
    r.timeoutEvictions =
        snap.sumU64("*.merge.evictions.timeout");
    r.throttleHints =
        snap.sumU64("*.merge.throttle.hintsSent");
    r.peakMergeBytes = snap.maxU64("*.merge.peakTableBytes");

    // Count-weighted mean over the per-switch stagger histograms.
    double stagger_weighted = 0.0;
    std::uint64_t stagger_n = 0;
    snap.forEach("*.merge.stagger",
                 [&](const std::string &, const MetricValue &v) {
        stagger_weighted += v.mean * static_cast<double>(v.count);
        stagger_n += v.count;
    });
    r.staggerSamples = stagger_n;
    r.staggerUs = stagger_n
        ? stagger_weighted / static_cast<double>(stagger_n) /
              static_cast<double>(cyclesPerUs)
        : 0.0;

    Cycle end = r.makespan ? r.makespan : 1;
    r.avgUtil = sys.fabric().avgUtilization(0, end);
    r.upUtil = sys.fabric().dirUtilization(true, 0, end);
    r.dnUtil = sys.fabric().dirUtilization(false, 0, end);
    r.gpuUtil = sys.gpuUtilization();
    // The Fig. 16 series now lives in the registry (timeSeries kind),
    // so the harvested copy and the report's metrics section agree by
    // construction.
    if (const MetricValue *ts = snap.find("fabric.utilSeries")) {
        r.utilSeries = ts->bins;
        r.utilBinWidth = ts->binWidth;
    }

    // One pass over the kernels builds the timeline and (when
    // tracing) the per-GPU kernel spans.
    for (std::size_t k = 0; k < sys.numKernels(); ++k) {
        const KernelDesc &d = sys.kernel(static_cast<KernelId>(k));
        KernelTiming t;
        t.name = d.name;
        t.comm = d.commKernel;
        t.start = sys.kernelStartTime(static_cast<KernelId>(k));
        t.finish = sys.kernelFinishTime(static_cast<KernelId>(k));
        if (t.finish > t.start) {
            if (t.comm)
                r.commKernelCycles += t.finish - t.start;
            else
                r.computeKernelCycles += t.finish - t.start;
        }
        if (tracing) {
            for (GpuId g = 0; g < sys.numGpus(); ++g) {
                auto [s0, s1] =
                    sys.kernelGpuSpan(static_cast<KernelId>(k), g);
                if (s1 > 0)
                    tc.addSpan(d.name,
                               d.commKernel ? "comm" : "compute", 0,
                               g, s0, s1);
            }
        }
        r.kernels.push_back(std::move(t));
    }

    Attribution attr;
    if (profiling) {
        for (std::size_t k = 0; k < sys.numKernels(); ++k)
            prof.setName(
                profnode::kernel(static_cast<KernelId>(k)),
                sys.kernel(static_cast<KernelId>(k)).name);
        prof.finalize();
        // Walk backward from the makespan-defining event: the kernel
        // that finished last (ties break toward the lowest id, which
        // is deterministic across shard counts).
        KernelId crit = invalidId;
        Cycle crit_finish = 0;
        for (std::size_t k = 0; k < sys.numKernels(); ++k) {
            Cycle f = sys.kernelFinishTime(static_cast<KernelId>(k));
            if (f > crit_finish) {
                crit_finish = f;
                crit = static_cast<KernelId>(k);
            }
        }
        attr = prof.analyze(
            crit != invalidId ? profnode::kernel(crit)
                              : profnode::root(),
            r.makespan);
        if (tracing)
            prof.emitFlameLanes(tc, 2, attr);
        if (!prof.writeFile(cfg.profilePath, attr, spec.name,
                            workload_name))
            warn("could not write profile to %s",
                 cfg.profilePath.c_str());
    }

    if (tracing) {
        tc.nameProcess(0, "GPUs (" + spec.name + ")");
        tc.nameProcess(1, "fabric");
        for (GpuId g = 0; g < sys.numGpus(); ++g)
            tc.nameLane(0, g, strfmt("GPU %d", g));
        tc.nameLane(1, sys.numGpus(), "mean link utilization");
        probe.announceLanes();
        for (std::size_t i = 0; i < r.utilSeries.size(); ++i)
            tc.addCounter("link util %", 1,
                          static_cast<Cycle>(i) * cfg.utilBinWidth,
                          100.0 * r.utilSeries[i]);
        if (!tc.writeFile(cfg.tracePath))
            warn("could not write trace to %s",
                 cfg.tracePath.c_str());
    }

    if (!cfg.metricsPath.empty() &&
        !writeMetricsReport(cfg.metricsPath, cfg, r, snap))
        warn("could not write metrics report to %s",
             cfg.metricsPath.c_str());

    // Post-run verification gate (V8/V9): placed after the artifact
    // writers so traces/metrics/profiles survive a fatal diagnostic
    // for post-mortem analysis.
    if (cfg.verify) {
        verify::Options vo;
        vo.strategy = spec.name;
        vo.workload = workload_name;
        vo.suppress.insert(cfg.verifySuppress.begin(),
                           cfg.verifySuppress.end());
        vo.v9SlackRatio = cfg.boundSlackRatio;
        verify::VerifyResult pr = verify::verifyPostRun(
            sys, bound, r.makespan, profiling ? &attr : nullptr, vo);
        if (!pr.ok())
            fatal("post-run verification failed for %s / %s:\n%s",
                  spec.name.c_str(), workload_name.c_str(),
                  pr.text().c_str());
    }

    return r;
}

double
speedupOver(const RunResult &base, const RunResult &x)
{
    if (x.makespan == 0)
        return 0.0;
    return static_cast<double>(base.makespan) /
           static_cast<double>(x.makespan);
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace cais
