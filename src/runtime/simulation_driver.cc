#include "runtime/simulation_driver.hh"

#include <cmath>

#include "analysis/trace.hh"
#include "common/log.hh"

namespace cais
{

SystemConfig
RunConfig::toSystemConfig(const StrategySpec &spec) const
{
    SystemConfig sc;
    sc.fabric.numGpus = numGpus;
    sc.fabric.numSwitches = numSwitches;
    sc.fabric.perGpuBytesPerCycle = perGpuBwPerDir;
    sc.fabric.linkLatency = linkLatency;
    sc.fabric.interleaveBytes = chunkBytes;
    sc.fabric.utilBinWidth = utilBinWidth;
    sc.fabric.sw.unifiedDataVc = spec.unifiedDataVc;

    sc.gpu = gpu;
    sc.gpu.chunkBytes = chunkBytes;
    sc.gpu.seed = seed;
    // Fold the master seed into the skew stream without disturbing
    // the seed == 1 default (which must match the historical runs).
    sc.skewSeed = 0xabcdef12345ull ^ (seed - 1);

    sc.inswitch.merge.chunkBytes = chunkBytes;
    std::uint64_t table_bytes = mergeTableBytesPerPort
        ? mergeTableBytesPerPort
        : static_cast<std::uint64_t>(mergeTableEntriesPerPort) *
              chunkBytes;
    sc.inswitch.merge.tableBytesPerPort =
        unboundedMergeTable ? 0 : table_bytes;
    sc.inswitch.merge.timeout = mergeTimeout;
    sc.inswitch.merge.throttleEnabled = spec.opts.caisCoordination;

    sc.maxEvents = maxEvents;
    return sc;
}

RunResult
runGraph(const StrategySpec &spec, const OpGraph &graph,
         const RunConfig &cfg, const std::string &workload_name)
{
    ScopedLogLevel verbosity(cfg.verbosity);
    System sys(cfg.toSystemConfig(spec));
    GraphLowering lowering(sys, graph, spec.opts);
    lowering.lower();
    sys.run();

    RunResult r;
    r.strategy = spec.name;
    r.workload = workload_name;
    r.makespan = sys.makespan();
    r.eventsExecuted = sys.eq().executed();

    Cycle end = r.makespan ? r.makespan : 1;
    r.avgUtil = sys.fabric().avgUtilization(0, end);
    r.upUtil = sys.fabric().dirUtilization(true, 0, end);
    r.dnUtil = sys.fabric().dirUtilization(false, 0, end);
    r.gpuUtil = sys.gpuUtilization();
    r.wireBytes = sys.fabric().totalWireBytes();
    r.utilSeries = sys.fabric().utilizationSeries(0, end);
    r.utilBinWidth = cfg.utilBinWidth;

    for (SwitchId s = 0; s < sys.numSwitches(); ++s) {
        const MergeUnit &mu = sys.switchCompute(s).merge();
        const MergeStats &ms = mu.stats();
        r.mergeLoadReqs += ms.loadReqs.value();
        r.mergeRedReqs += ms.redReqs.value();
        r.mergeLoadHits += ms.loadHits.value();
        r.mergeRedHits += ms.redHits.value();
        r.mergeFetches += ms.fetches.value();
        r.sessionsClosed += ms.sessionsClosed.value();
        r.lruEvictions += mu.evictionStats().lruEvictions.value();
        r.timeoutEvictions +=
            mu.evictionStats().timeoutEvictions.value();
        r.throttleHints += mu.throttleHints();
        r.peakMergeBytes =
            std::max(r.peakMergeBytes, mu.peakTableBytes());
        r.staggerSamples += mu.staggerHist().count();
    }
    r.staggerUs = sys.mergeStaggerMean() /
                  static_cast<double>(cyclesPerUs);

    if (!cfg.tracePath.empty()) {
        TraceCollector tc;
        tc.nameProcess(0, "GPUs (" + spec.name + ")");
        tc.nameProcess(1, "fabric");
        for (GpuId g = 0; g < sys.numGpus(); ++g)
            tc.nameLane(0, g, strfmt("GPU %d", g));
        tc.nameLane(1, 0, "mean link utilization");
        for (std::size_t k = 0; k < sys.numKernels(); ++k) {
            const KernelDesc &d = sys.kernel(static_cast<KernelId>(k));
            for (GpuId g = 0; g < sys.numGpus(); ++g) {
                auto [s0, s1] =
                    sys.kernelGpuSpan(static_cast<KernelId>(k), g);
                if (s1 > 0)
                    tc.addSpan(d.name,
                               d.commKernel ? "comm" : "compute", 0,
                               g, s0, s1);
            }
        }
        for (std::size_t i = 0; i < r.utilSeries.size(); ++i)
            tc.addCounter("link util %", 1,
                          static_cast<Cycle>(i) * cfg.utilBinWidth,
                          100.0 * r.utilSeries[i]);
        if (!tc.writeFile(cfg.tracePath))
            warn("could not write trace to %s",
                 cfg.tracePath.c_str());
    }

    for (std::size_t k = 0; k < sys.numKernels(); ++k) {
        KernelTiming t;
        const KernelDesc &d = sys.kernel(static_cast<KernelId>(k));
        t.name = d.name;
        t.comm = d.commKernel;
        t.start = sys.kernelStartTime(static_cast<KernelId>(k));
        t.finish = sys.kernelFinishTime(static_cast<KernelId>(k));
        if (t.finish > t.start) {
            if (t.comm)
                r.commKernelCycles += t.finish - t.start;
            else
                r.computeKernelCycles += t.finish - t.start;
        }
        r.kernels.push_back(std::move(t));
    }
    return r;
}

double
speedupOver(const RunResult &base, const RunResult &x)
{
    if (x.makespan == 0)
        return 0.0;
    return static_cast<double>(base.makespan) /
           static_cast<double>(x.makespan);
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace cais
