/**
 * @file
 * One-call experiment driver: assemble a System for a strategy,
 * lower a workload graph, run it, and harvest the metrics the
 * paper's figures report (makespan, link utilization in both
 * directions, GPU utilization, merge-unit statistics, request
 * stagger, comm/compute kernel-time split, utilization-over-time
 * series).
 */

#ifndef CAIS_RUNTIME_SIMULATION_DRIVER_HH
#define CAIS_RUNTIME_SIMULATION_DRIVER_HH

#include <string>
#include <vector>

#include "common/log.hh"
#include "runtime/execution_strategy.hh"

namespace cais
{

/** Machine/scale knobs of one experiment run. */
struct RunConfig
{
    int numGpus = 8;
    int numSwitches = 4;

    /**
     * Fabric preset name ("dgx-h100", "nvl72",
     * "rail-optimized-2node", "rail-optimized-4node"); empty keeps
     * the flat numGpus x numSwitches shape above. Presets are scaled
     * to numGpus via FabricParams::withGpus, so sweeps can vary the
     * GPU count while keeping the preset's tier structure.
     */
    std::string topology;

    GpuParams gpu;

    /**
     * Master seed of the run. Every random stream in the simulation
     * derives from it (GPU jitter/skew RNGs as seed + gpuId, the
     * system-wide request-stagger RNG via an xor fold), so two runs
     * with equal configs and seeds are bit-identical. The default of
     * 1 reproduces the historical streams exactly.
     */
    std::uint64_t seed = 1;

    double perGpuBwPerDir = 450.0; ///< bytes/cycle per direction
    Cycle linkLatency = 250;

    std::uint32_t chunkBytes = 4096;

    /**
     * Merging-table capacity as entries per port; the paper's 40 KB
     * at its 128 B request granularity is 320 entries, which we keep
     * at our coarser chunk granularity (see EXPERIMENTS.md on
     * reporting 128 B-equivalent sizes).
     */
    int mergeTableEntriesPerPort = 320;

    /** Explicit byte capacity; 0 derives entries x chunkBytes. */
    std::uint64_t mergeTableBytesPerPort = 0;

    bool unboundedMergeTable = false; ///< Fig. 13a sizing mode
    Cycle mergeTimeout = 50 * cyclesPerUs;

    Cycle utilBinWidth = 2000;
    std::uint64_t maxEvents = 400ull * 1000 * 1000;

    /**
     * Event-core shards (DESIGN.md §6f). 0 (the default) resolves
     * from the CAIS_SHARDS environment variable (absent or invalid
     * means 1); 1 is the historical sequential scheduler; >= 2
     * splits the fabric over worker threads under conservative-PDES
     * windows, bit-identical to sequential. Clamped to the shape's
     * domain count at System construction.
     */
    int shards = 0;

    /** The shard count this config actually requests: shards, or
     *  the CAIS_SHARDS environment value when shards == 0. */
    int effectiveShards() const;

    /** When non-empty, a Chrome trace (Perfetto-loadable) of kernel
     *  spans, switch-side merge/sync lanes and counter tracks is
     *  written here (see analysis/deep_trace.hh for the lane map). */
    std::string tracePath;

    /** When non-empty, the schema-versioned JSON metrics report
     *  (analysis/report.hh) is written here. */
    std::string metricsPath;

    /**
     * When non-empty, the causal critical-path profile
     * (cais-profile-v1 JSON, analysis/causal_profile.hh) is written
     * here. Hooks only append to out-of-band edge logs, so a
     * profiled run is bit-identical to an unprofiled one, at any
     * shards= setting.
     */
    std::string profilePath;

    /**
     * Counter-track sample period for the deep trace, in cycles. The
     * sampler runs outside the event stream (it never schedules
     * events and is not counted in eventsExecuted), so tracing is
     * bit-identical to not tracing. 0 disables the counter tracks.
     */
    Cycle traceSampleCycles = 1000;

    /** Per-run verbosity, installed as a thread-local override for
     *  the duration of the run (sweep jobs don't race on the global
     *  log level). */
    LogLevel verbosity = LogLevel::normal;

    /**
     * Run the cais-verify static checker (analysis/verify.hh) over
     * the lowered system before the first event and abort on any
     * diagnostic. The pass is read-only, so a verified run stays
     * bit-identical to an unverified one; benches expose --no-verify
     * as the escape hatch.
     */
    bool verify = true;

    /** Rule ids ("V1".."V9") the verification gates should skip. */
    std::vector<std::string> verifySuppress;

    /**
     * V9 slack threshold for the post-run gate: fail the run when
     * makespan exceeds boundSlackRatio times the composite static
     * bound and the causal profiler cannot explain the slack
     * (analysis/bound_model.hh). 0 disables V9; V8 (makespan >= the
     * static bound) is always part of the gate while verify is on.
     */
    double boundSlackRatio = 0.0;

    /** First bounds violation as a message, or "" when valid. */
    std::string validationError() const;

    /** Abort with a clear message on the first bounds violation. */
    void validate() const;

    /** Build the system configuration for a strategy. */
    SystemConfig toSystemConfig(const StrategySpec &spec) const;
};

/** Start/finish of one kernel, for timeline analysis. */
struct KernelTiming
{
    std::string name;
    Cycle start = 0;
    Cycle finish = 0;
    bool comm = false;
};

/** Harvested metrics of one run. */
struct RunResult
{
    std::string strategy;
    std::string workload;

    Cycle makespan = 0;

    /** Events the simulator executed for this run (perf tracking). */
    std::uint64_t eventsExecuted = 0;

    double avgUtil = 0.0; ///< mean link utilization, both directions
    double upUtil = 0.0;  ///< GPU-to-switch
    double dnUtil = 0.0;  ///< switch-to-GPU
    double gpuUtil = 0.0; ///< mean SM-slot occupancy

    std::uint64_t wireBytes = 0;

    // Merge-unit aggregates over all switches.
    double staggerUs = 0.0;
    std::uint64_t staggerSamples = 0;
    std::uint64_t peakMergeBytes = 0;
    std::uint64_t mergeLoadReqs = 0;
    std::uint64_t mergeRedReqs = 0;
    std::uint64_t mergeLoadHits = 0;
    std::uint64_t mergeRedHits = 0;
    std::uint64_t mergeFetches = 0;
    std::uint64_t lruEvictions = 0;
    std::uint64_t timeoutEvictions = 0;
    std::uint64_t throttleHints = 0;
    std::uint64_t sessionsClosed = 0;

    /** Serialized comm/compute kernel time (for Fig. 2). */
    Cycle commKernelCycles = 0;
    Cycle computeKernelCycles = 0;

    std::vector<KernelTiming> kernels;

    /** Per-bin mean link utilization over the run (Fig. 16). */
    std::vector<double> utilSeries;
    Cycle utilBinWidth = 0;

    /**
     * Static analytical bounds (analysis/bound_model.hh), computed
     * for every run so tools can report sim-vs-bound ratios without
     * rebuilding the System.
     */
    Cycle boundComposite = 0;
    Cycle boundCompute = 0;
    Cycle boundHbm = 0;
    Cycle boundLink = 0;
    Cycle boundMerge = 0;
    Cycle boundCritPath = 0;
    std::string boundBinding;

    /** makespan in microseconds. */
    double makespanUs() const
    {
        return static_cast<double>(makespan) /
               static_cast<double>(cyclesPerUs);
    }
};

/** Run @p graph under @p spec and collect metrics. */
RunResult runGraph(const StrategySpec &spec, const OpGraph &graph,
                   const RunConfig &cfg,
                   const std::string &workload_name);

/** base.makespan / x.makespan. */
double speedupOver(const RunResult &base, const RunResult &x);

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &v);

} // namespace cais

#endif // CAIS_RUNTIME_SIMULATION_DRIVER_HH
