/**
 * @file
 * Baselines 3 and 6: CoCoNet [19] and CoCoNet-NVLS. CoCoNet overlaps
 * GEMM with AllReduce through software pipelining: chunked collective
 * kernels launch as producer chunks complete, but occupy SMs
 * (resource contention with compute) and pay a per-chunk kernel-
 * launch cost. It does not overlap communication with the *following*
 * GEMM. The NVLS variant drives the chunks with multimem
 * instructions.
 */

#include "runtime/execution_strategy.hh"

namespace cais
{

StrategySpec
makeCoconet(bool with_nvls)
{
    StrategySpec s;
    s.name = with_nvls ? "CoCoNet-NVLS" : "CoCoNet";
    s.opts.collectives = with_nvls ? CollectiveImpl::nvlsPipelined
                                   : CollectiveImpl::softwarePipelined;
    s.opts.reassociateToAllReduce = true;
    s.opts.pipelinedCollectives = true;
    // Communication kernels steal the top fifth of the SM array.
    s.opts.commSmFrom = 0.8;
    s.opts.commSmTo = 1.0;
    // Per-chunk kernel-launch overhead of the decomposed pipeline
    // (~4 sequential chunk launches per collective).
    s.opts.perCommTbOverhead = 3 * cyclesPerUs;
    s.opts.commKernelExtraLaunch = 12 * cyclesPerUs;
    return s;
}

} // namespace cais
