#include "runtime/system.hh"

#include <algorithm>
#include <memory>

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

namespace
{
/** Pseudo home-GPU id of the shared (multimem-style) window: the
 *  historical 62 when it cannot collide with a real GPU, else the top
 *  of the address field's comfortable range (fabrics are capped well
 *  below 127 GPUs). */
constexpr GpuId
sharedWindowGpu(int num_gpus)
{
    return num_gpus <= 62 ? 62 : 127;
}
} // namespace

GpuId
TensorInfo::tileOwner(int t) const
{
    if (layout != TensorLayout::rowShardedHome)
        panic("tensor %s: tileOwner on non-sharded layout",
              name.c_str());
    // shardStart is monotone; shards are balanced so this scan is
    // O(G) with tiny G.
    for (GpuId g = 0; g + 1 < static_cast<GpuId>(shardStart.size());
         ++g) {
        if (t >= shardStart[static_cast<std::size_t>(g)] &&
            t < shardStart[static_cast<std::size_t>(g) + 1])
            return g;
    }
    panic("tensor %s: tile %d out of range", name.c_str(), t);
}

Addr
TensorInfo::tileAddr(int t) const
{
    switch (layout) {
      case TensorLayout::rowShardedHome: {
        GpuId owner = tileOwner(t);
        int local = t - shardStart[static_cast<std::size_t>(owner)];
        return perGpuBase[static_cast<std::size_t>(owner)] +
               static_cast<std::uint64_t>(local) * bytesPerTile;
      }
      case TensorLayout::replicated:
        return sharedBase +
               static_cast<std::uint64_t>(t) * bytesPerTile;
      default:
        panic("tensor %s: tileAddr on private layout (use tileAddrAt)",
              name.c_str());
    }
}

Addr
TensorInfo::tileAddrAt(GpuId g, int t) const
{
    if (layout == TensorLayout::replicated)
        return tileAddr(t);
    return perGpuBase[static_cast<std::size_t>(g)] +
           static_cast<std::uint64_t>(t) * bytesPerTile;
}

/** Runtime state of one registered kernel. */
struct System::KernelState
{
    KernelDesc desc;
    int remainingDeps = 0;
    bool launched = false;
    int remainingTbs = 0;
    bool tbsDone = false;
    bool trackerDone = false;
    bool finished = false;
    Cycle startAt = 0;
    Cycle finishAt = 0;
    Cycle lastDispatchAt = 0;
    Cycle lastReadyAt = 0;
    std::vector<Cycle> gpuFirstDispatch;
    std::vector<Cycle> gpuLastFinish;
    std::vector<KernelId> dependents;
    std::unordered_map<std::uint64_t, std::unique_ptr<TbRun>> live;
};

System::System(const SystemConfig &cfg_)
    : cfg(cfg_), skewRng(cfg_.skewSeed)
{
    cfg.fabric.validate();
    cfg.gpu.validate();

    int shards = std::max(cfg.shards, 1);
    shards = std::min(shards, Fabric::numDomains(cfg.fabric));
    if (shards > 1) {
        Cycle la = Fabric::crossShardLookahead(cfg.fabric, shards);
        if (la == 0)
            panic("shards=%d needs a non-zero cross-shard link "
                  "latency for conservative lookahead",
                  shards);
        shq = std::make_unique<ShardedEventQueue>(queue, shards, la);
    }
    fab = std::make_unique<Fabric>(queue, cfg.fabric, shq.get());
    const FabricParams &fp = cfg.fabric;
    for (SwitchId s = 0; s < fp.numSwitches; ++s) {
        InSwitchParams isp = cfg.inswitch;
        if (fp.multiTier()) {
            Fabric *f = fab.get();
            int rails = fp.railsPerGroup;
            TierInfo &t = isp.tier;
            t.fabricGpus = fp.numGpus;
            t.numGroups = fp.numGroups;
            t.gpusPerGroup = fp.gpusPerGroup();
            t.spineNodeForAddr = [f](Addr a) {
                return f->spineNodeForAddr(a);
            };
            t.spineNodeForGroup = [f](GroupId g) {
                return f->spineNodeForGroup(g);
            };
            t.leafNodeForAddr = [f, rails](int grp, Addr a) {
                return f->switchNodeId(grp * rails + f->routeAddr(a));
            };
            t.leafNodeForGroup = [f, rails](int grp, GroupId g) {
                return f->switchNodeId(grp * rails + f->routeGroup(g));
            };
            if (fp.isSpineSwitch(s)) {
                t.role = TierRole::spine;
                // Cross-leaf partials are not TB traffic; the leaves
                // already throttle their local GPUs.
                isp.merge.throttleEnabled = false;
            } else {
                t.role = TierRole::leaf;
                t.groupIndex = s / rails;
                t.firstLocalGpu = t.groupIndex * t.gpusPerGroup;
            }
        }
        complexes.push_back(std::make_unique<SwitchComputeComplex>(
            fab->switchChip(s), isp));
    }
    for (GpuId g = 0; g < cfg.fabric.numGpus; ++g) {
        gpus.push_back(
            std::make_unique<GpuCore>(queue, *fab, g, cfg.gpu));
        gpus.back()->hub().setArrivalHandler(this);
    }
    localBump.assign(static_cast<std::size_t>(cfg.fabric.numGpus),
                     4096);
}

System::~System() = default;

TensorInfo &
System::defineTensor(std::string name, TensorLayout layout,
                     std::int64_t rows, std::int64_t cols,
                     int elem_bytes, int tile_rows, int need_factor)
{
    if (rows <= 0 || cols <= 0 || tile_rows <= 0 || need_factor <= 0)
        panic("tensor %s: bad parameters", name.c_str());

    auto t = std::make_unique<TensorInfo>();
    t->name = std::move(name);
    t->layout = layout;
    t->numTiles = static_cast<int>((rows + tile_rows - 1) / tile_rows);
    t->bytesPerTile = static_cast<std::uint64_t>(tile_rows) *
                      static_cast<std::uint64_t>(cols) *
                      static_cast<std::uint64_t>(elem_bytes);
    t->totalBytes =
        static_cast<std::uint64_t>(t->numTiles) * t->bytesPerTile;

    int G = numGpus();
    auto tr = std::make_unique<TileTracker>(
        t->name, G, t->numTiles,
        t->bytesPerTile * static_cast<std::uint64_t>(need_factor));
    t->tracker = static_cast<int>(trackers.size());

    switch (layout) {
      case TensorLayout::rowShardedHome: {
        // Balanced sharding: shard sizes differ by at most one tile.
        int base = t->numTiles / G;
        int rem = t->numTiles % G;
        t->shardStart.assign(static_cast<std::size_t>(G) + 1, 0);
        for (GpuId g = 0; g < G; ++g) {
            int count = base + (g < rem ? 1 : 0);
            t->shardStart[static_cast<std::size_t>(g) + 1] =
                t->shardStart[static_cast<std::size_t>(g)] + count;
        }
        for (GpuId g = 0; g < G; ++g) {
            int count = t->shardStart[static_cast<std::size_t>(g) + 1] -
                        t->shardStart[static_cast<std::size_t>(g)];
            std::uint64_t bytes = count
                ? static_cast<std::uint64_t>(count) * t->bytesPerTile
                : t->bytesPerTile; // placeholder for empty shards
            t->perGpuBase.push_back(allocLocal(g, bytes));
            if (count) {
                addrMap.addRange(
                    t->perGpuBase.back(),
                    static_cast<std::uint64_t>(count) * t->bytesPerTile,
                    tr.get(),
                    t->shardStart[static_cast<std::size_t>(g)],
                    t->bytesPerTile);
            }
        }
        TileTracker *raw = tr.get();
        TensorInfo *traw = t.get();
        raw->setRelevance([traw](GpuId g, int tile) {
            return traw->tileOwner(tile) == g;
        });
        break;
      }
      case TensorLayout::replicated:
        t->sharedBase = allocShared(t->totalBytes);
        addrMap.addRange(t->sharedBase, t->totalBytes, tr.get(), 0,
                         t->bytesPerTile);
        break;
      case TensorLayout::perGpuPrivate:
        for (GpuId g = 0; g < G; ++g) {
            t->perGpuBase.push_back(allocLocal(g, t->totalBytes));
            addrMap.addRange(t->perGpuBase.back(), t->totalBytes,
                             tr.get(), 0, t->bytesPerTile);
        }
        break;
    }

    if (prof)
        tr->setProfiler(prof, t->tracker, &queue);
    trackers.push_back(std::move(tr));
    tensors.push_back(std::move(t));
    return *tensors.back();
}

void
System::setProfiler(CausalProfiler *pr)
{
    prof = pr;
    if (!pr)
        return;
    fab->setProfiler(pr);
    for (auto &g : gpus)
        g->setProfiler(pr);
    for (std::size_t i = 0; i < trackers.size(); ++i)
        trackers[i]->setProfiler(pr, static_cast<int>(i), &queue);
    if (shq) {
        // One private edge log per shard; finalize() merges them back
        // into the canonical sequential order.
        pr->setNumShards(shq->numShards());
        for (int s = 0; s < shq->numShards(); ++s)
            shq->setShardUserData(s, pr->shardLogSlot(s));
    }
}

Addr
System::allocLocal(GpuId g, std::uint64_t bytes)
{
    Addr &bump = localBump[static_cast<std::size_t>(g)];
    Addr base = makeAddr(g, bump);
    // Keep ranges chunk-aligned and separated.
    bump += (bytes + 8191) & ~std::uint64_t(4095);
    return base;
}

Addr
System::allocShared(std::uint64_t bytes)
{
    Addr base = makeAddr(sharedWindowGpu(numGpus()), sharedBump + 4096);
    sharedBump += (bytes + 8191) & ~std::uint64_t(4095);
    return base;
}

GroupId
System::allocGroups(int n)
{
    GroupId first = nextGroup;
    nextGroup += n;
    return first;
}

KernelId
System::addKernel(KernelDesc desc)
{
    desc.id = static_cast<KernelId>(kernels.size());
    desc.validate(numGpus());
    auto ks = std::make_unique<KernelState>();
    ks->desc = std::move(desc);
    ks->remainingTbs = static_cast<int>(ks->desc.totalTbs());
    ks->gpuFirstDispatch.assign(
        static_cast<std::size_t>(numGpus()), 0);
    ks->gpuLastFinish.assign(static_cast<std::size_t>(numGpus()), 0);
    kernels.push_back(std::move(ks));
    return kernels.back()->desc.id;
}

KernelDesc &
System::kernel(KernelId k)
{
    return kernels.at(static_cast<std::size_t>(k))->desc;
}

const KernelDesc &
System::kernel(KernelId k) const
{
    return kernels.at(static_cast<std::size_t>(k))->desc;
}

void
System::run()
{
    unfinishedKernels = static_cast<int>(kernels.size());
    if (unfinishedKernels == 0)
        return;

    // Resolve dependency edges.
    for (auto &ks : kernels) {
        ks->remainingDeps = static_cast<int>(ks->desc.kernelDeps.size());
        for (KernelId d : ks->desc.kernelDeps)
            kernels.at(static_cast<std::size_t>(d))
                ->dependents.push_back(ks->desc.id);
    }

    for (auto &ks : kernels)
        if (ks->remainingDeps == 0)
            tryLaunch(*ks);

    if (shq)
        shq->runAll(cfg.maxEvents);
    else
        queue.runAll(cfg.maxEvents);

    if (unfinishedKernels != 0)
        reportDeadlock();
}

void
System::tryLaunch(KernelState &ks)
{
    if (ks.launched || ks.remainingDeps > 0)
        return;
    ks.launched = true;
    ks.startAt = queue.now();

    // Register tracker completion before any TB can contribute.
    if (ks.desc.producesTracker != invalidId) {
        tracker(ks.desc.producesTracker).waitComplete([this, &ks] {
            ks.trackerDone = true;
            maybeFinishKernel(ks);
        });
    } else {
        ks.trackerDone = true;
    }

    if (ks.desc.totalTbs() == 0) {
        ks.tbsDone = true;
        maybeFinishKernel(ks);
        return;
    }

    for (GpuId g = 0; g < numGpus(); ++g) {
        Cycle delay = ks.desc.launchOverhead;
        // GPUs enter the measured region staggered (prior-kernel
        // tails, cluster interference [18]): source kernels start
        // with a per-GPU skew. Downstream kernels inherit their
        // timing from data/barrier dependencies. Pre-launch sync does
        // not skip the skew — early GPUs wait at the Group Sync Table
        // for the laggard — it only re-aligns execution afterward.
        if (ks.desc.kernelDeps.empty() && cfg.gpu.maxStartSkew > 0) {
            delay += static_cast<Cycle>(skewRng.uniform(
                0.0, static_cast<double>(cfg.gpu.maxStartSkew)));
        }
        if (prof) {
            // Launch edge per GPU: overhead + skew between the kernel
            // becoming runnable and its grid hitting this GPU's
            // scheduler. The enabling cause (the finishing dependency
            // kernel) is active now, not inside the delayed closure.
            std::uint64_t csrc = prof->causeNode();
            Cycle ct = prof->causeTime();
            queue.scheduleAfter(delay, [this, &ks, g, csrc, ct] {
                prof->record(profnode::kernel(ks.desc.id),
                             WaitClass::launch, ks.startAt,
                             queue.now(), csrc, ct);
                CausalProfiler::ScopedCause sc(
                    prof, profnode::kernel(ks.desc.id), queue.now());
                launchOnGpu(ks, g);
            });
        } else {
            queue.scheduleAfter(delay, [this, &ks, g] {
                launchOnGpu(ks, g);
            });
        }
    }
}

void
System::launchOnGpu(KernelState &ks, GpuId g)
{
    const auto &grid = ks.desc.grids[static_cast<std::size_t>(g)];
    if (grid.empty()) {
        // This GPU has no work; account its share as done.
        return;
    }
    for (int i = 0; i < static_cast<int>(grid.size()); ++i)
        enqueueTb(ks, g, i);
}

void
System::enqueueTb(KernelState &ks, GpuId g, int tb_idx)
{
    const TbDesc &tb =
        ks.desc.grids[static_cast<std::size_t>(g)]
                     [static_cast<std::size_t>(tb_idx)];

    auto dispatch = [this, &ks, g, tb_idx] {
        Cycle ready_at = queue.now();
        gpu(g).scheduler().enqueue(
            ks.desc.smFrom, ks.desc.smTo, ks.desc.schedPriority,
            [this, &ks, g, tb_idx, ready_at](int slot) {
            dispatchTb(ks, g, tb_idx, slot, ready_at);
        });
    };

    // (Readiness time is tracked for pipeline diagnostics.)
    // Pre-launch synchronization (Sec. III-B.2): the TB registers its
    // group and stays pending — without occupying a CTA slot — until
    // the switch has seen all participating GPUs register.
    std::function<void()> ready = [this, &ks, dispatch] {
        ks.lastReadyAt = queue.now();
        dispatch();
    };
    if (ks.desc.preLaunchSync && tb.group != invalidId) {
        ready = [this, &ks, g, group = tb.group, dispatch] {
            gpu(g).synchronizer().requestSync(
                group, SyncPhase::preLaunch, numGpus(),
                [this, &ks, dispatch] {
                ks.lastReadyAt = queue.now();
                dispatch();
            });
        };
    }

    if (tb.deps.empty()) {
        ready();
        return;
    }

    auto remaining = std::make_shared<int>(
        static_cast<int>(tb.deps.size()));
    for (const TileRef &ref : tb.deps) {
        tracker(ref.tracker)
            .waitFor(ref.atGpu, ref.tile, [remaining, ready] {
            if (--*remaining == 0)
                ready();
        });
    }
}

void
System::dispatchTb(KernelState &ks, GpuId g, int tb_idx, int slot,
                   Cycle ready_at)
{
    const TbDesc &tb =
        ks.desc.grids[static_cast<std::size_t>(g)]
                     [static_cast<std::size_t>(tb_idx)];

    // Occupancy-stall edge: the TB was runnable from ready_at but only
    // now won a CTA slot; the enabling cause is whatever is active —
    // the readiness event itself (immediate grant) or the retiring TB
    // whose slot this one inherits (scheduler pump).
    if (prof)
        prof->record(profnode::tb(ks.desc.id, g, tb_idx),
                     WaitClass::schedulerIdle, ready_at, queue.now());

    auto run = std::make_unique<TbRun>(
        gpu(g).tbContext(numGpus()), g, ks.desc, tb, tb_idx,
        [this, &ks](TbRun &r) { onTbProduced(ks, r); },
        [this, &ks, g, tb_idx, slot](TbRun &r) {
            onTbFinished(ks, g, tb_idx, slot, &r);
        });

    std::uint64_t key = (static_cast<std::uint64_t>(g) << 32) |
                        static_cast<std::uint32_t>(tb_idx);
    ks.lastDispatchAt = queue.now();
    if (ks.gpuFirstDispatch[static_cast<std::size_t>(g)] == 0)
        ks.gpuFirstDispatch[static_cast<std::size_t>(g)] =
            queue.now() ? queue.now() : 1;
    TbRun *raw = run.get();
    ks.live[key] = std::move(run);
    raw->start();
}

void
System::onTbProduced(KernelState &ks, TbRun &tb)
{
    const TbDesc &d = tb.desc();
    if (ks.desc.producesTracker == invalidId || d.producesTile < 0 ||
        d.produceBytes == 0)
        return;
    tracker(ks.desc.producesTracker)
        .contribute(tb.gpu(), d.producesTile, d.produceBytes);
}

void
System::onTbFinished(KernelState &ks, GpuId g, int tb_idx, int slot,
                     TbRun *run)
{
    (void)run;
    ks.gpuLastFinish[static_cast<std::size_t>(g)] = queue.now();
    gpu(g).sms().release(slot);
    gpu(g).scheduler().pump();

    std::uint64_t key = (static_cast<std::uint64_t>(g) << 32) |
                        static_cast<std::uint32_t>(tb_idx);
    // Defer destruction: we are inside the TbRun's own call frame.
    queue.scheduleAfter(0, [&ks, key] { ks.live.erase(key); });

    if (--ks.remainingTbs == 0)
        onKernelTbsDone(ks);
}

void
System::onKernelTbsDone(KernelState &ks)
{
    ks.tbsDone = true;
    maybeFinishKernel(ks);
}

void
System::maybeFinishKernel(KernelState &ks)
{
    if (ks.finished || !ks.tbsDone || !ks.trackerDone)
        return;
    ks.finished = true;
    ks.finishAt = queue.now();
    if (--unfinishedKernels == 0)
        finishedAt = queue.now();

    // Kernel-finish edge: the kernel spanned [start, finish]; the last
    // retiring TB or completing tile (the active cause) closed it, and
    // dependent launches are caused by this kernel finishing.
    if (prof)
        prof->record(profnode::kernel(ks.desc.id), WaitClass::depWait,
                     ks.startAt, ks.finishAt);
    CausalProfiler::ScopedCause sc(prof, profnode::kernel(ks.desc.id),
                                   ks.finishAt);

    for (KernelId d : ks.dependents) {
        KernelState &dep = *kernels.at(static_cast<std::size_t>(d));
        if (--dep.remainingDeps == 0)
            tryLaunch(dep);
    }
}

void
System::reportDeadlock() const
{
    std::fprintf(stderr, "=== system stalled at %llu cycles ===\n",
                 static_cast<unsigned long long>(now()));
    for (const auto &ks : kernels) {
        if (ks->finished)
            continue;
        std::fprintf(stderr,
                     "  kernel %d (%s): launched=%d remainingTbs=%d "
                     "deps=%d tbsDone=%d trackerDone=%d\n",
                     ks->desc.id, ks->desc.name.c_str(),
                     ks->launched ? 1 : 0, ks->remainingTbs,
                     ks->remainingDeps, ks->tbsDone ? 1 : 0,
                     ks->trackerDone ? 1 : 0);
        if (ks->desc.producesTracker != invalidId) {
            const TileTracker &t =
                *trackers[static_cast<std::size_t>(
                    ks->desc.producesTracker)];
            std::fprintf(stderr, "    tracker %s progress %.3f\n",
                         t.name().c_str(), t.progress());
            for (GpuId g = 0; g < t.numGpus(); ++g)
                for (int tile = 0; tile < t.numTiles(); ++tile)
                    if (!t.ready(g, tile))
                        std::fprintf(stderr,
                                     "      not ready: gpu %d tile "
                                     "%d\n",
                                     g, tile);
        }
        // Print live TBs in key order, not hash order, so deadlock
        // reports are reproducible run to run.
        std::vector<std::uint64_t> liveKeys;
        liveKeys.reserve(ks->live.size());
        // cais-lint: allow(D1) -- keys are sorted before any output
        for (const auto &[key, run] : ks->live)
            liveKeys.push_back(key);
        std::sort(liveKeys.begin(), liveKeys.end());
        for (std::uint64_t key : liveKeys) {
            const auto &run = ks->live.at(key);
            std::fprintf(stderr, "    live TB: gpu %d idx %d [%s]\n",
                         static_cast<int>(key >> 32),
                         static_cast<int>(key & 0xffffffffu),
                         run ? run->stateStr().c_str() : "null");
        }
    }
    for (SwitchId s = 0; s < numSwitches(); ++s) {
        const auto &c = *complexes[static_cast<std::size_t>(s)];
        std::fprintf(stderr,
                     "  switch %d: nvls pending=%zu merge live=%zu "
                     "probes=%zu sync pending=%zu fwd=%llu "
                     "consumed=%llu gen=%llu\n",
                     s, c.nvls().pendingSessions(),
                     c.merge().liveSessions(),
                     c.merge().pendingProbes(),
                     c.sync().pendingGroups(),
                     static_cast<unsigned long long>(
                         fab->switchChip(s).packetsForwarded()),
                     static_cast<unsigned long long>(
                         fab->switchChip(s).packetsConsumed()),
                     static_cast<unsigned long long>(
                         fab->switchChip(s).packetsGenerated()));
    }
    for (GpuId g = 0; g < numGpus(); ++g) {
        const GpuCore &gc = *gpus[static_cast<std::size_t>(g)];
        std::fprintf(stderr,
                     "  gpu %d: sched pending=%zu hub jobs=%zu "
                     "inflight=%d sync pending=%zu\n",
                     g,
                     const_cast<GpuCore &>(gc).scheduler()
                         .pendingCount(),
                     const_cast<GpuCore &>(gc).hub().queuedJobs(),
                     const_cast<GpuCore &>(gc).hub().inflight(),
                     const_cast<GpuCore &>(gc).synchronizer()
                         .pendingCount());
    }
    panic("simulation deadlocked or event budget exhausted");
}

Cycle
System::kernelStartTime(KernelId k) const
{
    return kernels.at(static_cast<std::size_t>(k))->startAt;
}

Cycle
System::kernelFinishTime(KernelId k) const
{
    return kernels.at(static_cast<std::size_t>(k))->finishAt;
}

Cycle
System::kernelLastDispatch(KernelId k) const
{
    return kernels.at(static_cast<std::size_t>(k))->lastDispatchAt;
}

Cycle
System::kernelLastReady(KernelId k) const
{
    return kernels.at(static_cast<std::size_t>(k))->lastReadyAt;
}

std::pair<Cycle, Cycle>
System::kernelGpuSpan(KernelId k, GpuId g) const
{
    const KernelState &ks = *kernels.at(static_cast<std::size_t>(k));
    Cycle first = ks.gpuFirstDispatch[static_cast<std::size_t>(g)];
    Cycle last = ks.gpuLastFinish[static_cast<std::size_t>(g)];
    if (first == 0 || last < first)
        return {0, 0};
    return {first, last};
}

void
System::registerMetrics(MetricRegistry &reg) const
{
    reg.addGaugeU64("eventq.executed", [this] {
        return shq ? shq->executed() : queue.executed();
    });
    const FabricParams &fp = cfg.fabric;
    for (std::size_t s = 0; s < complexes.size(); ++s) {
        // Tier-prefixed switch paths on multi-tier fabrics; flat
        // shapes keep the historical switch<S> names so report diffs
        // against older runs line up.
        SwitchId si = static_cast<SwitchId>(s);
        std::string prefix;
        if (!fp.multiTier())
            prefix = "switch" + std::to_string(s);
        else if (fp.isSpineSwitch(si))
            prefix = "spine.sw" + std::to_string(si - fp.numLeaves());
        else
            prefix = "leaf" + std::to_string(si / fp.railsPerGroup) +
                     ".sw" + std::to_string(si % fp.railsPerGroup);
        complexes[s]->registerMetrics(reg, prefix);
        fab->switchChip(si).registerMetrics(reg, prefix + ".chip");
    }
    for (std::size_t g = 0; g < gpus.size(); ++g)
        gpus[g]->registerMetrics(reg, "gpu" + std::to_string(g));
    fab->registerMetrics(reg, "link");
    // Fig. 16 utilization-over-time series, computed over the run
    // window at snapshot time so it appears in run reports (and
    // therefore in cais_report summaries and diffs).
    reg.addTimeSeriesFn("fabric.utilSeries", cfg.fabric.utilBinWidth,
                        [this] {
        return fab->utilizationSeries(0, finishedAt ? finishedAt : 1);
    });
}

void
System::setTraceHooks(SwitchTraceHooks *h)
{
    for (auto &c : complexes)
        c->setTraceHooks(h);
}

double
System::mergeStaggerMean() const
{
    double weighted = 0.0;
    std::uint64_t n = 0;
    for (const auto &c : complexes) {
        const Histogram &h = c->merge().staggerHist();
        weighted += h.mean() * static_cast<double>(h.count());
        n += h.count();
    }
    return n ? weighted / static_cast<double>(n) : 0.0;
}

std::uint64_t
System::peakMergeTableBytes() const
{
    std::uint64_t peak = 0;
    for (const auto &c : complexes)
        peak = std::max(peak, c->merge().peakTableBytes());
    return peak;
}

void
System::setPeriodicObserver(Cycle period, std::function<void(Cycle)> fn)
{
    if (shq)
        shq->setPeriodicObserver(period, std::move(fn));
    else
        queue.setPeriodicObserver(period, std::move(fn));
}

double
System::gpuUtilization() const
{
    Cycle t = now();
    if (t == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &g : gpus)
        sum += const_cast<GpuCore &>(*g).sms().utilization(t);
    return sum / static_cast<double>(gpus.size());
}

void
System::onDataArrival(GpuId gpu_, Addr addr, std::uint32_t bytes,
                      int contribs)
{
    addrMap.dispatch(gpu_, addr, bytes, contribs);
}

} // namespace cais
