/**
 * @file
 * Operator-graph lowering: turns an OpGraph into kernels on a System
 * under a configurable execution paradigm. One engine implements all
 * of the paper's execution strategies; the strategy_*.cc translation
 * units define the named option presets (Sec. IV-C's nine baselines
 * plus the CAIS variants).
 *
 * Collective realizations:
 *  - nvls            : NVLS collective kernels (multimem), global
 *                      barriers between compute and comm phases.
 *  - nvlsPipelined   : NVLS collective kernels chunk-pipelined with
 *                      producer/consumer GEMMs on an SM partition
 *                      (CoCoNet-NVLS / FuseLib-NVLS).
 *  - software        : direct P2P collective kernels (two-phase
 *                      RS+AG, ring-equivalent volume), barriers.
 *  - softwarePipelined: ditto, chunk-pipelined on an SM partition
 *                      (CoCoNet / FuseLib).
 *  - t3              : reduction fused into the producer GEMM as
 *                      per-tile DMA writes (track & trigger); coarse
 *                      barriers between RS / LN / AG stages; AG
 *                      overlapped with the consumer GEMM.
 *  - cais            : communication dissolved into compute kernels
 *                      via compiler-lowered ld.cais / red.cais.
 *  - ladm            : consumer-side plain remote reads (no NVLS,
 *                      no merging), locality-aware placement.
 */

#ifndef CAIS_RUNTIME_EXECUTION_STRATEGY_HH
#define CAIS_RUNTIME_EXECUTION_STRATEGY_HH

#include <string>
#include <vector>

#include "dataflow/fusion_planner.hh"
#include "runtime/system.hh"
#include "workload/gemm_model.hh"

namespace cais
{

/** How collective communication is realized. */
enum class CollectiveImpl : std::uint8_t
{
    nvls,
    nvlsPipelined,
    software,
    softwarePipelined,
    t3,
    cais,
    ladm,
};

/** Full lowering configuration. */
struct LoweringOptions
{
    CollectiveImpl collectives = CollectiveImpl::nvls;

    /** Re-associate RS..AG into AllReduce (basic-TP strategies). */
    bool reassociateToAllReduce = false;

    /** CAIS merging-aware TB coordination (Sec. III-B). */
    bool caisCoordination = false;

    /** CAIS graph-level dataflow optimizer (Sec. III-C). */
    bool graphOptimizer = false;

    /** Asymmetric kernel overlapping within the graph optimizer
     *  (disable for the deep-fusion-only ablation). */
    bool asymmetricOverlap = true;

    /** Comm kernels chunk-pipeline with adjacent GEMMs (overlap
     *  baselines). */
    bool pipelinedCollectives = false;

    /** SM partition comm kernels run on (SM stealing). */
    double commSmFrom = 0.0;
    double commSmTo = 1.0;

    /** Per-comm-TB launch cost (CoCoNet's per-chunk kernels). */
    Cycle perCommTbOverhead = 0;

    /** Extra per-kernel launch cost of a decomposed (multi-launch)
     *  collective pipeline (CoCoNet); fused kernels pay none. */
    Cycle commKernelExtraLaunch = 0;

    /** T3-NVLS: route DMA reductions through the switch reducer. */
    bool t3NvlsReduction = false;

    /** T3-NVLS: realize AllGather with NVLS multicast. */
    bool t3NvlsAllGather = false;

    /** Row-blocks handled by one collective TB. */
    int commTbRowBlocks = 2;
};

/** A named strategy preset. */
struct StrategySpec
{
    std::string name;
    LoweringOptions opts;

    /** Collapse data VCs (CAIS-Partial's missing traffic control). */
    bool unifiedDataVc = false;
};

/** Preset factories (defined in strategy_*.cc). */
StrategySpec makeTpNvls();
StrategySpec makeSpNvls();
StrategySpec makeCoconet(bool with_nvls);
StrategySpec makeFuselib(bool with_nvls);
StrategySpec makeT3(bool with_nvls);
StrategySpec makeLadm();
StrategySpec makeCais();        ///< full CAIS
StrategySpec makeCaisBase();    ///< no coordination, no graph opt
StrategySpec makeCaisPartial(); ///< no traffic control
StrategySpec makeCaisNoCoord(); ///< graph opt without coordination

/** Every strategy of Figs. 11/12, in paper order. */
std::vector<StrategySpec> allStrategies();

/** Lookup by name; fatal() on unknown names. */
StrategySpec strategyByName(const std::string &name);

/** The lowering engine. */
class GraphLowering
{
  public:
    GraphLowering(System &sys, const OpGraph &graph,
                  const LoweringOptions &opts);

    /** Emit all kernels for the graph. */
    void lower();

    /** Kernel that finalizes op's output (for external probes). */
    KernelId opKernel(OpId id) const
    {
        return lastKernel[static_cast<std::size_t>(id)];
    }

    /** Output tensor of an op (nullptr if folded away). */
    const TensorInfo *opTensor(OpId id) const
    {
        return outT[static_cast<std::size_t>(id)];
    }

  private:
    // Per-kind lowering.
    void lowerLayerNorm(OpId id);
    void lowerElementwise(OpId id);
    void lowerAttention(OpId id);
    void lowerGemmCol(OpId id);
    void lowerGemmRow(OpId id);
    void lowerReduceScatter(OpId id);
    void lowerAllGather(OpId id);
    void lowerAllReduceAt(OpId rs_id);

    // Collective kernel emitters.
    void emitNvlsReduceScatter(OpId rs, TensorInfo &partial);
    void emitNvlsAllGather(OpId ag, TensorInfo &in);
    void emitNvlsAllReduce(OpId rs, TensorInfo &partial);
    void emitSoftwareReduceScatter(OpId rs, TensorInfo &partial);
    void emitSoftwareAllGather(OpId ag, TensorInfo &in);
    void emitLadmAllReduce(OpId rs, TensorInfo &partial);

    // Consumer-side staging (CAIS / LADM pull of gathered rows).
    TensorInfo &emitPullStage(OpId ag, TensorInfo &src,
                              RemoteOpKind kind, double sm_from,
                              double sm_to);

    // Helpers.
    const OpNode &node(OpId id) const { return graph.node(id); }
    OpId realInput(OpId id, int idx = 0) const;
    std::vector<KernelId> barrierDeps(OpId id) const;
    TensorInfo &defineOutput(OpId id, TensorLayout layout,
                             std::int64_t cols, int need_factor);
    KernelDesc newKernel(const std::string &name);
    void finishKernel(OpId id, KernelDesc &&k);
    bool consumerIsReduction(OpId id) const;
    int tilesOf(const TensorInfo &t) const { return t.numTiles; }

    /** Fraction-of-SM range for op under the fusion plan. */
    void smRange(OpId id, double &from, double &to) const;
    bool tileDeps(OpId id) const;

    System &sys;
    const OpGraph &graph;
    LoweringOptions opts;
    FusionPlan fusion;
    GemmTiling tiling;
    int G;
    int tileRows;

    std::vector<TensorInfo *> outT;
    std::vector<KernelId> lastKernel;
};

} // namespace cais

#endif // CAIS_RUNTIME_EXECUTION_STRATEGY_HH
