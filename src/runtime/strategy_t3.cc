/**
 * @file
 * Baselines 5 and 8: T3 [43] and T3-NVLS. T3's transparent tracking &
 * triggering fuses the ReduceScatter into the producer GEMM: each
 * output tile triggers a DMA of the partial to the tile's home GPU,
 * where it is reduced near memory. We extend T3 to overlap AllGather
 * with the consumer GEMM (per Sec. IV-C), but the RS -> LN -> AG
 * stages keep coarse-grained barriers. T3-NVLS adopts the DMA-based
 * NVLS design of [24]: partials reduce in the switch on their way to
 * the home GPU, and the AllGather uses NVLS multicast.
 */

#include "runtime/execution_strategy.hh"

namespace cais
{

StrategySpec
makeT3(bool with_nvls)
{
    StrategySpec s;
    s.name = with_nvls ? "T3-NVLS" : "T3";
    s.opts.collectives = CollectiveImpl::t3;
    s.opts.t3NvlsReduction = with_nvls;
    s.opts.t3NvlsAllGather = with_nvls;
    return s;
}

} // namespace cais
