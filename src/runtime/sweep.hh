/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Every headline experiment is a sweep of independent runGraph()
 * simulations (strategies x models x table sizes x GPU counts). Each
 * System is fully self-contained — it owns its event queue, fabric,
 * packet-id allocator, stats and RNGs — so sweep jobs are
 * embarrassingly parallel. SweepRunner executes a vector of jobs on a
 * std::thread pool and guarantees:
 *
 *  - results are returned in submission order, independent of the
 *    worker count or scheduling;
 *  - every RunResult is bit-identical between CAIS_JOBS=1 and
 *    CAIS_JOBS=N (no simulation observes cross-System state);
 *  - the first exception (in submission order) is rethrown after the
 *    pool drains; later jobs are not started once a job has failed.
 *
 * The worker count comes from the CAIS_JOBS environment variable,
 * falling back to std::thread::hardware_concurrency().
 */

#ifndef CAIS_RUNTIME_SWEEP_HH
#define CAIS_RUNTIME_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/simulation_driver.hh"

namespace cais
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    StrategySpec spec;

    /** Graph builder, invoked on the worker thread that runs the
     *  job (keeps per-job graph construction off the hot path of
     *  submission and out of shared state). */
    std::function<OpGraph()> graph;

    RunConfig cfg;
    std::string workload;
};

/** Job over an already-built graph (copied; jobs stay independent). */
SweepJob makeSweepJob(StrategySpec spec, OpGraph graph, RunConfig cfg,
                      std::string workload);

/** Fixed-size worker pool executing sweep jobs. */
class SweepRunner
{
  public:
    /** @p threads <= 0 resolves defaultThreads(). */
    explicit SweepRunner(int threads = 0);

    /**
     * Run all jobs to completion. Results are indexed exactly like
     * @p jobs. If any job throws, the exception of the
     * earliest-submitted failing job is rethrown once all in-flight
     * jobs have drained (jobs not yet started are skipped).
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    int threads() const { return nThreads; }

    /** CAIS_JOBS if set (>0), else hardware_concurrency(), min 1. */
    static int defaultThreads();

    /**
     * Worker count after capping the jobs x shards thread product at
     * the machine: with sharded jobs (DESIGN.md §6f) each sweep
     * worker spins up @p shards event threads of its own, so @p want
     * workers would oversubscribe @p hw hardware threads whenever
     * want * shards > hw. Returns max(1, min(want, hw / shards)).
     * Pure so tests can pin every input.
     */
    static int cappedThreads(int want, int shards, unsigned hw);

  private:
    int nThreads;
};

/** One-shot sweep on a default-sized (CAIS_JOBS) runner. */
std::vector<RunResult> runSweep(const std::vector<SweepJob> &jobs);

} // namespace cais

#endif // CAIS_RUNTIME_SWEEP_HH
