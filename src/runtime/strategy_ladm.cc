/**
 * @file
 * Baseline 9: LADM [22], the SOTA locality-aware TB scheduling
 * method. LADM places thread blocks to minimize remote-access volume
 * within a multi-chip GPU, but is communication-centric: it cannot
 * use NVLS, so every consumer GPU pulls every peer's partials with
 * plain remote reads (deduplicated within a GPU by the locality-aware
 * placement, but still (G-1) x tensor volume per GPU), with global
 * barriers between operators.
 */

#include "runtime/execution_strategy.hh"

namespace cais
{

StrategySpec
makeLadm()
{
    StrategySpec s;
    s.name = "LADM";
    s.opts.collectives = CollectiveImpl::ladm;
    s.opts.reassociateToAllReduce = true;
    return s;
}

} // namespace cais
