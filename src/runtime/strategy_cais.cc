/**
 * @file
 * CAIS and its ablation variants (Sec. V):
 *
 *  - CAIS       : full system — compute-aware ISA + merge unit,
 *                 merging-aware TB coordination, graph-level dataflow
 *                 optimizer with asymmetric overlap and traffic
 *                 control.
 *  - CAIS-Base  : ISA/merge unit only; no coordination, no graph
 *                 optimizer (kernel-level barriers between ops).
 *  - CAIS-Partial: adds the graph optimizer but disables traffic
 *                 control (data classes share one VC).
 *  - CAIS-w/o-Coord: graph optimizer without TB coordination (the
 *                 Fig. 13/14 ablation).
 *
 * Also hosts the strategy registry used by benches and examples.
 */

#include "runtime/execution_strategy.hh"

#include "common/log.hh"

namespace cais
{

StrategySpec
makeCais()
{
    StrategySpec s;
    s.name = "CAIS";
    s.opts.collectives = CollectiveImpl::cais;
    s.opts.caisCoordination = true;
    s.opts.graphOptimizer = true;
    return s;
}

StrategySpec
makeCaisBase()
{
    StrategySpec s;
    s.name = "CAIS-Base";
    s.opts.collectives = CollectiveImpl::cais;
    s.opts.caisCoordination = false;
    s.opts.graphOptimizer = false;
    return s;
}

StrategySpec
makeCaisPartial()
{
    StrategySpec s;
    s.name = "CAIS-Partial";
    s.opts.collectives = CollectiveImpl::cais;
    s.opts.caisCoordination = true;
    s.opts.graphOptimizer = true;
    s.unifiedDataVc = true;
    return s;
}

StrategySpec
makeCaisNoCoord()
{
    StrategySpec s;
    s.name = "CAIS-w/o-Coord";
    s.opts.collectives = CollectiveImpl::cais;
    s.opts.caisCoordination = false;
    s.opts.graphOptimizer = true;
    return s;
}

std::vector<StrategySpec>
allStrategies()
{
    return {
        makeTpNvls(),        makeSpNvls(),       makeCoconet(false),
        makeFuselib(false),  makeT3(false),      makeCoconet(true),
        makeFuselib(true),   makeT3(true),       makeLadm(),
        makeCaisBase(),      makeCais(),
    };
}

StrategySpec
strategyByName(const std::string &name)
{
    std::vector<StrategySpec> extra = {makeCaisPartial(),
                                       makeCaisNoCoord()};
    for (const auto &s : allStrategies())
        if (s.name == name)
            return s;
    for (const auto &s : extra)
        if (s.name == name)
            return s;
    fatal("unknown strategy '%s'", name.c_str());
}

} // namespace cais
