#include "runtime/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

namespace cais
{

SweepJob
makeSweepJob(StrategySpec spec, OpGraph graph, RunConfig cfg,
             std::string workload)
{
    SweepJob j;
    j.spec = std::move(spec);
    j.graph = [g = std::move(graph)]() { return g; };
    j.cfg = std::move(cfg);
    j.workload = std::move(workload);
    return j;
}

int
SweepRunner::defaultThreads()
{
    if (const char *env = std::getenv("CAIS_JOBS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int threads)
    : nThreads(threads > 0 ? threads : defaultThreads())
{
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};

    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_acquire))
                return;
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const SweepJob &j = jobs[i];
            try {
                results[i] =
                    runGraph(j.spec, j.graph(), j.cfg, j.workload);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        }
    };

    std::size_t want = jobs.size() < static_cast<std::size_t>(nThreads)
                           ? jobs.size()
                           : static_cast<std::size_t>(nThreads);
    if (want <= 1) {
        // Serial reference path: no pool, same results bit-for-bit.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(want);
        for (std::size_t t = 0; t < want; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs)
{
    SweepRunner runner;
    return runner.run(jobs);
}

} // namespace cais
