#include "runtime/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

namespace cais
{

SweepJob
makeSweepJob(StrategySpec spec, OpGraph graph, RunConfig cfg,
             std::string workload)
{
    SweepJob j;
    j.spec = std::move(spec);
    j.graph = [g = std::move(graph)]() { return g; };
    j.cfg = std::move(cfg);
    j.workload = std::move(workload);
    return j;
}

int
SweepRunner::defaultThreads()
{
    if (const char *env = std::getenv("CAIS_JOBS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int threads)
    : nThreads(threads > 0 ? threads : defaultThreads())
{
}

int
SweepRunner::cappedThreads(int want, int shards, unsigned hw)
{
    if (want < 1)
        want = 1;
    if (shards < 1)
        shards = 1;
    if (hw == 0 || shards == 1)
        return want; // unknown machine or sequential jobs: trust want
    int cap = static_cast<int>(hw) / shards;
    if (cap < 1)
        cap = 1;
    return want < cap ? want : cap;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};

    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_acquire))
                return;
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const SweepJob &j = jobs[i];
            try {
                results[i] =
                    runGraph(j.spec, j.graph(), j.cfg, j.workload);
            } catch (...) {
                errors[i] = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        }
    };

    std::size_t want = jobs.size() < static_cast<std::size_t>(nThreads)
                           ? jobs.size()
                           : static_cast<std::size_t>(nThreads);

    // Sharded jobs multiply the thread count: cap workers so jobs x
    // shards stays within the machine (results are unaffected —
    // worker count never changes a RunResult).
    int max_shards = 1;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        max_shards = std::max(max_shards, jobs[i].cfg.effectiveShards());
    if (max_shards > 1) {
        int capped = cappedThreads(
            static_cast<int>(want), max_shards,
            std::thread::hardware_concurrency());
        if (capped < static_cast<int>(want)) {
            warn("sweep: capping workers %zu -> %d (jobs run with "
                 "up to %d event shards each; machine has %u "
                 "hardware threads)",
                 want, capped, max_shards,
                 std::thread::hardware_concurrency());
            want = static_cast<std::size_t>(capped);
        }
    }

    if (want <= 1) {
        // Serial reference path: no pool, same results bit-for-bit.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(want);
        for (std::size_t t = 0; t < want; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs)
{
    SweepRunner runner;
    return runner.run(jobs);
}

} // namespace cais
