/**
 * @file
 * The assembled multi-GPU system and its kernel execution engine.
 *
 * A System owns the event queue, the NVLink/NVSwitch fabric with its
 * in-switch compute complexes, the GPU models, the tile trackers and
 * the global address map. Execution strategies register tensors and
 * kernels; run() then drives everything to completion:
 *
 *  - a kernel launches once all kernels in kernelDeps have finished
 *    (finished = all TBs retired AND its output tracker complete);
 *  - a TB becomes dispatchable once its tile dependencies are ready,
 *    enabling the fine-grained cross-kernel overlap of Sec. III-C;
 *  - uncoordinated kernels receive a per-GPU start skew, modelling
 *    the execution drift that CAIS's TB coordination removes.
 */

#ifndef CAIS_RUNTIME_SYSTEM_HH
#define CAIS_RUNTIME_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/sharded_event_queue.hh"
#include "dataflow/tile_dependency.hh"
#include "gpu/gpu_core.hh"
#include "switchcompute/switch_compute.hh"

namespace cais
{

class CausalProfiler;

/** Tensor placement across the fabric. */
enum class TensorLayout : std::uint8_t
{
    rowShardedHome, ///< row-block t lives only at its owner GPU
    replicated,     ///< one shared (multimem-style) range, copy per GPU
    perGpuPrivate,  ///< independent per-GPU instance (e.g. partials)
};

/** A registered tensor: tracker + address ranges + tiling. */
struct TensorInfo
{
    std::string name;
    TensorLayout layout = TensorLayout::perGpuPrivate;
    int tracker = invalidId;

    int numTiles = 0;            ///< row-blocks
    std::uint64_t bytesPerTile = 0;
    std::uint64_t totalBytes = 0;

    /** rowShardedHome: first tile of each GPU's shard (size G+1),
     *  balanced so shard sizes differ by at most one tile. */
    std::vector<int> shardStart;

    Addr sharedBase = 0;              ///< replicated layout
    std::vector<Addr> perGpuBase;     ///< private / sharded layouts

    /** Home GPU of tile @p t (rowShardedHome: contiguous shards). */
    GpuId tileOwner(int t) const;

    /** Address of tile @p t (its unique or shared instance). */
    Addr tileAddr(int t) const;

    /** Address of tile @p t in GPU @p g's private instance. */
    Addr tileAddrAt(GpuId g, int t) const;
};

/** System assembly parameters. */
struct SystemConfig
{
    FabricParams fabric;
    GpuParams gpu;
    InSwitchParams inswitch;

    /** Seed of the request-skew RNG (System::skewRng). Kept separate
     *  from GpuParams::seed so the two streams never correlate; the
     *  default reproduces the historical hard-coded stream. */
    std::uint64_t skewSeed = 0xabcdef12345ull;

    /** Event-budget safety valve for run(). */
    std::uint64_t maxEvents = 400ull * 1000 * 1000;

    /**
     * Event-core shards (DESIGN.md §6f). 1 (the default) runs the
     * historical sequential scheduler; >= 2 splits the fabric's
     * switch domains over worker threads under conservative-PDES
     * windows, bit-identical to sequential. Values above the shape's
     * domain count are clamped — extra shards would idle.
     */
    int shards = 1;
};

/** The full machine plus execution engine. */
class System : public DataArrivalHandler
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    EventQueue &eq() { return queue; }
    Fabric &fabric() { return *fab; }
    const Fabric &fabric() const { return *fab; }
    int numGpus() const { return cfg.fabric.numGpus; }
    GpuCore &gpu(GpuId g) { return *gpus[static_cast<std::size_t>(g)]; }
    const GpuCore &gpu(GpuId g) const
    {
        return *gpus[static_cast<std::size_t>(g)];
    }
    SwitchComputeComplex &switchCompute(SwitchId s)
    {
        return *complexes[static_cast<std::size_t>(s)];
    }
    const SwitchComputeComplex &switchCompute(SwitchId s) const
    {
        return *complexes[static_cast<std::size_t>(s)];
    }
    int numSwitches() const { return cfg.fabric.numSwitches; }
    const SystemConfig &config() const { return cfg; }

    // --- Tensor / tracker management -------------------------------

    /**
     * Register a tensor of @p rows x @p cols elements, tiled in
     * row-blocks of @p tile_rows rows. The tracker requires
     * @p need_factor x tile bytes per (gpu, tile) for readiness
     * (e.g. numGpus for reduction outputs).
     */
    TensorInfo &defineTensor(std::string name, TensorLayout layout,
                             std::int64_t rows, std::int64_t cols,
                             int elem_bytes, int tile_rows,
                             int need_factor);

    TileTracker &tracker(int idx)
    {
        return *trackers[static_cast<std::size_t>(idx)];
    }
    std::size_t numTrackers() const { return trackers.size(); }

    Addr allocLocal(GpuId g, std::uint64_t bytes);
    Addr allocShared(std::uint64_t bytes);

    /** Allocate @p n globally unique TB group ids. */
    GroupId allocGroups(int n);

    // --- Kernel registration / execution ---------------------------

    /** Register a kernel; returns its id (also written into desc). */
    KernelId addKernel(KernelDesc desc);

    KernelDesc &kernel(KernelId k);
    const KernelDesc &kernel(KernelId k) const;

    std::size_t numKernels() const { return kernels.size(); }

    /** Run every registered kernel to completion. */
    void run();

    Cycle now() const { return shq ? shq->now() : queue.now(); }

    /** Shards actually running after clamping (1 = sequential). */
    int activeShards() const { return shq ? shq->numShards() : 1; }

    /**
     * Sampling hook for instrumented runs, routed to whichever core
     * is driving events (the sharded core fires observers at window
     * barriers, where all shards have quiesced — identical sample
     * points and state to the sequential scheduler's lazy catch-up).
     */
    void setPeriodicObserver(Cycle period, std::function<void(Cycle)> fn);
    Cycle makespan() const { return finishedAt; }
    Cycle kernelStartTime(KernelId k) const;
    Cycle kernelFinishTime(KernelId k) const;

    /** Last TB dispatch / readiness time (pipeline diagnostics). */
    Cycle kernelLastDispatch(KernelId k) const;
    Cycle kernelLastReady(KernelId k) const;

    /** Per-GPU execution span of a kernel (first TB dispatch to last
     *  TB retirement); {0, 0} if the GPU ran none of its TBs. */
    std::pair<Cycle, Cycle> kernelGpuSpan(KernelId k, GpuId g) const;

    // --- Metrics ----------------------------------------------------

    /**
     * Register the whole machine in @p reg (DESIGN.md §6d):
     * eventq.executed, switch<S>.{nvls,merge,sync,chip}.*,
     * gpu<G>.{hub,hbm,sched,sync}.* and link.{up,dn}.*. Registration
     * is read-only; call once per System per registry.
     */
    void registerMetrics(MetricRegistry &reg) const;

    /** Attach @p h to every switch's merge and sync engines. */
    void setTraceHooks(SwitchTraceHooks *h);

    /**
     * Attach the causal wait-for profiler (DESIGN.md §6g) to every
     * layer: fabric links and switches, GPU hubs/HBM/TB contexts,
     * tile trackers (existing and future), and — under the sharded
     * core — one private edge log per shard. Call before run();
     * nullptr is a no-op (profiling stays off).
     */
    void setProfiler(CausalProfiler *pr);

    CausalProfiler *profiler() { return prof; }

    /** Aggregate merge-unit stagger mean over all switches, cycles. */
    double mergeStaggerMean() const;

    /** Peak per-port merge table bytes over all switches. */
    std::uint64_t peakMergeTableBytes() const;

    /** Mean SM-slot occupancy across GPUs over the run. */
    double gpuUtilization() const;

    // DataArrivalHandler
    void onDataArrival(GpuId gpu, Addr addr, std::uint32_t bytes,
                       int contribs) override;

    AddressMap &addressMap() { return addrMap; }

  private:
    struct KernelState;
    struct TbWait;

    void tryLaunch(KernelState &ks);
    void launchOnGpu(KernelState &ks, GpuId g);
    void enqueueTb(KernelState &ks, GpuId g, int tb_idx);
    void dispatchTb(KernelState &ks, GpuId g, int tb_idx, int slot,
                    Cycle ready_at);
    void onTbProduced(KernelState &ks, TbRun &tb);
    void onTbFinished(KernelState &ks, GpuId g, int tb_idx, int slot,
                      TbRun *run);
    void onKernelTbsDone(KernelState &ks);
    void maybeFinishKernel(KernelState &ks);
    void reportDeadlock() const;

    SystemConfig cfg;
    EventQueue queue;
    // Declared after queue and before fab: destruction joins the
    // workers while the shard queues (and nothing referencing them)
    // are still alive.
    std::unique_ptr<ShardedEventQueue> shq;
    std::unique_ptr<Fabric> fab;
    std::vector<std::unique_ptr<SwitchComputeComplex>> complexes;
    std::vector<std::unique_ptr<GpuCore>> gpus;

    std::vector<std::unique_ptr<TileTracker>> trackers;
    std::vector<std::unique_ptr<TensorInfo>> tensors;
    AddressMap addrMap;

    std::vector<Addr> localBump;
    Addr sharedBump = 0;
    GroupId nextGroup = 0;

    std::vector<std::unique_ptr<KernelState>> kernels;
    int unfinishedKernels = 0;
    Cycle finishedAt = 0;
    Rng skewRng;
    CausalProfiler *prof = nullptr;
};

} // namespace cais

#endif // CAIS_RUNTIME_SYSTEM_HH
