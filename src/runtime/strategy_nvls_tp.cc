/**
 * @file
 * Baselines 1-2 (Sec. IV-C): Basic Tensor Parallelism with NVLS
 * (TP-NVLS, Megatron-style AllReduce) and TP with Sequence
 * Parallelism (SP-NVLS, ReduceScatter + AllGather). Both offload
 * collectives to the NVLS switch engines but keep the global barrier
 * between computation and communication phases — the
 * communication-centric design CAIS removes.
 */

#include "runtime/execution_strategy.hh"

namespace cais
{

StrategySpec
makeTpNvls()
{
    StrategySpec s;
    s.name = "TP-NVLS";
    s.opts.collectives = CollectiveImpl::nvls;
    s.opts.reassociateToAllReduce = true;
    return s;
}

StrategySpec
makeSpNvls()
{
    StrategySpec s;
    s.name = "SP-NVLS";
    s.opts.collectives = CollectiveImpl::nvls;
    s.opts.reassociateToAllReduce = false;
    return s;
}

} // namespace cais
