#include "runtime/execution_strategy.hh"

#include <algorithm>

#include "common/log.hh"
#include "compiler/cais_lowering.hh"

namespace cais
{

GraphLowering::GraphLowering(System &sys_, const OpGraph &graph_,
                             const LoweringOptions &opts_)
    : sys(sys_), graph(graph_), opts(opts_), G(sys_.numGpus()),
      tileRows(tiling.tileM)
{
    FusionOptions fo;
    fo.enableTileDeps = opts.graphOptimizer;
    fo.enableAsymmetricOverlap =
        opts.graphOptimizer && opts.asymmetricOverlap;
    fusion = FusionPlanner().plan(graph, fo);

    outT.assign(graph.size(), nullptr);
    lastKernel.assign(graph.size(), invalidId);
}

void
GraphLowering::lower()
{
    for (OpId id : graph.topoOrder()) {
        switch (node(id).kind) {
          case OpKind::layerNorm:
          case OpKind::elementwise:
            lowerElementwise(id);
            break;
          case OpKind::attentionCore:
            lowerAttention(id);
            break;
          case OpKind::gemmColParallel:
            lowerGemmCol(id);
            break;
          case OpKind::gemmRowParallel:
            lowerGemmRow(id);
            break;
          case OpKind::reduceScatter:
            lowerReduceScatter(id);
            break;
          case OpKind::allGather:
            lowerAllGather(id);
            break;
          default:
            panic("cannot lower op kind %d",
                  static_cast<int>(node(id).kind));
        }
    }
}

// --------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------

OpId
GraphLowering::realInput(OpId id, int idx) const
{
    const auto &ins = node(id).inputs;
    if (idx >= static_cast<int>(ins.size()))
        return invalidId;
    return ins[static_cast<std::size_t>(idx)];
}

std::vector<KernelId>
GraphLowering::barrierDeps(OpId id) const
{
    std::vector<KernelId> deps;
    for (OpId in : node(id).inputs) {
        KernelId k = lastKernel[static_cast<std::size_t>(in)];
        if (k != invalidId &&
            std::find(deps.begin(), deps.end(), k) == deps.end())
            deps.push_back(k);
    }
    return deps;
}

TensorInfo &
GraphLowering::defineOutput(OpId id, TensorLayout layout,
                            std::int64_t cols, int need_factor)
{
    TensorInfo &t = sys.defineTensor(node(id).name, layout,
                                     node(id).rows, cols,
                                     node(id).elemBytes, tileRows,
                                     need_factor);
    outT[static_cast<std::size_t>(id)] = &t;
    return t;
}

KernelDesc
GraphLowering::newKernel(const std::string &name)
{
    KernelDesc k;
    k.name = name;
    k.grids.resize(static_cast<std::size_t>(G));
    k.launchOverhead = sys.config().gpu.kernelLaunchOverhead;
    return k;
}

void
GraphLowering::finishKernel(OpId id, KernelDesc &&k)
{
    lastKernel[static_cast<std::size_t>(id)] = sys.addKernel(
        std::move(k));
}

bool
GraphLowering::consumerIsReduction(OpId id) const
{
    for (OpId c : graph.consumers(id)) {
        OpKind k = node(c).kind;
        if (k == OpKind::reduceScatter || k == OpKind::allReduce)
            return true;
    }
    return false;
}

void
GraphLowering::smRange(OpId id, double &from, double &to) const
{
    from = fusion.of(id).smFrom;
    to = fusion.of(id).smTo;
}

bool
GraphLowering::tileDeps(OpId id) const
{
    (void)id;
    return opts.collectives == CollectiveImpl::cais &&
           opts.graphOptimizer;
}

namespace
{

/**
 * Home-interleaved tile order: consecutive thread blocks target
 * different home GPUs (CTA swizzling), spreading merge-table and
 * link load across switch ports instead of sweeping one shard at a
 * time.
 */
std::vector<int>
interleavedTiles(const TensorInfo &t, int num_gpus)
{
    (void)num_gpus;
    // Plain ascending order: with balanced shards the home GPU
    // rotates every few tiles, and the hub's windowed round-robin
    // interleaves chunks across the in-flight tiles, so ports are
    // spread while tiles still complete progressively.
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(t.numTiles));
    for (int i = 0; i < t.numTiles; ++i)
        order.push_back(i);
    return order;
}

/** Tile dep at the GPU where the producer instance lives. */
TileRef
depAt(const TensorInfo &src, int tile, GpuId consumer_gpu)
{
    TileRef r;
    r.tracker = src.tracker;
    r.tile = tile;
    r.atGpu = src.layout == TensorLayout::rowShardedHome
                  ? src.tileOwner(tile)
                  : consumer_gpu;
    return r;
}

} // namespace

// --------------------------------------------------------------------
// Compute operators
// --------------------------------------------------------------------

void
GraphLowering::lowerElementwise(OpId id)
{
    const OpNode &n = node(id);
    const GpuParams &gp = sys.config().gpu;

    bool replicated_mode =
        n.rowSharded && opts.reassociateToAllReduce;
    bool row_sharded = n.rowSharded && !replicated_mode;
    std::int64_t cols_local = n.colSharded ? n.cols / G : n.cols;

    TensorInfo &out = defineOutput(
        id, row_sharded ? TensorLayout::rowShardedHome
                        : TensorLayout::perGpuPrivate,
        cols_local, 1);

    OpId in = realInput(id);
    const TensorInfo *inT =
        in != invalidId ? outT[static_cast<std::size_t>(in)] : nullptr;

    KernelDesc k = newKernel(n.name);
    if (!tileDeps(id) && in != invalidId)
        k.kernelDeps = barrierDeps(id);
    k.producesTracker = out.tracker;

    Cycle cost = memBoundTbCycles(
        gp, out.bytesPerTile, n.kind == OpKind::layerNorm ? 3.0 : 2.0);

    for (GpuId g = 0; g < G; ++g) {
        for (int t = 0; t < out.numTiles; ++t) {
            if (row_sharded && out.tileOwner(t) != g)
                continue;
            TbDesc tb;
            tb.computeCycles = cost;
            tb.producesTile = t;
            tb.produceBytes = out.bytesPerTile;
            if (inT)
                tb.deps.push_back(depAt(*inT, t, g));
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(id, std::move(k));
}

void
GraphLowering::lowerAttention(OpId id)
{
    const OpNode &n = node(id);
    const GpuParams &gp = sys.config().gpu;
    std::int64_t cols_local = n.cols / G;

    TensorInfo &out =
        defineOutput(id, TensorLayout::perGpuPrivate, cols_local, 1);

    OpId in = realInput(id);
    const TensorInfo *inT =
        in != invalidId ? outT[static_cast<std::size_t>(in)] : nullptr;

    KernelDesc k = newKernel(n.name);
    if (!tileDeps(id))
        k.kernelDeps = barrierDeps(id);
    k.producesTracker = out.tracker;

    Cycle cost = static_cast<Cycle>(
        static_cast<double>(attentionTbCycles(gp, n.inner, cols_local,
                                              tileRows)) *
        n.flopScale);

    for (GpuId g = 0; g < G; ++g) {
        for (int t = 0; t < out.numTiles; ++t) {
            TbDesc tb;
            tb.computeCycles = cost;
            tb.producesTile = t;
            tb.produceBytes = out.bytesPerTile;
            if (inT)
                tb.deps.push_back(depAt(*inT, t, g));
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(id, std::move(k));
}

void
GraphLowering::lowerGemmCol(OpId id)
{
    const OpNode &n = node(id);
    const GpuParams &gp = sys.config().gpu;
    std::int64_t cols_local = n.cols / G;

    TensorInfo &out =
        defineOutput(id, TensorLayout::perGpuPrivate, cols_local, 1);

    OpId in = realInput(id);
    const TensorInfo *inT =
        in != invalidId ? outT[static_cast<std::size_t>(in)] : nullptr;
    if (in != invalidId && !inT)
        panic("gemm %s: input tensor missing", n.name.c_str());

    bool input_is_stage = in != invalidId &&
        node(in).kind == OpKind::allGather &&
        (opts.collectives == CollectiveImpl::cais ||
         opts.collectives == CollectiveImpl::ladm);
    bool input_is_collective =
        in != invalidId && isCommOp(node(in).kind);

    KernelDesc k = newKernel(n.name);
    double from = 0.0, to = 1.0;
    smRange(id, from, to);
    k.smFrom = from;
    k.smTo = to;

    // Edge policy: staged inputs and T3's AG-GEMM overlap use tile
    // deps; everything else barriers unless the graph optimizer is on.
    bool barrier = !tileDeps(id) && !input_is_stage &&
                   !(opts.collectives == CollectiveImpl::t3 &&
                     input_is_collective);
    if (barrier)
        k.kernelDeps = barrierDeps(id);
    k.producesTracker = out.tracker;

    int nt = static_cast<int>(ceilDiv(cols_local, tiling.tileN));
    Cycle cost = static_cast<Cycle>(
        static_cast<double>(gemmTbCycles(gp, tiling, n.inner)) *
        n.flopScale);
    std::uint64_t portion = static_cast<std::uint64_t>(tiling.tileM) *
                            static_cast<std::uint64_t>(tiling.tileN) *
                            static_cast<std::uint64_t>(n.elemBytes);

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            for (int j = 0; j < nt; ++j) {
                TbDesc tb;
                tb.computeCycles = cost;
                tb.producesTile = i;
                tb.produceBytes = portion;
                if (inT)
                    tb.deps.push_back(depAt(*inT, i, g));
                k.grids[static_cast<std::size_t>(g)].push_back(
                    std::move(tb));
            }
        }
    }
    finishKernel(id, std::move(k));
}

void
GraphLowering::lowerGemmRow(OpId id)
{
    const OpNode &n = node(id);
    const GpuParams &gp = sys.config().gpu;
    std::int64_t k_local = n.inner / G;

    OpId in = realInput(id);
    const TensorInfo *inT =
        in != invalidId ? outT[static_cast<std::size_t>(in)] : nullptr;
    if (in != invalidId && !inT)
        panic("gemm %s: input tensor missing", n.name.c_str());

    bool fused_reduction =
        !opts.reassociateToAllReduce &&
        (opts.collectives == CollectiveImpl::cais ||
         opts.collectives == CollectiveImpl::t3) &&
        consumerIsReduction(id);

    KernelDesc k = newKernel(n.name);
    double from = 0.0, to = 1.0;
    smRange(id, from, to);
    k.smFrom = from;
    k.smTo = to;
    if (!tileDeps(id))
        k.kernelDeps = barrierDeps(id);

    int nt_cols = static_cast<int>(ceilDiv(n.cols, tiling.tileN));
    Cycle cost = static_cast<Cycle>(
        static_cast<double>(gemmTbCycles(gp, tiling, k_local)) *
        n.flopScale);
    std::uint64_t portion = static_cast<std::uint64_t>(tiling.tileM) *
                            static_cast<std::uint64_t>(tiling.tileN) *
                            static_cast<std::uint64_t>(n.elemBytes);

    if (fused_reduction) {
        // The reduction op's output tensor is defined here and the
        // RS op itself folds away (GEMM TBs push red.cais / DMA
        // writes straight into it — track & trigger / CAIS style).
        OpId rs = graph.consumers(id).front();
        TensorInfo &rsOut = sys.defineTensor(
            node(rs).name, TensorLayout::rowShardedHome, n.rows,
            n.cols, n.elemBytes, tileRows, G);
        outT[static_cast<std::size_t>(rs)] = &rsOut;
        outT[static_cast<std::size_t>(id)] = &rsOut;
        k.producesTracker = rsOut.tracker;

        RemoteOpKind push_kind = RemoteOpKind::plainWrite;
        if (opts.collectives == CollectiveImpl::cais ||
            opts.t3NvlsReduction)
            push_kind = RemoteOpKind::caisRed;

        // Compiler pass: static index analysis + TB grouping + CAIS
        // lowering (groups only materialize under coordination).
        TbGroupingPlan plan;
        if (opts.caisCoordination &&
            push_kind == RemoteOpKind::caisRed) {
            IrKernel ir;
            ir.name = n.name;
            ir.gridX = nt_cols;
            ir.gridY = rsOut.numTiles;
            MemInstr red;
            red.op = Opcode::redGlobal;
            red.remote = true;
            red.bytesPerTb = portion;
            red.addr = AddressExpr::term(AddrVar::blockIdxY,
                                         static_cast<std::int64_t>(
                                             rsOut.bytesPerTile)) +
                       AddressExpr::term(AddrVar::blockIdxX,
                                         static_cast<std::int64_t>(
                                             portion));
            ir.accesses.push_back(red);
            auto lowered =
                lowerToCais(ir, sys.allocGroups(ir.numTbs()));
            plan = lowered.plan;
            k.preLaunchSync = true;
            k.preAccessSync = true;
        }

        std::vector<int> order = interleavedTiles(rsOut, G);
        for (GpuId g = 0; g < G; ++g) {
            for (int i : order) {
                for (int j = 0; j < nt_cols; ++j) {
                    TbDesc tb;
                    tb.computeCycles = cost;
                    if (inT)
                        tb.deps.push_back(depAt(*inT, i, g));
                    if (plan.grouped)
                        tb.group = plan.groupOfTb[static_cast<
                            std::size_t>(i * nt_cols + j)];
                    if (rsOut.tileOwner(i) == g) {
                        // The home GPU's partial reduces locally.
                        tb.producesTile = i;
                        tb.produceBytes = portion;
                    } else {
                        RemoteOp op;
                        op.kind = push_kind;
                        op.base = rsOut.tileAddr(i) +
                                  static_cast<std::uint64_t>(j) *
                                      portion;
                        op.bytes = portion;
                        op.expected = G - 1;
                        tb.pushOps.push_back(op);
                    }
                    k.grids[static_cast<std::size_t>(g)].push_back(
                        std::move(tb));
                }
            }
        }
        finishKernel(id, std::move(k));
        // The RS op is folded; record the producing kernel for it.
        lastKernel[static_cast<std::size_t>(rs)] =
            lastKernel[static_cast<std::size_t>(id)];
        return;
    }

    // Partials materialize; a collective kernel reduces them later.
    bool shared_window =
        opts.collectives == CollectiveImpl::nvls ||
        opts.collectives == CollectiveImpl::nvlsPipelined;
    TensorInfo &out = defineOutput(
        id,
        shared_window ? TensorLayout::replicated
                      : TensorLayout::perGpuPrivate,
        n.cols, 1);
    k.producesTracker = out.tracker;

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            for (int j = 0; j < nt_cols; ++j) {
                TbDesc tb;
                tb.computeCycles = cost;
                tb.producesTile = i;
                tb.produceBytes = portion;
                if (inT)
                    tb.deps.push_back(depAt(*inT, i, g));
                k.grids[static_cast<std::size_t>(g)].push_back(
                    std::move(tb));
            }
        }
    }
    finishKernel(id, std::move(k));
}

// --------------------------------------------------------------------
// Communication operators
// --------------------------------------------------------------------

void
GraphLowering::lowerReduceScatter(OpId id)
{
    if (opts.reassociateToAllReduce) {
        lowerAllReduceAt(id);
        return;
    }
    if (outT[static_cast<std::size_t>(id)]) {
        // Folded into the producer GEMM (CAIS / T3).
        return;
    }

    OpId in = realInput(id);
    TensorInfo &partial = *outT[static_cast<std::size_t>(in)];

    if (opts.collectives == CollectiveImpl::nvls ||
        opts.collectives == CollectiveImpl::nvlsPipelined)
        emitNvlsReduceScatter(id, partial);
    else
        emitSoftwareReduceScatter(id, partial);
}

void
GraphLowering::lowerAllGather(OpId id)
{
    OpId in = realInput(id);
    TensorInfo &src = *outT[static_cast<std::size_t>(in)];

    if (opts.reassociateToAllReduce) {
        // The tensor is already replicated after the AllReduce.
        outT[static_cast<std::size_t>(id)] = &src;
        lastKernel[static_cast<std::size_t>(id)] =
            lastKernel[static_cast<std::size_t>(in)];
        return;
    }

    switch (opts.collectives) {
      case CollectiveImpl::cais: {
        // AG folds into a pull stage feeding the consumer GEMM.
        double from = 0.0, to = 1.0;
        auto consumers = graph.consumers(id);
        if (!consumers.empty())
            smRange(consumers.front(), from, to);
        emitPullStage(id, src, RemoteOpKind::caisLoad, from, to);
        return;
      }
      case CollectiveImpl::ladm:
        emitPullStage(id, src, RemoteOpKind::plainLoad, 0.0, 1.0);
        return;
      case CollectiveImpl::nvls:
      case CollectiveImpl::nvlsPipelined:
        emitNvlsAllGather(id, src);
        return;
      case CollectiveImpl::t3:
        if (opts.t3NvlsAllGather)
            emitNvlsAllGather(id, src);
        else
            emitSoftwareAllGather(id, src);
        return;
      default:
        emitSoftwareAllGather(id, src);
        return;
    }
}

void
GraphLowering::lowerAllReduceAt(OpId rs_id)
{
    OpId in = realInput(rs_id);
    TensorInfo &partial = *outT[static_cast<std::size_t>(in)];

    switch (opts.collectives) {
      case CollectiveImpl::nvls:
      case CollectiveImpl::nvlsPipelined:
        emitNvlsAllReduce(rs_id, partial);
        return;
      case CollectiveImpl::ladm:
        emitLadmAllReduce(rs_id, partial);
        return;
      default: {
        // Two-phase direct software AllReduce: RS into a scratch
        // shard, then AG back to every GPU (ring-equivalent volume).
        const OpNode &n = node(rs_id);
        TensorInfo &scratch = sys.defineTensor(
            n.name + ".scratch", TensorLayout::rowShardedHome, n.rows,
            n.cols, n.elemBytes, tileRows, G);

        bool pipelined = opts.pipelinedCollectives;
        const GpuParams &gp = sys.config().gpu;

        // Phase 1: every GPU ships its partial of tile i to owner(i).
        KernelDesc k1 = newKernel(n.name + ".rs");
        k1.commKernel = true;
        k1.schedPriority = 0;
        k1.launchOverhead += opts.commKernelExtraLaunch;
        k1.smFrom = opts.commSmFrom;
        k1.smTo = opts.commSmTo;
        if (!pipelined)
            k1.kernelDeps = barrierDeps(rs_id);
        k1.producesTracker = scratch.tracker;
        for (GpuId g = 0; g < G; ++g) {
            for (int i = 0; i < scratch.numTiles; ++i) {
                TbDesc tb;
                tb.computeCycles =
                    memBoundTbCycles(gp, scratch.bytesPerTile, 1.0) +
                    opts.perCommTbOverhead;
                tb.deps.push_back(depAt(partial, i, g));
                if (scratch.tileOwner(i) == g) {
                    tb.producesTile = i;
                    tb.produceBytes = scratch.bytesPerTile;
                } else {
                    RemoteOp op;
                    op.kind = RemoteOpKind::plainWrite;
                    op.protocolPad = true;
                    op.base = scratch.tileAddr(i);
                    op.bytes = scratch.bytesPerTile;
                    tb.pushOps.push_back(op);
                }
                k1.grids[static_cast<std::size_t>(g)].push_back(
                    std::move(tb));
            }
        }
        KernelId rs_k = sys.addKernel(std::move(k1));

        // Phase 2: owners broadcast reduced tiles to all peers.
        TensorInfo &out = defineOutput(
            rs_id, TensorLayout::perGpuPrivate, n.cols, 1);
        KernelDesc k2 = newKernel(n.name + ".ag");
        k2.commKernel = true;
        k2.schedPriority = 0;
        k2.launchOverhead += opts.commKernelExtraLaunch;
        k2.smFrom = opts.commSmFrom;
        k2.smTo = opts.commSmTo;
        if (!pipelined)
            k2.kernelDeps = {rs_k};
        k2.producesTracker = out.tracker;
        for (GpuId g = 0; g < G; ++g) {
            for (int i = 0; i < out.numTiles; ++i) {
                if (scratch.tileOwner(i) != g)
                    continue;
                TbDesc tb;
                tb.computeCycles =
                    memBoundTbCycles(gp, out.bytesPerTile, 1.0) +
                    opts.perCommTbOverhead;
                tb.deps.push_back(depAt(scratch, i, g));
                tb.producesTile = i;
                tb.produceBytes = out.bytesPerTile;
                for (GpuId p = 0; p < G; ++p) {
                    if (p == g)
                        continue;
                    RemoteOp op;
                    op.kind = RemoteOpKind::plainWrite;
                    op.protocolPad = true;
                    op.base = out.tileAddrAt(p, i);
                    op.bytes = out.bytesPerTile;
                    tb.pushOps.push_back(op);
                }
                k2.grids[static_cast<std::size_t>(g)].push_back(
                    std::move(tb));
            }
        }
        finishKernel(rs_id, std::move(k2));
        return;
      }
    }
}

// --------------------------------------------------------------------
// Collective kernel emitters
// --------------------------------------------------------------------

void
GraphLowering::emitNvlsReduceScatter(OpId rs, TensorInfo &partial)
{
    const OpNode &n = node(rs);
    TensorInfo &out =
        defineOutput(rs, TensorLayout::rowShardedHome, n.cols, G);

    KernelDesc k = newKernel(n.name + ".nvls-rs");
    k.commKernel = true;
    k.schedPriority = 0;
    k.launchOverhead += opts.commKernelExtraLaunch;
    k.smFrom = opts.commSmFrom;
    k.smTo = opts.commSmTo;
    if (!opts.pipelinedCollectives)
        k.kernelDeps = barrierDeps(rs);
    k.producesTracker = out.tracker;

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (out.tileOwner(i) != g)
                continue;
            TbDesc tb;
            tb.computeCycles = opts.perCommTbOverhead;
            RemoteOp op;
            op.kind = RemoteOpKind::nvlsLdReduce;
            op.protocolPad = true;
            op.base = partial.tileAddr(i);
            op.bytes = partial.bytesPerTile;
            op.expected = G;
            tb.pullOps.push_back(op);
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile *
                              static_cast<std::uint64_t>(G);
            for (GpuId p = 0; p < G; ++p)
                tb.deps.push_back(TileRef{partial.tracker, i, p});
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(rs, std::move(k));
}

void
GraphLowering::emitNvlsAllGather(OpId ag, TensorInfo &in)
{
    const OpNode &n = node(ag);
    TensorInfo &out =
        defineOutput(ag, TensorLayout::replicated, n.cols, 1);

    KernelDesc k = newKernel(n.name + ".nvls-ag");
    k.commKernel = true;
    k.schedPriority = 0;
    k.launchOverhead += opts.commKernelExtraLaunch;
    k.smFrom = opts.commSmFrom;
    k.smTo = opts.commSmTo;
    if (!opts.pipelinedCollectives &&
        opts.collectives != CollectiveImpl::t3)
        k.kernelDeps = barrierDeps(ag);
    else if (opts.collectives == CollectiveImpl::t3)
        k.kernelDeps = barrierDeps(ag); // coarse RS/LN/AG stages
    k.producesTracker = out.tracker;

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (in.tileOwner(i) != g)
                continue;
            TbDesc tb;
            tb.computeCycles = opts.perCommTbOverhead;
            RemoteOp op;
            op.kind = RemoteOpKind::nvlsSt;
            op.protocolPad = true;
            op.base = out.tileAddr(i);
            op.bytes = out.bytesPerTile;
            tb.pushOps.push_back(op);
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            tb.deps.push_back(depAt(in, i, g));
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(ag, std::move(k));
}

void
GraphLowering::emitNvlsAllReduce(OpId rs, TensorInfo &partial)
{
    const OpNode &n = node(rs);
    TensorInfo &out =
        defineOutput(rs, TensorLayout::replicated, n.cols, 1);

    KernelDesc k = newKernel(n.name + ".nvls-ar");
    k.commKernel = true;
    k.schedPriority = 0;
    k.launchOverhead += opts.commKernelExtraLaunch;
    k.smFrom = opts.commSmFrom;
    k.smTo = opts.commSmTo;
    if (!opts.pipelinedCollectives)
        k.kernelDeps = barrierDeps(rs);
    k.producesTracker = out.tracker;

    int per_gpu = (out.numTiles + G - 1) / G;
    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (i / per_gpu != g)
                continue;
            TbDesc tb;
            tb.computeCycles = opts.perCommTbOverhead;
            RemoteOp pull;
            pull.kind = RemoteOpKind::nvlsLdReduce;
            pull.protocolPad = true;
            pull.base = partial.tileAddr(i);
            pull.bytes = partial.bytesPerTile;
            pull.expected = G;
            tb.pullOps.push_back(pull);
            RemoteOp push;
            push.kind = RemoteOpKind::nvlsSt;
            push.protocolPad = true;
            push.base = out.tileAddr(i);
            push.bytes = out.bytesPerTile;
            tb.pushOps.push_back(push);
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            for (GpuId p = 0; p < G; ++p)
                tb.deps.push_back(TileRef{partial.tracker, i, p});
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(rs, std::move(k));
}

void
GraphLowering::emitSoftwareReduceScatter(OpId rs, TensorInfo &partial)
{
    const OpNode &n = node(rs);
    const GpuParams &gp = sys.config().gpu;
    TensorInfo &out =
        defineOutput(rs, TensorLayout::rowShardedHome, n.cols, G);

    KernelDesc k = newKernel(n.name + ".sw-rs");
    k.commKernel = true;
    k.schedPriority = 0;
    k.launchOverhead += opts.commKernelExtraLaunch;
    k.smFrom = opts.commSmFrom;
    k.smTo = opts.commSmTo;
    if (!opts.pipelinedCollectives)
        k.kernelDeps = barrierDeps(rs);
    k.producesTracker = out.tracker;

    std::vector<int> sw_order = interleavedTiles(out, G);
    for (GpuId g = 0; g < G; ++g) {
        for (int i : sw_order) {
            TbDesc tb;
            tb.computeCycles =
                memBoundTbCycles(gp, out.bytesPerTile, 1.0) +
                opts.perCommTbOverhead;
            tb.deps.push_back(depAt(partial, i, g));
            if (out.tileOwner(i) == g) {
                tb.producesTile = i;
                tb.produceBytes = out.bytesPerTile;
            } else {
                RemoteOp op;
                op.kind = RemoteOpKind::plainWrite;
                op.protocolPad = true;
                op.base = out.tileAddr(i);
                op.bytes = out.bytesPerTile;
                tb.pushOps.push_back(op);
            }
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(rs, std::move(k));
}

void
GraphLowering::emitSoftwareAllGather(OpId ag, TensorInfo &in)
{
    const OpNode &n = node(ag);
    const GpuParams &gp = sys.config().gpu;
    TensorInfo &out =
        defineOutput(ag, TensorLayout::perGpuPrivate, n.cols, 1);

    KernelDesc k = newKernel(n.name + ".sw-ag");
    k.commKernel = true;
    k.schedPriority = 0;
    k.launchOverhead += opts.commKernelExtraLaunch;
    k.smFrom = opts.commSmFrom;
    k.smTo = opts.commSmTo;
    if (!opts.pipelinedCollectives &&
        opts.collectives != CollectiveImpl::t3)
        k.kernelDeps = barrierDeps(ag);
    else if (opts.collectives == CollectiveImpl::t3)
        k.kernelDeps = barrierDeps(ag);
    k.producesTracker = out.tracker;

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (in.tileOwner(i) != g)
                continue;
            TbDesc tb;
            tb.computeCycles =
                memBoundTbCycles(gp, out.bytesPerTile, 1.0) +
                opts.perCommTbOverhead;
            tb.deps.push_back(depAt(in, i, g));
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            for (GpuId p = 0; p < G; ++p) {
                if (p == g)
                    continue;
                RemoteOp op;
                op.kind = RemoteOpKind::plainWrite;
                op.protocolPad = true;
                op.base = out.tileAddrAt(p, i);
                op.bytes = out.bytesPerTile;
                tb.pushOps.push_back(op);
            }
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(ag, std::move(k));
}

void
GraphLowering::emitLadmAllReduce(OpId rs, TensorInfo &partial)
{
    const OpNode &n = node(rs);
    const GpuParams &gp = sys.config().gpu;
    TensorInfo &out =
        defineOutput(rs, TensorLayout::perGpuPrivate, n.cols, 1);

    KernelDesc k = newKernel(n.name + ".ladm-ar");
    k.commKernel = true;
    k.kernelDeps = barrierDeps(rs);
    k.producesTracker = out.tracker;

    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            TbDesc tb;
            // Locality-aware placement dedups reads within a GPU but
            // every GPU still pulls every peer's partial remotely.
            for (GpuId p = 0; p < G; ++p) {
                tb.deps.push_back(TileRef{partial.tracker, i, p});
                if (p == g)
                    continue;
                RemoteOp op;
                op.kind = RemoteOpKind::plainLoad;
                op.base = partial.tileAddrAt(p, i);
                op.bytes = partial.bytesPerTile;
                tb.pullOps.push_back(op);
            }
            tb.computeCycles = memBoundTbCycles(
                gp,
                partial.bytesPerTile * static_cast<std::uint64_t>(G),
                1.0);
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(rs, std::move(k));
}

TensorInfo &
GraphLowering::emitPullStage(OpId ag, TensorInfo &src,
                             RemoteOpKind kind, double sm_from,
                             double sm_to)
{
    const OpNode &n = node(ag);
    TensorInfo &out =
        defineOutput(ag, TensorLayout::perGpuPrivate, n.cols, 1);

    KernelDesc k = newKernel(n.name + ".stage");
    k.commKernel = true;
    k.smFrom = sm_from;
    k.smTo = sm_to;
    if (!tileDeps(ag))
        k.kernelDeps = barrierDeps(ag);
    k.producesTracker = out.tracker;

    // Compiler pass over the stage kernel: the load index depends
    // only on blockIdx (GPU-invariant) -> mergeable, grouped.
    TbGroupingPlan plan;
    if (opts.caisCoordination && kind == RemoteOpKind::caisLoad) {
        IrKernel ir;
        ir.name = n.name + ".stage";
        ir.gridX = out.numTiles;
        ir.gridY = 1;
        MemInstr ld;
        ld.op = Opcode::ldGlobal;
        ld.remote = true;
        ld.bytesPerTb = src.bytesPerTile;
        ld.addr = AddressExpr::term(
            AddrVar::blockIdxX,
            static_cast<std::int64_t>(src.bytesPerTile));
        ir.accesses.push_back(ld);
        auto lowered = lowerToCais(ir, sys.allocGroups(ir.numTbs()));
        plan = lowered.plan;
        k.preLaunchSync = true;
        k.preAccessSync = true;
    }

    std::vector<int> order = interleavedTiles(src, G);
    for (GpuId g = 0; g < G; ++g) {
        for (int i : order) {
            TbDesc tb;
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            tb.deps.push_back(depAt(src, i, g));
            if (plan.grouped)
                tb.group =
                    plan.groupOfTb[static_cast<std::size_t>(i)];
            if (src.tileOwner(i) != g) {
                RemoteOp op;
                op.kind = kind;
                op.base = src.tileAddr(i);
                op.bytes = src.bytesPerTile;
                op.expected = G - 1;
                tb.pullOps.push_back(op);
            }
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    finishKernel(ag, std::move(k));
    return out;
}

} // namespace cais
