/**
 * @file
 * CUTLASS-style GEMM cost and tiling model. Kernels are tiled in
 * 128x128 output tiles; the per-TB cost follows a roofline over the
 * GPU's effective per-SM throughput. Memory-bound (elementwise /
 * LayerNorm) kernels are costed by bytes touched against the HBM
 * bandwidth.
 */

#ifndef CAIS_WORKLOAD_GEMM_MODEL_HH
#define CAIS_WORKLOAD_GEMM_MODEL_HH

#include <cstdint>

#include "gpu/gpu_config.hh"

namespace cais
{

/** GEMM tile geometry (CUTLASS default-style 128x128 CTA tiles). */
struct GemmTiling
{
    int tileM = 128;
    int tileN = 128;
};

/** ceil(a / b) for positive integers. */
inline std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Raw resource demand of one thread block, before the roofline turns
 * it into cycles. Exposed so analytical consumers (the bound model,
 * fig02's analytic curve) can account FLOPs and bytes directly
 * instead of reverse-engineering them from cycle counts.
 */
struct GemmCost
{
    double flops = 0.0;       ///< multiply-add FLOPs (2 per MAC)
    std::uint64_t bytes = 0;  ///< HBM bytes streamed (expansion folded in)
};

/** FLOPs of one tileM x tileN x K GEMM output tile. */
GemmCost gemmTbCost(const GemmTiling &t, std::int64_t k);

/** Bytes a memory-bound TB streams through HBM (expansion folded). */
GemmCost memBoundTbCost(std::uint64_t bytes, double expansion = 2.0);

/** FLOPs of the attention core of one tile_rows-row block. */
GemmCost attentionTbCost(std::int64_t seq_len,
                         std::int64_t hidden_per_gpu, int tile_rows);

/** Cycles one GEMM thread block spends computing a tileM x tileN x K
 *  output tile. */
Cycle gemmTbCycles(const GpuParams &gp, const GemmTiling &t,
                   std::int64_t k);

/**
 * Cycles for a memory-bound thread block touching @p bytes of HBM.
 * @p expansion accounts for read+write streams (default 2x).
 */
Cycle memBoundTbCycles(const GpuParams &gp, std::uint64_t bytes,
                       double expansion = 2.0);

/**
 * Cycles for the attention core of one 128-row block: two
 * seq-length GEMMs per local head slice.
 */
Cycle attentionTbCycles(const GpuParams &gp, std::int64_t seq_len,
                        std::int64_t hidden_per_gpu, int tile_rows);

} // namespace cais

#endif // CAIS_WORKLOAD_GEMM_MODEL_HH
