#include "workload/gemm_model.hh"

namespace cais
{

GemmCost
gemmTbCost(const GemmTiling &t, std::int64_t k)
{
    GemmCost c;
    c.flops = 2.0 * static_cast<double>(t.tileM) *
              static_cast<double>(t.tileN) * static_cast<double>(k);
    return c;
}

GemmCost
memBoundTbCost(std::uint64_t bytes, double expansion)
{
    GemmCost c;
    c.bytes = static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                         expansion);
    return c;
}

GemmCost
attentionTbCost(std::int64_t seq_len, std::int64_t hidden_per_gpu,
                int tile_rows)
{
    // QK^T and PV for tile_rows query rows against the full sequence
    // over this GPU's head slice: 2 GEMMs of 2*rows*seq*hidden FLOPs.
    GemmCost c;
    c.flops = 4.0 * static_cast<double>(tile_rows) *
              static_cast<double>(seq_len) *
              static_cast<double>(hidden_per_gpu);
    return c;
}

Cycle
gemmTbCycles(const GpuParams &gp, const GemmTiling &t, std::int64_t k)
{
    double cyc = gemmTbCost(t, k).flops / gp.effectiveFlopsPerCyclePerSm();
    return cyc < 1.0 ? 1 : static_cast<Cycle>(cyc);
}

Cycle
memBoundTbCycles(const GpuParams &gp, std::uint64_t bytes,
                 double expansion)
{
    // A lone memory-bound TB cannot pull the full HBM bandwidth;
    // assume it sustains the per-SM fair share times a burst factor.
    double per_tb_bw = gp.hbmBytesPerCycle /
                       static_cast<double>(gp.numSms) * 8.0;
    double cyc = static_cast<double>(memBoundTbCost(bytes, expansion).bytes) /
                 per_tb_bw;
    return cyc < 1.0 ? 1 : static_cast<Cycle>(cyc);
}

Cycle
attentionTbCycles(const GpuParams &gp, std::int64_t seq_len,
                  std::int64_t hidden_per_gpu, int tile_rows)
{
    double cyc = attentionTbCost(seq_len, hidden_per_gpu, tile_rows).flops /
                 gp.effectiveFlopsPerCyclePerSm();
    return cyc < 1.0 ? 1 : static_cast<Cycle>(cyc);
}

} // namespace cais
