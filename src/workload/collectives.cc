#include "workload/collectives.hh"

#include "common/log.hh"

namespace cais
{

void
precontribute(System &sys, const TensorInfo &t)
{
    TileTracker &tr = sys.tracker(t.tracker);
    std::uint64_t need = tr.needBytesPerTile();
    for (GpuId g = 0; g < sys.numGpus(); ++g)
        for (int i = 0; i < t.numTiles; ++i)
            tr.contribute(g, i, need);
}

CollectiveBench
buildNvlsAllReduce(System &sys, std::uint64_t bytes, int tb_bytes_log2)
{
    int G = sys.numGpus();
    std::uint64_t per_tb = 1ull << tb_bytes_log2;
    std::int64_t cols = static_cast<std::int64_t>(per_tb / 2);
    std::int64_t rows =
        static_cast<std::int64_t>((bytes + per_tb - 1) / per_tb);
    if (rows < G)
        rows = G;

    // Model the buffer as rows x cols fp16 with one row per TB chunk.
    TensorInfo &partial = sys.defineTensor(
        "arbench.partial", TensorLayout::replicated, rows, cols, 2, 1,
        1);
    TensorInfo &out = sys.defineTensor(
        "arbench.out", TensorLayout::replicated, rows, cols, 2, 1, 1);
    precontribute(sys, partial);

    KernelDesc k;
    k.name = "nvls-allreduce";
    k.commKernel = true;
    k.grids.resize(static_cast<std::size_t>(G));
    k.producesTracker = out.tracker;

    int per_gpu = (out.numTiles + G - 1) / G;
    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (i / per_gpu != g)
                continue;
            TbDesc tb;
            RemoteOp pull;
            pull.kind = RemoteOpKind::nvlsLdReduce;
            pull.protocolPad = true;
            pull.base = partial.tileAddr(i);
            pull.bytes = partial.bytesPerTile;
            pull.expected = G;
            tb.pullOps.push_back(pull);
            RemoteOp push;
            push.kind = RemoteOpKind::nvlsSt;
            push.protocolPad = true;
            push.base = out.tileAddr(i);
            push.bytes = out.bytesPerTile;
            tb.pushOps.push_back(push);
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            k.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }

    CollectiveBench b;
    b.bytes = static_cast<std::uint64_t>(rows) *
              static_cast<std::uint64_t>(cols) * 2;
    b.kernel = sys.addKernel(std::move(k));
    return b;
}

CollectiveBench
buildSoftwareAllReduce(System &sys, std::uint64_t bytes,
                       int tb_bytes_log2)
{
    int G = sys.numGpus();
    std::uint64_t per_tb = 1ull << tb_bytes_log2;
    std::int64_t cols = static_cast<std::int64_t>(per_tb / 2);
    std::int64_t rows =
        static_cast<std::int64_t>((bytes + per_tb - 1) / per_tb);
    if (rows < G)
        rows = G;

    TensorInfo &partial = sys.defineTensor(
        "swar.partial", TensorLayout::perGpuPrivate, rows, cols, 2, 1,
        1);
    TensorInfo &scratch = sys.defineTensor(
        "swar.scratch", TensorLayout::rowShardedHome, rows, cols, 2, 1,
        G);
    TensorInfo &out = sys.defineTensor(
        "swar.out", TensorLayout::perGpuPrivate, rows, cols, 2, 1, 1);
    precontribute(sys, partial);

    // Phase 1: ship partials to shard owners.
    KernelDesc k1;
    k1.name = "sw-allreduce.rs";
    k1.commKernel = true;
    k1.grids.resize(static_cast<std::size_t>(G));
    k1.producesTracker = scratch.tracker;
    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < scratch.numTiles; ++i) {
            TbDesc tb;
            if (scratch.tileOwner(i) == g) {
                tb.producesTile = i;
                tb.produceBytes = scratch.bytesPerTile;
            } else {
                RemoteOp op;
                op.kind = RemoteOpKind::plainWrite;
                op.protocolPad = true;
                op.base = scratch.tileAddr(i);
                op.bytes = scratch.bytesPerTile;
                tb.pushOps.push_back(op);
            }
            k1.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }
    KernelId rs_k = sys.addKernel(std::move(k1));

    // Phase 2: owners broadcast their reduced shard.
    KernelDesc k2;
    k2.name = "sw-allreduce.ag";
    k2.commKernel = true;
    k2.grids.resize(static_cast<std::size_t>(G));
    k2.producesTracker = out.tracker;
    for (GpuId g = 0; g < G; ++g) {
        for (int i = 0; i < out.numTiles; ++i) {
            if (scratch.tileOwner(i) != g)
                continue;
            TbDesc tb;
            tb.deps.push_back(TileRef{scratch.tracker, i, g});
            tb.producesTile = i;
            tb.produceBytes = out.bytesPerTile;
            for (GpuId p = 0; p < G; ++p) {
                if (p == g)
                    continue;
                RemoteOp op;
                op.kind = RemoteOpKind::plainWrite;
                op.protocolPad = true;
                op.base = out.tileAddrAt(p, i);
                op.bytes = out.bytesPerTile;
                tb.pushOps.push_back(op);
            }
            k2.grids[static_cast<std::size_t>(g)].push_back(
                std::move(tb));
        }
    }

    CollectiveBench b;
    b.bytes = static_cast<std::uint64_t>(rows) *
              static_cast<std::uint64_t>(cols) * 2;
    b.kernel = sys.addKernel(std::move(k2));
    (void)rs_k;
    return b;
}

double
nvlsAllReduceAnalyticCycles(int num_gpus, double bw_per_dir,
                            std::uint64_t bytes, Cycle rtt)
{
    double G = static_cast<double>(num_gpus);
    // Per-GPU, per-direction wire volume: the full partial is fetched
    // once for the gather-reduce (uplink), plus the 1/G result push;
    // downlink mirrors it with the multicast.
    double volume = static_cast<double>(bytes) * (G + 1.0) / G;
    return volume / bw_per_dir + static_cast<double>(rtt);
}

double
allReduceBusBw(int num_gpus, std::uint64_t bytes, double cycles)
{
    double G = static_cast<double>(num_gpus);
    double alg = static_cast<double>(bytes) / cycles;
    return alg * 2.0 * (G - 1.0) / G;
}

} // namespace cais
