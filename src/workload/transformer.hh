/**
 * @file
 * Transformer layer / sub-layer operator-graph builders.
 *
 * Graphs are emitted in TP+SP form (RS/AG collectives, sequence-
 * sharded LayerNorm and residual ops). Strategies that implement
 * basic TP re-associate RS + AG into a single AllReduce during
 * lowering, which is the mathematical equivalence the paper notes in
 * Sec. II-A.
 *
 * The four communication-intensive sub-layers of Fig. 12:
 *  L1: output projection -> LN -> first FFN layer   (forward)
 *  L2: second FFN layer  -> LN -> input projection  (forward)
 *  L3: first FFN layer   -> LN -> output projection (backward)
 *  L4: input projection  -> LN -> second FFN layer  (backward)
 * All four are GEMM-RS + LN + AG-GEMM chains.
 */

#ifndef CAIS_WORKLOAD_TRANSFORMER_HH
#define CAIS_WORKLOAD_TRANSFORMER_HH

#include "dataflow/op_graph.hh"
#include "workload/llm_config.hh"

namespace cais
{

/** The evaluated sub-layers (Fig. 12). */
enum class SubLayerId { L1 = 0, L2 = 1, L3 = 2, L4 = 3 };

const char *subLayerName(SubLayerId s);

/** Training pass direction. */
enum class Pass { forward, backward };

/**
 * One full transformer layer. Backward is modelled as the mirrored
 * graph with doubled GEMM FLOPs (fused dgrad + wgrad) and identical
 * collective volumes — the structure the paper's L3/L4 sub-layers
 * capture explicitly.
 */
OpGraph buildTransformerLayer(const LlmConfig &m, Pass pass);

/**
 * A chain of @p layers consecutive transformer layers (each layer's
 * residual output feeds the next layer's LayerNorm). Under CAIS's
 * tile-level dependencies, consecutive layers pipeline into each
 * other — the steady-state regime where entry skew amortizes and
 * cross-layer fusion (Sec. III-C) pays off.
 */
OpGraph buildTransformerStack(const LlmConfig &m, int layers,
                              Pass pass);

/** One of the four Fig. 12 sub-layers. */
OpGraph buildSubLayer(const LlmConfig &m, SubLayerId which);

} // namespace cais

#endif // CAIS_WORKLOAD_TRANSFORMER_HH
