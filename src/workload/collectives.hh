/**
 * @file
 * Standalone collective-operation builders and analytic reference
 * models, used by the NVLS validation experiment (Fig. 18) and the
 * collective microbenchmarks.
 *
 * Since real DGX hardware is unavailable, the "measured" reference of
 * Fig. 18 is replaced by an analytic NVLS AllReduce model derived
 * from the algorithm's per-link volumes (see DESIGN.md substitution
 * table); the experiment then validates that the packet-level
 * simulation agrees with the analytic bandwidth across message sizes.
 */

#ifndef CAIS_WORKLOAD_COLLECTIVES_HH
#define CAIS_WORKLOAD_COLLECTIVES_HH

#include <cstdint>

#include "runtime/system.hh"

namespace cais
{

/** A standalone collective instance registered on a System. */
struct CollectiveBench
{
    KernelId kernel = invalidId;
    std::uint64_t bytes = 0; ///< full tensor size
};

/**
 * Build an NVLS AllReduce over a @p bytes tensor (input partials are
 * pre-resident). Each GPU reduces its 1/G chunk via
 * multimem.ld_reduce and multicasts the result via multimem.st.
 */
CollectiveBench buildNvlsAllReduce(System &sys, std::uint64_t bytes,
                                   int tb_bytes_log2 = 20);

/**
 * Build a direct software AllReduce (RS + AG phases over P2P writes,
 * ring-equivalent volume) for comparison.
 */
CollectiveBench buildSoftwareAllReduce(System &sys,
                                       std::uint64_t bytes,
                                       int tb_bytes_log2 = 20);

/**
 * Analytic NVLS AllReduce completion time in cycles: per-GPU link
 * volume is bytes*(G+1)/G each direction at per-direction bandwidth
 * @p bw, plus a latency term.
 */
double nvlsAllReduceAnalyticCycles(int num_gpus, double bw_per_dir,
                                   std::uint64_t bytes, Cycle rtt);

/** NCCL-style bus bandwidth in bytes/cycle for an AllReduce. */
double allReduceBusBw(int num_gpus, std::uint64_t bytes,
                      double cycles);

/** Mark every tile of @p t as already resident (bench inputs). */
void precontribute(System &sys, const TensorInfo &t);

} // namespace cais

#endif // CAIS_WORKLOAD_COLLECTIVES_HH
