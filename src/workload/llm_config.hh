/**
 * @file
 * LLM configurations of Table I (already the paper's scaled-down
 * variants: hidden / FFN dims are 50% of the full models, matched by
 * a 50% SM count), plus the full-scale LLaMA used in the Table II
 * scaling validation and helpers for further shape-preserving
 * reductions used by the fast bench mode.
 */

#ifndef CAIS_WORKLOAD_LLM_CONFIG_HH
#define CAIS_WORKLOAD_LLM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cais
{

/** One evaluated model configuration. */
struct LlmConfig
{
    std::string name;
    std::int64_t hidden = 0;
    std::int64_t ffnHidden = 0;
    int heads = 0;
    std::int64_t seqLen = 0;
    int batch = 0;

    /**
     * Transformer layer count used to extrapolate end-to-end time
     * from the simulated (homogeneous) layer. Table I does not list
     * depths; these follow the public model families.
     */
    int layers = 32;

    /** Tokens per microbatch = batch x sequence length. */
    std::int64_t tokens() const
    {
        return static_cast<std::int64_t>(batch) * seqLen;
    }

    /**
     * Shape-preserving reduction: scales hidden dims by @p dim_factor
     * and tokens by @p token_factor. Used by benches to keep runtimes
     * in seconds; compute:communication ratios are preserved when the
     * SM count is scaled alongside (the paper's own methodology,
     * Sec. IV-B / Table II).
     */
    LlmConfig scaled(double dim_factor, double token_factor) const;

    void validate() const;
    std::string str() const;
};

/** Table I rows. */
LlmConfig megaGpt4B();
LlmConfig megaGpt8B();
LlmConfig llama7B();

/** Full-scale LLaMA-7B-class config of Table II ("Full" row). */
LlmConfig llamaFullScale();

/** All Table I models in paper order. */
std::vector<LlmConfig> tableOneModels();

} // namespace cais

#endif // CAIS_WORKLOAD_LLM_CONFIG_HH
