#include "workload/transformer.hh"

#include "common/log.hh"

namespace cais
{

const char *
subLayerName(SubLayerId s)
{
    switch (s) {
      case SubLayerId::L1: return "L1.outproj-LN-ffn1.fwd";
      case SubLayerId::L2: return "L2.ffn2-LN-inproj.fwd";
      case SubLayerId::L3: return "L3.ffn1-LN-outproj.bwd";
      case SubLayerId::L4: return "L4.inproj-LN-ffn2.bwd";
      default: return "?";
    }
}

namespace
{

/** Append a GEMM-RS + LN + AG-GEMM chain to @p g. */
void
appendRsLnAgChain(OpGraph &g, const LlmConfig &m, OpId producer_in,
                  std::int64_t k1, std::int64_t n2, double flop_scale,
                  const char *tag)
{
    std::int64_t toks = m.tokens();
    std::int64_t h = m.hidden;

    std::vector<OpId> in;
    if (producer_in != invalidId)
        in.push_back(producer_in);

    OpId gemm1 = g.addOp(OpKind::gemmRowParallel,
                         std::string(tag) + ".gemm-rs", toks, h, k1, in);
    g.node(gemm1).flopScale = flop_scale;

    OpId rs = g.addOp(OpKind::reduceScatter,
                      std::string(tag) + ".rs", toks, h, 0, {gemm1});
    g.node(rs).rowSharded = true;

    OpId ln = g.addOp(OpKind::layerNorm, std::string(tag) + ".ln",
                      toks, h, 0, {rs});
    g.node(ln).rowSharded = true;

    OpId ag = g.addOp(OpKind::allGather, std::string(tag) + ".ag",
                      toks, h, 0, {ln});

    OpId gemm2 = g.addOp(OpKind::gemmColParallel,
                         std::string(tag) + ".ag-gemm", toks, n2, h,
                         {ag});
    g.node(gemm2).flopScale = flop_scale;
    g.node(gemm2).colSharded = true;
}

} // namespace

OpGraph
buildSubLayer(const LlmConfig &m, SubLayerId which)
{
    m.validate();
    OpGraph g;
    switch (which) {
      case SubLayerId::L1:
        // out-proj (K = hidden) -> RS -> LN -> AG -> FFN1 (N = ffn).
        appendRsLnAgChain(g, m, invalidId, m.hidden, m.ffnHidden, 1.0,
                          "L1");
        break;
      case SubLayerId::L2:
        // FFN2 (K = ffn) -> RS -> LN -> AG -> QKV proj (N = 3h).
        appendRsLnAgChain(g, m, invalidId, m.ffnHidden, 3 * m.hidden,
                          1.0, "L2");
        break;
      case SubLayerId::L3:
        // backward: FFN1 grad (K = ffn) -> RS -> LN -> AG -> out-proj
        // grad (N = hidden); dgrad+wgrad doubles GEMM FLOPs.
        appendRsLnAgChain(g, m, invalidId, m.ffnHidden, m.hidden, 2.0,
                          "L3");
        break;
      case SubLayerId::L4:
        // backward: in-proj grad (K = 3h) -> RS -> LN -> AG -> FFN2
        // grad (N = ffn).
        appendRsLnAgChain(g, m, invalidId, 3 * m.hidden, m.ffnHidden,
                          2.0, "L4");
        break;
    }
    g.validate();
    return g;
}

namespace
{

/** Append one transformer layer; @p input feeds the first LayerNorm
 *  (invalidId for the stack's first layer). Returns the residual
 *  output op. */
OpId
appendLayer(OpGraph &g, const LlmConfig &m, Pass pass, OpId input,
            const std::string &prefix)
{
    double fs = pass == Pass::forward ? 1.0 : 2.0;
    std::int64_t toks = m.tokens();
    std::int64_t h = m.hidden;

    std::vector<OpId> first_in;
    if (input != invalidId)
        first_in.push_back(input);

    // --- Attention block -------------------------------------------
    OpId ln1 = g.addOp(OpKind::layerNorm, prefix + "attn.ln", toks, h,
                       0, first_in);
    g.node(ln1).rowSharded = true;

    OpId ag1 = g.addOp(OpKind::allGather, prefix + "attn.ag", toks, h,
                       0, {ln1});

    OpId qkv = g.addOp(OpKind::gemmColParallel, prefix + "attn.qkv",
                       toks, 3 * h, h, {ag1});
    g.node(qkv).flopScale = fs;
    g.node(qkv).colSharded = true;

    OpId attn = g.addOp(OpKind::attentionCore, prefix + "attn.core",
                        toks, h, m.seqLen, {qkv});
    g.node(attn).flopScale = fs;
    g.node(attn).colSharded = true;

    OpId outp = g.addOp(OpKind::gemmRowParallel,
                        prefix + "attn.outproj", toks, h, h, {attn});
    g.node(outp).flopScale = fs;

    OpId rs1 = g.addOp(OpKind::reduceScatter, prefix + "attn.rs",
                       toks, h, 0, {outp});
    g.node(rs1).rowSharded = true;

    OpId add1 = g.addOp(OpKind::elementwise, prefix + "attn.dropadd",
                        toks, h, 0, {rs1});
    g.node(add1).rowSharded = true;

    // --- FFN block --------------------------------------------------
    OpId ln2 = g.addOp(OpKind::layerNorm, prefix + "ffn.ln", toks, h,
                       0, {add1});
    g.node(ln2).rowSharded = true;

    OpId ag2 = g.addOp(OpKind::allGather, prefix + "ffn.ag", toks, h,
                       0, {ln2});

    OpId ffn1 = g.addOp(OpKind::gemmColParallel, prefix + "ffn.fc1",
                        toks, m.ffnHidden, h, {ag2});
    g.node(ffn1).flopScale = fs;
    g.node(ffn1).colSharded = true;

    OpId gelu = g.addOp(OpKind::elementwise, prefix + "ffn.gelu",
                        toks, m.ffnHidden, 0, {ffn1});
    g.node(gelu).colSharded = true;

    OpId ffn2 = g.addOp(OpKind::gemmRowParallel, prefix + "ffn.fc2",
                        toks, h, m.ffnHidden, {gelu});
    g.node(ffn2).flopScale = fs;

    OpId rs2 = g.addOp(OpKind::reduceScatter, prefix + "ffn.rs", toks,
                       h, 0, {ffn2});
    g.node(rs2).rowSharded = true;

    OpId add2 = g.addOp(OpKind::elementwise, prefix + "ffn.dropadd",
                        toks, h, 0, {rs2});
    g.node(add2).rowSharded = true;
    return add2;
}

} // namespace

OpGraph
buildTransformerLayer(const LlmConfig &m, Pass pass)
{
    m.validate();
    OpGraph g;
    appendLayer(g, m, pass, invalidId, "");
    g.validate();
    return g;
}

OpGraph
buildTransformerStack(const LlmConfig &m, int layers, Pass pass)
{
    m.validate();
    if (layers < 1)
        fatal("transformer stack needs at least one layer");
    OpGraph g;
    OpId prev = invalidId;
    for (int l = 0; l < layers; ++l)
        prev = appendLayer(g, m, pass, prev,
                           "l" + std::to_string(l) + ".");
    g.validate();
    return g;
}

} // namespace cais
