#include "workload/llm_config.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace cais
{

LlmConfig
LlmConfig::scaled(double dim_factor, double token_factor) const
{
    auto round128 = [](double v) {
        std::int64_t r = static_cast<std::int64_t>(v / 128.0 + 0.5) * 128;
        return std::max<std::int64_t>(r, 128);
    };
    LlmConfig c = *this;
    c.hidden = round128(static_cast<double>(hidden) * dim_factor);
    c.ffnHidden = round128(static_cast<double>(ffnHidden) * dim_factor);
    c.seqLen = round128(static_cast<double>(seqLen) * token_factor);
    c.heads = std::max(1, static_cast<int>(heads * dim_factor));
    return c;
}

void
LlmConfig::validate() const
{
    if (hidden < 128 || ffnHidden < 128 || seqLen < 128 || batch < 1 ||
        heads < 1 || layers < 1)
        fatal("model %s: invalid configuration", name.c_str());
}

std::string
LlmConfig::str() const
{
    std::ostringstream os;
    os << name << ": hidden=" << hidden << " ffn=" << ffnHidden
       << " heads=" << heads << " seq=" << seqLen << " batch=" << batch
       << " layers=" << layers;
    return os.str();
}

LlmConfig
megaGpt4B()
{
    return LlmConfig{"Mega-GPT-4B", 2048, 8192, 24, 1024, 16, 24};
}

LlmConfig
megaGpt8B()
{
    return LlmConfig{"Mega-GPT-8B", 3072, 12288, 32, 1024, 12, 32};
}

LlmConfig
llama7B()
{
    return LlmConfig{"LLaMA-7B", 4096, 11264, 32, 3072, 3, 32};
}

LlmConfig
llamaFullScale()
{
    return LlmConfig{"LLaMA-Full", 8192, 22528, 64, 3072, 3, 32};
}

std::vector<LlmConfig>
tableOneModels()
{
    return {megaGpt4B(), megaGpt8B(), llama7B()};
}

} // namespace cais
