#include "analysis/deep_trace.hh"

#include "common/log.hh"
#include "runtime/system.hh"

namespace cais
{

DeepTraceProbe::DeepTraceProbe(System &sys_, TraceCollector &tc_)
    : sys(sys_), tc(tc_)
{
    lastHbmBytes.assign(static_cast<std::size_t>(sys.numGpus()), 0);
}

void
DeepTraceProbe::announceLanes()
{
    for (GpuId g = 0; g < sys.numGpus(); ++g)
        tc.nameLane(1, g, strfmt("gpu%d HBM", g));
    int ports = sys.numGpus();
    for (SwitchId s = 0; s < sys.numSwitches(); ++s) {
        int pid = switchPid(s);
        tc.nameProcess(pid, strfmt("switch %d", s));
        for (int p = 0; p < ports; ++p)
            tc.nameLane(pid, p, strfmt("merge port %d", p));
        tc.nameLane(pid, ports, "group sync");
        tc.nameLane(pid, ports + 1, "evict / throttle");
    }
}

void
DeepTraceProbe::onMergeSessionClose(SwitchId sw, GpuId port, Addr addr,
                                    bool is_load, int hits,
                                    std::uint32_t bytes,
                                    Cycle opened_at, Cycle at,
                                    bool complete)
{
    // One complete span per session, emitted at close so no per-entry
    // bookkeeping is needed; the label carries the merge payoff.
    tc.addSpan(strfmt("%s 0x%llx x%d %uB%s", is_load ? "ld" : "red",
                      static_cast<unsigned long long>(addr), hits,
                      bytes, complete ? "" : " (evicted)"),
               is_load ? "merge-load" : "merge-red", switchPid(sw),
               port, opened_at, at);
}

void
DeepTraceProbe::onMergeEviction(SwitchId sw, GpuId port, bool timeout,
                                Cycle at)
{
    tc.addInstant(strfmt("%s evict port %d",
                         timeout ? "timeout" : "LRU", port),
                  "evict", switchPid(sw), sys.numGpus() + 1, at);
}

void
DeepTraceProbe::onThrottleHint(SwitchId sw, GpuId gpu, GroupId group,
                               Cycle at)
{
    tc.addInstant(strfmt("throttle gpu%d g%d", gpu, group), "throttle",
                  switchPid(sw), sys.numGpus() + 1, at);
}

void
DeepTraceProbe::onSyncWindow(SwitchId sw, GroupId group, int phase,
                             Cycle first_at, Cycle released_at)
{
    tc.addSpan(strfmt("sync g%d %s", group,
                      phase == 0 ? "pre-launch" : "pre-access"),
               "sync", switchPid(sw), sys.numGpus(), first_at,
               released_at);
}

void
DeepTraceProbe::sample(Cycle at)
{
    // Per-switch merging-table occupancy and downlink VC depth.
    for (SwitchId s = 0; s < sys.numSwitches(); ++s) {
        int pid = switchPid(s);
        SwitchComputeComplex &c = sys.switchCompute(s);
        const SwitchChip &chip = sys.fabric().switchChip(s);
        for (GpuId p = 0; p < sys.numGpus(); ++p)
            tc.addCounter(strfmt("port%d table B", p), pid, at,
                          static_cast<double>(
                              c.merge().liveTableBytes(p)));
        int num_vcs = chip.params().numVcs;
        for (int vc = 0; vc < num_vcs; ++vc) {
            std::size_t depth = 0;
            // Tiered chips have per-chip port counts (local GPUs plus
            // tier links), not one port per fabric GPU.
            for (int port = 0; port < chip.numPorts(); ++port)
                depth += chip.downlinkQueue(
                    port, static_cast<VcClass>(vc));
            tc.addCounter(strfmt("vc%d downlink depth", vc), pid, at,
                          static_cast<double>(depth));
        }
    }

    // Per-GPU HBM bandwidth (bytes per cycle over the sample window).
    Cycle span = at > lastSampleAt ? at - lastSampleAt : 1;
    for (GpuId g = 0; g < sys.numGpus(); ++g) {
        std::uint64_t total = sys.gpu(g).hub().hbm().totalBytes();
        std::uint64_t delta =
            total - lastHbmBytes[static_cast<std::size_t>(g)];
        lastHbmBytes[static_cast<std::size_t>(g)] = total;
        tc.addCounter(strfmt("gpu%d HBM B/cyc", g), 1, at,
                      static_cast<double>(delta) /
                          static_cast<double>(span));
    }
    lastSampleAt = at;
}

} // namespace cais
