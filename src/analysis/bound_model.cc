#include "analysis/bound_model.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/intmath.hh"
#include "common/json.hh"
#include "noc/packet.hh"
#include "runtime/system.hh"

namespace cais
{

namespace
{

/**
 * Guaranteed floor of one TB's execution time: the jitter multiplier
 * is clamped at 0.5 (gpu/thread_block.cc) and the duration at one
 * cycle, so half the nominal work survives any jitter draw.
 */
std::uint64_t
tbFloorCycles(Cycle compute, bool jittered)
{
    if (compute == 0)
        return 0;
    if (!jittered)
        return compute;
    return std::max<std::uint64_t>(1, compute / 2);
}

/** Bytes covered by the union of half-open [first, second) ranges. */
std::uint64_t
unionBytes(std::vector<std::pair<Addr, Addr>> &iv)
{
    if (iv.empty())
        return 0;
    std::sort(iv.begin(), iv.end());
    std::uint64_t total = 0;
    Addr lo = iv[0].first;
    Addr hi = iv[0].second;
    for (const auto &[b, e] : iv) {
        if (b > hi) {
            total += hi - lo;
            lo = b;
            hi = e;
        } else {
            hi = std::max(hi, e);
        }
    }
    total += hi - lo;
    return total;
}

/** Per-GPU traffic the analyzer accumulates while walking TBs. */
struct Traffic
{
    std::uint64_t up = 0;       ///< wire bytes injected by this GPU
    std::uint64_t dn = 0;       ///< wire bytes absorbed by this GPU
    std::uint64_t hbmBytes = 0; ///< fabric-facing HBM bytes
    std::uint64_t work = 0;     ///< jitter-floored compute cycles

    /** Mergeable ranges homed here (deduplicated once per run). */
    std::vector<std::pair<Addr, Addr>> loadRanges;
    std::vector<std::pair<Addr, Addr>> redRanges;
};

/**
 * Account one remote op's guaranteed traffic. Only structurally
 * certain bytes are charged (see the file comment in the header):
 * protocol pads, NVLS fan-out and gather fetches are dropped because
 * their exact delivery set is not derivable from the descriptor.
 */
void
accountOp(const RemoteOp &op, std::size_t g, std::uint64_t chunk,
          std::vector<Traffic> &t)
{
    if (op.bytes == 0)
        return;
    const std::uint64_t hdrs =
        ceilDiv(op.bytes, chunk) * packetHeaderBytes;
    const auto home = static_cast<std::size_t>(addrHomeGpu(op.base));
    const bool home_ok = home < t.size();

    switch (op.kind) {
      case RemoteOpKind::plainLoad:
        // Request headers up, full response down; the home GPU reads
        // the bytes from HBM and serializes the response on its own
        // uplinks (gpu/hub.cc serveRead).
        t[g].up += hdrs;
        t[g].dn += op.bytes + hdrs;
        if (home_ok) {
            t[home].up += op.bytes + hdrs;
            t[home].hbmBytes += op.bytes;
        }
        break;
      case RemoteOpKind::caisLoad:
        // Every requester is answered in full (merge_unit.cc
        // respondLoad); the home-side fetch happens at least once per
        // unique chunk over the whole run, so it is charged from the
        // deduplicated range union below.
        t[g].up += hdrs;
        t[g].dn += op.bytes + hdrs;
        if (home_ok)
            t[home].loadRanges.emplace_back(op.base,
                                            op.base + op.bytes);
        break;
      case RemoteOpKind::nvlsLdReduce:
        // Each request gets its own gather session and a full-size
        // response (nvls_unit.cc completeGather); the replica fetch
        // set depends on tier placement, so only the certain legs
        // are charged.
        t[g].up += hdrs;
        t[g].dn += op.bytes + hdrs;
        break;
      case RemoteOpKind::plainWrite:
        t[g].up += op.bytes + hdrs;
        if (home_ok) {
            t[home].dn += op.bytes + hdrs;
            t[home].hbmBytes += op.bytes;
        }
        break;
      case RemoteOpKind::caisRed:
        // The contribution always crosses the sender's uplinks; the
        // merged write lands at least once per unique chunk (charged
        // from the range union below).
        t[g].up += op.bytes + hdrs;
        if (home_ok)
            t[home].redRanges.emplace_back(op.base,
                                           op.base + op.bytes);
        break;
      case RemoteOpKind::nvlsSt:
      case RemoteOpKind::nvlsRed:
        // Injection is certain; the multicast/reduction fan-out set
        // is not derivable here, so it is dropped.
        t[g].up += op.bytes + hdrs;
        break;
    }
}

} // namespace

Cycle
BoundResult::byName(const std::string &resource) const
{
    if (resource == "smCompute")
        return smCompute;
    if (resource == "hbm")
        return hbm;
    if (resource == "linkSerialization")
        return linkSerialization;
    if (resource == "mergeService")
        return mergeService;
    if (resource == "criticalPath")
        return criticalPath;
    return 0;
}

std::string
BoundResult::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

void
BoundResult::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema", boundSchemaVersion);
    w.key("resources").beginObject();
    w.field("smCompute", smCompute);
    w.field("hbm", hbm);
    w.field("linkSerialization", linkSerialization);
    w.field("mergeService", mergeService);
    w.field("criticalPath", criticalPath);
    w.endObject();
    w.field("composite", composite);
    w.field("binding", binding);
    w.endObject();
}

BoundResult
computeBound(const System &sys, const BoundOptions &opts)
{
    const SystemConfig &sc = sys.config();
    const GpuParams &gp = sc.gpu;
    const FabricParams &fp = sc.fabric;
    const auto gpus = static_cast<std::size_t>(fp.numGpus);
    const bool jittered = gp.jitterSigma > 0.0;
    const std::uint64_t chunk = std::max<std::uint64_t>(1, gp.chunkBytes);

    std::uint64_t slots = static_cast<std::uint64_t>(gp.numSms) *
                          static_cast<std::uint64_t>(gp.ctasPerSm);
    if (opts.smThroughputScale != 1.0)
        slots = static_cast<std::uint64_t>(
            static_cast<double>(slots) * opts.smThroughputScale);
    slots = std::max<std::uint64_t>(1, slots);

    const SerDivider linkBw(fp.perGpuBytesPerCycle *
                            opts.linkBandwidthScale);
    const SerDivider hbmBw(gp.hbmBytesPerCycle);

    std::vector<Traffic> traffic(gpus);
    std::vector<std::uint64_t> kernelWeight(sys.numKernels(), 0);

    for (std::size_t ki = 0; ki < sys.numKernels(); ++ki) {
        const KernelDesc &k = sys.kernel(static_cast<KernelId>(ki));
        if (k.totalTbs() == 0)
            continue; // zero-TB kernels finish without launching

        std::uint64_t exec_floor = 0;
        bool has_pull = false;
        for (std::size_t g = 0; g < k.grids.size() && g < gpus; ++g) {
            std::uint64_t grid_work = 0;
            std::uint64_t max_tb = 0;
            for (const TbDesc &tb : k.grids[g]) {
                std::uint64_t d =
                    tbFloorCycles(tb.computeCycles, jittered);
                grid_work += d;
                max_tb = std::max(max_tb, d);
                if (!tb.pullOps.empty())
                    has_pull = true;
                for (const RemoteOp &op : tb.pullOps)
                    accountOp(op, g, chunk, traffic);
                for (const RemoteOp &op : tb.pushOps)
                    accountOp(op, g, chunk, traffic);
            }
            traffic[g].work += grid_work;
            exec_floor = std::max(
                exec_floor,
                std::max(ceilDiv(grid_work, slots), max_tb));
        }
        // A TB with pull ops cannot retire before its responses
        // return: one uplink and one downlink propagation at minimum.
        const std::uint64_t pull_floor =
            has_pull ? 2 * static_cast<std::uint64_t>(fp.linkLatency)
                     : 0;
        kernelWeight[ki] = static_cast<std::uint64_t>(k.launchOverhead) +
                           std::max(exec_floor, pull_floor);
    }

    BoundResult r;
    for (std::size_t g = 0; g < gpus; ++g) {
        Traffic &t = traffic[g];
        const std::uint64_t load_union = unionBytes(t.loadRanges);
        const std::uint64_t red_union = unionBytes(t.redRanges);
        // Deduplicated merge traffic at the home port: fetch reads +
        // responses up, merged writes landing down and into HBM.
        t.hbmBytes += load_union + red_union;
        t.up += load_union;
        t.dn += red_union;

        r.smCompute =
            std::max(r.smCompute, ceilDiv(t.work, slots));
        r.hbm = std::max(r.hbm, t.hbmBytes > 0
                                    ? hbmBw.cycles(t.hbmBytes)
                                    : 0);
        const Cycle up_cyc = t.up > 0 ? linkBw.cycles(t.up) : 0;
        const Cycle dn_cyc = t.dn > 0 ? linkBw.cycles(t.dn) : 0;
        r.linkSerialization = std::max(
            r.linkSerialization, std::max(up_cyc, dn_cyc));
        const Cycle merge_up =
            load_union > 0 ? linkBw.cycles(load_union) : 0;
        const Cycle merge_dn =
            red_union > 0 ? linkBw.cycles(red_union) : 0;
        r.mergeService = std::max(r.mergeService,
                                  std::max(merge_up, merge_dn));
    }

    // Longest path through the kernel dependency graph (V5 proves it
    // acyclic); memoized depth-first walk over the descriptor ids. A
    // back edge (possible only with verification suppressed) is
    // treated as distance 0 rather than recursed into.
    enum : std::uint8_t { unvisited = 0, visiting = 1, finished = 2 };
    std::vector<std::uint64_t> dist(sys.numKernels(), 0);
    std::vector<std::uint8_t> state(sys.numKernels(), unvisited);
    for (std::size_t root = 0; root < sys.numKernels(); ++root) {
        if (state[root] == finished)
            continue;
        std::vector<std::size_t> stack{root};
        while (!stack.empty()) {
            std::size_t ki = stack.back();
            if (state[ki] == finished) {
                stack.pop_back();
                continue;
            }
            state[ki] = visiting;
            const KernelDesc &k = sys.kernel(static_cast<KernelId>(ki));
            bool ready = true;
            std::uint64_t best_dep = 0;
            for (KernelId dep : k.kernelDeps) {
                if (dep < 0 ||
                    static_cast<std::size_t>(dep) >= sys.numKernels())
                    continue;
                const auto di = static_cast<std::size_t>(dep);
                if (state[di] == unvisited) {
                    stack.push_back(di);
                    ready = false;
                } else if (state[di] == finished) {
                    best_dep = std::max(best_dep, dist[di]);
                }
            }
            if (!ready)
                continue;
            dist[ki] = kernelWeight[ki] + best_dep;
            state[ki] = finished;
            stack.pop_back();
        }
    }
    for (std::size_t ki = 0; ki < sys.numKernels(); ++ki)
        r.criticalPath = std::max(r.criticalPath, dist[ki]);

    const std::pair<const char *, Cycle> classes[] = {
        {"smCompute", r.smCompute},
        {"hbm", r.hbm},
        {"linkSerialization", r.linkSerialization},
        {"mergeService", r.mergeService},
        {"criticalPath", r.criticalPath},
    };
    r.binding = classes[0].first;
    for (const auto &[name, cyc] : classes) {
        if (cyc > r.composite) {
            r.composite = cyc;
            r.binding = name;
        }
    }
    return r;
}

} // namespace cais
