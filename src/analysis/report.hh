/**
 * @file
 * Structured run report (DESIGN.md §6d): one schema-versioned JSON
 * document per run carrying the configuration echo, the harvested
 * RunResult scalars, the full metric tree and the kernel timeline.
 * tools/cais_report loads these for summary tables and A/B diffs.
 */

#ifndef CAIS_ANALYSIS_REPORT_HH
#define CAIS_ANALYSIS_REPORT_HH

#include <string>

#include "common/metrics.hh"
#include "runtime/simulation_driver.hh"

namespace cais
{

/** Schema tag written into (and expected from) every report. */
inline constexpr const char *metricsSchemaVersion = "cais-metrics-v1";

/** Render the report document (see file comment for the layout). */
std::string renderMetricsReport(const RunConfig &cfg,
                                const RunResult &r,
                                const MetricSnapshot &snap);

/** Write renderMetricsReport to @p path; false on I/O failure. */
bool writeMetricsReport(const std::string &path, const RunConfig &cfg,
                        const RunResult &r, const MetricSnapshot &snap);

} // namespace cais

#endif // CAIS_ANALYSIS_REPORT_HH
