#include "analysis/causal_profile.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "analysis/trace.hh"
#include "common/event_queue.hh"
#include "common/json.hh"

namespace cais
{

const char *
waitClassName(WaitClass c)
{
    switch (c) {
    case WaitClass::unattributed:
        return "unattributed";
    case WaitClass::smCompute:
        return "smCompute";
    case WaitClass::hbm:
        return "hbm";
    case WaitClass::linkSerialization:
        return "linkSerialization";
    case WaitClass::creditStall:
        return "creditStall";
    case WaitClass::vcArbitration:
        return "vcArbitration";
    case WaitClass::mergeWait:
        return "mergeWait";
    case WaitClass::syncBarrier:
        return "syncBarrier";
    case WaitClass::nvlsFanout:
        return "nvlsFanout";
    case WaitClass::schedulerIdle:
        return "schedulerIdle";
    case WaitClass::hubInjection:
        return "hubInjection";
    case WaitClass::launch:
        return "launch";
    case WaitClass::depWait:
        return "depWait";
    case WaitClass::numClasses:
        break;
    }
    return "?";
}

CausalProfiler::CausalProfiler() = default;
CausalProfiler::~CausalProfiler() = default;

CausalProfiler::Log &
CausalProfiler::log()
{
    if (ShardCtx *c = EventQueue::threadShardCtx())
        if (c->userData)
            return *static_cast<Log *>(c->userData);
    return mainLog;
}

const CausalProfiler::Log &
CausalProfiler::log() const
{
    if (ShardCtx *c = EventQueue::threadShardCtx())
        if (c->userData)
            return *static_cast<const Log *>(c->userData);
    return mainLog;
}

void
CausalProfiler::record(ProfNode dst, WaitClass cls, Cycle t0,
                       Cycle t1, ProfNode src, Cycle src_t)
{
    WaitEdge e;
    e.dst = dst;
    e.cls = cls;
    e.t0 = std::min(t0, t1);
    e.t1 = t1;
    if (src == 0) {
        // No enabling cause: self-continue backward in time so the
        // walk keeps attributing instead of breaking the chain.
        src = dst;
        src_t = e.t0;
    }
    e.src = src;
    e.srcT = std::min(src_t, t1);
    log().edges.push_back(e);
}

void
CausalProfiler::record(ProfNode dst, WaitClass cls, Cycle t0,
                       Cycle t1)
{
    Log &l = log();
    record(dst, cls, t0, t1, l.cause, l.causeT);
}

ProfNode
CausalProfiler::causeNode() const
{
    return log().cause;
}

Cycle
CausalProfiler::causeTime() const
{
    return log().causeT;
}

CausalProfiler::ScopedCause::ScopedCause(CausalProfiler *p,
                                         ProfNode node, Cycle t)
    : prof(p)
{
    if (!prof)
        return;
    Log &l = prof->log();
    prevNode = l.cause;
    prevT = l.causeT;
    l.cause = node;
    l.causeT = t;
}

CausalProfiler::ScopedCause::~ScopedCause()
{
    if (!prof)
        return;
    Log &l = prof->log();
    l.cause = prevNode;
    l.causeT = prevT;
}

void
CausalProfiler::setName(ProfNode node, const std::string &name)
{
    names[node] = name;
}

std::uint32_t
CausalProfiler::addLink(const std::string &name)
{
    std::uint32_t id = nextLinkId++;
    names[profnode::link(id)] = name;
    return id;
}

void
CausalProfiler::setNumShards(int n)
{
    shardLogs.clear();
    shardLogs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        shardLogs.push_back(std::make_unique<Log>());
}

void *
CausalProfiler::shardLogSlot(int shard)
{
    return shardLogs[static_cast<std::size_t>(shard)].get();
}

void
CausalProfiler::finalize()
{
    if (finalized)
        return;
    edges = std::move(mainLog.edges);
    mainLog.edges.clear();
    for (auto &l : shardLogs) {
        edges.insert(edges.end(), l->edges.begin(), l->edges.end());
        l->edges.clear();
    }
    // Canonical order: the record multiset is identical at any shard
    // count (the simulation is bit-identical and hooks are pure), so
    // the full-tuple sort makes the merged log — and everything
    // derived from it — byte-identical as well.
    std::sort(edges.begin(), edges.end(),
              [](const WaitEdge &a, const WaitEdge &b) {
                  return std::tie(a.dst, a.t1, a.t0, a.cls, a.src,
                                  a.srcT) <
                         std::tie(b.dst, b.t1, b.t0, b.cls, b.src,
                                  b.srcT);
              });
    finalized = true;
}

Attribution
CausalProfiler::analyze(ProfNode start, Cycle makespan) const
{
    Attribution a;
    a.makespan = makespan;
    a.start = start;

    // Per-dst contiguous ranges over the sorted edge vector.
    struct Range
    {
        std::size_t lo, hi;
    };
    std::unordered_map<ProfNode, Range> index;
    for (std::size_t i = 0; i < edges.size();) {
        std::size_t j = i;
        while (j < edges.size() && edges[j].dst == edges[i].dst)
            ++j;
        index.emplace(edges[i].dst, Range{i, j});
        i = j;
    }

    ProfNode node = start;
    Cycle t = makespan;
    // Bound the walk: zero-time hops cannot cycle forever.
    std::size_t steps = 4 * edges.size() + 64;
    while (t > 0 && steps-- > 0) {
        auto it = index.find(node);
        if (it == index.end())
            break;
        // Last edge at this dst with t1 <= t: max t1, then max t0,
        // then last in canonical order — fully deterministic.
        std::size_t lo = it->second.lo;
        std::size_t hi = it->second.hi;
        auto cmp = [](const WaitEdge &e, Cycle tt) {
            return e.t1 <= tt;
        };
        std::size_t idx = lo;
        {
            // upper bound over e.t1 <= t
            std::size_t count = hi - lo;
            std::size_t first = lo;
            while (count > 0) {
                std::size_t step = count / 2;
                std::size_t mid = first + step;
                if (cmp(edges[mid], t)) {
                    first = mid + 1;
                    count -= step + 1;
                } else {
                    count = step;
                }
            }
            if (first == lo)
                break; // no edge ends at or before t
            idx = first - 1;
        }
        // Skip degenerate records that make no progress in either
        // node or time (self edge whose cause time equals t).
        while (edges[idx].src == node &&
               std::min(edges[idx].srcT, t) == t) {
            if (idx == lo) {
                idx = hi; // sentinel: nothing usable
                break;
            }
            --idx;
        }
        if (idx == hi)
            break;
        const WaitEdge &e = edges[idx];
        Cycle t_next = std::min(e.srcT, t);
        if (t_next < t) {
            PathSegment seg;
            seg.node = node;
            seg.cls = e.cls;
            seg.t0 = t_next;
            seg.t1 = t;
            a.path.push_back(seg);
            a.byClass[static_cast<std::size_t>(e.cls)] += t - t_next;
        }
        node = e.src;
        t = t_next;
    }
    if (t > 0)
        a.byClass[static_cast<std::size_t>(
            WaitClass::unattributed)] += t;
    std::reverse(a.path.begin(), a.path.end());
    return a;
}

std::string
CausalProfiler::nodeName(ProfNode n) const
{
    auto it = names.find(n);
    if (it != names.end())
        return it->second;
    char buf[64];
    std::uint64_t payload =
        n & ((std::uint64_t(1) << profnode::typeShift) - 1);
    switch (profnode::typeOf(n)) {
    case profnode::typeRoot:
        return "root";
    case profnode::typeKernel:
        std::snprintf(buf, sizeof(buf), "kernel#%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeTb:
        std::snprintf(
            buf, sizeof(buf), "tb k%llu g%llu t%llu",
            static_cast<unsigned long long>((payload >> 36) &
                                            0xFFFFF),
            static_cast<unsigned long long>((payload >> 24) & 0xFFF),
            static_cast<unsigned long long>(payload & 0xFFFFFF));
        return buf;
    case profnode::typeTile:
        std::snprintf(
            buf, sizeof(buf), "tile tr%llu g%llu i%llu",
            static_cast<unsigned long long>((payload >> 44) & 0xFFF),
            static_cast<unsigned long long>((payload >> 32) & 0xFFF),
            static_cast<unsigned long long>(payload & 0xFFFFFFFF));
        return buf;
    case profnode::typeHub:
        std::snprintf(buf, sizeof(buf), "hub g%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeHubQueue:
        std::snprintf(buf, sizeof(buf), "hubq g%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeHbm:
        std::snprintf(buf, sizeof(buf), "hbm g%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeSched:
        std::snprintf(buf, sizeof(buf), "sched g%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeLink:
        std::snprintf(buf, sizeof(buf), "link#%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeMerge:
        std::snprintf(buf, sizeof(buf), "merge sw%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeSync:
        std::snprintf(buf, sizeof(buf), "sync sw%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    case profnode::typeNvls:
        std::snprintf(buf, sizeof(buf), "nvls sw%llu",
                      static_cast<unsigned long long>(payload));
        return buf;
    default:
        break;
    }
    std::snprintf(buf, sizeof(buf), "node#%llu",
                  static_cast<unsigned long long>(n));
    return buf;
}

std::string
CausalProfiler::toJson(const Attribution &a,
                       const std::string &strategy,
                       const std::string &workload) const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", schemaVersion);
    w.field("strategy", strategy);
    w.field("workload", workload);
    w.field("makespan", a.makespan);
    w.field("edges", static_cast<std::uint64_t>(edges.size()));
    w.field("attributedCycles", a.attributed());
    w.field("coverage", a.coverage());
    w.key("attribution").beginArray();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(WaitClass::numClasses); ++i) {
        w.beginObject();
        w.field("class",
                waitClassName(static_cast<WaitClass>(i)));
        w.field("cycles", a.byClass[i]);
        w.field("share",
                a.makespan == 0
                    ? 0.0
                    : static_cast<double>(a.byClass[i]) /
                          static_cast<double>(a.makespan));
        w.endObject();
    }
    w.endArray();
    w.key("criticalPath").beginArray();
    for (const PathSegment &s : a.path) {
        w.beginObject();
        w.field("node", nodeName(s.node));
        w.field("class", waitClassName(s.cls));
        w.field("start", s.t0);
        w.field("end", s.t1);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
CausalProfiler::writeFile(const std::string &path,
                          const Attribution &a,
                          const std::string &strategy,
                          const std::string &workload) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << toJson(a, strategy, workload) << "\n";
    return static_cast<bool>(f);
}

void
CausalProfiler::emitFlameLanes(TraceCollector &tc, int pid,
                               const Attribution &a) const
{
    tc.nameProcess(pid, "critical path");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(WaitClass::numClasses); ++i)
        tc.nameLane(pid, static_cast<int>(i),
                    waitClassName(static_cast<WaitClass>(i)));
    for (const PathSegment &s : a.path)
        tc.addSpan(nodeName(s.node), "critical-path", pid,
                   static_cast<int>(s.cls), s.t0, s.t1);
}

} // namespace cais
