/**
 * @file
 * Deep switch-side Perfetto trace: turns the SwitchTraceHooks
 * notifications and a periodic non-perturbing sampler into Chrome
 * trace-event lanes (DESIGN.md §6d).
 *
 * Lane map:
 *  - pid 0: GPUs — per-GPU kernel spans (added by runGraph).
 *  - pid 1: fabric — mean link utilization and per-GPU HBM bandwidth
 *    counter tracks.
 *  - pid 2+s: switch s — tid = home port p carries merge-session
 *    spans (open -> close, labelled with merged-request count and
 *    bytes); tid = numGpus carries group-sync rendezvous windows;
 *    tid = numGpus + 1 carries eviction / throttle-hint instants.
 *    Counter tracks sample per-port merging-table occupancy and
 *    per-VC downlink queue depth.
 *
 * The probe is a pure observer: it never schedules events or mutates
 * simulation state, and sampling runs outside the event stream
 * (EventQueue::setPeriodicObserver), so a traced run is bit-identical
 * to an untraced one.
 */

#ifndef CAIS_ANALYSIS_DEEP_TRACE_HH
#define CAIS_ANALYSIS_DEEP_TRACE_HH

#include <cstdint>
#include <vector>

#include "analysis/trace.hh"
#include "common/trace_hooks.hh"

namespace cais
{

class System;

/** SwitchTraceHooks implementation feeding a TraceCollector. */
class DeepTraceProbe : public SwitchTraceHooks
{
  public:
    DeepTraceProbe(System &sys, TraceCollector &tc);

    /** Process lane of switch @p s. */
    static int
    switchPid(SwitchId s)
    {
        return 2 + s;
    }

    /** Emit process/thread metadata for every lane. */
    void announceLanes();

    /** Periodic counter-track sample (see class comment). */
    void sample(Cycle at);

    // SwitchTraceHooks
    void onMergeSessionClose(SwitchId sw, GpuId port, Addr addr,
                             bool is_load, int hits,
                             std::uint32_t bytes, Cycle opened_at,
                             Cycle at, bool complete) override;
    void onMergeEviction(SwitchId sw, GpuId port, bool timeout,
                         Cycle at) override;
    void onThrottleHint(SwitchId sw, GpuId gpu, GroupId group,
                        Cycle at) override;
    void onSyncWindow(SwitchId sw, GroupId group, int phase,
                      Cycle first_at, Cycle released_at) override;

  private:
    System &sys;
    TraceCollector &tc;

    /** HBM byte totals at the previous sample (bandwidth deltas). */
    std::vector<std::uint64_t> lastHbmBytes;
    Cycle lastSampleAt = 0;
};

} // namespace cais

#endif // CAIS_ANALYSIS_DEEP_TRACE_HH
