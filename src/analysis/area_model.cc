#include "analysis/area_model.hh"

#include <sstream>

namespace cais
{

std::string
AreaBreakdown::str() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(4);
    if (mergingTableMm2 > 0)
        os << "  merging table SRAM : " << mergingTableMm2 << " mm^2\n";
    if (camMm2 > 0)
        os << "  CAM lookup table   : " << camMm2 << " mm^2\n";
    if (reductionAlusMm2 > 0)
        os << "  reduction ALUs     : " << reductionAlusMm2
           << " mm^2\n";
    if (groupSyncMm2 > 0)
        os << "  group sync table   : " << groupSyncMm2 << " mm^2\n";
    if (controlMm2 > 0)
        os << "  control logic      : " << controlMm2 << " mm^2\n";
    os << "  total              : " << totalMm2 << " mm^2";
    return os.str();
}

AreaBreakdown
switchExtensionArea(const SwitchAreaConfig &cfg, const ProcessParams &p)
{
    AreaBreakdown a;
    double um2 = 0.0;

    double merge_bits = static_cast<double>(cfg.ports) *
                        static_cast<double>(cfg.mergeTableBytesPerPort) *
                        8.0;
    a.mergingTableMm2 = merge_bits * p.sramUm2PerBit * 1e-6;

    double cam_bits = static_cast<double>(cfg.ports) *
                      static_cast<double>(cfg.camEntriesPerPort) *
                      static_cast<double>(cfg.camBitsPerEntry);
    a.camMm2 = cam_bits * p.camUm2PerBit * 1e-6;

    a.reductionAlusMm2 = static_cast<double>(cfg.ports) *
                         static_cast<double>(cfg.reductionLanesPerPort) *
                         p.fp32AdderUm2 * 1e-6;

    double sync_bits = static_cast<double>(cfg.groupSyncEntries) *
                       static_cast<double>(cfg.groupSyncBitsPerEntry);
    a.groupSyncMm2 = sync_bits * p.sramUm2PerBit * 1e-6;

    a.controlMm2 = static_cast<double>(cfg.ports) *
                   static_cast<double>(cfg.camEntriesPerPort) *
                   p.controlLogicUm2PerEntry * 1e-6;

    um2 = a.mergingTableMm2 + a.camMm2 + a.reductionAlusMm2 +
          a.groupSyncMm2 + a.controlMm2;
    a.totalMm2 = um2;
    return a;
}

AreaBreakdown
gpuSynchronizerArea(const GpuAreaConfig &cfg, const ProcessParams &p)
{
    AreaBreakdown a;
    double bits = static_cast<double>(cfg.syncTableEntries) *
                  static_cast<double>(cfg.syncBitsPerEntry);
    a.groupSyncMm2 = bits * p.camUm2PerBit * 1e-6;
    a.controlMm2 = static_cast<double>(cfg.syncTableEntries) *
                   p.controlLogicUm2PerEntry * 1e-6 * 0.35;
    a.totalMm2 = a.groupSyncMm2 + a.controlMm2;
    return a;
}

std::uint64_t
systemMergeTableBound(int max_inflight_chunks, std::uint32_t chunk_bytes,
                      int num_switches, int ports)
{
    // Coordination guarantees all GPUs' outstanding mergeable
    // requests reference the same chunk set, so the system-wide
    // footprint is bounded by ONE GPU's outstanding window, spread
    // across the switches/ports it hashes over — independent of the
    // number of GPUs (Sec. V-C.2).
    (void)num_switches;
    (void)ports;
    return static_cast<std::uint64_t>(max_inflight_chunks) *
           chunk_bytes;
}

} // namespace cais
