#include "analysis/bandwidth_probe.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cais
{

std::string
pct(double fraction, int width)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%*.1f%%", width - 1,
                  fraction * 100.0);
    return buf;
}

std::string
asciiBar(double fraction, int width)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    int fill = static_cast<int>(fraction * width + 0.5);
    std::string s(static_cast<std::size_t>(fill), '#');
    s.append(static_cast<std::size_t>(width - fill), '.');
    return s;
}

std::vector<double>
downsample(const std::vector<double> &series, int buckets)
{
    std::vector<double> out;
    if (series.empty() || buckets <= 0)
        return out;
    if (static_cast<int>(series.size()) <= buckets)
        return series;
    out.resize(static_cast<std::size_t>(buckets), 0.0);
    double per = static_cast<double>(series.size()) /
                 static_cast<double>(buckets);
    for (int b = 0; b < buckets; ++b) {
        std::size_t lo = static_cast<std::size_t>(b * per);
        std::size_t hi = static_cast<std::size_t>((b + 1) * per);
        hi = std::min(hi, series.size());
        if (hi <= lo)
            hi = lo + 1;
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            s += series[i];
        out[static_cast<std::size_t>(b)] =
            s / static_cast<double>(hi - lo);
    }
    return out;
}

std::string
renderSeries(const std::vector<double> &series, Cycle bin_width,
             int max_rows)
{
    std::ostringstream os;
    auto ds = downsample(series, max_rows);
    double per_row = series.empty()
        ? 1.0
        : static_cast<double>(series.size()) /
              static_cast<double>(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
        double t_us = static_cast<double>(i) * per_row *
                      static_cast<double>(bin_width) / 1000.0;
        char head[48];
        std::snprintf(head, sizeof(head), "%8.1f us  %s  ", t_us,
                      pct(ds[i]).c_str());
        os << head << asciiBar(ds[i]) << "\n";
    }
    return os.str();
}

} // namespace cais
