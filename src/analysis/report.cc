#include "analysis/report.hh"

#include <cstdio>

#include "common/json.hh"

namespace cais
{

std::string
renderMetricsReport(const RunConfig &cfg, const RunResult &r,
                    const MetricSnapshot &snap)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", metricsSchemaVersion);
    w.field("strategy", r.strategy);
    w.field("workload", r.workload);

    w.key("config").beginObject()
        .field("numGpus", cfg.numGpus)
        .field("numSwitches", cfg.numSwitches)
        .field("seed", cfg.seed)
        .field("perGpuBwPerDir", cfg.perGpuBwPerDir)
        .field("linkLatency", static_cast<std::uint64_t>(
                                  cfg.linkLatency))
        .field("chunkBytes", static_cast<std::uint64_t>(
                                 cfg.chunkBytes))
        .field("mergeTableEntriesPerPort", cfg.mergeTableEntriesPerPort)
        .field("mergeTableBytesPerPort", cfg.mergeTableBytesPerPort)
        .field("unboundedMergeTable", cfg.unboundedMergeTable)
        .field("mergeTimeout", static_cast<std::uint64_t>(
                                   cfg.mergeTimeout))
        .field("utilBinWidth", static_cast<std::uint64_t>(
                                   cfg.utilBinWidth))
        .field("traceSampleCycles", static_cast<std::uint64_t>(
                                        cfg.traceSampleCycles))
        .endObject();

    w.key("result").beginObject()
        .field("makespan", static_cast<std::uint64_t>(r.makespan))
        .field("makespanUs", r.makespanUs())
        .field("eventsExecuted", r.eventsExecuted)
        .field("avgUtil", r.avgUtil)
        .field("upUtil", r.upUtil)
        .field("dnUtil", r.dnUtil)
        .field("gpuUtil", r.gpuUtil)
        .field("wireBytes", r.wireBytes)
        .field("staggerUs", r.staggerUs)
        .field("staggerSamples", r.staggerSamples)
        .field("peakMergeBytes", r.peakMergeBytes)
        .field("mergeLoadReqs", r.mergeLoadReqs)
        .field("mergeRedReqs", r.mergeRedReqs)
        .field("mergeLoadHits", r.mergeLoadHits)
        .field("mergeRedHits", r.mergeRedHits)
        .field("mergeFetches", r.mergeFetches)
        .field("lruEvictions", r.lruEvictions)
        .field("timeoutEvictions", r.timeoutEvictions)
        .field("throttleHints", r.throttleHints)
        .field("sessionsClosed", r.sessionsClosed)
        .field("commKernelCycles", static_cast<std::uint64_t>(
                                       r.commKernelCycles))
        .field("computeKernelCycles", static_cast<std::uint64_t>(
                                          r.computeKernelCycles))
        .endObject();

    // Static analytical bounds (analysis/bound_model.hh), harvested
    // alongside the simulated result so report tooling can render
    // sim-vs-bound ratios from the one document.
    w.key("bound").beginObject()
        .field("composite", static_cast<std::uint64_t>(
                                r.boundComposite))
        .field("smCompute", static_cast<std::uint64_t>(
                                r.boundCompute))
        .field("hbm", static_cast<std::uint64_t>(r.boundHbm))
        .field("linkSerialization", static_cast<std::uint64_t>(
                                        r.boundLink))
        .field("mergeService", static_cast<std::uint64_t>(
                                   r.boundMerge))
        .field("criticalPath", static_cast<std::uint64_t>(
                                   r.boundCritPath))
        .field("binding", r.boundBinding)
        .endObject();

    w.key("metrics");
    snap.writeJson(w);

    w.key("kernels").beginArray();
    for (const KernelTiming &k : r.kernels) {
        w.beginObject()
            .field("name", k.name)
            .field("start", static_cast<std::uint64_t>(k.start))
            .field("finish", static_cast<std::uint64_t>(k.finish))
            .field("comm", k.comm)
            .endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

bool
writeMetricsReport(const std::string &path, const RunConfig &cfg,
                   const RunResult &r, const MetricSnapshot &snap)
{
    std::string doc = renderMetricsReport(cfg, r, snap);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok && n == doc.size();
}

} // namespace cais
