/**
 * @file
 * cais-bound: static analytical performance-bound model (DESIGN.md
 * §6h). From a constructed, lowered — but not yet run — System, the
 * analyzer derives per-resource lower bounds on the makespan:
 *
 *  - smCompute: per-GPU SM roofline. Every thread block's compute
 *    cycles (the gemm_model tile cost) must be served by the GPU's
 *    numSms x ctasPerSm CTA slots; with per-TB jitter enabled the
 *    multiplier is clamped at 0.5, so half the nominal work is the
 *    guaranteed floor.
 *  - hbm: fabric-facing HBM traffic each GPU must serialize — remote
 *    reads served at the home GPU, remote and merged writes landing
 *    there. Mergeable traffic is counted once per unique chunk
 *    (perfect-merging assumption), so the bound never exceeds what
 *    the merge tier can save.
 *  - linkSerialization: wire bytes each GPU must inject (requests and
 *    payload pushes) and absorb (pull responses, landing writes)
 *    against its aggregate per-direction injection bandwidth. The
 *    aggregate form is routing-agnostic: however chunks spread over
 *    rails or switches, the per-GPU bundle moves at most
 *    perGpuBytesPerCycle per direction.
 *  - mergeService: the merge tier must move every unique mergeable
 *    chunk at least once between the home port and the merge unit
 *    (fetches up, merged writes down); per home GPU, per direction.
 *    A strict subset of the link traffic, reported separately to
 *    quantify the in-switch merging floor.
 *  - criticalPath: the longest path through the kernel dependency
 *    graph, each kernel weighted by its launch overhead plus
 *    max(compute floor, pull round-trip floor).
 *
 * Every term deliberately under-counts (pads, headers of merged
 * packets, NVLS fan-out and protocol latencies are dropped when their
 * delivery guarantee is not structural), so the composite bound is
 * sound: a simulated makespan below it is a simulator bug, which is
 * exactly what verify rule V8 checks post-run.
 */

#ifndef CAIS_ANALYSIS_BOUND_MODEL_HH
#define CAIS_ANALYSIS_BOUND_MODEL_HH

#include <string>

#include "common/types.hh"

namespace cais
{

class JsonWriter;
class System;

/** Schema tag of the JSON document cais_bound emits. */
inline constexpr const char *boundSchemaVersion = "cais-bound-v1";

/**
 * Seeded-defect hooks (testing the V8 gate, like verify's
 * extraCouplings): scales < 1 shrink the modelled SM / link
 * throughput, inflating the bound so V8 trips on a healthy run.
 */
struct BoundOptions
{
    double smThroughputScale = 1.0;
    double linkBandwidthScale = 1.0;
};

/** Per-resource lower bounds on the makespan, in cycles. */
struct BoundResult
{
    Cycle smCompute = 0;
    Cycle hbm = 0;
    Cycle linkSerialization = 0;
    Cycle mergeService = 0;
    Cycle criticalPath = 0;

    /** max over the resource classes. */
    Cycle composite = 0;

    /** Name of the binding (maximal) resource class. */
    std::string binding;

    /** Bound of the class named @p resource; 0 for unknown names. */
    Cycle byName(const std::string &resource) const;

    /** cais-bound-v1 JSON document (common/json.hh writer). */
    std::string json() const;

    /** Write this result as one JSON object into @p w (used by
     *  json() and by cais_bound's aggregate document). */
    void writeJson(JsonWriter &w) const;
};

/**
 * Compute the static bound for a constructed System. Read-only and
 * event-free: it walks the kernel descriptors and the configuration,
 * so calling it before or after run() yields the same result and a
 * bounded run stays bit-identical to an unbounded one.
 */
BoundResult computeBound(const System &sys,
                         const BoundOptions &opts = {});

} // namespace cais

#endif // CAIS_ANALYSIS_BOUND_MODEL_HH
