/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) exporter for simulation
 * timelines: per-GPU kernel spans, switch merge activity instants,
 * and link-utilization counter tracks. Load the emitted JSON in
 * Perfetto to inspect how CAIS pipelines kernels where the baselines
 * serialize.
 */

#ifndef CAIS_ANALYSIS_TRACE_HH
#define CAIS_ANALYSIS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cais
{

/**
 * Collects trace events and renders Chrome trace-event JSON.
 *
 * Recording is thread-safe: under sharded execution (DESIGN.md §6f)
 * switch-side hooks fire from worker threads. Rendering sorts
 * events into a canonical (ts, pid, tid, ...) order, so a sharded
 * trace is byte-identical to the sequential run's.
 */
class TraceCollector
{
  public:
    /**
     * Complete ("X") event: a span on a track.
     * @param pid process lane (0 = GPUs, 1 = fabric).
     * @param tid thread lane within the process (e.g. GPU id).
     */
    void addSpan(const std::string &name, const std::string &category,
                 int pid, int tid, Cycle start, Cycle end);

    /** Instant ("i") event. */
    void addInstant(const std::string &name,
                    const std::string &category, int pid, int tid,
                    Cycle at);

    /** Counter ("C") sample (e.g. link utilization percent). */
    void addCounter(const std::string &name, int pid, Cycle at,
                    double value);

    /** Label a (pid, tid) lane (thread_name metadata). */
    void nameLane(int pid, int tid, const std::string &name);

    /** Label a pid (process_name metadata). */
    void nameProcess(int pid, const std::string &name);

    std::size_t numEvents() const
    {
        std::lock_guard<std::mutex> lk(mu);
        return events.size();
    }

    /** Render the whole trace as Chrome trace-event JSON. */
    std::string toJson() const;

    /** Write toJson() to @p path; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char phase;            // 'X', 'i', 'C', 'M'
        std::string name;
        std::string category;
        int pid;
        int tid;
        Cycle ts;
        Cycle dur;             // X only
        double value;          // C only
        std::string metaValue; // M only
    };

    mutable std::mutex mu;
    std::vector<Event> events;
};

} // namespace cais

#endif // CAIS_ANALYSIS_TRACE_HH
