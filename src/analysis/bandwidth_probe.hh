/**
 * @file
 * Reporting helpers for the bandwidth-utilization experiments
 * (Figs. 15/16): formatted tables and ASCII renderings of
 * utilization-over-time series for terminal output.
 */

#ifndef CAIS_ANALYSIS_BANDWIDTH_PROBE_HH
#define CAIS_ANALYSIS_BANDWIDTH_PROBE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cais
{

/** Render a fraction as a fixed-width percentage, e.g. " 90.2%". */
std::string pct(double fraction, int width = 6);

/** One-line ASCII bar of @p fraction (0..1) with @p width cells. */
std::string asciiBar(double fraction, int width = 40);

/**
 * Render a utilization time series as rows of "t_us  frac  bar",
 * downsampled to at most @p max_rows rows.
 */
std::string renderSeries(const std::vector<double> &series,
                         Cycle bin_width, int max_rows = 24);

/** Downsample @p series to @p buckets means. */
std::vector<double> downsample(const std::vector<double> &series,
                               int buckets);

} // namespace cais

#endif // CAIS_ANALYSIS_BANDWIDTH_PROBE_HH
