#include "analysis/verify.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "analysis/bound_model.hh"
#include "analysis/causal_profile.hh"

#include "common/json.hh"
#include "common/log.hh"
#include "common/nodemask.hh"
#include "noc/network.hh"

namespace cais
{
namespace verify
{

namespace
{

const char *
vcClassName(int v)
{
    switch (v) {
      case 0: return "request";
      case 1: return "response";
      case 2: return "reduction";
      case 3: return "multicast";
      case 4: return "sync";
      case 5: return "control";
      default: return "data";
    }
}

const RuleInfo &
ruleInfo(const char *id)
{
    for (const RuleInfo &r : ruleTable())
        if (std::string(id) == r.id)
            return r;
    static const RuleInfo unknown{"??", "", ""};
    return unknown;
}

struct Ctx
{
    const System &sys;
    const Options &opts;
    std::vector<Diagnostic> &out;

    bool
    enabled(const char *rule) const
    {
        return opts.suppress.count(rule) == 0;
    }

    void
    report(const char *rule, std::string message,
           std::vector<std::string> path = {})
    {
        out.push_back({rule, std::move(message), ruleInfo(rule).hint,
                       std::move(path)});
    }
};

// ------------------------------------------------------------------
// V1: channel-dependency-graph acyclicity (Dally & Seitz)
// ------------------------------------------------------------------

/**
 * One protocol coupling: a node that received a class-`from` packet
 * emits a class-`to` packet on the opposite link direction. Together
 * with the switch forwarding paths these generate every edge of the
 * channel-dependency graph.
 */
struct Coupling
{
    VcClass from;
    VcClass to;
};

/** Switch-turn couplings (uplink arrival -> downlink emission),
 *  mirroring the merge unit, NVLS unit and group sync table. */
const std::vector<Coupling> &
switchCouplings()
{
    static const std::vector<Coupling> c = {
        // Plain forwarding keeps the class (readReq/readResp/
        // writeReq/writeAck unicast between GPUs).
        {VcClass::request, VcClass::request},
        {VcClass::response, VcClass::response},
        {VcClass::reduction, VcClass::reduction},
        {VcClass::control, VcClass::control},
        // Merge unit: caisLoadReq opens a fetch (readReq to home);
        // the returning readResp produces caisLoadResp broadcasts;
        // caisRedReq completion emits the merged write; throttling
        // feedback rides the control class.
        {VcClass::response, VcClass::response},
        {VcClass::reduction, VcClass::control},
        // NVLS unit: multimem.st replicates as multicast writes plus
        // a posted-store ack; multimem.ld_reduce fetches via readReq
        // and responds on the response class; multimem.red updates
        // every replica on the reduction class.
        {VcClass::multicast, VcClass::multicast},
        {VcClass::multicast, VcClass::control},
        // Group sync table: registration in, release broadcast out.
        {VcClass::sync, VcClass::sync},
    };
    return c;
}

/** GPU-turn couplings (downlink arrival -> uplink emission): the hub
 *  serves reads with data responses and acks landed writes. */
const std::vector<Coupling> &
gpuCouplings()
{
    static const std::vector<Coupling> c = {
        {VcClass::request, VcClass::response},
        {VcClass::reduction, VcClass::control},
        {VcClass::multicast, VcClass::control},
    };
    return c;
}

/** Leaf-to-spine couplings: everything a leaf emits upstream keeps
 *  its class — plain unicast transit, the merge proxy fetch
 *  (caisLoadReq), partial reductions (caisRedReq), the NVLS upstream
 *  legs and sync registrations are all class-identity. */
const std::vector<Coupling> &
leafUpCouplings()
{
    static const std::vector<Coupling> c = {
        {VcClass::request, VcClass::request},
        {VcClass::response, VcClass::response},
        {VcClass::reduction, VcClass::reduction},
        {VcClass::multicast, VcClass::multicast},
        {VcClass::sync, VcClass::sync},
        {VcClass::control, VcClass::control},
    };
    return c;
}

/** Channel index space: (direction, gpu, switch, vc). */
struct ChannelGraph
{
    int G, S, V;
    bool unified;

    int
    id(int dir, GpuId g, SwitchId s, int v) const
    {
        return ((dir * G + g) * S + s) * V + v;
    }

    int
    count() const
    {
        return 2 * G * S * V;
    }

    std::string
    name(int node) const
    {
        int v = node % V;
        int rest = node / V;
        int s = rest % S;
        rest /= S;
        int g = rest % G;
        int dir = rest / G;
        if (dir == 0)
            return strfmt("gpu%d->sw%d vc%d(%s)", g, s, v,
                          vcClassName(v));
        return strfmt("sw%d->gpu%d vc%d(%s)", s, g, v,
                      vcClassName(v));
    }

    int
    vcOf(VcClass c) const
    {
        return static_cast<int>(policedVc(c, unified));
    }
};

/** Sort/dedupe adjacency, then DFS for the first back edge (in
 *  ascending node order, so reports are deterministic). @p name maps
 *  a channel node id to its diagnostic label. */
void
reportFirstChannelCycle(
    Ctx &cx, std::vector<std::vector<int>> &adj,
    const std::function<std::string(int)> &name)
{
    for (auto &targets : adj) {
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
    }

    const int count = static_cast<int>(adj.size());
    std::vector<std::uint8_t> color(adj.size(), 0);
    std::vector<int> pathStack;
    for (int root = 0; root < count; ++root) {
        if (color[static_cast<std::size_t>(root)] != 0)
            continue;
        // Frames of (node, next-child index).
        std::vector<std::pair<int, std::size_t>> frames;
        frames.emplace_back(root, 0);
        color[static_cast<std::size_t>(root)] = 1;
        pathStack = {root};
        while (!frames.empty()) {
            auto &[node, next] = frames.back();
            const auto &targets =
                adj[static_cast<std::size_t>(node)];
            if (next < targets.size()) {
                int t = targets[next++];
                if (color[static_cast<std::size_t>(t)] == 1) {
                    // Back edge: pathStack from t's position onward
                    // plus the edge back to t is the cycle.
                    auto it = std::find(pathStack.begin(),
                                        pathStack.end(), t);
                    std::vector<std::string> cyc;
                    for (; it != pathStack.end(); ++it)
                        cyc.push_back(name(*it));
                    cyc.push_back(name(t));
                    cx.report(
                        "V1",
                        strfmt("channel-dependency cycle over %zu "
                               "port/VC channels: a filled buffer on "
                               "each waits on the next, so the fabric "
                               "can deadlock",
                               cyc.size() - 1),
                        std::move(cyc));
                    return;
                }
                if (color[static_cast<std::size_t>(t)] == 0) {
                    color[static_cast<std::size_t>(t)] = 1;
                    frames.emplace_back(t, 0);
                    pathStack.push_back(t);
                }
            } else {
                color[static_cast<std::size_t>(node)] = 2;
                frames.pop_back();
                pathStack.pop_back();
            }
        }
    }
}

/**
 * Multi-tier channel-dependency graph. Four channel families --
 * GPU->leaf (U1) and leaf->GPU (D1) indexed by (gpu, rail), and
 * leaf->spine (U2) / spine->leaf (D2) indexed by (leaf, spine) --
 * with turn edges mirroring the tiered protocol: a leaf turns local
 * traffic down with the flat coupling set and forwards/aggregates
 * upstream class-identically; the spine turns every upstream arrival
 * down with the flat coupling set; a leaf fans spine traffic out to
 * its local GPUs; GPUs couple downlink arrivals to uplink emissions
 * exactly as on the flat fabric.
 */
void
checkV1Tiered(Ctx &cx)
{
    const FabricParams &p = cx.sys.config().fabric;
    const int G = p.numGpus, V = p.sw.numVcs;
    const int rails = p.railsPerGroup, L = p.numLeaves();
    const int P = p.numSpines, gpp = p.gpusPerGroup();
    const bool unified = p.sw.unifiedDataVc;

    const int d1 = G * rails * V;
    const int u2 = 2 * G * rails * V;
    const int d2 = u2 + L * P * V;
    const int total = d2 + P * L * V;
    auto U1 = [&](GpuId g, int r, int v) {
        return (g * rails + r) * V + v;
    };
    auto D1 = [&](GpuId g, int r, int v) {
        return d1 + (g * rails + r) * V + v;
    };
    auto U2 = [&](int l, int sp, int v) {
        return u2 + (l * P + sp) * V + v;
    };
    auto D2 = [&](int sp, int l, int v) {
        return d2 + (sp * L + l) * V + v;
    };
    auto vcOf = [&](VcClass c) {
        return static_cast<int>(policedVc(c, unified));
    };

    auto name = [=](int node) -> std::string {
        if (node < u2) {
            bool down = node >= d1;
            int idx = down ? node - d1 : node;
            int v = idx % V;
            int gr = idx / V;
            int r = gr % rails;
            GpuId g = gr / rails;
            int grp = g / gpp;
            if (down)
                return strfmt("leaf%d.sw%d->gpu%d vc%d(%s)", grp, r,
                              g, v, vcClassName(v));
            return strfmt("gpu%d->leaf%d.sw%d vc%d(%s)", g, grp, r, v,
                          vcClassName(v));
        }
        bool down = node >= d2;
        int idx = down ? node - d2 : node - u2;
        int v = idx % V;
        int lp = idx / V;
        int l = down ? lp % L : lp / P;
        int sp = down ? lp / L : lp % P;
        if (down)
            return strfmt("spine.sw%d->leaf%d.sw%d vc%d(%s)", sp,
                          l / rails, l % rails, v, vcClassName(v));
        return strfmt("leaf%d.sw%d->spine.sw%d vc%d(%s)", l / rails,
                      l % rails, sp, v, vcClassName(v));
    };

    std::vector<std::vector<int>> adj(
        static_cast<std::size_t>(total));
    auto addEdge = [&](int a, int b) {
        adj[static_cast<std::size_t>(a)].push_back(b);
    };

    auto leafLocalTurn = [&](VcClass from, VcClass to) {
        int a = vcOf(from), b = vcOf(to);
        for (int grp = 0; grp < p.numGroups; ++grp)
            for (int r = 0; r < rails; ++r)
                for (int gi = 0; gi < gpp; ++gi)
                    for (int di = 0; di < gpp; ++di)
                        addEdge(U1(grp * gpp + gi, r, a),
                                D1(grp * gpp + di, r, b));
    };
    auto leafUpTurn = [&](VcClass from, VcClass to) {
        int a = vcOf(from), b = vcOf(to);
        for (GpuId g = 0; g < G; ++g)
            for (int r = 0; r < rails; ++r)
                for (int sp = 0; sp < P; ++sp)
                    addEdge(U1(g, r, a),
                            U2((g / gpp) * rails + r, sp, b));
    };
    auto spineTurn = [&](VcClass from, VcClass to) {
        int a = vcOf(from), b = vcOf(to);
        for (int sp = 0; sp < P; ++sp)
            for (int l = 0; l < L; ++l)
                for (int l2 = 0; l2 < L; ++l2)
                    addEdge(U2(l, sp, a), D2(sp, l2, b));
    };
    auto leafDownTurn = [&](VcClass from, VcClass to) {
        int a = vcOf(from), b = vcOf(to);
        for (int sp = 0; sp < P; ++sp)
            for (int l = 0; l < L; ++l) {
                int grp = l / rails, r = l % rails;
                for (int di = 0; di < gpp; ++di)
                    addEdge(D2(sp, l, a),
                            D1(grp * gpp + di, r, b));
            }
    };
    auto gpuTurn = [&](VcClass from, VcClass to) {
        int a = vcOf(from), b = vcOf(to);
        for (GpuId g = 0; g < G; ++g)
            for (int r = 0; r < rails; ++r)
                addEdge(D1(g, r, a), U1(g, r, b));
    };

    for (const Coupling &c : switchCouplings()) {
        leafLocalTurn(c.from, c.to);
        spineTurn(c.from, c.to);
        leafDownTurn(c.from, c.to);
    }
    for (const Coupling &c : leafUpCouplings())
        leafUpTurn(c.from, c.to);
    for (const Coupling &c : gpuCouplings())
        gpuTurn(c.from, c.to);
    for (const ExtraCoupling &c : cx.opts.extraCouplings) {
        if (c.atGpu) {
            gpuTurn(c.from, c.to);
        } else {
            leafLocalTurn(c.from, c.to);
            spineTurn(c.from, c.to);
            leafDownTurn(c.from, c.to);
        }
    }

    reportFirstChannelCycle(cx, adj, name);
}

void
checkV1(Ctx &cx)
{
    const FabricParams &p = cx.sys.config().fabric;
    if (p.multiTier()) {
        checkV1Tiered(cx);
        return;
    }
    ChannelGraph cg{p.numGpus, p.numSwitches, p.sw.numVcs,
                    p.sw.unifiedDataVc};

    // Adjacency as sorted unique edge targets per node.
    std::vector<std::vector<int>> adj(
        static_cast<std::size_t>(cg.count()));
    auto addEdge = [&](int a, int b) {
        adj[static_cast<std::size_t>(a)].push_back(b);
    };

    auto switchTurn = [&](VcClass from, VcClass to) {
        int a = cg.vcOf(from), b = cg.vcOf(to);
        for (SwitchId s = 0; s < cg.S; ++s)
            for (GpuId g = 0; g < cg.G; ++g)
                for (GpuId d = 0; d < cg.G; ++d)
                    addEdge(cg.id(0, g, s, a), cg.id(1, d, s, b));
    };
    auto gpuTurn = [&](VcClass from, VcClass to) {
        int a = cg.vcOf(from), b = cg.vcOf(to);
        for (SwitchId s = 0; s < cg.S; ++s)
            for (GpuId g = 0; g < cg.G; ++g)
                addEdge(cg.id(1, g, s, a), cg.id(0, g, s, b));
    };

    for (const Coupling &c : switchCouplings())
        switchTurn(c.from, c.to);
    for (const Coupling &c : gpuCouplings())
        gpuTurn(c.from, c.to);
    for (const ExtraCoupling &c : cx.opts.extraCouplings) {
        if (c.atGpu)
            gpuTurn(c.from, c.to);
        else
            switchTurn(c.from, c.to);
    }

    reportFirstChannelCycle(
        cx, adj, [&cg](int node) { return cg.name(node); });
}

// ------------------------------------------------------------------
// V2: credit conservation per (link, VC)
// ------------------------------------------------------------------

void
checkV2(Ctx &cx)
{
    const FabricParams &p = cx.sys.config().fabric;
    const Fabric &fab = cx.sys.fabric();

    // Uplink credits represent switch input-VC buffer slots; the
    // batched credit-return scheme conserves (credits held + credits
    // in flight + buffer occupancy) == vcDepth only when the initial
    // grant matches the receiver capacity exactly.
    if (p.vcCredits != p.sw.vcDepth) {
        cx.report(
            "V2",
            strfmt("link credits (%d per VC) do not match the "
                   "switch input buffer depth (%d per VC): credits "
                   "and buffer slots cannot balance",
                   p.vcCredits, p.sw.vcDepth),
            {strfmt("vcCredits=%d", p.vcCredits),
             strfmt("sw.vcDepth=%d", p.sw.vcDepth)});
        return; // per-link scan would repeat the same mismatch
    }

    // forEachLink visits GPU-facing links in the historical (gpu,
    // switch, up-then-down) order, then the inter-switch tier links,
    // so flat-fabric diagnostics keep their seed ordering and
    // multi-tier shapes get the same conservation checks on every
    // leaf<->spine link.
    fab.forEachLink([&](const CreditLink &l) {
        if (l.numVcs() != p.sw.numVcs) {
            cx.report("V2",
                      strfmt("link %s has %d VCs but the switch "
                             "arbitrates %d",
                             l.name().c_str(), l.numVcs(),
                             p.sw.numVcs),
                      {l.name()});
            return;
        }
        for (int v = 0; v < l.numVcs(); ++v) {
            if (l.credits(v) != p.vcCredits) {
                cx.report(
                    "V2",
                    strfmt("link %s vc%d holds %d credits before the "
                           "first event (expected the full grant of "
                           "%d)",
                           l.name().c_str(), v, l.credits(v),
                           p.vcCredits),
                    {l.name(), strfmt("vc%d", v)});
                break;
            }
            if (l.queueLen(v) != 0) {
                cx.report(
                    "V2",
                    strfmt("link %s vc%d has %zu packets queued "
                           "before the first event",
                           l.name().c_str(), v, l.queueLen(v)),
                    {l.name(), strfmt("vc%d", v)});
                break;
            }
        }
    });
}

// ------------------------------------------------------------------
// V3: address-hash routing coverage for mergeable sessions
// ------------------------------------------------------------------

bool
isSessionKind(RemoteOpKind k)
{
    return k == RemoteOpKind::caisLoad || k == RemoteOpKind::caisRed ||
           k == RemoteOpKind::nvlsLdReduce ||
           k == RemoteOpKind::nvlsSt || k == RemoteOpKind::nvlsRed;
}

const char *
kindName(RemoteOpKind k)
{
    switch (k) {
      case RemoteOpKind::plainLoad: return "ld.global";
      case RemoteOpKind::plainWrite: return "st.global";
      case RemoteOpKind::nvlsLdReduce: return "multimem.ld_reduce";
      case RemoteOpKind::nvlsSt: return "multimem.st";
      case RemoteOpKind::nvlsRed: return "multimem.red";
      case RemoteOpKind::caisLoad: return "ld.cais";
      case RemoteOpKind::caisRed: return "red.cais";
      default: return "?";
    }
}

void
checkV3(Ctx &cx)
{
    const SystemConfig &sc = cx.sys.config();
    const std::uint64_t interleave = sc.fabric.interleaveBytes;
    const std::uint64_t chunk = sc.gpu.chunkBytes;
    const Fabric &fab = cx.sys.fabric();

    // Per (kernel, kind, base, bytes): contribution count per GPU and
    // the expected participant counts the issuers carry. std::map so
    // diagnostics come out in a deterministic order.
    struct OpGroup
    {
        std::map<GpuId, int> perGpu;
        std::set<int> expected;
    };
    std::map<std::tuple<KernelId, int, Addr, std::uint64_t>, OpGroup>
        groups;

    for (std::size_t ki = 0; ki < cx.sys.numKernels(); ++ki) {
        const KernelDesc &k =
            cx.sys.kernel(static_cast<KernelId>(ki));
        for (GpuId g = 0;
             g < static_cast<GpuId>(k.grids.size()); ++g) {
            for (const TbDesc &tb :
                 k.grids[static_cast<std::size_t>(g)]) {
                auto scanOps = [&](const std::vector<RemoteOp> &ops) {
                    for (const RemoteOp &op : ops) {
                        if (!isSessionKind(op.kind))
                            continue;
                        // A session chunk spanning two interleave
                        // blocks splits one address class across two
                        // switches (routing keys on the chunk base).
                        bool aligned = interleave % chunk == 0 &&
                                       op.base % chunk == 0;
                        if (!aligned) {
                            std::uint64_t off = 0;
                            int scanned = 0;
                            while (off < op.bytes &&
                                   scanned++ < 4096) {
                                std::uint64_t n = std::min<
                                    std::uint64_t>(chunk,
                                                   op.bytes - off);
                                Addr a = op.base + off;
                                if (a / interleave !=
                                    (a + n - 1) / interleave) {
                                    cx.report(
                                        "V3",
                                        strfmt(
                                            "kernel %s: %s chunk at "
                                            "0x%llx (+%llu B) "
                                            "straddles interleave "
                                            "blocks, splitting one "
                                            "address class across "
                                            "switches %d and %d",
                                            k.name.c_str(),
                                            kindName(op.kind),
                                            static_cast<unsigned long
                                                            long>(a),
                                            static_cast<unsigned long
                                                            long>(n),
                                            fab.routeAddr(a),
                                            fab.routeAddr(a + n -
                                                          1)),
                                        {k.name,
                                         strfmt("addr=0x%llx",
                                                static_cast<
                                                    unsigned long
                                                        long>(a)),
                                         strfmt("sw%d",
                                                fab.routeAddr(a)),
                                         strfmt("sw%d",
                                                fab.routeAddr(
                                                    a + n - 1))});
                                    break;
                                }
                                off += n;
                            }
                        }
                        if (op.kind == RemoteOpKind::caisRed ||
                            op.kind == RemoteOpKind::nvlsRed ||
                            op.kind == RemoteOpKind::caisLoad) {
                            OpGroup &grp = groups[{
                                k.id, static_cast<int>(op.kind),
                                op.base, op.bytes}];
                            ++grp.perGpu[g];
                            grp.expected.insert(op.expected);
                        }
                    }
                };
                scanOps(tb.pullOps);
                scanOps(tb.pushOps);
            }
        }
    }

    for (const auto &[key, grp] : groups) {
        const auto &[kid, kind, base, bytes] = key;
        const KernelDesc &k = cx.sys.kernel(kid);
        RemoteOpKind rk = static_cast<RemoteOpKind>(kind);
        if (grp.expected.size() > 1) {
            std::vector<std::string> path = {k.name,
                                             kindName(rk)};
            for (int e : grp.expected)
                path.push_back(strfmt("expected=%d", e));
            cx.report(
                "V3",
                strfmt("kernel %s: GPUs disagree on the expected "
                       "participant count of the %s session at "
                       "0x%llx",
                       k.name.c_str(), kindName(rk),
                       static_cast<unsigned long long>(base)),
                std::move(path));
            continue;
        }
        // Hierarchical merging localizes a session's participant
        // count per tier (tier.localExpected), which is well-defined
        // only for the two shapes the protocol produces: all G GPUs,
        // or all but the session's home. Any other count cannot be
        // attributed to leaves without knowing which GPUs abstain.
        if (sc.fabric.multiTier()) {
            int e = *grp.expected.begin();
            int G = cx.sys.numGpus();
            if (e > 0 && e != G && e != G - 1) {
                cx.report(
                    "V3",
                    strfmt("kernel %s: %s session at 0x%llx expects "
                           "%d participants on a multi-tier fabric "
                           "(hierarchical merging supports only all "
                           "%d GPUs or the %d non-home GPUs)",
                           k.name.c_str(), kindName(rk),
                           static_cast<unsigned long long>(base), e,
                           G, G - 1),
                    {k.name,
                     strfmt("addr=0x%llx",
                            static_cast<unsigned long long>(base)),
                     strfmt("expected=%d", e)});
                continue;
            }
        }
        // Reduction sessions complete only when exactly `expected`
        // contributions arrive; a participant-count mismatch stalls
        // the session (or trips the duplicate-contribution check).
        if (rk == RemoteOpKind::caisRed ||
            rk == RemoteOpKind::nvlsRed) {
            int expected = *grp.expected.begin();
            if (expected <= 0)
                expected = cx.sys.numGpus();
            int issuers = static_cast<int>(grp.perGpu.size());
            if (issuers != expected) {
                cx.report(
                    "V3",
                    strfmt("kernel %s: %s session at 0x%llx expects "
                           "%d contributions but %d GPU(s) issue it",
                           k.name.c_str(), kindName(rk),
                           static_cast<unsigned long long>(base),
                           expected, issuers),
                    {k.name, strfmt("addr=0x%llx",
                                    static_cast<unsigned long long>(
                                        base)),
                     strfmt("expected=%d", expected),
                     strfmt("issuers=%d", issuers)});
                continue;
            }
            for (const auto &[g, n] : grp.perGpu) {
                if (n != 1) {
                    cx.report(
                        "V3",
                        strfmt("kernel %s: GPU %d contributes %d "
                               "times to the %s session at 0x%llx "
                               "(exactly one contribution per GPU "
                               "closes the session)",
                               k.name.c_str(), g, n, kindName(rk),
                               static_cast<unsigned long long>(
                                   base)),
                        {k.name, strfmt("gpu%d", g),
                         strfmt("contribs=%d", n)});
                    break;
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// V4: TB-group / Group-Sync-Table consistency
// ------------------------------------------------------------------

void
checkV4(Ctx &cx)
{
    const SystemConfig &sc = cx.sys.config();
    const int G = cx.sys.numGpus();

    // The sync and merge tables track participants in a fixed-width
    // node mask; on multi-tier fabrics leaf-switch node ids register
    // alongside GPU ids, so the whole node-id space must fit.
    const int nodes = G + sc.fabric.numSwitches;
    if (nodes > NodeMask::capacity) {
        cx.report(
            "V4",
            strfmt("%d GPUs plus %d switches exceed the %d-entry "
                   "group-sync participant mask",
                   G, sc.fabric.numSwitches, NodeMask::capacity),
            {strfmt("numGpus=%d", G),
             strfmt("numSwitches=%d", sc.fabric.numSwitches)});
    }

    for (std::size_t ki = 0; ki < cx.sys.numKernels(); ++ki) {
        const KernelDesc &k =
            cx.sys.kernel(static_cast<KernelId>(ki));
        if (!k.preLaunchSync && !k.preAccessSync)
            continue;
        std::map<GroupId, std::map<GpuId, int>> members;
        for (GpuId g = 0;
             g < static_cast<GpuId>(k.grids.size()); ++g)
            for (const TbDesc &tb :
                 k.grids[static_cast<std::size_t>(g)])
                if (tb.group != invalidId)
                    ++members[tb.group][g];

        for (const auto &[group, perGpu] : members) {
            bool oversized = false;
            for (const auto &[g, n] : perGpu) {
                if (n > 1) {
                    cx.report(
                        "V4",
                        strfmt("kernel %s: TB group %lld has %d TBs "
                               "on GPU %d (the sync table counts "
                               "each GPU once, so extra TBs never "
                               "release)",
                               k.name.c_str(),
                               static_cast<long long>(group), n, g),
                        {k.name,
                         strfmt("group=%lld",
                                static_cast<long long>(group)),
                         strfmt("gpu%d", g), strfmt("tbs=%d", n)});
                    oversized = true;
                    break;
                }
            }
            if (oversized)
                continue;
            if (static_cast<int>(perGpu.size()) != G) {
                std::vector<std::string> path = {
                    k.name,
                    strfmt("group=%lld",
                           static_cast<long long>(group))};
                for (GpuId g = 0; g < G; ++g)
                    if (!perGpu.count(g))
                        path.push_back(strfmt("missing gpu%d", g));
                cx.report(
                    "V4",
                    strfmt("kernel %s: TB group %lld spans %zu "
                           "GPU(s) but the release broadcast waits "
                           "for all %d",
                           k.name.c_str(),
                           static_cast<long long>(group),
                           perGpu.size(), G),
                    std::move(path));
            }
        }
    }

    // Throttle-threshold reachability: the merge unit counts open
    // sessions per group, which is bounded by the merging-table entry
    // capacity and by the fleet-wide outstanding-load cap.
    const MergeParams &mp = sc.inswitch.merge;
    if (mp.throttleEnabled && mp.throttleThreshold > 0) {
        if (mp.tableBytesPerPort > 0 && mp.chunkBytes > 0) {
            std::uint64_t entries =
                mp.tableBytesPerPort / mp.chunkBytes;
            if (static_cast<std::uint64_t>(mp.throttleThreshold) >
                entries) {
                cx.report(
                    "V4",
                    strfmt("throttle threshold %d exceeds the %llu "
                           "merging-table entries per port, so the "
                           "hint level is unreachable",
                           mp.throttleThreshold,
                           static_cast<unsigned long long>(entries)),
                    {strfmt("throttleThreshold=%d",
                            mp.throttleThreshold),
                     strfmt("tableEntriesPerPort=%llu",
                            static_cast<unsigned long long>(
                                entries))});
            }
        }
        std::uint64_t fleetCap =
            static_cast<std::uint64_t>(G) *
            static_cast<std::uint64_t>(
                sc.gpu.maxCaisLoadOutstanding);
        if (static_cast<std::uint64_t>(mp.throttleThreshold) >
            fleetCap) {
            cx.report(
                "V4",
                strfmt("throttle threshold %d exceeds the fleet-wide "
                       "outstanding-request cap %llu (%d GPUs x %d), "
                       "so the hint level is unreachable",
                       mp.throttleThreshold,
                       static_cast<unsigned long long>(fleetCap), G,
                       sc.gpu.maxCaisLoadOutstanding),
                {strfmt("throttleThreshold=%d", mp.throttleThreshold),
                 strfmt("fleetCap=%llu",
                        static_cast<unsigned long long>(fleetCap))});
        }
    }
}

// ------------------------------------------------------------------
// V5: kernel-graph sanity
// ------------------------------------------------------------------

void
checkV5(Ctx &cx)
{
    const std::size_t N = cx.sys.numKernels();

    // Tracker -> producing kernels.
    std::map<int, std::vector<std::size_t>> producers;
    for (std::size_t ki = 0; ki < N; ++ki) {
        const KernelDesc &k =
            cx.sys.kernel(static_cast<KernelId>(ki));
        if (k.producesTracker != invalidId)
            producers[k.producesTracker].push_back(ki);
    }

    // Dependency edges: explicit kernelDeps plus tile-level
    // producer/consumer edges through the trackers.
    std::vector<std::vector<std::size_t>> adj(N);
    for (std::size_t ki = 0; ki < N; ++ki) {
        const KernelDesc &k =
            cx.sys.kernel(static_cast<KernelId>(ki));
        for (KernelId d : k.kernelDeps) {
            if (d < 0 || static_cast<std::size_t>(d) >= N) {
                cx.report("V5",
                          strfmt("kernel %s depends on unknown "
                                 "kernel id %d",
                                 k.name.c_str(), d),
                          {k.name, strfmt("dep=%d", d)});
                continue;
            }
            adj[static_cast<std::size_t>(d)].push_back(ki);
        }
        std::set<int> depTrackers;
        for (const auto &grid : k.grids)
            for (const TbDesc &tb : grid)
                for (const TileRef &ref : tb.deps)
                    if (ref.tracker != invalidId)
                        depTrackers.insert(ref.tracker);
        for (int t : depTrackers) {
            auto it = producers.find(t);
            if (it == producers.end())
                continue;
            for (std::size_t p : it->second)
                if (p != ki)
                    adj[p].push_back(ki);
        }
    }
    for (auto &targets : adj) {
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
    }

    auto kernelName = [&](std::size_t ki) {
        return cx.sys.kernel(static_cast<KernelId>(ki)).name;
    };

    // Cycle detection (DFS, deterministic order).
    std::vector<std::uint8_t> color(N, 0);
    std::vector<std::size_t> pathStack;
    bool cycleFound = false;
    for (std::size_t root = 0; root < N && !cycleFound; ++root) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> frames;
        frames.emplace_back(root, 0);
        color[root] = 1;
        pathStack = {root};
        while (!frames.empty() && !cycleFound) {
            auto &[node, next] = frames.back();
            if (next < adj[node].size()) {
                std::size_t t = adj[node][next++];
                if (color[t] == 1) {
                    auto it = std::find(pathStack.begin(),
                                        pathStack.end(), t);
                    std::vector<std::string> cyc;
                    for (; it != pathStack.end(); ++it)
                        cyc.push_back(kernelName(*it));
                    cyc.push_back(kernelName(t));
                    cx.report(
                        "V5",
                        strfmt("kernel dependency cycle over %zu "
                               "kernel(s): none of them can ever "
                               "launch",
                               cyc.size() - 1),
                        std::move(cyc));
                    cycleFound = true;
                    break;
                }
                if (color[t] == 0) {
                    color[t] = 1;
                    frames.emplace_back(t, 0);
                    pathStack.push_back(t);
                }
            } else {
                color[node] = 2;
                frames.pop_back();
                pathStack.pop_back();
            }
        }
    }
    if (cycleFound)
        return; // reachability below assumes a DAG

    // Reachability closure for the overlap analysis.
    std::vector<std::vector<bool>> reach(N,
                                         std::vector<bool>(N, false));
    for (std::size_t ki = N; ki-- > 0;) {
        // adj targets always have larger topological depth; a reverse
        // index sweep is not a topological order, so iterate to a
        // fixed point instead (N is small: one kernel per op stage).
        for (std::size_t t : adj[ki])
            reach[ki][t] = true;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t ki = 0; ki < N; ++ki)
            for (std::size_t t : adj[ki])
                for (std::size_t x = 0; x < N; ++x)
                    if (reach[t][x] && !reach[ki][x]) {
                        reach[ki][x] = true;
                        changed = true;
                    }
    }

    // Traffic direction of each kernel: +1 pure pull (stresses the
    // switch-to-GPU direction), -1 pure push (GPU-to-switch), 0 mixed
    // or local-only.
    std::vector<int> dir(N, 0);
    std::vector<bool> partial(N, false);
    for (std::size_t ki = 0; ki < N; ++ki) {
        const KernelDesc &k =
            cx.sys.kernel(static_cast<KernelId>(ki));
        std::uint64_t pull = 0, push = 0;
        for (const auto &grid : k.grids)
            for (const TbDesc &tb : grid) {
                for (const RemoteOp &op : tb.pullOps)
                    pull += op.bytes;
                for (const RemoteOp &op : tb.pushOps)
                    push += op.bytes;
            }
        if (pull > 0 && push == 0)
            dir[ki] = 1;
        else if (push > 0 && pull == 0)
            dir[ki] = -1;
        partial[ki] = k.smFrom > 0.0 || k.smTo < 1.0;
    }

    // Asymmetric-overlap pairs: SM-disjoint, unordered kernels that
    // both press the same link direction saturate it instead of
    // overlapping complementary traffic (Sec. III-C.2).
    for (std::size_t i = 0; i < N; ++i) {
        for (std::size_t j = i + 1; j < N; ++j) {
            if (!partial[i] || !partial[j])
                continue;
            if (dir[i] == 0 || dir[i] != dir[j])
                continue;
            if (reach[i][j] || reach[j][i])
                continue;
            const KernelDesc &a =
                cx.sys.kernel(static_cast<KernelId>(i));
            const KernelDesc &b =
                cx.sys.kernel(static_cast<KernelId>(j));
            bool disjoint = a.smTo <= b.smFrom || b.smTo <= a.smFrom;
            if (!disjoint)
                continue;
            cx.report(
                "V5",
                strfmt("asymmetric-overlap pair %s / %s runs on "
                       "disjoint SM partitions with no ordering but "
                       "both %s: the shared link direction "
                       "saturates instead of overlapping",
                       a.name.c_str(), b.name.c_str(),
                       dir[i] > 0 ? "pull" : "push"),
                {a.name, b.name, dir[i] > 0 ? "pull" : "push"});
        }
    }
}

// ------------------------------------------------------------------
// V6/V7: shard-domain model (DESIGN.md §6f)
// ------------------------------------------------------------------

/**
 * Shard hosting switch @p s when the fabric splits over @p shards
 * shards, with the Options seeded-defect override applied (the hook
 * lets tests mis-map one switch and watch V6/V7 catch it).
 */
int
shardOfSwitch(const Ctx &cx, SwitchId s, int shards)
{
    if (cx.opts.v7DomainOverrideSwitch == s)
        return cx.opts.v7DomainOverrideShard;
    return Fabric::switchShard(cx.sys.fabric().params(), s, shards);
}

/** Shard of fabric node @p node: GPUs (with the host and the kernel
 *  lifecycle) pin to shard 0, switches to their domain's shard. */
int
shardOfNode(const Ctx &cx, int node, int shards)
{
    const FabricParams &p = cx.sys.fabric().params();
    if (node < p.numGpus)
        return 0;
    return shardOfSwitch(cx, node - p.numGpus, shards);
}

/**
 * V6 — lookahead soundness. The conservative-PDES window every shard
 * advances behind (Fabric::crossShardLookahead) is only safe if no
 * cross-domain link is faster than the declared value, and only
 * tight (no wasted parallelism) if one link matches it exactly.
 * Recompute the minimum latency over all links whose endpoints map
 * to different domains — via the endpoint-reporting forEachLink, so
 * the walk sees exactly the links the packets use — for every shard
 * count the shape supports, and demand equality.
 */
void
checkV6(Ctx &cx)
{
    const Fabric &fab = cx.sys.fabric();
    const FabricParams &p = fab.params();
    const int domains = Fabric::numDomains(p);
    for (int shards = 2; shards <= domains; ++shards) {
        const Cycle declared = cx.opts.v6LookaheadOverride
                                   ? cx.opts.v6LookaheadOverride
                                   : Fabric::crossShardLookahead(
                                         p, shards);
        const CreditLink *minLink = nullptr;
        Cycle actual = 0;
        int minSrc = invalidId, minDst = invalidId;
        fab.forEachLink([&](const CreditLink &l,
                            const Fabric::LinkEndpoints &ep) {
            if (shardOfNode(cx, ep.srcNode, shards) ==
                shardOfNode(cx, ep.dstNode, shards))
                return;
            if (!minLink || l.latencyCycles() < actual) {
                minLink = &l;
                actual = l.latencyCycles();
                minSrc = ep.srcNode;
                minDst = ep.dstNode;
            }
        });
        if (!minLink) {
            if (declared != 0)
                cx.report(
                    "V6",
                    strfmt("declared cross-shard lookahead %llu for "
                           "%d shard(s) but no link crosses domains "
                           "(the shape cannot hide a window)",
                           static_cast<unsigned long long>(declared),
                           shards),
                    {strfmt("shards=%d", shards)});
            continue;
        }
        if (actual != declared)
            cx.report(
                "V6",
                strfmt("declared cross-shard lookahead %llu for %d "
                       "shard(s) does not equal the minimum "
                       "cross-domain link latency %llu (link %s, "
                       "node %d -> node %d)",
                       static_cast<unsigned long long>(declared),
                       shards,
                       static_cast<unsigned long long>(actual),
                       minLink->name().c_str(), minSrc, minDst),
                {strfmt("shards=%d", shards), minLink->name(),
                 strfmt("node %d -> node %d", minSrc, minDst),
                 strfmt("latency=%llu",
                        static_cast<unsigned long long>(actual)),
                 strfmt("declared=%llu",
                        static_cast<unsigned long long>(declared))});
    }
}

/**
 * V7 — domain closure. Two layers: (a) the static switchShard map
 * must place every switch on exactly one non-primary shard for every
 * supported shard count, with the rails of a leaf group and the
 * whole spine tier agreeing (a group's rails share chip state via
 * the GPU hub, and the spine tier arbitrates as one domain); (b) on
 * the constructed System, a link must run in split-delivery mode
 * exactly when its endpoints' domains differ — which also proves the
 * shard-0 closure: GPUs never host a switch, so every GPU<->switch
 * link crosses out of the host+GPU+kernel-lifecycle domain.
 */
void
checkV7(Ctx &cx)
{
    const Fabric &fab = cx.sys.fabric();
    const FabricParams &p = fab.params();
    const int domains = Fabric::numDomains(p);

    for (int shards = 2; shards <= domains; ++shards) {
        for (SwitchId s = 0; s < p.numSwitches; ++s) {
            int sh = shardOfSwitch(cx, s, shards);
            if (sh < 1 || sh >= shards)
                cx.report(
                    "V7",
                    strfmt("switch %d (node %d) maps to shard %d, "
                           "outside the switch-domain range [1, %d) "
                           "for %d shard(s)",
                           s, fab.switchNodeId(s), sh, shards,
                           shards),
                    {strfmt("shards=%d", shards),
                     strfmt("node %d", fab.switchNodeId(s)),
                     strfmt("shard %d", sh)});
        }
        if (!p.multiTier())
            continue;
        for (int g = 0; g < p.numGroups; ++g) {
            int first = shardOfSwitch(cx, p.leafIndex(g, 0), shards);
            for (int r = 1; r < p.railsPerGroup; ++r) {
                SwitchId leaf = p.leafIndex(g, r);
                int sh = shardOfSwitch(cx, leaf, shards);
                if (sh != first)
                    cx.report(
                        "V7",
                        strfmt("group %d rails disagree on their "
                               "shard for %d shard(s): rail 0 "
                               "(node %d) maps to shard %d but rail "
                               "%d (node %d) maps to shard %d",
                               g, shards,
                               fab.switchNodeId(p.leafIndex(g, 0)),
                               first, r, fab.switchNodeId(leaf), sh),
                        {strfmt("shards=%d", shards),
                         strfmt("node %d", fab.switchNodeId(leaf)),
                         strfmt("shard %d", sh),
                         strfmt("expected shard %d", first)});
            }
        }
        int spineFirst = shardOfSwitch(cx, p.numLeaves(), shards);
        for (int k = 1; k < p.numSpines; ++k) {
            SwitchId spine = p.numLeaves() + k;
            int sh = shardOfSwitch(cx, spine, shards);
            if (sh != spineFirst)
                cx.report(
                    "V7",
                    strfmt("spine tier disagrees on its shard for "
                           "%d shard(s): spine 0 (node %d) maps to "
                           "shard %d but spine %d (node %d) maps to "
                           "shard %d",
                           shards, fab.switchNodeId(p.numLeaves()),
                           spineFirst, k, fab.switchNodeId(spine),
                           sh),
                    {strfmt("shards=%d", shards),
                     strfmt("node %d", fab.switchNodeId(spine)),
                     strfmt("shard %d", sh),
                     strfmt("expected shard %d", spineFirst)});
        }
    }

    const int active = cx.sys.activeShards();
    fab.forEachLink([&](const CreditLink &l,
                        const Fabric::LinkEndpoints &ep) {
        bool cross =
            active > 1 && shardOfNode(cx, ep.srcNode, active) !=
                              shardOfNode(cx, ep.dstNode, active);
        if (cross == l.splitShards())
            return;
        if (cross)
            cx.report(
                "V7",
                strfmt("link %s crosses domains (node %d -> node %d "
                       "over %d shard(s)) but is not in "
                       "split-delivery mode: its events would bypass "
                       "the cross-shard outbox",
                       l.name().c_str(), ep.srcNode, ep.dstNode,
                       active),
                {strfmt("shards=%d", active), l.name(),
                 strfmt("node %d -> node %d", ep.srcNode,
                        ep.dstNode)});
        else
            cx.report(
                "V7",
                strfmt("link %s is in split-delivery mode but its "
                       "endpoints (node %d -> node %d) share a "
                       "domain at %d shard(s): split delivery "
                       "off-domain breaks the shard-0 closure",
                       l.name().c_str(), ep.srcNode, ep.dstNode,
                       active),
                {strfmt("shards=%d", active), l.name(),
                 strfmt("node %d -> node %d", ep.srcNode,
                        ep.dstNode)});
    });
}

} // namespace

// ------------------------------------------------------------------
// Public API
// ------------------------------------------------------------------

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
        {"V1",
         "virtual-channel channel-dependency graph must be acyclic "
         "across switch chips and credit links, including the "
         "leaf/spine tier hops of multi-tier fabrics",
         "break the coupling cycle: give the generated traffic class "
         "its own VC or decouple buffer hold from emission"},
        {"V2",
         "link credits, receiver buffer capacities and batched credit "
         "returns must balance per (link, VC)",
         "grant exactly the receiver buffer depth in credits "
         "(FabricParams::vcCredits == SwitchParams::vcDepth)"},
        {"V3",
         "every mergeable address class maps to exactly one switch "
         "(one rail per tier on multi-tier fabrics) and all GPUs "
         "agree on session membership",
         "align session bases to the chunk size, keep the interleave "
         "a multiple of it, and issue one contribution per "
         "participating GPU"},
        {"V4",
         "TB groups match the Group Sync Table: one TB per "
         "participating GPU on every GPU, masks and throttle "
         "thresholds within capacity",
         "emit one TB per (group, GPU) across all GPUs and keep the "
         "throttle threshold within table and outstanding-request "
         "capacity"},
        {"V5",
         "kernel and tile-level producer/consumer dependencies are "
         "acyclic; asymmetric-overlap pairs have complementary "
         "traffic directions",
         "remove the dependency back edge, or pair a pull-direction "
         "kernel with a push-direction one on the disjoint SM "
         "partition"},
        {"V6",
         "the declared cross-shard lookahead equals the minimum "
         "latency over every cross-domain link, for every shard "
         "count the shape supports",
         "recompute Fabric::crossShardLookahead from the link map: "
         "the conservative window must match the fastest link that "
         "crosses shard domains"},
        {"V7",
         "every switch maps to exactly one non-primary shard domain "
         "(rails of a group and the spine tier agree), and a link is "
         "split exactly when its endpoints' domains differ",
         "fix the Fabric::switchShard domain map or the link "
         "sink-queue binding so the conservative-PDES partition is "
         "closed over shard 0 = host + GPUs + kernel lifecycle"},
        {"V8",
         "the simulated makespan must be at least the static "
         "analytical bound of every resource class (SM compute, HBM, "
         "link serialization, merge service, kernel critical path)",
         "a makespan below the bound is a simulator bug: audit the "
         "resource model the diagnostic names, or the bound term if "
         "the model intentionally overlaps that cost"},
        {"V9",
         "when sim/bound exceeds the configured slack ratio, the "
         "causal profiler must attribute the slack (coverage >= 95%)",
         "profile the run (RunConfig::profile) and inspect the "
         "dominant wait class, or raise the slack ratio if the "
         "workload is legitimately far from its bound"},
    };
    return table;
}

std::string
VerifyResult::text() const
{
    if (diagnostics.empty())
        return "cais-verify: clean (0 diagnostics)\n";
    std::string out =
        strfmt("cais-verify: %zu diagnostic(s)\n", diagnostics.size());
    for (const Diagnostic &d : diagnostics) {
        out += "[" + d.id + "] " + d.message + "\n";
        if (!d.hint.empty())
            out += "  fix: " + d.hint + "\n";
        if (!d.path.empty()) {
            out += "  path: ";
            for (std::size_t i = 0; i < d.path.size(); ++i) {
                if (i)
                    out += " -> ";
                out += d.path[i];
            }
            out += "\n";
        }
    }
    return out;
}

std::string
VerifyResult::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

void
VerifyResult::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema", verifySchemaVersion);
    if (!strategy.empty())
        w.field("strategy", strategy);
    if (!workload.empty())
        w.field("workload", workload);
    w.key("counts").beginObject();
    for (const RuleInfo &r : ruleTable()) {
        std::uint64_t n = 0;
        for (const Diagnostic &d : diagnostics)
            if (d.id == r.id)
                ++n;
        w.field(r.id, n);
    }
    w.endObject();
    w.key("diagnostics").beginArray();
    for (const Diagnostic &d : diagnostics) {
        w.beginObject();
        w.field("id", d.id);
        w.field("message", d.message);
        w.field("hint", d.hint);
        w.key("path").beginArray();
        for (const std::string &p : d.path)
            w.value(p);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

VerifyResult
verifySystem(const System &sys, const Options &opts)
{
    VerifyResult r;
    r.strategy = opts.strategy;
    r.workload = opts.workload;
    Ctx cx{sys, opts, r.diagnostics};
    if (cx.enabled("V1"))
        checkV1(cx);
    if (cx.enabled("V2"))
        checkV2(cx);
    if (cx.enabled("V3"))
        checkV3(cx);
    if (cx.enabled("V4"))
        checkV4(cx);
    if (cx.enabled("V5"))
        checkV5(cx);
    if (cx.enabled("V6"))
        checkV6(cx);
    if (cx.enabled("V7"))
        checkV7(cx);
    return r;
}

VerifyResult
verifyRun(const StrategySpec &spec, const OpGraph &graph,
          const RunConfig &cfg, const Options &opts)
{
    cfg.validate();
    System sys(cfg.toSystemConfig(spec));
    GraphLowering lowering(sys, graph, spec.opts);
    lowering.lower();
    Options o = opts;
    if (o.strategy.empty())
        o.strategy = spec.name;
    return verifySystem(sys, o);
}

VerifyResult
verifyPostRun(const System &sys, const BoundResult &bound,
              Cycle makespan, const Attribution *attr,
              const Options &opts)
{
    (void)sys; // context only; the rules act on the finished numbers
    VerifyResult r;
    r.strategy = opts.strategy;
    r.workload = opts.workload;

    const std::pair<const char *, Cycle> classes[] = {
        {"smCompute", bound.smCompute},
        {"hbm", bound.hbm},
        {"linkSerialization", bound.linkSerialization},
        {"mergeService", bound.mergeService},
        {"criticalPath", bound.criticalPath},
    };

    if (!opts.suppress.count("V8")) {
        for (const auto &[name, cyc] : classes) {
            if (makespan >= cyc)
                continue;
            Diagnostic d;
            d.id = "V8";
            d.message = strfmt(
                "simulated makespan %llu cycles is below the static "
                "%s bound of %llu cycles (composite bound %llu, "
                "binding resource %s)",
                static_cast<unsigned long long>(makespan), name,
                static_cast<unsigned long long>(cyc),
                static_cast<unsigned long long>(bound.composite),
                bound.binding.c_str());
            d.hint =
                "a run faster than its resource floor is a simulator "
                "bug: audit the model behind the named resource, or "
                "the bound term if the cost is intentionally "
                "overlapped";
            d.path = {std::string("resource:") + name};
            r.diagnostics.push_back(std::move(d));
        }
    }

    if (opts.v9SlackRatio > 0.0 && !opts.suppress.count("V9") &&
        bound.composite > 0 &&
        static_cast<double>(makespan) >
            opts.v9SlackRatio * static_cast<double>(bound.composite)) {
        const bool explained = attr != nullptr &&
                               attr->coverage() >= 0.95;
        if (!explained) {
            std::size_t dom = 1; // dominant attributed class (skip
                                 // index 0 = unattributed)
            if (attr != nullptr) {
                for (std::size_t i = 2; i < attr->byClass.size(); ++i)
                    if (attr->byClass[i] > attr->byClass[dom])
                        dom = i;
            }
            Diagnostic d;
            d.id = "V9";
            const double ratio =
                static_cast<double>(makespan) /
                static_cast<double>(bound.composite);
            if (attr == nullptr) {
                d.message = strfmt(
                    "sim/bound ratio %.2f exceeds the slack threshold "
                    "%.2f (makespan %llu vs composite bound %llu, "
                    "binding %s) and no profiler attribution is "
                    "available to explain the slack",
                    ratio, opts.v9SlackRatio,
                    static_cast<unsigned long long>(makespan),
                    static_cast<unsigned long long>(bound.composite),
                    bound.binding.c_str());
            } else {
                d.message = strfmt(
                    "sim/bound ratio %.2f exceeds the slack threshold "
                    "%.2f (makespan %llu vs composite bound %llu, "
                    "binding %s) and the profiler explains only "
                    "%.1f%% of the makespan (dominant wait class %s)",
                    ratio, opts.v9SlackRatio,
                    static_cast<unsigned long long>(makespan),
                    static_cast<unsigned long long>(bound.composite),
                    bound.binding.c_str(), attr->coverage() * 100.0,
                    waitClassName(static_cast<WaitClass>(dom)));
            }
            d.hint =
                "profile the run (RunConfig::profile) and chase the "
                "dominant wait class, or raise boundSlackRatio if the "
                "workload legitimately runs this far from its bound";
            d.path = {std::string("binding:") + bound.binding};
            r.diagnostics.push_back(std::move(d));
        }
    }
    return r;
}

} // namespace verify
} // namespace cais
