/**
 * @file
 * Analytic hardware-overhead model (Sec. V-D): estimates the silicon
 * area of the CAIS switch extensions (CAM lookup table, merging-table
 * SRAM, reduction ALUs, group sync table) and of the GPU-side
 * synchronizer, under a 12 nm process. The paper reports ~0.50 mm^2
 * per switch (<1% of an NVSwitch die) and 0.019 mm^2 per GPU
 * (<0.01% of an H100).
 */

#ifndef CAIS_ANALYSIS_AREA_MODEL_HH
#define CAIS_ANALYSIS_AREA_MODEL_HH

#include <cstdint>
#include <string>

namespace cais
{

/** 12 nm technology constants (derived from published SRAM/logic
 *  densities; um^2 granularity). */
struct ProcessParams
{
    double sramUm2PerBit = 0.110;   ///< dense SRAM macro incl. periphery
    double camUm2PerBit = 0.60;     ///< TCAM/associative cell
    double fp32AdderUm2 = 500.0;    ///< pipelined FP32 adder
    double controlLogicUm2PerEntry = 20.0;

    /** Reference die sizes for percentage reporting. */
    double nvswitchDieMm2 = 294.0; ///< NVSwitch gen3 [17]
    double h100DieMm2 = 814.0;
};

/** CAIS switch-side configuration for the estimate. */
struct SwitchAreaConfig
{
    int ports = 8;                       ///< GPU-facing ports
    std::uint64_t mergeTableBytesPerPort = 40 * 1024;
    int camEntriesPerPort = 320;
    int camBitsPerEntry = 52;            ///< addr tag + type + slot
    int reductionLanesPerPort = 16;      ///< FP adders in the datapath
    int groupSyncEntries = 1024;
    int groupSyncBitsPerEntry = 80;      ///< group id + mask + count
};

/** GPU-side synchronizer configuration. */
struct GpuAreaConfig
{
    int syncTableEntries = 256;
    int syncBitsPerEntry = 96; ///< group id, phase, state, TB slot
};

/** Itemized area result in mm^2. */
struct AreaBreakdown
{
    double mergingTableMm2 = 0.0;
    double camMm2 = 0.0;
    double reductionAlusMm2 = 0.0;
    double groupSyncMm2 = 0.0;
    double controlMm2 = 0.0;
    double totalMm2 = 0.0;

    std::string str() const;
};

/** Estimate the per-switch CAIS extension area. */
AreaBreakdown switchExtensionArea(const SwitchAreaConfig &cfg,
                                  const ProcessParams &p);

/** Estimate the per-GPU synchronizer area. */
AreaBreakdown gpuSynchronizerArea(const GpuAreaConfig &cfg,
                                  const ProcessParams &p);

/**
 * System-wide merging-table bound (Sec. V-C.2): outstanding remote
 * requests of a single GPU, independent of GPU count.
 */
std::uint64_t systemMergeTableBound(int max_inflight_chunks,
                                    std::uint32_t chunk_bytes,
                                    int num_switches, int ports);

} // namespace cais

#endif // CAIS_ANALYSIS_AREA_MODEL_HH
