#include "analysis/trace.hh"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/json.hh"

namespace cais
{

void
TraceCollector::addSpan(const std::string &name,
                        const std::string &category, int pid, int tid,
                        Cycle start, Cycle end)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.value = 0.0;
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(std::move(e));
}

void
TraceCollector::addInstant(const std::string &name,
                           const std::string &category, int pid,
                           int tid, Cycle at)
{
    Event e;
    e.phase = 'i';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.dur = 0;
    e.value = 0.0;
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(std::move(e));
}

void
TraceCollector::addCounter(const std::string &name, int pid, Cycle at,
                           double value)
{
    Event e;
    e.phase = 'C';
    e.name = name;
    e.category = "counter";
    e.pid = pid;
    e.tid = 0;
    e.ts = at;
    e.dur = 0;
    e.value = value;
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(std::move(e));
}

void
TraceCollector::nameLane(int pid, int tid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(std::move(e));
}

void
TraceCollector::nameProcess(int pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.tid = 0;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    std::lock_guard<std::mutex> lk(mu);
    events.push_back(std::move(e));
}

std::string
TraceCollector::toJson() const
{
    // Canonical order: under sharded execution switch-side hooks
    // record from worker threads, so insertion order is
    // schedule-dependent; sorting on the full event value makes the
    // rendered trace a function of the simulated behaviour alone.
    std::vector<Event> sorted;
    {
        std::lock_guard<std::mutex> lk(mu);
        sorted = events;
    }
    auto key = [](const Event &e) {
        return std::tie(e.ts, e.pid, e.tid, e.phase, e.category,
                        e.name, e.dur, e.value, e.metaValue);
    };
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&key](const Event &a, const Event &b) {
        return key(a) < key(b);
    });

    // Trace-event time is microseconds; simulation cycles are ns.
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();
    for (const Event &e : sorted) {
        w.beginObject();
        w.field("ph", std::string(1, e.phase));
        w.field("pid", e.pid).field("tid", e.tid);
        w.field("ts", static_cast<double>(e.ts) / 1000.0);
        switch (e.phase) {
          case 'X':
            w.field("dur", static_cast<double>(e.dur) / 1000.0);
            w.field("name", e.name).field("cat", e.category);
            break;
          case 'i':
            w.field("s", "t");
            w.field("name", e.name).field("cat", e.category);
            break;
          case 'C':
            w.field("name", e.name);
            w.key("args").beginObject()
                .field("value", e.value).endObject();
            break;
          case 'M':
            w.field("name", e.name);
            w.key("args").beginObject()
                .field("name", e.metaValue).endObject();
            break;
          default:
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
TraceCollector::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return n == json.size();
}

} // namespace cais
