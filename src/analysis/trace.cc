#include "analysis/trace.hh"

#include <cstdio>
#include <sstream>

namespace cais
{

void
TraceCollector::addSpan(const std::string &name,
                        const std::string &category, int pid, int tid,
                        Cycle start, Cycle end)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.value = 0.0;
    events.push_back(std::move(e));
}

void
TraceCollector::addInstant(const std::string &name,
                           const std::string &category, int pid,
                           int tid, Cycle at)
{
    Event e;
    e.phase = 'i';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.dur = 0;
    e.value = 0.0;
    events.push_back(std::move(e));
}

void
TraceCollector::addCounter(const std::string &name, int pid, Cycle at,
                           double value)
{
    Event e;
    e.phase = 'C';
    e.name = name;
    e.category = "counter";
    e.pid = pid;
    e.tid = 0;
    e.ts = at;
    e.dur = 0;
    e.value = value;
    events.push_back(std::move(e));
}

void
TraceCollector::nameLane(int pid, int tid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    events.push_back(std::move(e));
}

void
TraceCollector::nameProcess(int pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.tid = 0;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    events.push_back(std::move(e));
}

std::string
TraceCollector::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
TraceCollector::toJson() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":"
           << static_cast<double>(e.ts) / 1000.0; // us in trace time
        switch (e.phase) {
          case 'X':
            os << ",\"dur\":" << static_cast<double>(e.dur) / 1000.0
               << ",\"name\":\"" << escape(e.name) << "\",\"cat\":\""
               << escape(e.category) << "\"";
            break;
          case 'i':
            os << ",\"s\":\"t\",\"name\":\"" << escape(e.name)
               << "\",\"cat\":\"" << escape(e.category) << "\"";
            break;
          case 'C':
            os << ",\"name\":\"" << escape(e.name)
               << "\",\"args\":{\"value\":" << e.value << "}";
            break;
          case 'M':
            os << ",\"name\":\"" << escape(e.name)
               << "\",\"args\":{\"name\":\"" << escape(e.metaValue)
               << "\"}";
            break;
          default:
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
TraceCollector::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return n == json.size();
}

} // namespace cais
