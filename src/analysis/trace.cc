#include "analysis/trace.hh"

#include <cstdio>

#include "common/json.hh"

namespace cais
{

void
TraceCollector::addSpan(const std::string &name,
                        const std::string &category, int pid, int tid,
                        Cycle start, Cycle end)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.value = 0.0;
    events.push_back(std::move(e));
}

void
TraceCollector::addInstant(const std::string &name,
                           const std::string &category, int pid,
                           int tid, Cycle at)
{
    Event e;
    e.phase = 'i';
    e.name = name;
    e.category = category;
    e.pid = pid;
    e.tid = tid;
    e.ts = at;
    e.dur = 0;
    e.value = 0.0;
    events.push_back(std::move(e));
}

void
TraceCollector::addCounter(const std::string &name, int pid, Cycle at,
                           double value)
{
    Event e;
    e.phase = 'C';
    e.name = name;
    e.category = "counter";
    e.pid = pid;
    e.tid = 0;
    e.ts = at;
    e.dur = 0;
    e.value = value;
    events.push_back(std::move(e));
}

void
TraceCollector::nameLane(int pid, int tid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    events.push_back(std::move(e));
}

void
TraceCollector::nameProcess(int pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.tid = 0;
    e.ts = 0;
    e.dur = 0;
    e.value = 0.0;
    e.metaValue = name;
    events.push_back(std::move(e));
}

std::string
TraceCollector::toJson() const
{
    // Trace-event time is microseconds; simulation cycles are ns.
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();
    for (const Event &e : events) {
        w.beginObject();
        w.field("ph", std::string(1, e.phase));
        w.field("pid", e.pid).field("tid", e.tid);
        w.field("ts", static_cast<double>(e.ts) / 1000.0);
        switch (e.phase) {
          case 'X':
            w.field("dur", static_cast<double>(e.dur) / 1000.0);
            w.field("name", e.name).field("cat", e.category);
            break;
          case 'i':
            w.field("s", "t");
            w.field("name", e.name).field("cat", e.category);
            break;
          case 'C':
            w.field("name", e.name);
            w.key("args").beginObject()
                .field("value", e.value).endObject();
            break;
          case 'M':
            w.field("name", e.name);
            w.key("args").beginObject()
                .field("name", e.metaValue).endObject();
            break;
          default:
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
TraceCollector::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return n == json.size();
}

} // namespace cais
