/**
 * @file
 * cais-verify: static model checker (DESIGN.md §6e).
 *
 * Runs over a fully constructed System *before* any event executes
 * and checks the structural invariants the paper's correctness story
 * rests on. The pass is read-only — a verified run is bit-identical
 * to an unverified one — and every rule is individually suppressible.
 *
 *  - V1  deadlock-freedom: the channel-dependency graph over every
 *        (link, virtual channel) pair, with edges derived from the
 *        switch forwarding paths and the protocol couplings of the
 *        in-switch compute units, must be acyclic (Dally & Seitz);
 *        a violation is reported as the offending port/VC cycle.
 *  - V2  credit conservation: initial link credits must equal the
 *        receiver-side buffer capacity per (link, VC), and no credits
 *        or packets may be in flight before the first event, so the
 *        batched credit-return invariant holds over the run.
 *  - V3  routing coverage: every mergeable address class maps to
 *        exactly one switch (no session chunk may straddle an
 *        interleave block) and all GPUs agree on the session's
 *        expected participant count.
 *  - V4  TB-group / Group-Sync-Table consistency: every synchronized
 *        group has exactly one TB per participating GPU on all GPUs,
 *        group masks fit the 64-bit sync-table entries, and the
 *        merge-unit throttle threshold is reachable.
 *  - V5  kernel-graph sanity: kernel and tile-level producer/consumer
 *        dependencies are acyclic, and asymmetric-overlap pairs have
 *        complementary traffic directions.
 *  - V6  lookahead soundness: the declared conservative window
 *        (Fabric::crossShardLookahead) equals the minimum latency
 *        recomputed over every link whose endpoints map to different
 *        shard domains, for every shard count the shape supports; a
 *        violation names the faster cross-domain link as a concrete
 *        path.
 *  - V7  domain closure: every switch node maps to exactly one
 *        non-primary shard domain (rails of a group and the spine
 *        tier agree on multi-tier shapes), shard 0 holds exactly the
 *        host + GPU + kernel-lifecycle set, and a constructed link
 *        runs in split-delivery mode exactly when its endpoints'
 *        domains differ.
 *  - V8  bound soundness (post-run): the simulated makespan must be
 *        at least the static analytical bound of every resource class
 *        (analysis/bound_model.hh); a violation names the resource
 *        and the concrete cycle counts — a makespan below what SM
 *        compute, HBM, link serialization, merge service, or the
 *        kernel critical path permit is a simulator bug.
 *  - V9  slack attribution (post-run, opt-in via a slack ratio): when
 *        sim/bound exceeds the configured ratio, the causal profiler
 *        must be able to explain the slack; runs without attribution
 *        or with coverage below 95% are flagged, cross-referencing
 *        the profiler's dominant WaitClass.
 *
 * Diagnostics are structured: renderable as human-readable text with
 * a fix-it hint per rule, or as a schema-versioned cais-verify-v1
 * JSON document for CI artifacts (tools/cais_verify).
 */

#ifndef CAIS_ANALYSIS_VERIFY_HH
#define CAIS_ANALYSIS_VERIFY_HH

#include <set>
#include <string>
#include <vector>

#include "runtime/simulation_driver.hh"

namespace cais
{

class JsonWriter;
struct Attribution;
struct BoundResult;

namespace verify
{

/** Schema tag written into every JSON diagnostics document. */
inline constexpr const char *verifySchemaVersion = "cais-verify-v1";

/** One rule violation with its structured payload. */
struct Diagnostic
{
    std::string id;      ///< "V1".."V9"
    std::string message; ///< what is wrong, with concrete values
    std::string hint;    ///< one-line fix-it

    /**
     * Structured payload: for V1/V5 the offending cycle as a
     * port/VC (or kernel) path in traversal order; for the other
     * rules the offending objects (link, VC, session address, group).
     */
    std::vector<std::string> path;
};

/** Static description of one rule (for --list-rules and docs). */
struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *hint;
};

/** All rules the checker knows, in id order. */
const std::vector<RuleInfo> &ruleTable();

/**
 * A hypothetical protocol coupling injected into V1's channel-
 * dependency graph: "receiving a class-`from` packet makes the node
 * emit a class-`to` packet while still holding the receive buffer".
 * Used to validate the checker against seeded deadlock cycles and to
 * explore protocol extensions before implementing them.
 */
struct ExtraCoupling
{
    bool atGpu = true; ///< GPU turn (down->up) vs switch turn (up->down)
    VcClass from = VcClass::request;
    VcClass to = VcClass::request;
};

/** Tuning knobs of one verification pass. */
struct Options
{
    /** Rule ids to skip ("V1".."V9"); unknown ids are ignored. */
    std::set<std::string> suppress;

    /** Context echoed into the JSON document (may stay empty). */
    std::string strategy;
    std::string workload;

    /** Injected CDG couplings (testing / protocol exploration). */
    std::vector<ExtraCoupling> extraCouplings;

    /**
     * Seeded-defect hooks for the shard-model rules (testing the
     * checker itself, like extraCouplings): a non-zero
     * v6LookaheadOverride replaces the declared
     * Fabric::crossShardLookahead() value V6 compares against; a
     * v7DomainOverrideSwitch >= 0 remaps that switch onto
     * v7DomainOverrideShard in the shard map V6/V7 recompute.
     */
    Cycle v6LookaheadOverride = 0;
    int v7DomainOverrideSwitch = -1;
    int v7DomainOverrideShard = 0;

    /**
     * V9 slack threshold: a post-run check fires when the simulated
     * makespan exceeds v9SlackRatio times the composite bound and the
     * causal profiler cannot explain the slack. 0 (the default)
     * disables V9 — the ratio is workload-dependent, so it is opt-in.
     */
    double v9SlackRatio = 0.0;
};

/** Outcome of one verification pass. */
struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;

    /** Context echo (copied from Options). */
    std::string strategy;
    std::string workload;

    bool ok() const { return diagnostics.empty(); }

    /** Human-readable rendering, one diagnostic per paragraph with
     *  its fix-it hint and path payload. */
    std::string text() const;

    /** cais-verify-v1 JSON document (common/json.hh writer). */
    std::string json() const;

    /** Write this result as one JSON object into @p w (used by
     *  json() and by cais_verify's aggregate document). */
    void writeJson(JsonWriter &w) const;
};

/**
 * Verify a constructed (lowered, not yet run) System. Read-only:
 * never schedules events or mutates state, so a gated run stays
 * bit-identical to an ungated one.
 */
VerifyResult verifySystem(const System &sys, const Options &opts = {});

/**
 * Convenience for tools: build the System for (spec, graph, cfg),
 * lower the graph, and verify — without executing a single event.
 */
VerifyResult verifyRun(const StrategySpec &spec, const OpGraph &graph,
                       const RunConfig &cfg, const Options &opts = {});

/**
 * Post-run rules V8/V9: check the finished run's makespan against the
 * precomputed static bound (V8) and, when opts.v9SlackRatio > 0,
 * require the causal profiler attribution @p attr to explain any
 * slack beyond the ratio (V9). @p attr may be null — a run without
 * profiling; V9 then flags unexplained slack outright. Read-only, so
 * a gated run stays bit-identical to a suppressed one.
 */
VerifyResult verifyPostRun(const System &sys, const BoundResult &bound,
                           Cycle makespan, const Attribution *attr,
                           const Options &opts = {});

} // namespace verify
} // namespace cais

#endif // CAIS_ANALYSIS_VERIFY_HH
