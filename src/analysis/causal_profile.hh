/**
 * @file
 * Causal wait-for profiler (DESIGN.md §6g): every blocking site in
 * the simulator — credit stalls, VC arbitration, merge-table session
 * waits, group-sync barriers, NVLS fan-out, TB-scheduler occupancy,
 * HBM contention, kernel-graph dependencies — records a provenance-
 * tagged wait-for edge. After the run a backward walk from the
 * makespan-defining event extracts the critical path and attributes
 * every makespan cycle to a leaf resource class.
 *
 * Contract (locked by tests):
 *  - Zero event-stream perturbation: hooks only read simulation state
 *    and append to side logs; a profiled run is bit-identical to an
 *    unprofiled one, and a run with no profiler attached executes the
 *    exact pre-profiler instruction stream.
 *  - Shard determinism: each PDES shard appends to its own log (via
 *    ShardCtx::userData); finalize() merges all logs into one
 *    canonical (dst, t1, t0, cls, src, srcT) order, so the analysis
 *    is byte-identical at any shards= setting.
 */

#ifndef CAIS_ANALYSIS_CAUSAL_PROFILE_HH
#define CAIS_ANALYSIS_CAUSAL_PROFILE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace cais
{

class TraceCollector;

/** Leaf resource classes a makespan cycle can be attributed to. */
enum class WaitClass : std::uint8_t
{
    unattributed = 0,  ///< walk could not explain these cycles
    smCompute,         ///< TB busy on SM compute
    hbm,               ///< HBM serialization / contention
    linkSerialization, ///< wire occupancy of a fabric link
    creditStall,       ///< link idle awaiting flow-control credits
    vcArbitration,     ///< switch ingress pipeline / VC arbitration
    mergeWait,         ///< merge-table session open, awaiting peers
    syncBarrier,       ///< group-sync rendezvous wait
    nvlsFanout,        ///< NVLS multicast/reduction tree latency
    schedulerIdle,     ///< TB ready but no free SM slot
    hubInjection,      ///< hub queueing before fabric injection
    launch,            ///< kernel launch latency / start skew
    depWait,           ///< kernel-graph dependency wait
    numClasses,
};

/** Stable lower-camel name of a class ("smCompute", ...). */
const char *waitClassName(WaitClass c);

/** Profile-graph node: a resource/actor instance, type in top byte. */
using ProfNode = std::uint64_t;

namespace profnode
{

/** Node type tags (top byte of a ProfNode). */
enum : std::uint64_t
{
    typeRoot = 1,
    typeKernel,
    typeTb,
    typeTile,
    typeHub,
    typeHubQueue,
    typeHbm,
    typeSched,
    typeLink,
    typeMerge,
    typeSync,
    typeNvls,
};

constexpr int typeShift = 56;

constexpr std::uint64_t
pack(std::uint64_t type, std::uint64_t payload)
{
    return (type << typeShift) | payload;
}

constexpr std::uint64_t
typeOf(ProfNode n)
{
    return n >> typeShift;
}

constexpr ProfNode
root()
{
    return pack(typeRoot, 0);
}

constexpr ProfNode
kernel(KernelId k)
{
    return pack(typeKernel, static_cast<std::uint32_t>(k));
}

/** One TB instance of a kernel on a GPU. */
constexpr ProfNode
tb(KernelId k, GpuId gpu, int tb_index)
{
    return pack(typeTb,
                ((static_cast<std::uint64_t>(k) & 0xFFFFF) << 36) |
                    ((static_cast<std::uint64_t>(gpu) & 0xFFF)
                     << 24) |
                    (static_cast<std::uint64_t>(tb_index) &
                     0xFFFFFF));
}

/** One tile of a tile-dependency tracker on a GPU. */
constexpr ProfNode
tile(int tracker, GpuId gpu, int tile_index)
{
    return pack(typeTile,
                ((static_cast<std::uint64_t>(tracker) & 0xFFF)
                 << 44) |
                    ((static_cast<std::uint64_t>(gpu) & 0xFFF)
                     << 32) |
                    (static_cast<std::uint64_t>(tile_index) &
                     0xFFFFFFFF));
}

constexpr ProfNode
hub(GpuId g)
{
    return pack(typeHub, static_cast<std::uint32_t>(g));
}

constexpr ProfNode
hubQueue(GpuId g)
{
    return pack(typeHubQueue, static_cast<std::uint32_t>(g));
}

constexpr ProfNode
hbm(GpuId g)
{
    return pack(typeHbm, static_cast<std::uint32_t>(g));
}

constexpr ProfNode
sched(GpuId g)
{
    return pack(typeSched, static_cast<std::uint32_t>(g));
}

/** A CreditLink, by the profiler-assigned dense link id. */
constexpr ProfNode
link(std::uint32_t prof_id)
{
    return pack(typeLink, prof_id);
}

constexpr ProfNode
merge(SwitchId s)
{
    return pack(typeMerge, static_cast<std::uint32_t>(s));
}

constexpr ProfNode
sync(SwitchId s)
{
    return pack(typeSync, static_cast<std::uint32_t>(s));
}

constexpr ProfNode
nvls(SwitchId s)
{
    return pack(typeNvls, static_cast<std::uint32_t>(s));
}

} // namespace profnode

/**
 * One wait-for record: @p dst was blocked on / occupied by resource
 * class @p cls during [t0, t1]; the enabling cause was @p src, which
 * completed its part at @p srcT (srcT <= t1). Records where no cause
 * was active carry src == dst and srcT == t0, so the backward walk
 * self-continues in time.
 */
struct WaitEdge
{
    CAIS_OWNED_BY_DOMAIN(parent);

    ProfNode dst = 0;
    ProfNode src = 0;
    Cycle t0 = 0;
    Cycle t1 = 0;
    Cycle srcT = 0;
    WaitClass cls = WaitClass::unattributed;
};

/** One attributed span of the critical path (forward time order). */
struct PathSegment
{
    CAIS_OWNED_BY_DOMAIN(host);

    ProfNode node = 0;
    WaitClass cls = WaitClass::unattributed;
    Cycle t0 = 0;
    Cycle t1 = 0;
};

/** Result of a backward critical-path walk. */
struct Attribution
{
    CAIS_OWNED_BY_DOMAIN(host);

    Cycle makespan = 0;
    ProfNode start = 0;

    /** Cycles per class; indices follow WaitClass. Sums (with
     *  unattributed) to exactly makespan. */
    std::array<Cycle, static_cast<std::size_t>(WaitClass::numClasses)>
        byClass{};

    /** Critical path in forward time order. */
    std::vector<PathSegment> path;

    Cycle attributed() const
    {
        Cycle sum = 0;
        for (std::size_t i = 1; i < byClass.size(); ++i)
            sum += byClass[i];
        return sum;
    }

    /** Attributed share of makespan in [0, 1]. */
    double coverage() const
    {
        return makespan == 0
                   ? 1.0
                   : static_cast<double>(attributed()) /
                         static_cast<double>(makespan);
    }
};

/**
 * The wait-for edge recorder + post-run analyzer. One instance per
 * run; attach with System::setProfiler() before lowering. Recording
 * routes through the executing shard's private log, so hot-path
 * appends never synchronize.
 */
class CausalProfiler
{
  public:
    /** Schema tag of the JSON artifact. */
    static constexpr const char *schemaVersion = "cais-profile-v1";

    CausalProfiler();
    ~CausalProfiler();

    CausalProfiler(const CausalProfiler &) = delete;
    CausalProfiler &operator=(const CausalProfiler &) = delete;

    // ---- recording (hot path; callers null-check the pointer) ----

    /** Record an edge with an explicit enabling cause. */
    void record(ProfNode dst, WaitClass cls, Cycle t0, Cycle t1,
                ProfNode src, Cycle src_t);

    /** Record an edge caused by the active ScopedCause (if any). */
    void record(ProfNode dst, WaitClass cls, Cycle t0, Cycle t1);

    /** The active cause on the calling shard (0 if none). */
    ProfNode causeNode() const;
    Cycle causeTime() const;

    /**
     * RAII "current enabling cause" for the calling shard: while in
     * scope, cause-less record() calls and packet stamps inherit
     * (node, t). Nests; always restored before the enclosing event
     * returns, so causes never leak across events.
     */
    class ScopedCause
    {
      public:
        ScopedCause(CausalProfiler *p, ProfNode node, Cycle t);
        ~ScopedCause();

        ScopedCause(const ScopedCause &) = delete;
        ScopedCause &operator=(const ScopedCause &) = delete;

      private:
        CausalProfiler *prof;
        ProfNode prevNode = 0;
        Cycle prevT = 0;
    };

    // ---- setup (single-threaded, before run) ----

    /** Register a human-readable node name (kernels, links). */
    void setName(ProfNode node, const std::string &name);

    /** Dense link id for CreditLink hooks; names the node too. */
    std::uint32_t addLink(const std::string &name);

    /**
     * Size the per-shard log array; shard @p i's log pointer (for
     * ShardedEventQueue::setShardUserData) is shardLogSlot(i).
     * Channel functions: they touch the shard-shared log array, but
     * only before the worker threads start (setup) — no domain runs
     * concurrently with them.
     */
    CAIS_CROSS_SHARD_CHANNEL void setNumShards(int n);
    CAIS_CROSS_SHARD_CHANNEL void *shardLogSlot(int shard);

    // ---- analysis (post-run, single-threaded) ----

    /** Merge per-shard logs into the canonical sorted edge list.
     *  Channel function: drains every shard's log after the workers
     *  have joined, so the merge cannot race the window loop. */
    CAIS_CROSS_SHARD_CHANNEL void finalize();

    /** Total recorded edges (valid after finalize()). */
    std::size_t numEdges() const { return edges.size(); }

    /** Backward walk from (@p start, @p makespan). */
    Attribution analyze(ProfNode start, Cycle makespan) const;

    /** Human-readable node name (registered or formatted). */
    std::string nodeName(ProfNode n) const;

    /** Render the cais-profile-v1 JSON artifact. */
    std::string toJson(const Attribution &a,
                       const std::string &strategy,
                       const std::string &workload) const;

    /** toJson() to @p path; returns false on I/O failure. */
    bool writeFile(const std::string &path, const Attribution &a,
                   const std::string &strategy,
                   const std::string &workload) const;

    /**
     * Emit the critical path as flame lanes into the deep trace:
     * one lane per wait class under process @p pid.
     */
    void emitFlameLanes(TraceCollector &tc, int pid,
                        const Attribution &a) const;

  private:
    CAIS_OWNED_BY_DOMAIN(host);

    /** Per-shard append log + active-cause register. */
    struct Log
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        std::vector<WaitEdge> edges;
        ProfNode cause = 0;
        Cycle causeT = 0;
    };

    Log &log();
    const Log &log() const;

    Log mainLog;
    /** Stable-address shard logs (ShardCtx::userData points here). */
    CAIS_SHARD_SHARED std::vector<std::unique_ptr<Log>> shardLogs;

    std::unordered_map<ProfNode, std::string> names;
    std::uint32_t nextLinkId = 0;

    /** Canonical merged edges (valid after finalize()). */
    std::vector<WaitEdge> edges;
    bool finalized = false;
};

} // namespace cais

#endif // CAIS_ANALYSIS_CAUSAL_PROFILE_HH
