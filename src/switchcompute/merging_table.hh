/**
 * @file
 * Merging Table of the CAIS merge unit (Fig. 5): per-session partial
 * state — cached data for loads, accumulated sums for reductions, the
 * session status (Load-Wait / Load-Ready / Reduction), a merged-request
 * counter and the request metadata Content Array.
 *
 * One MergingTable instance models the table at one switch port (the
 * port facing the session's home GPU); capacity is expressed in bytes
 * as in the paper ("40 KB per-port Merge Table, 320 entries").
 */

#ifndef CAIS_SWITCHCOMPUTE_MERGING_TABLE_HH
#define CAIS_SWITCHCOMPUTE_MERGING_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/nodemask.hh"
#include "common/types.hh"
#include "noc/packet.hh"
#include "switchcompute/cam_table.hh"

namespace cais
{

/** Session status field of a merging-table entry. */
enum class SessionState : std::uint8_t
{
    invalid,
    loadWait,  ///< fetch outstanding toward the home GPU
    loadReady, ///< data cached; serving requesters
    reduction, ///< accumulating contributions
};

/** One merging-table entry. */
struct MergeEntry
{
    CAIS_OWNED_BY_DOMAIN(parent);

    SessionState state = SessionState::invalid;
    Addr addr = 0;
    GpuId homeGpu = invalidId;
    GroupId group = invalidId;

    /** Number of merged requests so far. */
    int count = 0;
    /** Requests expected before the session completes. */
    int expected = 0;
    /** Fabric-wide participant count, forwarded upstream by leaf
     *  switches so the spine knows when the combine is complete. */
    int globalExpected = 0;
    /** Bitmask of nodes that contributed (throttling bookkeeping;
     *  GPU ids at leaves, leaf node ids at the spine). */
    NodeMask contribMask;

    /** Data bytes this session occupies in the table. */
    std::uint32_t bytes = 0;

    Cycle allocatedAt = 0;
    Cycle firstRequestAt = 0;
    Cycle lastAccess = 0;

    /** Content Array: requester metadata awaiting deferred response. */
    std::vector<Packet> pendingRequesters;

    bool valid() const { return state != SessionState::invalid; }
    bool isLoad() const
    {
        return state == SessionState::loadWait ||
               state == SessionState::loadReady;
    }
};

/** Fixed-capacity slot array with an associated CAM. */
class MergingTable
{
  public:
    /**
     * @param capacity_bytes table capacity; 0 means unbounded (used to
     *        measure the minimal required size, Fig. 13a).
     * @param chunk_bytes session data footprint (one request chunk).
     */
    MergingTable(std::uint64_t capacity_bytes, std::uint32_t chunk_bytes);

    /** Active session for (addr, is_load), or nullptr. */
    MergeEntry *find(Addr addr, bool is_load);

    /**
     * Allocate a session; returns nullptr when the table is full (the
     * caller must evict first). The entry is keyed in the CAM.
     */
    MergeEntry *allocate(Addr addr, bool is_load);

    /** Release a session and free its slot. */
    void release(MergeEntry *e);

    bool full() const;
    std::size_t liveEntries() const { return live; }
    std::uint64_t liveBytes() const
    {
        return static_cast<std::uint64_t>(live) * chunk;
    }

    /** High-water marks for the table-sizing study. */
    std::size_t peakEntries() const { return peakLive; }
    std::uint64_t peakBytes() const
    {
        return static_cast<std::uint64_t>(peakLive) * chunk;
    }

    std::uint64_t capacityBytes() const { return capacity; }
    std::uint32_t chunkBytes() const { return chunk; }
    std::size_t capacityEntries() const { return maxEntries; }

    /** All slots (valid and not) for eviction scans / timeout sweeps. */
    std::vector<MergeEntry> &slots() { return entries; }

  private:
    CAIS_OWNED_BY_DOMAIN(parent);

    std::uint64_t capacity;
    std::uint32_t chunk;
    std::size_t maxEntries; ///< 0 == unbounded

    CamLookupTable cam;
    std::vector<MergeEntry> entries;
    std::vector<int> freeList;
    std::size_t live = 0;
    std::size_t peakLive = 0;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_MERGING_TABLE_HH
