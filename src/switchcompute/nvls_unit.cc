#include "switchcompute/nvls_unit.hh"

#include "common/log.hh"

namespace cais
{

NvlsUnit::NvlsUnit(SwitchChip &sw_, const NvlsParams &params)
    : sw(sw_), p(params)
{
}

void
NvlsUnit::handleMultimemSt(Packet &&pkt)
{
    // Replicate to every GPU except the issuer (its local copy was
    // written by the store itself).
    for (GpuId g = 0; g < sw.numGpus(); ++g) {
        if (g == pkt.issuerGpu)
            continue;
        Packet w = sw.makePacket(PacketType::writeReq, g);
        w.addr = pkt.addr;
        w.payloadBytes = pkt.payloadBytes;
        w.padBytes = pkt.padBytes;
        w.issuerGpu = pkt.issuerGpu;
        w.kernel = pkt.kernel;
        w.tb = pkt.tb;
        w.vc = VcClass::multicast;
        sw.sendToGpu(std::move(w));
    }
    stMulticasts.inc();

    // Posted-store ack so the issuing hub can track drain.
    Packet ack = sw.makePacket(PacketType::writeAck, pkt.issuerGpu);
    ack.addr = pkt.addr;
    ack.cookie = pkt.cookie;
    ack.kernel = pkt.kernel;
    ack.tb = pkt.tb;
    sw.sendToGpu(std::move(ack));
}

void
NvlsUnit::handleLdReduceReq(Packet &&pkt)
{
    std::uint64_t id = nextGatherId++;
    GatherSession &s = gathers[id];
    s.requester = pkt.issuerGpu;
    s.addr = pkt.addr;
    s.bytes = pkt.reqBytes;
    s.pad = pkt.padResponse ? pkt.reqBytes / protocolPadDivisor : 0;
    s.hubCookie = pkt.cookie;
    s.expected = pkt.expected > 0 ? pkt.expected : sw.numGpus();
    s.kernel = pkt.kernel;
    s.tb = pkt.tb;

    // Fetch the replica from every participating GPU (including the
    // requester's own memory: the gather traverses the switch for all
    // of them, which is how the hardware behaves).
    for (GpuId g = 0; g < s.expected; ++g) {
        Packet rd = sw.makePacket(PacketType::readReq, g);
        rd.addr = pkt.addr;
        rd.reqBytes = pkt.reqBytes;
        rd.padResponse = pkt.padResponse;
        rd.cookie = cookieTagNvls | id;
        rd.kernel = pkt.kernel;
        sw.sendToGpu(std::move(rd));
    }
}

void
NvlsUnit::handleReadResp(Packet &&pkt)
{
    std::uint64_t id = pkt.cookie & cookieIdMask;
    auto it = gathers.find(id);
    if (it == gathers.end())
        panic("NVLS: read response for unknown gather %llu",
              static_cast<unsigned long long>(id));
    GatherSession &s = it->second;
    ++s.arrived;
    if (s.arrived < s.expected)
        return;

    // All replicas gathered; reduce in-flight and return the result.
    Packet resp = sw.makePacket(PacketType::multimemLdReduceResp, s.requester);
    resp.addr = s.addr;
    resp.payloadBytes = s.bytes;
    resp.padBytes = s.pad;
    resp.cookie = s.hubCookie;
    resp.issuerGpu = s.requester;
    resp.kernel = s.kernel;
    resp.tb = s.tb;
    gathersDone.inc();
    gathers.erase(it);

    sw.eventQueue().scheduleAfter(p.reduceDelay,
        [this, r = std::move(resp)]() mutable {
        sw.sendToGpu(std::move(r));
    });
}

void
NvlsUnit::handleRed(Packet &&pkt)
{
    RedSession &s = reds[pkt.addr];
    if (s.expected == 0) {
        s.expected = pkt.expected > 0 ? pkt.expected : sw.numGpus();
        s.bytes = pkt.payloadBytes;
        s.kernel = pkt.kernel;
    }
    std::uint64_t bit = 1ull << pkt.issuerGpu;
    if (s.mask & bit)
        panic("NVLS: duplicate red contribution from GPU %d",
              pkt.issuerGpu);
    s.mask |= bit;
    ++s.arrived;
    if (s.arrived < s.expected)
        return;

    // Update every replica with the reduced value.
    std::uint32_t bytes = s.bytes;
    KernelId kernel = s.kernel;
    int expected = s.expected;
    Addr addr = pkt.addr;
    reds.erase(pkt.addr);
    redsDone.inc();

    sw.eventQueue().scheduleAfter(p.reduceDelay,
        [this, addr, bytes, kernel, expected] {
        for (GpuId g = 0; g < sw.numGpus(); ++g) {
            Packet w = sw.makePacket(PacketType::writeReq, g);
            w.addr = addr;
            w.payloadBytes = bytes;
            w.kernel = kernel;
            w.contribs = expected;
            w.vc = VcClass::multicast;
            sw.sendToGpu(std::move(w));
        }
    });
}

} // namespace cais
