#include "switchcompute/nvls_unit.hh"

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

NvlsUnit::NvlsUnit(SwitchChip &sw_, const NvlsParams &params,
                   const TierInfo &tier_)
    : sw(sw_), p(params), tier(tier_)
{
}

void
NvlsUnit::replicateLocal(const Packet &pkt)
{
    int first = tier.firstLocalGpu;
    int last = first + tier.localGpus(sw);
    for (GpuId g = first; g < last; ++g) {
        if (g == pkt.issuerGpu)
            continue;
        Packet w = sw.makePacket(PacketType::writeReq, g);
        w.addr = pkt.addr;
        w.payloadBytes = pkt.payloadBytes;
        w.padBytes = pkt.padBytes;
        w.issuerGpu = pkt.issuerGpu;
        w.kernel = pkt.kernel;
        w.tb = pkt.tb;
        w.vc = VcClass::multicast;
        sw.sendToGpu(std::move(w));
    }
}

void
NvlsUnit::handleMultimemSt(Packet &&pkt)
{
    if (tier.isSpine()) {
        // Spine leg: fan the store out to every other group's leaf.
        int issuer_group = tier.groupOfGpu(pkt.issuerGpu, sw);
        for (int grp = 0; grp < tier.numGroups; ++grp) {
            if (grp == issuer_group)
                continue;
            Packet w = sw.makePacket(PacketType::multimemSt,
                                     tier.leafNodeForAddr(grp, pkt.addr));
            w.addr = pkt.addr;
            w.payloadBytes = pkt.payloadBytes;
            w.padBytes = pkt.padBytes;
            w.issuerGpu = pkt.issuerGpu;
            w.kernel = pkt.kernel;
            w.tb = pkt.tb;
            w.tierHop = 2;
            sw.sendToGpu(std::move(w));
        }
        stMulticasts.inc();
        return;
    }

    // Replicate to every local GPU except the issuer (its local copy
    // was written by the store itself; downstream-leg stores have no
    // local issuer, so all local replicas are written).
    replicateLocal(pkt);
    stMulticasts.inc();

    if (pkt.tierHop != 0)
        return; // downstream leg: the origin leaf already acked

    if (tier.isLeaf() && tier.numGroups > 1) {
        Packet up = sw.makePacket(PacketType::multimemSt,
                                  tier.spineNodeForAddr(pkt.addr));
        up.addr = pkt.addr;
        up.payloadBytes = pkt.payloadBytes;
        up.padBytes = pkt.padBytes;
        up.issuerGpu = pkt.issuerGpu;
        up.kernel = pkt.kernel;
        up.tb = pkt.tb;
        up.tierHop = 1;
        sw.sendToGpu(std::move(up));
    }

    // Posted-store ack so the issuing hub can track drain.
    Packet ack = sw.makePacket(PacketType::writeAck, pkt.issuerGpu);
    ack.addr = pkt.addr;
    ack.cookie = pkt.cookie;
    ack.kernel = pkt.kernel;
    ack.tb = pkt.tb;
    sw.sendToGpu(std::move(ack));
}

void
NvlsUnit::handleLdReduceReq(Packet &&pkt)
{
    std::uint64_t id = nextGatherId++;
    GatherSession &s = gathers[id];
    s.profStart = sw.eventQueue().now();
    s.addr = pkt.addr;
    s.bytes = pkt.reqBytes;
    s.pad = pkt.padResponse ? pkt.reqBytes / protocolPadDivisor : 0;
    s.hubCookie = pkt.cookie;
    s.kernel = pkt.kernel;
    s.tb = pkt.tb;

    if (tier.isSpine()) {
        // Gather one reduced partial from every other group's leaf.
        s.requester = pkt.src;
        int origin_group = tier.groupOfGpu(pkt.issuerGpu, sw);
        s.expected = tier.numGroups - 1;
        for (int grp = 0; grp < tier.numGroups; ++grp) {
            if (grp == origin_group)
                continue;
            Packet rd = sw.makePacket(PacketType::multimemLdReduceReq,
                                      tier.leafNodeForAddr(grp, pkt.addr));
            rd.addr = pkt.addr;
            rd.reqBytes = pkt.reqBytes;
            rd.padResponse = pkt.padResponse;
            rd.cookie = cookieTagNvls | id;
            rd.issuerGpu = pkt.issuerGpu;
            rd.kernel = pkt.kernel;
            rd.tierHop = 2;
            sw.sendToGpu(std::move(rd));
        }
        return;
    }

    bool origin = pkt.tierHop == 0;
    s.requester = origin ? static_cast<int>(pkt.issuerGpu) : pkt.src;

    if (tier.role == TierRole::flat) {
        s.expected = pkt.expected > 0 ? pkt.expected : sw.numGpus();
        // Fetch the replica from every participating GPU (including
        // the requester's own memory: the gather traverses the switch
        // for all of them, which is how the hardware behaves).
        for (GpuId g = 0; g < s.expected; ++g) {
            Packet rd = sw.makePacket(PacketType::readReq, g);
            rd.addr = pkt.addr;
            rd.reqBytes = pkt.reqBytes;
            rd.padResponse = pkt.padResponse;
            rd.cookie = cookieTagNvls | id;
            rd.kernel = pkt.kernel;
            sw.sendToGpu(std::move(rd));
        }
        return;
    }

    // Leaf: gather from the local replicas, plus (for the origin
    // group only) one cross-group partial reduced by the spine.
    int local = tier.localGpus(sw);
    s.expected = local + (origin && tier.numGroups > 1 ? 1 : 0);
    for (int i = 0; i < local; ++i) {
        Packet rd = sw.makePacket(PacketType::readReq,
                                  tier.firstLocalGpu + i);
        rd.addr = pkt.addr;
        rd.reqBytes = pkt.reqBytes;
        rd.padResponse = pkt.padResponse;
        rd.cookie = cookieTagNvls | id;
        rd.kernel = pkt.kernel;
        sw.sendToGpu(std::move(rd));
    }
    if (origin && tier.numGroups > 1) {
        Packet up = sw.makePacket(PacketType::multimemLdReduceReq,
                                  tier.spineNodeForAddr(pkt.addr));
        up.addr = pkt.addr;
        up.reqBytes = pkt.reqBytes;
        up.padResponse = pkt.padResponse;
        up.cookie = cookieTagNvls | id;
        up.issuerGpu = pkt.issuerGpu;
        up.kernel = pkt.kernel;
        up.tierHop = 1;
        sw.sendToGpu(std::move(up));
    }
}

void
NvlsUnit::completeGather(std::uint64_t id, GatherSession &s)
{
    // All partials gathered; reduce in-flight and return the result.
    Packet resp = sw.makePacket(PacketType::multimemLdReduceResp,
                                s.requester);
    resp.addr = s.addr;
    resp.payloadBytes = s.bytes;
    resp.padBytes = s.pad;
    resp.cookie = s.hubCookie;
    resp.issuerGpu = s.requester;
    resp.kernel = s.kernel;
    resp.tb = s.tb;
    gathersDone.inc();
    // Fan-in wait edge: the gather spanned request arrival to the last
    // partial (the active cause) plus the in-flight reduce delay.
    if (CausalProfiler *prof = sw.profiler())
        prof->record(profnode::nvls(sw.id()), WaitClass::nvlsFanout,
                     s.profStart,
                     sw.eventQueue().now() + p.reduceDelay);
    gathers.erase(id);

    sw.eventQueue().scheduleAfter(p.reduceDelay,
        [this, r = std::move(resp)]() mutable {
        CausalProfiler::ScopedCause sc(sw.profiler(),
                                       profnode::nvls(sw.id()),
                                       sw.eventQueue().now());
        sw.sendToGpu(std::move(r));
    });
}

void
NvlsUnit::handleReadResp(Packet &&pkt)
{
    std::uint64_t id = pkt.cookie & cookieIdMask;
    auto it = gathers.find(id);
    if (it == gathers.end())
        panic("NVLS: read response for unknown gather %llu",
              static_cast<unsigned long long>(id));
    GatherSession &s = it->second;
    ++s.arrived;
    if (s.arrived < s.expected)
        return;
    completeGather(id, s);
}

void
NvlsUnit::handleLdReduceResp(Packet &&pkt)
{
    // A tier partial counts as one gathered contribution.
    handleReadResp(std::move(pkt));
}

void
NvlsUnit::handleRed(Packet &&pkt)
{
    if (tier.isLeaf() && pkt.tierHop == 2) {
        // Final value from the spine: update every local replica.
        int first = tier.firstLocalGpu;
        int last = first + tier.localGpus(sw);
        for (GpuId g = first; g < last; ++g) {
            Packet w = sw.makePacket(PacketType::writeReq, g);
            w.addr = pkt.addr;
            w.payloadBytes = pkt.payloadBytes;
            w.kernel = pkt.kernel;
            w.contribs = pkt.contribs;
            w.vc = VcClass::multicast;
            sw.sendToGpu(std::move(w));
        }
        redsDone.inc();
        return;
    }

    RedSession &s = reds[pkt.addr];
    if (s.expected == 0) {
        s.profStart = sw.eventQueue().now();
        if (tier.isSpine())
            s.expected = tier.numGroups;
        else if (tier.isLeaf())
            s.expected = tier.localGpus(sw);
        else
            s.expected = pkt.expected > 0 ? pkt.expected : sw.numGpus();
        s.bytes = pkt.payloadBytes;
        s.kernel = pkt.kernel;
        s.tierHop = pkt.tierHop;
    }
    if (s.mask.test(pkt.issuerGpu) && !tier.isSpine())
        panic("NVLS: duplicate red contribution from GPU %d",
              pkt.issuerGpu);
    s.mask.set(tier.isSpine() ? pkt.src : pkt.issuerGpu);
    ++s.arrived;
    s.contribs += pkt.contribs > 0 ? pkt.contribs : 1;
    if (s.arrived < s.expected)
        return;

    std::uint32_t bytes = s.bytes;
    KernelId kernel = s.kernel;
    int contribs = s.contribs;
    Addr addr = pkt.addr;
    // Fan-in wait edge: contributions accumulated from the first
    // arrival until this closing one (the active cause) plus the
    // in-flight reduce delay before the result ships.
    if (CausalProfiler *prof = sw.profiler())
        prof->record(profnode::nvls(sw.id()), WaitClass::nvlsFanout,
                     s.profStart,
                     sw.eventQueue().now() + p.reduceDelay);
    reds.erase(pkt.addr);

    if (tier.isLeaf() && tier.numGroups > 1) {
        // Local accumulation done: push one partial to the spine.
        Packet up = sw.makePacket(PacketType::multimemRed,
                                  tier.spineNodeForAddr(addr));
        up.addr = addr;
        up.payloadBytes = bytes;
        up.kernel = kernel;
        up.contribs = contribs;
        up.expected = tier.numGroups;
        up.issuerGpu = sw.nodeId();
        up.tierHop = 1;
        sw.eventQueue().scheduleAfter(p.reduceDelay,
            [this, pkt2 = std::move(up)]() mutable {
            CausalProfiler::ScopedCause sc(sw.profiler(),
                                           profnode::nvls(sw.id()),
                                           sw.eventQueue().now());
            sw.sendToGpu(std::move(pkt2));
        });
        redsDone.inc();
        return;
    }

    if (tier.isSpine()) {
        // Combined across groups: distribute to every group's leaf.
        redsDone.inc();
        sw.eventQueue().scheduleAfter(p.reduceDelay,
            [this, addr, bytes, kernel, contribs] {
            CausalProfiler::ScopedCause sc(sw.profiler(),
                                           profnode::nvls(sw.id()),
                                           sw.eventQueue().now());
            for (int grp = 0; grp < tier.numGroups; ++grp) {
                Packet w = sw.makePacket(PacketType::multimemRed,
                                         tier.leafNodeForAddr(grp, addr));
                w.addr = addr;
                w.payloadBytes = bytes;
                w.kernel = kernel;
                w.contribs = contribs;
                w.tierHop = 2;
                sw.sendToGpu(std::move(w));
            }
        });
        return;
    }

    // Flat (or single-group leaf): update every replica directly.
    redsDone.inc();
    int first = tier.isLeaf() ? tier.firstLocalGpu : 0;
    int last = first + tier.localGpus(sw);
    sw.eventQueue().scheduleAfter(p.reduceDelay,
        [this, addr, bytes, kernel, contribs, first, last] {
        CausalProfiler::ScopedCause sc(sw.profiler(),
                                       profnode::nvls(sw.id()),
                                       sw.eventQueue().now());
        for (GpuId g = first; g < last; ++g) {
            Packet w = sw.makePacket(PacketType::writeReq, g);
            w.addr = addr;
            w.payloadBytes = bytes;
            w.kernel = kernel;
            w.contribs = contribs;
            w.vc = VcClass::multicast;
            sw.sendToGpu(std::move(w));
        }
    });
}

} // namespace cais
