#include "switchcompute/group_sync_table.hh"

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

GroupSyncTable::GroupSyncTable(SwitchChip &sw_, const TierInfo &tier_)
    : sw(sw_), tier(tier_)
{
}

void
GroupSyncTable::broadcastRelease(const NodeMask &mask, GroupId group,
                                 std::uint64_t phase)
{
    mask.forEach([this, group, phase](int node) {
        Packet rel = sw.makePacket(PacketType::groupSyncRelease, node);
        rel.group = group;
        rel.cookie = phase;
        rel.issuerGpu = node;
        sw.sendToGpu(std::move(rel));
    });
    rels.inc();
}

void
GroupSyncTable::handleSyncReq(Packet &&pkt)
{
    reqs.inc();
    if (pkt.group == invalidId)
        panic("sync request without group id");
    if (pkt.expected <= 0 || pkt.expected > tier.gpus(sw))
        panic("sync request with bad participant count %d", pkt.expected);

    Cycle now = sw.eventQueue().now();
    auto &e = pending[key(pkt.group, pkt.cookie)];
    if (e.count == 0)
        e.first = now;

    if (tier.isLeaf() && tier.numGroups > 1) {
        // The leaf cannot know how many of the pkt.expected global
        // participants are local (a reduction group's home GPU never
        // registers, and it may live under any leaf), so it does not
        // threshold: it records the local registrant for the release
        // fan-out and forwards the registration upstream, where the
        // spine counts all of them. The entry stays pending until the
        // spine's release fans back out to the local GPUs.
        if (e.mask.test(pkt.issuerGpu))
            return; // each GPU registers once per (group, phase)
        e.mask.set(pkt.issuerGpu);
        ++e.count;
        Packet up = sw.makePacket(PacketType::groupSyncReq,
                                  tier.spineNodeForGroup(pkt.group));
        up.group = pkt.group;
        up.cookie = pkt.cookie;
        up.issuerGpu = sw.nodeId();
        up.expected = pkt.expected;
        up.tierHop = 1;
        sw.sendToGpu(std::move(up));
        return;
    }

    if (tier.isSpine()) {
        // One forwarded packet per registrant; the issuer is the leaf
        // node, so duplicates cannot be masked out here — they cannot
        // occur either, because every GPU registers at most once and
        // its leaf forwards at most once per GPU.
        e.mask.set(pkt.issuerGpu);
        ++e.count;
    } else {
        if (e.mask.test(pkt.issuerGpu)) {
            // Duplicate registration from one node (e.g. retried
            // packet); count each node once.
            return;
        }
        e.mask.set(pkt.issuerGpu);
        ++e.count;
    }

    if (e.count < pkt.expected)
        return;

    // All participants registered.
    window.sample(static_cast<double>(now - e.first));
    GroupId group = pkt.group;
    std::uint64_t phase = pkt.cookie;
    if (hooks)
        hooks->onSyncWindow(sw.id(), group, static_cast<int>(phase),
                            e.first, now);

    // Rendezvous-wait edge: the barrier spanned the registration
    // window; the closing registrant (the active cause) released it,
    // and the release packets it triggers are caused by the barrier.
    CausalProfiler *prof = sw.profiler();
    if (prof)
        prof->record(profnode::sync(sw.id()), WaitClass::syncBarrier,
                     e.first, now);
    CausalProfiler::ScopedCause sc(prof, profnode::sync(sw.id()), now);

    NodeMask mask = e.mask;
    pending.erase(key(group, phase));
    broadcastRelease(mask, group, phase);
}

void
GroupSyncTable::handleRelease(Packet &&pkt)
{
    auto it = pending.find(key(pkt.group, pkt.cookie));
    if (it == pending.end()) {
        warn("sync release for unknown group %d", pkt.group);
        return;
    }
    NodeMask mask = it->second.mask;
    pending.erase(it);
    broadcastRelease(mask, pkt.group, pkt.cookie);
}

void
GroupSyncTable::registerMetrics(MetricRegistry &reg,
                                const std::string &prefix) const
{
    reg.addCounter(prefix + ".requests", &reqs);
    reg.addCounter(prefix + ".releases", &rels);
    reg.addHistogram(prefix + ".window", &window);
}

} // namespace cais
