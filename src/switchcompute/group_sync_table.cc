#include "switchcompute/group_sync_table.hh"

#include "common/log.hh"

namespace cais
{

GroupSyncTable::GroupSyncTable(SwitchChip &sw_) : sw(sw_)
{
}

void
GroupSyncTable::handleSyncReq(Packet &&pkt)
{
    reqs.inc();
    if (pkt.group == invalidId)
        panic("sync request without group id");
    if (pkt.expected <= 0 || pkt.expected > sw.numGpus())
        panic("sync request with bad participant count %d", pkt.expected);

    Cycle now = sw.eventQueue().now();
    auto &e = pending[key(pkt.group, pkt.cookie)];
    if (e.count == 0)
        e.first = now;

    std::uint64_t bit = 1ull << pkt.issuerGpu;
    if (e.mask & bit) {
        // Duplicate registration from one GPU (e.g. retried packet);
        // count each GPU once.
        return;
    }
    e.mask |= bit;
    ++e.count;

    if (e.count < pkt.expected)
        return;

    // All participants registered: broadcast the release.
    window.sample(static_cast<double>(now - e.first));
    std::uint64_t mask = e.mask;
    std::uint64_t phase = pkt.cookie;
    GroupId group = pkt.group;
    if (hooks)
        hooks->onSyncWindow(sw.id(), group, static_cast<int>(phase),
                            e.first, now);
    pending.erase(key(group, phase));

    for (GpuId g = 0; g < sw.numGpus(); ++g) {
        if (!(mask & (1ull << g)))
            continue;
        Packet rel = sw.makePacket(PacketType::groupSyncRelease, g);
        rel.group = group;
        rel.cookie = phase;
        rel.issuerGpu = g;
        sw.sendToGpu(std::move(rel));
    }
    rels.inc();
}

void
GroupSyncTable::registerMetrics(MetricRegistry &reg,
                                const std::string &prefix) const
{
    reg.addCounter(prefix + ".requests", &reqs);
    reg.addCounter(prefix + ".releases", &rels);
    reg.addHistogram(prefix + ".window", &window);
}

} // namespace cais
