#include "switchcompute/merging_table.hh"

#include "common/log.hh"

namespace cais
{

MergingTable::MergingTable(std::uint64_t capacity_bytes,
                           std::uint32_t chunk_bytes)
    : capacity(capacity_bytes), chunk(chunk_bytes)
{
    if (chunk == 0)
        panic("merging table chunk size must be non-zero");
    maxEntries = capacity ? static_cast<std::size_t>(capacity / chunk) : 0;
    if (capacity && maxEntries == 0)
        panic("merging table capacity %llu smaller than one chunk %u",
              static_cast<unsigned long long>(capacity), chunk);
    // Bounded tables never reallocate, so MergeEntry pointers stay
    // valid across allocate() calls. Unbounded tables may grow;
    // callers must re-find entries across events in that mode.
    if (maxEntries)
        entries.reserve(maxEntries);
}

MergeEntry *
MergingTable::find(Addr addr, bool is_load)
{
    int slot = cam.lookup(addr, is_load);
    if (slot == CamLookupTable::noSlot)
        return nullptr;
    return &entries[static_cast<std::size_t>(slot)];
}

bool
MergingTable::full() const
{
    return maxEntries != 0 && live >= maxEntries;
}

MergeEntry *
MergingTable::allocate(Addr addr, bool is_load)
{
    if (full())
        return nullptr;

    int slot;
    if (!freeList.empty()) {
        slot = freeList.back();
        freeList.pop_back();
    } else {
        slot = static_cast<int>(entries.size());
        entries.emplace_back();
    }

    MergeEntry &e = entries[static_cast<std::size_t>(slot)];
    e = MergeEntry{};
    e.addr = addr;
    e.state = is_load ? SessionState::loadWait : SessionState::reduction;
    e.bytes = chunk;
    e.homeGpu = addrHomeGpu(addr);

    cam.insert(addr, is_load, slot);
    ++live;
    if (live > peakLive)
        peakLive = live;
    return &e;
}

void
MergingTable::release(MergeEntry *e)
{
    if (!e || !e->valid())
        panic("releasing invalid merge entry");
    int slot = static_cast<int>(e - entries.data());
    cam.erase(e->addr, e->isLoad());
    e->state = SessionState::invalid;
    e->pendingRequesters.clear();
    freeList.push_back(slot);
    --live;
}

} // namespace cais
