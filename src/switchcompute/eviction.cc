#include "switchcompute/eviction.hh"

namespace cais
{

MergeEntry *
EvictionPolicy::pickLruVictim(MergingTable &tbl) const
{
    MergeEntry *victim = nullptr;
    for (auto &e : tbl.slots()) {
        if (!e.valid() || !evictable(e))
            continue;
        if (!victim || e.lastAccess < victim->lastAccess)
            victim = &e;
    }
    return victim;
}

std::vector<MergeEntry *>
EvictionPolicy::expired(MergingTable &tbl, Cycle now) const
{
    std::vector<MergeEntry *> out;
    for (auto &e : tbl.slots()) {
        if (!e.valid() || !evictable(e))
            continue;
        if (now >= e.lastAccess && now - e.lastAccess >= timeoutCycles)
            out.push_back(&e);
    }
    return out;
}

} // namespace cais
