/**
 * @file
 * Per-switch tier placement for hierarchical in-switch computing.
 *
 * On multi-tier fabrics the compute engines behave differently by
 * tier: leaf switches merge their group's contributions and emit
 * *partial* results upstream, the spine performs the final combine
 * across groups. TierInfo tells one switch's engines where it sits
 * and how to reach its upstream/downstream peers. The default value
 * describes the flat single-tier fabric, where every engine keeps the
 * paper's original behaviour.
 */

#ifndef CAIS_SWITCHCOMPUTE_TIER_HH
#define CAIS_SWITCHCOMPUTE_TIER_HH

#include <functional>

#include "common/types.hh"
#include "noc/switch_chip.hh"

namespace cais
{

/** Which tier a switch's compute complex sits on. */
enum class TierRole : std::uint8_t { flat, leaf, spine };

/** One switch's placement in the fabric tier structure. */
struct TierInfo
{
    CAIS_OWNED_BY_DOMAIN(config);

    TierRole role = TierRole::flat;

    /** Total GPUs in the fabric; 0 falls back to the chip's port
     *  count (standalone chips in unit tests are their own fabric). */
    int fabricGpus = 0;

    int numGroups = 1;
    int gpusPerGroup = 0; ///< 0 falls back to fabricGpus

    /** Leaf only: this switch's group and its first global GPU id. */
    int groupIndex = 0;
    int firstLocalGpu = 0;

    /** Node id of the spine owning an address / coordinating a group
     *  (set on leaves of multi-tier fabrics). */
    std::function<int(Addr)> spineNodeForAddr;
    std::function<int(GroupId)> spineNodeForGroup;

    /** Node id of group @p grp's leaf on the rail owning an address /
     *  a group (set on spines of multi-tier fabrics). */
    std::function<int(int grp, Addr)> leafNodeForAddr;
    std::function<int(int grp, GroupId)> leafNodeForGroup;

    bool isLeaf() const { return role == TierRole::leaf; }
    bool isSpine() const { return role == TierRole::spine; }

    /** Fabric GPU count, defaulting to the chip's port count. */
    int
    gpus(const SwitchChip &sw) const
    {
        return fabricGpus > 0 ? fabricGpus : sw.numPorts();
    }

    int
    localGpus(const SwitchChip &sw) const
    {
        return gpusPerGroup > 0 ? gpusPerGroup : gpus(sw);
    }

    /** Group of GPU @p g (flat fabrics have one group). */
    int
    groupOfGpu(GpuId g, const SwitchChip &sw) const
    {
        int per = localGpus(sw);
        return per > 0 ? g / per : 0;
    }

    /**
     * Participants a leaf waits for locally when the fabric-wide
     * session expects @p global_expected of @p fabric_gpus GPUs. The
     * lowering only produces G and G-1 participant counts (the home
     * GPU of the session address is the one possibly excluded), so a
     * group's share is its size minus the excluded GPU if that GPU is
     * local.
     */
    int
    localExpected(int global_expected, GpuId excluded_home,
                  const SwitchChip &sw) const
    {
        int missing = gpus(sw) - global_expected;
        int local = localGpus(sw);
        if (missing > 0 && groupOfGpu(excluded_home, sw) == groupIndex)
            local -= missing;
        return local;
    }
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_TIER_HH
