#include "switchcompute/cam_table.hh"

#include "common/log.hh"

namespace cais
{

int
CamLookupTable::lookup(Addr addr, bool is_load) const
{
    auto it = map.find(key(addr, is_load));
    return it == map.end() ? noSlot : it->second;
}

void
CamLookupTable::insert(Addr addr, bool is_load, int slot)
{
    auto [it, ok] = map.emplace(key(addr, is_load), slot);
    (void)it;
    if (!ok)
        panic("CAM: duplicate session for addr %llx",
              static_cast<unsigned long long>(addr));
}

void
CamLookupTable::erase(Addr addr, bool is_load)
{
    if (map.erase(key(addr, is_load)) != 1)
        panic("CAM: erasing absent session for addr %llx",
              static_cast<unsigned long long>(addr));
}

} // namespace cais
