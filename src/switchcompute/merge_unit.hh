/**
 * @file
 * The CAIS merge unit (Sec. III-A): implements the two in-switch
 * micro-functions on top of the CAM lookup table and merging table.
 *
 * Micro-function 1 — load request merging: the first ld.cais to an
 * address opens a Load-Wait session and fetches from the home GPU;
 * later requests are appended to the Content Array (deferred response)
 * or served from cached data (Load-Ready), so the home GPU transmits
 * the data only once.
 *
 * Micro-function 2 — reduction request merging: red.cais contributions
 * to an address accumulate in the switch; once all expected
 * contributions arrive, a single merged write is sent to the home GPU.
 *
 * An LRU + timeout eviction policy (Sec. III-A.4) keeps the bounded
 * tables live-lock free, and the unit drives the TB-aware throttling
 * feedback (Sec. III-B.2).
 */

#ifndef CAIS_SWITCHCOMPUTE_MERGE_UNIT_HH
#define CAIS_SWITCHCOMPUTE_MERGE_UNIT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace_hooks.hh"
#include "noc/switch_chip.hh"
#include "switchcompute/eviction.hh"
#include "switchcompute/merging_table.hh"
#include "switchcompute/throttle.hh"
#include "switchcompute/tier.hh"

namespace cais
{

/** Merge unit tunables. */
struct MergeParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    /** Session data granularity: one request chunk. */
    std::uint32_t chunkBytes = 4096;

    /**
     * Merging Table capacity per home-GPU port in bytes (40 KB in the
     * paper's configuration); 0 means unbounded, used to measure the
     * minimal required size (Fig. 13a).
     */
    std::uint64_t tableBytesPerPort = 40 * 1024;

    /** Forward-progress timeout for idle sessions. */
    Cycle timeout = 50 * cyclesPerUs;

    /** Per-session reduction latency charged at completion. */
    Cycle reduceDelay = 8;

    bool throttleEnabled = true;
    int throttleThreshold = 16;
    Cycle throttlePause = 2 * cyclesPerUs;
    Cycle throttleHintInterval = cyclesPerUs;
};

/** Aggregated merge-unit statistics. */
struct MergeStats
{
    CAIS_OWNED_BY_DOMAIN(parent);

    Counter loadReqs;
    Counter redReqs;
    Counter loadHits;       ///< requests merged into an open session
    Counter redHits;
    Counter fetches;        ///< unique fetches to home GPUs
    Counter bypassFetches;  ///< table full of Load-Wait entries
    Counter unmergedWrites; ///< reductions forwarded without merging
    Counter mergedWrites;   ///< fully/partially merged writes emitted
    Counter sessionsOpened;
    Counter sessionsClosed; ///< closed with all expected requests
    Counter partialUpstream; ///< leaf partial reductions sent upstream
};

/** The switch-resident compute-aware merging engine. */
class MergeUnit : public Probe
{
  public:
    MergeUnit(SwitchChip &sw, const MergeParams &params = {},
              const TierInfo &tier = {});

    /** Attach a session-lifecycle observer (nullptr detaches). */
    void setTraceHooks(SwitchTraceHooks *h) { hooks = h; }

    /** Micro-function 1 entry point. */
    void handleLoadReq(Packet &&pkt);

    /** Micro-function 2 entry point. */
    void handleRedReq(Packet &&pkt);

    /** Fetch response from a home GPU (cookie-tagged). */
    void handleReadResp(Packet &&pkt);

    const MergeStats &stats() const { return st; }
    const EvictionStats &evictionStats() const { return evSt; }

    /**
     * Request stagger (first-to-last arrival per address), the Fig.
     * 13(b) waiting-time metric, in cycles.
     */
    const Histogram &staggerHist() const { return stagger; }

    /** Stagger restricted to load / reduction sessions. */
    const Histogram &loadStaggerHist() const { return loadStagger; }
    const Histogram &redStaggerHist() const { return redStagger; }

    /** Peak concurrent load / reduction sessions over all ports. */
    std::size_t peakLoadSessions() const { return peakLoads; }
    std::size_t peakRedSessions() const { return peakReds; }

    /** Peak live table bytes over all home ports (Fig. 13a metric). */
    std::uint64_t peakTableBytes() const;

    /** Peak live table bytes at one home port. */
    std::uint64_t peakTableBytes(GpuId port) const;

    /** Live sessions across ports (diagnostics). */
    std::size_t liveSessions() const;

    /** Addresses whose stagger window has not completed yet. */
    std::size_t pendingProbes() const { return probe.size(); }

    std::uint64_t throttleHints() const { return throttle.hintsSent(); }

    /** Live table bytes at one home port (trace sampling). */
    std::uint64_t liveTableBytes(GpuId port) const;

    const MergeParams &params() const { return p; }

    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const override;

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    struct FetchCtx
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        GpuId port = invalidId;
        Addr addr = 0;
        bool bypass = false;
        Packet original; ///< requester packet for bypass fetches
    };

    MergingTable &table(GpuId port) { return tables[port]; }

    /** Track per-address stagger irrespective of merge success. */
    void probeArrival(Addr addr, bool is_load, int expected);

    /** Free a session, notifying throttling and stagger bookkeeping. */
    void closeSession(GpuId port, MergeEntry *e, bool complete);

    /** Evict one entry (LRU victim or timeout-expired). */
    void evictEntry(GpuId port, MergeEntry *e, bool timeout_evict);

    /** Emit a (possibly partial) merged reduction write to home. */
    void emitMergedWrite(const MergeEntry &e);

    /** Leaf: push a (possibly partial) reduction to the spine. */
    void emitPartialUpstream(const MergeEntry &e);

    void respondLoad(const Packet &req, std::uint32_t bytes);
    void issueFetch(GpuId home, Addr addr, std::uint32_t bytes,
                    bool bypass, const Packet *original, KernelId kernel,
                    GroupId group = invalidId);
    void scheduleSweep();
    void timeoutSweep();

    SwitchChip &sw;
    MergeParams p;
    TierInfo tier;
    EvictionPolicy policy;
    ThrottleController throttle;

    std::vector<MergingTable> tables; ///< one per home-GPU port

    std::unordered_map<std::uint64_t, FetchCtx> fetches;
    std::uint64_t nextFetchId = 1;

    struct ProbeEntry
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        Cycle first = 0;
        int count = 0;
        int expected = 0;
    };
    std::unordered_map<std::uint64_t, ProbeEntry> probe;
    Histogram stagger{0.0, 200.0 * cyclesPerUs, 400};
    Histogram loadStagger{0.0, 200.0 * cyclesPerUs, 400};
    Histogram redStagger{0.0, 200.0 * cyclesPerUs, 400};

    std::size_t liveLoads = 0;
    std::size_t liveReds = 0;
    std::size_t peakLoads = 0;
    std::size_t peakReds = 0;

    void noteOpen(bool is_load);
    void noteClose(bool is_load);

    MergeStats st;
    EvictionStats evSt;
    bool sweepScheduled = false;
    SwitchTraceHooks *hooks = nullptr;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_MERGE_UNIT_HH
