#include "switchcompute/switch_compute.hh"

#include "common/log.hh"

namespace cais
{

SwitchComputeComplex::SwitchComputeComplex(SwitchChip &sw_,
                                           const InSwitchParams &params)
    : sw(sw_), nvlsUnit(sw_, params.nvls, params.tier),
      mergeUnit(sw_, params.merge, params.tier),
      syncTable(sw_, params.tier)
{
    sw.setComputeHandler(this);
}

bool
SwitchComputeComplex::wants(const Packet &pkt) const
{
    switch (pkt.type) {
      case PacketType::multimemSt:
      case PacketType::multimemLdReduceReq:
      case PacketType::multimemRed:
      case PacketType::caisLoadReq:
      case PacketType::caisRedReq:
      case PacketType::groupSyncReq:
        return true;
      case PacketType::readResp:
      case PacketType::caisLoadResp:
      case PacketType::multimemLdReduceResp:
      case PacketType::groupSyncRelease:
        // Responses addressed to this switch belong to a unit fetch or
        // a tier exchange; anything else is forwarded normally.
        return pkt.dst == sw.nodeId();
      default:
        return false;
    }
}

void
SwitchComputeComplex::handlePacket(Packet &&pkt)
{
    switch (pkt.type) {
      case PacketType::multimemSt:
        nvlsUnit.handleMultimemSt(std::move(pkt));
        break;
      case PacketType::multimemLdReduceReq:
        nvlsUnit.handleLdReduceReq(std::move(pkt));
        break;
      case PacketType::multimemRed:
        nvlsUnit.handleRed(std::move(pkt));
        break;
      case PacketType::caisLoadReq:
        mergeUnit.handleLoadReq(std::move(pkt));
        break;
      case PacketType::caisRedReq:
        mergeUnit.handleRedReq(std::move(pkt));
        break;
      case PacketType::groupSyncReq:
        syncTable.handleSyncReq(std::move(pkt));
        break;
      case PacketType::readResp: {
        std::uint64_t tag = pkt.cookie & ~cookieIdMask;
        if (tag == cookieTagMerge)
            mergeUnit.handleReadResp(std::move(pkt));
        else if (tag == cookieTagNvls)
            nvlsUnit.handleReadResp(std::move(pkt));
        else
            panic("switch read response with unknown cookie tag");
        break;
      }
      case PacketType::caisLoadResp:
        // Spine's response to a leaf proxy fetch (merge-tagged).
        mergeUnit.handleReadResp(std::move(pkt));
        break;
      case PacketType::multimemLdReduceResp:
        nvlsUnit.handleLdReduceResp(std::move(pkt));
        break;
      case PacketType::groupSyncRelease:
        syncTable.handleRelease(std::move(pkt));
        break;
      default:
        panic("switch compute cannot handle packet type %s",
              packetTypeName(pkt.type));
    }
}

} // namespace cais
