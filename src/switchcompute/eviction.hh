/**
 * @file
 * Eviction mechanism of the merge unit (Sec. III-A.4): LRU selection
 * among evictable sessions (Load-Ready and Reduction; Load-Wait is
 * deferred until the fetch returns) plus the timeout-based
 * forward-progress sweep.
 */

#ifndef CAIS_SWITCHCOMPUTE_EVICTION_HH
#define CAIS_SWITCHCOMPUTE_EVICTION_HH

#include <vector>

#include "common/stats.hh"
#include "switchcompute/merging_table.hh"

namespace cais
{

/** Eviction statistics exposed by the merge unit. */
struct EvictionStats
{
    CAIS_OWNED_BY_DOMAIN(parent);

    Counter lruEvictions;
    Counter timeoutEvictions;
    Counter deferredEvictions; ///< LRU pick failed: all entries Load-Wait
};

/** Stateless policy helpers over one merging table. */
class EvictionPolicy
{
  public:
    explicit EvictionPolicy(Cycle timeout_cycles)
        : timeoutCycles(timeout_cycles)
    {}

    /**
     * Least-recently-used entry among evictable sessions, or nullptr
     * if every live session is in Load-Wait state.
     */
    MergeEntry *pickLruVictim(MergingTable &tbl) const;

    /**
     * Sessions whose last access is older than the timeout; Load-Wait
     * sessions are never returned (the fetch response will progress
     * them).
     */
    std::vector<MergeEntry *> expired(MergingTable &tbl, Cycle now) const;

    Cycle timeout() const { return timeoutCycles; }

    static bool
    evictable(const MergeEntry &e)
    {
        return e.state == SessionState::loadReady ||
               e.state == SessionState::reduction;
    }

  private:
    CAIS_OWNED_BY_DOMAIN(config);

    Cycle timeoutCycles;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_EVICTION_HH
