#include "switchcompute/throttle.hh"

#include "common/log.hh"

namespace cais
{

ThrottleController::ThrottleController(int num_gpus, int threshold_,
                                       Cycle pause_cycles,
                                       Cycle hint_interval)
    : numGpus(num_gpus), threshold(threshold_), pauseCycles(pause_cycles),
      hintInterval(hint_interval),
      lastHint(static_cast<std::size_t>(num_gpus), 0)
{
}

void
ThrottleController::setHintCallback(
    std::function<void(GpuId, GroupId, Cycle)> cb)
{
    hintCb = std::move(cb);
}

void
ThrottleController::onContribution(GroupId group, GpuId g, Cycle now)
{
    if (group == invalidId || g < 0 || g >= numGpus)
        return;
    auto &counts = open[group];
    if (counts.empty())
        counts.assign(static_cast<std::size_t>(numGpus), 0);
    int &c = counts[static_cast<std::size_t>(g)];
    ++c;
    if (c > threshold && hintCb) {
        Cycle &last = lastHint[static_cast<std::size_t>(g)];
        if (now == 0 || now - last >= hintInterval || last == 0) {
            last = now;
            hints.inc();
            hintCb(g, group, pauseCycles);
        }
    }
}

void
ThrottleController::onSessionClose(GroupId group, const NodeMask &mask)
{
    auto it = open.find(group);
    if (it == open.end())
        return;
    auto &counts = it->second;
    mask.forEach([this, &counts](int g) {
        if (g >= numGpus)
            return;
        int &c = counts[static_cast<std::size_t>(g)];
        if (c > 0)
            --c;
    });
    bool any = false;
    for (int g = 0; g < numGpus; ++g)
        if (counts[static_cast<std::size_t>(g)] > 0)
            any = true;
    if (!any)
        open.erase(it);
}

int
ThrottleController::unmatched(GroupId group, GpuId g) const
{
    auto it = open.find(group);
    if (it == open.end() || g < 0 || g >= numGpus)
        return 0;
    return it->second[static_cast<std::size_t>(g)];
}

} // namespace cais
