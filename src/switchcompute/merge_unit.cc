#include "switchcompute/merge_unit.hh"

#include <string>

#include "analysis/causal_profile.hh"
#include "common/log.hh"

namespace cais
{

MergeUnit::MergeUnit(SwitchChip &sw_, const MergeParams &params,
                     const TierInfo &tier_)
    : sw(sw_), p(params), tier(tier_), policy(params.timeout),
      throttle(tier_.gpus(sw_), params.throttleThreshold,
               params.throttlePause, params.throttleHintInterval)
{
    // Tables are indexed by the home GPU, a fabric-global id: on a
    // tiered fabric a leaf can open sessions homed at remote GPUs.
    int homes = tier.gpus(sw);
    tables.reserve(static_cast<std::size_t>(homes));
    for (int g = 0; g < homes; ++g)
        tables.emplace_back(p.tableBytesPerPort, p.chunkBytes);

    if (p.throttleEnabled) {
        throttle.setHintCallback(
            [this](GpuId g, GroupId group, Cycle pause) {
            if (hooks)
                hooks->onThrottleHint(sw.id(), g, group,
                                      sw.eventQueue().now());
            Packet hint = sw.makePacket(PacketType::throttleHint, g);
            hint.group = group;
            hint.cookie = pause;
            hint.issuerGpu = g;
            sw.sendToGpu(std::move(hint));
        });
    }
}

void
MergeUnit::probeArrival(Addr addr, bool is_load, int expected)
{
    std::uint64_t key = (addr << 1) | (is_load ? 1u : 0u);
    Cycle now = sw.eventQueue().now();
    auto &e = probe[key];
    if (e.count == 0) {
        e.first = now;
        e.expected = expected;
    }
    ++e.count;
    if (e.count >= e.expected) {
        double d = static_cast<double>(now - e.first);
        stagger.sample(d);
        if (is_load)
            loadStagger.sample(d);
        else
            redStagger.sample(d);
        probe.erase(key);
    }
}

void
MergeUnit::noteOpen(bool is_load)
{
    if (is_load) {
        if (++liveLoads > peakLoads)
            peakLoads = liveLoads;
    } else {
        if (++liveReds > peakReds)
            peakReds = liveReds;
    }
}

void
MergeUnit::noteClose(bool is_load)
{
    if (is_load) {
        if (liveLoads > 0)
            --liveLoads;
    } else {
        if (liveReds > 0)
            --liveReds;
    }
}

void
MergeUnit::respondLoad(const Packet &req, std::uint32_t bytes)
{
    Packet resp = sw.makePacket(PacketType::caisLoadResp, req.issuerGpu);
    resp.addr = req.addr;
    resp.payloadBytes = bytes;
    resp.cookie = req.cookie;
    resp.issuerGpu = req.issuerGpu;
    resp.kernel = req.kernel;
    resp.tb = req.tb;
    resp.group = req.group;
    sw.sendToGpu(std::move(resp));
}

void
MergeUnit::issueFetch(GpuId home, Addr addr, std::uint32_t bytes,
                      bool bypass, const Packet *original, KernelId kernel,
                      GroupId group)
{
    std::uint64_t id = nextFetchId++;
    FetchCtx &ctx = fetches[id];
    ctx.port = home;
    ctx.addr = addr;
    ctx.bypass = bypass;
    if (bypass && original)
        ctx.original = *original;

    if (tier.isLeaf() && tier.numGroups > 1 && !bypass) {
        // Proxy the fetch through the spine's merge unit so the home
        // GPU still transmits the data only once fabric-wide: every
        // group's leaf registers one caisLoadReq with the spine.
        Packet rd = sw.makePacket(PacketType::caisLoadReq,
                                  tier.spineNodeForAddr(addr));
        rd.addr = addr;
        rd.reqBytes = bytes;
        rd.cookie = cookieTagMerge | id;
        rd.kernel = kernel;
        rd.group = group;
        rd.expected = tier.numGroups;
        rd.issuerGpu = sw.nodeId();
        rd.tierHop = 1;
        sw.sendToGpu(std::move(rd));
        st.fetches.inc();
        return;
    }

    Packet rd = sw.makePacket(PacketType::readReq, home);
    rd.addr = addr;
    rd.reqBytes = bytes;
    rd.cookie = cookieTagMerge | id;
    rd.kernel = kernel;
    sw.sendToGpu(std::move(rd));
    st.fetches.inc();
    if (bypass)
        st.bypassFetches.inc();
}

void
MergeUnit::handleLoadReq(Packet &&pkt)
{
    st.loadReqs.inc();
    GpuId home = addrHomeGpu(pkt.addr);
    // Per-tier participant rewrite: a leaf session completes once all
    // local requesters are served (the spine proxy carries the group
    // count set by issueFetch).
    if (tier.isLeaf())
        pkt.expected = tier.localExpected(pkt.expected, home, sw);
    probeArrival(pkt.addr, true, pkt.expected);
    Cycle now = sw.eventQueue().now();

    MergingTable &tbl = table(home);
    MergeEntry *e = tbl.find(pkt.addr, true);
    if (e) {
        st.loadHits.inc();
        ++e->count;
        e->contribMask.set(pkt.issuerGpu);
        e->lastAccess = now;
        throttle.onContribution(pkt.group, pkt.issuerGpu, now);
        if (e->state == SessionState::loadWait) {
            // Data still pending: defer in the Content Array.
            e->pendingRequesters.push_back(std::move(pkt));
        } else {
            // Load-Ready: serve from cached data immediately.
            respondLoad(pkt, e->bytes);
            if (e->count >= e->expected)
                closeSession(home, e, true);
        }
        return;
    }

    // Miss: open a new session, evicting if necessary.
    if (tbl.full()) {
        MergeEntry *victim = policy.pickLruVictim(tbl);
        if (!victim) {
            // Every entry is Load-Wait: bypass the merge unit
            // entirely to avoid thrashing (Sec. III-A.4).
            evSt.deferredEvictions.inc();
            issueFetch(home, pkt.addr, pkt.reqBytes, true, &pkt,
                       pkt.kernel, pkt.group);
            return;
        }
        evictEntry(home, victim, false);
    }

    e = tbl.allocate(pkt.addr, true);
    st.sessionsOpened.inc();
    noteOpen(true);
    if (hooks)
        hooks->onMergeSessionOpen(sw.id(), home, pkt.addr, true, now);
    e->expected = pkt.expected;
    e->group = pkt.group;
    e->count = 1;
    e->contribMask.set(pkt.issuerGpu);
    e->allocatedAt = now;
    e->firstRequestAt = now;
    e->lastAccess = now;
    e->bytes = pkt.reqBytes ? pkt.reqBytes : p.chunkBytes;
    throttle.onContribution(pkt.group, pkt.issuerGpu, now);

    std::uint32_t bytes = e->bytes;
    Addr addr = pkt.addr;
    KernelId kernel = pkt.kernel;
    GroupId group = pkt.group;
    e->pendingRequesters.push_back(std::move(pkt));
    issueFetch(home, addr, bytes, false, nullptr, kernel, group);
    scheduleSweep();
}

void
MergeUnit::handleReadResp(Packet &&pkt)
{
    std::uint64_t id = pkt.cookie & cookieIdMask;
    auto it = fetches.find(id);
    if (it == fetches.end())
        panic("merge unit: response for unknown fetch %llu",
              static_cast<unsigned long long>(id));
    FetchCtx ctx = std::move(it->second);
    fetches.erase(it);

    if (ctx.bypass) {
        respondLoad(ctx.original, pkt.payloadBytes);
        return;
    }

    MergingTable &tbl = table(ctx.port);
    MergeEntry *e = tbl.find(ctx.addr, true);
    if (!e) {
        // The session vanished (cannot happen under the deferred-
        // eviction rule); drop the data defensively.
        warn("merge unit: fetch response for closed session");
        return;
    }

    e->state = SessionState::loadReady;
    e->lastAccess = sw.eventQueue().now();
    // Session-wait edge: deferred requesters sat in the Content Array
    // from the first ld.cais until the fetched data (the active cause,
    // the readResp ingress) arrived; the responses they trigger are
    // caused by the merge session completing.
    CausalProfiler *prof = sw.profiler();
    if (prof)
        prof->record(profnode::merge(sw.id()), WaitClass::mergeWait,
                     e->firstRequestAt, sw.eventQueue().now());
    CausalProfiler::ScopedCause sc(prof, profnode::merge(sw.id()),
                                   sw.eventQueue().now());
    // Serve every deferred requester from the Content Array.
    auto pend = std::move(e->pendingRequesters);
    e->pendingRequesters.clear();
    for (const Packet &req : pend)
        respondLoad(req, e->bytes);
    if (e->count >= e->expected)
        closeSession(ctx.port, e, true);
}

void
MergeUnit::handleRedReq(Packet &&pkt)
{
    st.redReqs.inc();
    GpuId home = addrHomeGpu(pkt.addr);
    // Per-tier participant rewrite: a leaf accumulates only its local
    // contributions and pushes one partial to the spine, which closes
    // once the partial counts sum to the fabric-global expectation.
    int global_expected = pkt.expected;
    if (tier.isLeaf())
        pkt.expected = tier.localExpected(global_expected, home, sw);
    probeArrival(pkt.addr, false,
                 tier.isSpine() ? tier.numGroups : pkt.expected);
    Cycle now = sw.eventQueue().now();

    MergingTable &tbl = table(home);
    MergeEntry *e = tbl.find(pkt.addr, false);
    if (!e) {
        if (tbl.full()) {
            MergeEntry *victim = policy.pickLruVictim(tbl);
            if (!victim) {
                // No evictable entry: forward this contribution
                // unmerged to preserve forward progress.
                evSt.deferredEvictions.inc();
                st.unmergedWrites.inc();
                if (tier.isLeaf() && tier.numGroups > 1) {
                    // Upstream: the spine still needs every count.
                    Packet w = sw.makePacket(PacketType::caisRedReq,
                                             tier.spineNodeForAddr(
                                                 pkt.addr));
                    w.addr = pkt.addr;
                    w.payloadBytes = pkt.payloadBytes;
                    w.kernel = pkt.kernel;
                    w.group = pkt.group;
                    w.contribs = 1;
                    w.expected = global_expected;
                    w.issuerGpu = sw.nodeId();
                    w.tierHop = 1;
                    sw.sendToGpu(std::move(w));
                    return;
                }
                Packet w = sw.makePacket(PacketType::caisMergedWrite, home);
                w.addr = pkt.addr;
                w.payloadBytes = pkt.payloadBytes;
                w.kernel = pkt.kernel;
                w.group = pkt.group;
                w.contribs = 1;
                sw.sendToGpu(std::move(w));
                return;
            }
            evictEntry(home, victim, false);
        }
        e = tbl.allocate(pkt.addr, false);
        st.sessionsOpened.inc();
        noteOpen(false);
        if (hooks)
            hooks->onMergeSessionOpen(sw.id(), home, pkt.addr, false,
                                      now);
        e->expected = pkt.expected;
        e->globalExpected = global_expected;
        e->group = pkt.group;
        e->allocatedAt = now;
        e->firstRequestAt = now;
        e->bytes = pkt.payloadBytes ? pkt.payloadBytes : p.chunkBytes;
        scheduleSweep();
    } else {
        st.redHits.inc();
    }

    // A spine contribution is a leaf partial carrying its merged count.
    e->count += (tier.isSpine() && pkt.contribs > 0) ? pkt.contribs : 1;
    e->contribMask.set(pkt.issuerGpu);
    e->lastAccess = now;
    if (e->group == invalidId)
        e->group = pkt.group;
    throttle.onContribution(pkt.group, pkt.issuerGpu, now);

    if (e->count >= e->expected)
        closeSession(home, e, true);
}

void
MergeUnit::emitMergedWrite(const MergeEntry &e)
{
    Packet w = sw.makePacket(PacketType::caisMergedWrite, e.homeGpu);
    w.addr = e.addr;
    w.payloadBytes = e.bytes;
    w.group = e.group;
    w.contribs = e.count;
    st.mergedWrites.inc();

    Cycle delay = p.reduceDelay;
    // Session-wait edge: the reduction accumulated from the first
    // contribution until emission (including the ALU delay); the
    // closing contribution (the active cause) enabled it.
    if (CausalProfiler *prof = sw.profiler())
        prof->record(profnode::merge(sw.id()), WaitClass::mergeWait,
                     e.firstRequestAt, sw.eventQueue().now() + delay);
    sw.eventQueue().scheduleAfter(delay,
        [this, pkt = std::move(w)]() mutable {
        CausalProfiler::ScopedCause sc(sw.profiler(),
                                       profnode::merge(sw.id()),
                                       sw.eventQueue().now());
        sw.sendToGpu(std::move(pkt));
    });
}

void
MergeUnit::emitPartialUpstream(const MergeEntry &e)
{
    // The spine accumulates per-leaf counts until they sum to the
    // fabric-global expectation, so partial (evicted) sessions are
    // forwarded with their current count exactly once.
    Packet w = sw.makePacket(PacketType::caisRedReq,
                             tier.spineNodeForAddr(e.addr));
    w.addr = e.addr;
    w.payloadBytes = e.bytes;
    w.group = e.group;
    w.contribs = e.count;
    w.expected = e.globalExpected;
    w.issuerGpu = sw.nodeId();
    w.tierHop = 1;
    st.partialUpstream.inc();

    if (CausalProfiler *prof = sw.profiler())
        prof->record(profnode::merge(sw.id()), WaitClass::mergeWait,
                     e.firstRequestAt,
                     sw.eventQueue().now() + p.reduceDelay);
    sw.eventQueue().scheduleAfter(p.reduceDelay,
        [this, pkt = std::move(w)]() mutable {
        CausalProfiler::ScopedCause sc(sw.profiler(),
                                       profnode::merge(sw.id()),
                                       sw.eventQueue().now());
        sw.sendToGpu(std::move(pkt));
    });
}

void
MergeUnit::closeSession(GpuId port, MergeEntry *e, bool complete)
{
    noteClose(e->isLoad());
    if (e->state == SessionState::reduction) {
        if (tier.isLeaf() && tier.numGroups > 1)
            emitPartialUpstream(*e);
        else
            emitMergedWrite(*e);
    }
    throttle.onSessionClose(e->group, e->contribMask);
    if (complete)
        st.sessionsClosed.inc();
    if (hooks)
        hooks->onMergeSessionClose(sw.id(), port, e->addr, e->isLoad(),
                                   e->count, e->bytes, e->allocatedAt,
                                   sw.eventQueue().now(), complete);
    table(port).release(e);
}

void
MergeUnit::evictEntry(GpuId port, MergeEntry *e, bool timeout_evict)
{
    if (timeout_evict)
        evSt.timeoutEvictions.inc();
    else
        evSt.lruEvictions.inc();
    if (hooks)
        hooks->onMergeEviction(sw.id(), port, timeout_evict,
                               sw.eventQueue().now());
    // Reduction sessions flush their partial sum to the home GPU (the
    // memory controller completes the reduction); Load-Ready sessions
    // simply drop the cached data.
    closeSession(port, e, false);
}

void
MergeUnit::scheduleSweep()
{
    if (sweepScheduled)
        return;
    sweepScheduled = true;
    sw.eventQueue().scheduleAfter(p.timeout / 2 + 1,
                                  [this] { timeoutSweep(); });
}

void
MergeUnit::timeoutSweep()
{
    sweepScheduled = false;
    Cycle now = sw.eventQueue().now();
    bool any_live = false;
    for (GpuId port = 0; port < static_cast<GpuId>(tables.size());
         ++port) {
        MergingTable &tbl = table(port);
        for (MergeEntry *e : policy.expired(tbl, now))
            evictEntry(port, e, true);
        if (tbl.liveEntries() > 0)
            any_live = true;
    }
    if (any_live)
        scheduleSweep();
}

std::uint64_t
MergeUnit::peakTableBytes() const
{
    std::uint64_t peak = 0;
    for (const auto &t : tables)
        peak = std::max(peak, t.peakBytes());
    return peak;
}

std::uint64_t
MergeUnit::peakTableBytes(GpuId port) const
{
    return tables[static_cast<std::size_t>(port)].peakBytes();
}

std::size_t
MergeUnit::liveSessions() const
{
    std::size_t n = 0;
    for (const auto &t : tables)
        n += t.liveEntries();
    return n;
}

std::uint64_t
MergeUnit::liveTableBytes(GpuId port) const
{
    return tables[static_cast<std::size_t>(port)].liveBytes();
}

void
MergeUnit::registerMetrics(MetricRegistry &reg,
                           const std::string &prefix) const
{
    reg.addCounter(prefix + ".loadReqs", &st.loadReqs);
    reg.addCounter(prefix + ".redReqs", &st.redReqs);
    reg.addCounter(prefix + ".loadHits", &st.loadHits);
    reg.addCounter(prefix + ".redHits", &st.redHits);
    reg.addCounter(prefix + ".fetches", &st.fetches);
    reg.addCounter(prefix + ".bypassFetches", &st.bypassFetches);
    reg.addCounter(prefix + ".unmergedWrites", &st.unmergedWrites);
    reg.addCounter(prefix + ".mergedWrites", &st.mergedWrites);
    reg.addCounter(prefix + ".sessionsOpened", &st.sessionsOpened);
    reg.addCounter(prefix + ".sessionsClosed", &st.sessionsClosed);
    if (tier.isLeaf())
        reg.addCounter(prefix + ".partialUpstream", &st.partialUpstream);

    reg.addCounter(prefix + ".evictions.lru", &evSt.lruEvictions);
    reg.addCounter(prefix + ".evictions.timeout",
                   &evSt.timeoutEvictions);
    reg.addCounter(prefix + ".evictions.deferred",
                   &evSt.deferredEvictions);

    reg.addHistogram(prefix + ".stagger", &stagger);
    reg.addHistogram(prefix + ".loadStagger", &loadStagger);
    reg.addHistogram(prefix + ".redStagger", &redStagger);

    reg.addGaugeU64(prefix + ".peakTableBytes",
                    [this] { return peakTableBytes(); });
    reg.addGaugeU64(prefix + ".peakLoadSessions", [this] {
        return static_cast<std::uint64_t>(peakLoads);
    });
    reg.addGaugeU64(prefix + ".peakRedSessions", [this] {
        return static_cast<std::uint64_t>(peakReds);
    });

    for (std::size_t port = 0; port < tables.size(); ++port) {
        const MergingTable *t = &tables[port];
        reg.addGaugeU64(prefix + ".port" + std::to_string(port) +
                            ".peakBytes",
                        [t] { return t->peakBytes(); });
        reg.addGaugeU64(prefix + ".port" + std::to_string(port) +
                            ".peakEntries",
                        [t] {
            return static_cast<std::uint64_t>(t->peakEntries());
        });
    }

    throttle.registerMetrics(reg, prefix + ".throttle");
}

} // namespace cais
