/**
 * @file
 * In-switch computing complex: composes the NVLS unit, the CAIS merge
 * unit and the Group Sync Table behind the SwitchComputeHandler
 * interface and dispatches fabric packets to the right engine.
 */

#ifndef CAIS_SWITCHCOMPUTE_SWITCH_COMPUTE_HH
#define CAIS_SWITCHCOMPUTE_SWITCH_COMPUTE_HH

#include <memory>

#include "switchcompute/group_sync_table.hh"
#include "switchcompute/merge_unit.hh"
#include "switchcompute/nvls_unit.hh"

namespace cais
{

/** Configuration of one switch's compute complex. */
struct InSwitchParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    NvlsParams nvls;
    MergeParams merge;
    /** Placement of this switch in the fabric (flat by default). */
    TierInfo tier;
};

/** One switch's in-switch computing engines. */
class SwitchComputeComplex : public SwitchComputeHandler
{
  public:
    SwitchComputeComplex(SwitchChip &sw, const InSwitchParams &params);

    bool wants(const Packet &pkt) const override;
    void handlePacket(Packet &&pkt) override;

    /** Attach a lifecycle observer to the merge and sync engines. */
    void
    setTraceHooks(SwitchTraceHooks *h)
    {
        mergeUnit.setTraceHooks(h);
        syncTable.setTraceHooks(h);
    }

    /** Register every engine under prefix.{nvls,merge,sync}. */
    void
    registerMetrics(MetricRegistry &reg, const std::string &prefix) const
    {
        nvlsUnit.registerMetrics(reg, prefix + ".nvls");
        mergeUnit.registerMetrics(reg, prefix + ".merge");
        syncTable.registerMetrics(reg, prefix + ".sync");
    }

    NvlsUnit &nvls() { return nvlsUnit; }
    MergeUnit &merge() { return mergeUnit; }
    GroupSyncTable &sync() { return syncTable; }

    const NvlsUnit &nvls() const { return nvlsUnit; }
    const MergeUnit &merge() const { return mergeUnit; }
    const GroupSyncTable &sync() const { return syncTable; }

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    SwitchChip &sw;
    NvlsUnit nvlsUnit;
    MergeUnit mergeUnit;
    GroupSyncTable syncTable;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_SWITCH_COMPUTE_HH
