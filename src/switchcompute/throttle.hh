/**
 * @file
 * TB-aware request throttling (Sec. III-B.2): when a GPU runs ahead of
 * its peers in a mergeable TB group — i.e. it keeps opening merge
 * sessions that sit waiting for the other GPUs — the switch sends it a
 * throttle hint so it pauses further mergeable requests and lets the
 * peers catch up. Driven by the merge unit's per-address tracking
 * state.
 */

#ifndef CAIS_SWITCHCOMPUTE_THROTTLE_HH
#define CAIS_SWITCHCOMPUTE_THROTTLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/metrics.hh"
#include "common/nodemask.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cais
{

/** Switch-side throttling bookkeeping and hint generation. */
class ThrottleController : public Probe
{
  public:
    /**
     * @param num_gpus fabric size.
     * @param threshold unmatched contributions per (group, GPU) above
     *        which a hint is sent.
     * @param pause_cycles pause duration suggested in hints.
     * @param hint_interval minimum spacing between hints to one GPU.
     */
    ThrottleController(int num_gpus, int threshold, Cycle pause_cycles,
                       Cycle hint_interval);

    /** Called when GPU @p g contributes to an incomplete session. */
    void onContribution(GroupId group, GpuId g, Cycle now);

    /** Called when a session closes with contributor mask @p mask
     *  (bits outside [0, num_gpus) — remote-tier proxies — are
     *  ignored). */
    void onSessionClose(GroupId group, const NodeMask &mask);

    /** Hint sink: (gpu, group, pause cycles). */
    void setHintCallback(std::function<void(GpuId, GroupId, Cycle)> cb);

    /** Open-session contributions by @p g in @p group. */
    int unmatched(GroupId group, GpuId g) const;

    std::uint64_t hintsSent() const { return hints.value(); }

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".hintsSent", &hints);
    }

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    int numGpus;
    int threshold;
    Cycle pauseCycles;
    Cycle hintInterval;

    std::unordered_map<GroupId, std::vector<int>> open;
    std::vector<Cycle> lastHint;
    std::function<void(GpuId, GroupId, Cycle)> hintCb;
    Counter hints;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_THROTTLE_HH
