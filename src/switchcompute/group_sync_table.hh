/**
 * @file
 * Switch-side Group Sync Table (Fig. 8b): counts pre-launch and
 * pre-access synchronization requests per TB group and broadcasts a
 * release to all participating GPUs once every GPU has registered.
 *
 * On multi-tier fabrics the rendezvous is hierarchical: each leaf
 * records which of its local GPUs registered (for the release
 * fan-out) and forwards every registration to the group's spine,
 * which counts them against the *global* participant count the
 * requesters carry. Counting only at the spine keeps the flat
 * semantics — "any pkt.expected registrants complete the group" —
 * exact even when the participant set excludes a GPU whose location
 * the switches cannot know (e.g. the home GPU of a reduction group
 * syncs G-1 remote contributors).
 */

#ifndef CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH
#define CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/metrics.hh"
#include "common/nodemask.hh"
#include "common/stats.hh"
#include "common/trace_hooks.hh"
#include "noc/switch_chip.hh"
#include "switchcompute/tier.hh"

namespace cais
{

/** Synchronization phase carried in sync-packet cookies. */
enum class SyncPhase : std::uint8_t { preLaunch = 0, preAccess = 1 };

/** Per-group rendezvous counters with release broadcast. */
class GroupSyncTable : public Probe
{
  public:
    explicit GroupSyncTable(SwitchChip &sw, const TierInfo &tier = {});

    /** Attach a rendezvous-window observer (nullptr detaches). */
    void setTraceHooks(SwitchTraceHooks *h) { hooks = h; }

    /** Consume one groupSyncReq packet. */
    void handleSyncReq(Packet &&pkt);

    /** Consume the spine's release at a leaf (multi-tier only). */
    void handleRelease(Packet &&pkt);

    std::uint64_t requests() const { return reqs.value(); }
    std::uint64_t releases() const { return rels.value(); }
    std::size_t pendingGroups() const { return pending.size(); }

    /** Registration window (first to last request) in cycles. */
    const Histogram &windowHist() const { return window; }

    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const override;

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    struct Entry
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        int count = 0;
        NodeMask mask;
        Cycle first = 0;
    };

    static std::uint64_t
    key(GroupId g, std::uint64_t phase)
    {
        return (static_cast<std::uint64_t>(g) << 1) | (phase & 1);
    }

    void broadcastRelease(const NodeMask &mask, GroupId group,
                          std::uint64_t phase);

    SwitchChip &sw;
    TierInfo tier;
    SwitchTraceHooks *hooks = nullptr;
    std::unordered_map<std::uint64_t, Entry> pending;
    Counter reqs;
    Counter rels;
    Histogram window{0.0, 100.0 * cyclesPerUs, 100};
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH
