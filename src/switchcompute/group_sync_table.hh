/**
 * @file
 * Switch-side Group Sync Table (Fig. 8b): counts pre-launch and
 * pre-access synchronization requests per TB group and broadcasts a
 * release to all participating GPUs once every GPU has registered.
 */

#ifndef CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH
#define CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace_hooks.hh"
#include "noc/switch_chip.hh"

namespace cais
{

/** Synchronization phase carried in sync-packet cookies. */
enum class SyncPhase : std::uint8_t { preLaunch = 0, preAccess = 1 };

/** Per-group rendezvous counters with release broadcast. */
class GroupSyncTable : public Probe
{
  public:
    explicit GroupSyncTable(SwitchChip &sw);

    /** Attach a rendezvous-window observer (nullptr detaches). */
    void setTraceHooks(SwitchTraceHooks *h) { hooks = h; }

    /** Consume one groupSyncReq packet. */
    void handleSyncReq(Packet &&pkt);

    std::uint64_t requests() const { return reqs.value(); }
    std::uint64_t releases() const { return rels.value(); }
    std::size_t pendingGroups() const { return pending.size(); }

    /** Registration window (first to last request) in cycles. */
    const Histogram &windowHist() const { return window; }

    void registerMetrics(MetricRegistry &reg,
                         const std::string &prefix) const override;

  private:
    struct Entry
    {
        int count = 0;
        std::uint64_t mask = 0;
        Cycle first = 0;
    };

    static std::uint64_t
    key(GroupId g, std::uint64_t phase)
    {
        return (static_cast<std::uint64_t>(g) << 1) | (phase & 1);
    }

    SwitchChip &sw;
    SwitchTraceHooks *hooks = nullptr;
    std::unordered_map<std::uint64_t, Entry> pending;
    Counter reqs;
    Counter rels;
    Histogram window{0.0, 100.0 * cyclesPerUs, 100};
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_GROUP_SYNC_TABLE_HH
