/**
 * @file
 * CAM Lookup Table of the CAIS merge unit (Fig. 5).
 *
 * Matches incoming requests by (address, request type) and yields the
 * Merging Table slot of the active session, mirroring the associative
 * search hardware described in Sec. III-A.2.
 */

#ifndef CAIS_SWITCHCOMPUTE_CAM_TABLE_HH
#define CAIS_SWITCHCOMPUTE_CAM_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace cais
{

/** Associative (addr, type) -> merging-table-slot map. */
class CamLookupTable
{
  public:
    static constexpr int noSlot = -1;

    /** Slot of the active session for (addr, is_load), or noSlot. */
    int lookup(Addr addr, bool is_load) const;

    /** Install a mapping; panics on duplicate keys. */
    void insert(Addr addr, bool is_load, int slot);

    /** Remove a mapping; panics if absent. */
    void erase(Addr addr, bool is_load);

    std::size_t size() const { return map.size(); }

  private:
    static std::uint64_t key(Addr addr, bool is_load)
    {
        // Loads and reductions to the same address are distinct
        // sessions; fold the type into bit 0 (addresses are at least
        // 2-byte aligned in practice).
        return (addr << 1) | (is_load ? 1u : 0u);
    }

    CAIS_OWNED_BY_DOMAIN(parent);

    std::unordered_map<std::uint64_t, int> map;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_CAM_TABLE_HH
