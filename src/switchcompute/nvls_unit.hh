/**
 * @file
 * Stock NVLS in-switch computing unit (communication-centric), per
 * Klenk et al. [24] and NVIDIA's third-generation NVSwitch: handles
 * the three multimem primitives.
 *
 *  - multimem.st        : push-mode multicast store. The switch
 *                         replicates the payload to every other GPU.
 *  - multimem.ld_reduce : pull-mode gather-reduce. The switch fetches
 *                         the addressed data from every GPU's replica,
 *                         reduces in-flight, and returns the result to
 *                         the requester.
 *  - multimem.red       : push-mode reduction. Contributions from all
 *                         GPUs are accumulated in the switch and the
 *                         result is written to every replica.
 *
 * On multi-tier fabrics each primitive runs hierarchically: a leaf
 * handles its local GPUs and exchanges one aggregate packet per
 * primitive with the spine (tierHop 1 up, tierHop 2 down), and the
 * spine combines/distributes across groups.
 */

#ifndef CAIS_SWITCHCOMPUTE_NVLS_UNIT_HH
#define CAIS_SWITCHCOMPUTE_NVLS_UNIT_HH

#include <cstdint>
#include <unordered_map>

#include "common/metrics.hh"
#include "common/nodemask.hh"
#include "common/stats.hh"
#include "noc/switch_chip.hh"
#include "switchcompute/tier.hh"

namespace cais
{

/** NVLS unit tunables. */
struct NvlsParams
{
    CAIS_OWNED_BY_DOMAIN(config);

    /** In-flight reduction latency charged per completed session. */
    Cycle reduceDelay = 8;
};

/** The switch-resident NVLS engine. */
class NvlsUnit : public Probe
{
  public:
    NvlsUnit(SwitchChip &sw, const NvlsParams &params = {},
             const TierInfo &tier = {});

    void handleMultimemSt(Packet &&pkt);
    void handleLdReduceReq(Packet &&pkt);
    void handleRed(Packet &&pkt);

    /** Read response for a gather this unit issued (cookie-tagged). */
    void handleReadResp(Packet &&pkt);

    /** Reduced tier response returned to this switch (multi-tier). */
    void handleLdReduceResp(Packet &&pkt);

    std::uint64_t multicasts() const { return stMulticasts.value(); }
    std::uint64_t gatherReduces() const { return gathersDone.value(); }
    std::uint64_t pushReduces() const { return redsDone.value(); }
    std::size_t pendingSessions() const
    {
        return gathers.size() + reds.size();
    }

    void
    registerMetrics(MetricRegistry &reg,
                    const std::string &prefix) const override
    {
        reg.addCounter(prefix + ".multicasts", &stMulticasts);
        reg.addCounter(prefix + ".gatherReduces", &gathersDone);
        reg.addCounter(prefix + ".pushReduces", &redsDone);
    }

  private:
    CAIS_OWNED_BY_DOMAIN(switch_domain);

    struct GatherSession
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        /** Node the reduced response returns to: the requesting GPU
         *  at its own leaf, the downstream switch for tier legs. */
        int requester = invalidId;
        Addr addr = 0;
        std::uint32_t bytes = 0;
        std::uint32_t pad = 0;
        std::uint64_t hubCookie = 0;
        int arrived = 0;
        int expected = 0;
        KernelId kernel = invalidId;
        TbId tb = invalidId;
        Cycle profStart = 0; ///< profiler: session-open cycle
    };

    struct RedSession
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        int arrived = 0;
        int expected = 0;
        std::uint32_t bytes = 0;
        NodeMask mask;
        KernelId kernel = invalidId;
        std::uint8_t tierHop = 0;
        /** Total GPU contributions represented (hierarchical sums). */
        int contribs = 0;
        Cycle profStart = 0; ///< profiler: session-open cycle
    };

    void completeGather(std::uint64_t id, GatherSession &s);
    void replicateLocal(const Packet &pkt);

    SwitchChip &sw;
    NvlsParams p;
    TierInfo tier;

    std::unordered_map<std::uint64_t, GatherSession> gathers;
    std::unordered_map<Addr, RedSession> reds;
    std::uint64_t nextGatherId = 1;

    Counter stMulticasts;
    Counter gathersDone;
    Counter redsDone;
};

} // namespace cais

#endif // CAIS_SWITCHCOMPUTE_NVLS_UNIT_HH
