/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue owns global simulated time. Components schedule
 * callbacks at absolute or relative cycles; ties are broken by
 * insertion order so simulations are fully deterministic.
 */

#ifndef CAIS_COMMON_EVENT_QUEUE_HH
#define CAIS_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace cais
{

/** A deterministic discrete-event queue with nanosecond resolution. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    void schedule(Cycle when, Callback cb);

    /** Schedule @p cb @p delta cycles after the current time. */
    void scheduleAfter(Cycle delta, Callback cb);

    /** Pop and run the earliest event. @return false if queue empty. */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed @p limit.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Cycle limit);

    /**
     * Run events until the queue drains.
     * @param max_events safety valve against runaway simulations.
     * @return the number of events executed.
     */
    std::uint64_t runAll(std::uint64_t max_events = ~0ull);

    /** Current simulated time in cycles. */
    Cycle now() const { return curTick; }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /** Reset time to zero and discard all pending events. */
    void reset();

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Cycle curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace cais

#endif // CAIS_COMMON_EVENT_QUEUE_HH
