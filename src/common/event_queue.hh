/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue owns global simulated time. Components schedule
 * callbacks at absolute or relative cycles; ties are broken by
 * insertion order so simulations are fully deterministic.
 *
 * Two implementations share the same (when, seq) total order:
 *
 *  - **bucketed** (default): a calendar-queue-style near-future ring
 *    of `nearWindow` per-cycle FIFO buckets backed by a far-future
 *    binary heap. Scheduling within the window and popping are O(1)
 *    amortized; only events more than `nearWindow` cycles out touch
 *    the heap.
 *  - **heap**: the original single binary heap, kept for one release
 *    behind `CAIS_EVENTQ=heap` as a determinism cross-check (see
 *    tests/test_event_determinism.cc).
 *
 * Callbacks are `InlineEvent`s: move-only callables stored entirely
 * inside the event entry (no heap allocation, ever — a capture that
 * does not fit is a compile error), sized so that a packet-delivery
 * closure (a Packet plus a couple of pointers) fits inline.
 */

#ifndef CAIS_COMMON_EVENT_QUEUE_HH
#define CAIS_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace cais
{

/**
 * Small-buffer-only callable for scheduled events.
 *
 * Unlike std::function there is no heap fallback: the callable is
 * constructed directly in `inlineCapacity` bytes of inline storage,
 * so the packet-delivery hot path never allocates. Captures must be
 * nothrow-move-constructible and fit the buffer (both enforced at
 * compile time).
 */
class InlineEvent
{
  public:
    /** Inline storage: sizeof(Packet) plus capture headroom. */
    static constexpr std::size_t inlineCapacity = 128;

    InlineEvent() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent>>>
    InlineEvent(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineCapacity,
                      "event capture exceeds InlineEvent::inlineCapacity; "
                      "shrink the capture (InlineEvent has no heap fallback)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event captures are not supported");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event captures must be nothrow-move-constructible");
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
        call = [](void *p) { (*static_cast<Fn *>(p))(); };
        // Null @p dst means "destroy only": one manager pointer covers
        // both relocation and destruction.
        relocate = [](void *dst, void *src) noexcept {
            Fn *s = static_cast<Fn *>(src);
            if (dst)
                ::new (dst) Fn(std::move(*s));
            s->~Fn();
        };
    }

    InlineEvent(InlineEvent &&other) noexcept { moveFrom(other); }

    InlineEvent &
    operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent() { destroy(); }

    /** True when a callable is held. */
    explicit operator bool() const { return call != nullptr; }

    /** Invoke the stored callable. */
    void operator()() { call(buf); }

    /** Destroy the stored callable, leaving the event empty. */
    void reset() noexcept { destroy(); }

  private:
    void
    moveFrom(InlineEvent &other) noexcept
    {
        call = other.call;
        relocate = other.relocate;
        if (call) {
            relocate(buf, other.buf);
            other.call = nullptr;
            other.relocate = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (call) {
            relocate(nullptr, buf);
            call = nullptr;
            relocate = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[inlineCapacity];
    void (*call)(void *) = nullptr;
    void (*relocate)(void *dst, void *src) noexcept = nullptr;
};

class EventQueue;

// ---------------------------------------------------------------------
// Sharded-execution support (common/sharded_event_queue.hh).
//
// Under conservative-PDES sharding, every event carries a sequence
// number that reconstructs the *sequential* scheduler's total order:
//
//  - class-0 ("cross-window") events — scheduled before the run or
//    exchanged between shards at a window barrier — carry a global
//    virtual sequence number (vseq, bit 63 clear) handed out in
//    sequential call order by the barrier merge;
//  - class-1 ("in-window") events — scheduled by a shard onto its own
//    queue inside the open window — carry bit 63 set plus a per-shard
//    local counter, and are always consumed before the window closes.
//
// At equal `when`, class-0 numerically precedes class-1, which matches
// the sequential order because a class-0 event's scheduling call ran
// in an earlier window (i.e. at an earlier sequential seq).
// ---------------------------------------------------------------------

/** One executed event, logged per shard per window so the barrier can
 *  reconstruct the sequential order of the schedule calls it made. */
struct ShardExecRec
{
    Cycle when;
    std::uint64_t seq;     ///< class-encoded (see above)
    std::uint32_t srcExec; ///< scheduling event's log index (class-1)
    std::uint32_t srcCall; ///< schedule-call index within it (class-1)
};

/** One deferred schedule call bound for a window barrier: either a
 *  cross-shard delivery or an own-queue event beyond the window. */
struct ShardOutRec
{
    EventQueue *dst;
    Cycle when;
    std::uint32_t srcExec;
    std::uint32_t srcCall;
    InlineEvent cb;
};

/** Counters shared by every queue of one sharded group. Only touched
 *  single-threaded: pre-run on the main thread and at barriers. */
struct ShardGroup
{
    std::uint64_t nextVseq = 0;
};

/** Per-shard execution context, installed thread-locally while the
 *  shard drains a window (see ShardedEventQueue::runAll). */
struct ShardCtx
{
    EventQueue *q = nullptr; ///< this shard's queue

    /** Open window is [safeHorizon, windowEnd): events strictly below
     *  safeHorizon have all executed on every shard. */
    Cycle windowEnd = 0;
    Cycle safeHorizon = 0;

    std::uint64_t localSeq = 0; ///< class-1 counter (never reset)
    std::uint32_t curExec = 0;  ///< log index of the running event
    std::uint32_t curCall = 0;  ///< its next schedule-call index

    std::vector<ShardExecRec> execLog; ///< this window's executions
    std::vector<ShardOutRec> outbox;   ///< this window's deferred calls

    /** Opaque per-shard observer state (the causal profiler's
     *  private edge log); never read by the scheduler itself. */
    void *userData = nullptr;
};

/** A deterministic discrete-event queue with nanosecond resolution. */
class EventQueue
{
  public:
    using Callback = InlineEvent;

    /** Scheduler implementation selector (see file comment). */
    enum class SchedulerKind
    {
        bucketed, ///< near-future bucket ring + far-future heap
        heap,     ///< legacy single binary heap
    };

    /**
     * Cycles covered by the near-future bucket ring (power of two).
     * Covers link latency (250) plus worst-case serialization with
     * ample slack; longer deltas (merge-table sweeps, launch skew)
     * take the far heap.
     */
    static constexpr Cycle nearWindow = 4096;

    /** Scheduler kind chosen via CAIS_EVENTQ ("heap" selects legacy). */
    EventQueue();

    /** Scheduler kind pinned explicitly (unit tests). */
    explicit EventQueue(SchedulerKind kind);

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    void schedule(Cycle when, Callback cb);

    /** Schedule @p cb @p delta cycles after the current time. */
    void scheduleAfter(Cycle delta, Callback cb);

    /** Pop and run the earliest event. @return false if queue empty. */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed @p limit. Events scheduled exactly at @p limit run;
     * simulated time then advances to @p limit even when later
     * events remain pending.
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Cycle limit);

    /**
     * Run events until the queue drains.
     * @param max_events safety valve against runaway simulations.
     * @return the number of events executed.
     */
    std::uint64_t runAll(std::uint64_t max_events = ~0ull);

    /** Current simulated time in cycles. */
    Cycle now() const { return curTick; }

    /** True when no events remain. */
    bool empty() const { return nearCount == 0 && heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return nearCount + heap.size(); }

    /** Earliest pending cycle, or ~0ull when empty (window loop). */
    Cycle peekNextWhen() const { return nextWhen(); }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Install a non-perturbing periodic observer: as simulated time
     * advances past each multiple of @p period, @p fn is invoked with
     * that sample cycle *outside* the event stream — the call is not
     * an event, does not count toward executed(), and fires before
     * the events of the cycle it lands on, so the observed state is
     * exactly the state of the open interval ending at the sample
     * point. The observer must not schedule events or mutate
     * simulation state (it exists for trace/metric sampling; see
     * DESIGN.md §6d). A @p period of 0 removes the observer. Only one
     * observer is supported; installing replaces the previous one.
     */
    void setPeriodicObserver(Cycle period,
                             std::function<void(Cycle)> fn);

    /** Scheduler implementation in use. */
    SchedulerKind kind() const { return mode; }

    // --- Sharded execution (common/sharded_event_queue.hh) ---------

    /** Seq-space bit marking class-1 (in-window) events. */
    static constexpr std::uint64_t inWindowSeqBit = 1ull << 63;

    /**
     * Bind this queue into a sharded group. From then on schedule()
     * routes by the caller's thread-local ShardCtx: in-window
     * own-queue events insert locally with class-1 seqs, everything
     * else is deferred to the group's window barrier; calls with no
     * ShardCtx (main thread, pre-run) draw class-0 vseqs directly.
     */
    void bindShardGroup(ShardGroup *g) { shardGroup = g; }

    const ShardGroup *boundShardGroup() const { return shardGroup; }

    /** Install/clear the calling thread's shard context. */
    static void setThreadShardCtx(ShardCtx *ctx) { tlsCtx = ctx; }
    static ShardCtx *threadShardCtx() { return tlsCtx; }

    /**
     * Barrier-time insertion of a class-0 event with an
     * already-assigned @p vseq. Callers must insert in ascending vseq
     * order per queue (the barrier merge drains its mailboxes in
     * globally sorted order, which guarantees this) so the bucket
     * FIFOs stay seq-ordered.
     */
    void scheduleExternal(Cycle when, std::uint64_t vseq, Callback cb);

    /**
     * Reset time to zero and discard all pending events. The
     * insertion-order tie-break counter and the executed-event count
     * are also reset, so a reused queue reproduces identical
     * tie-breaks (and therefore identical simulations). Must not be
     * called from inside a running event (the event's own slot would
     * be destroyed under it).
     */
    void reset();

  private:
    /**
     * One pending event. Slots live in chunked arrays with stable
     * addresses, so a callback runs *in place* — no move out of the
     * queue on the pop path — and freed slots recycle LIFO through a
     * freelist, keeping the hot set small. `next` threads the slot
     * into its bucket's FIFO (or the freelist when unused).
     */
    struct Slot
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t next;
        std::uint32_t srcExec; ///< class-1 origin (shard mode only)
        std::uint32_t srcCall;
        Callback cb;
    };

    /** Heap element: ordering key plus the owning slot's index. */
    struct HeapKey
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    struct Later
    {
        bool
        operator()(const HeapKey &a, const HeapKey &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Intrusive per-bucket FIFO of slot indices. */
    struct Fifo
    {
        std::uint32_t head = nilIdx;
        std::uint32_t tail = nilIdx;
    };

    static constexpr std::uint32_t nilIdx = ~0u;
    static constexpr std::size_t chunkShift = 8; ///< 256 slots per chunk
    static constexpr std::size_t chunkSlots = std::size_t{1} << chunkShift;

    static constexpr Cycle bucketMask = nearWindow - 1;
    static constexpr std::size_t bitmapWords = nearWindow / 64;

    Slot &
    slotAt(std::uint32_t idx)
    {
        return chunks[idx >> chunkShift][idx & (chunkSlots - 1)];
    }

    const Slot &
    slotAt(std::uint32_t idx) const
    {
        return chunks[idx >> chunkShift][idx & (chunkSlots - 1)];
    }

    /** Take a slot off the freelist, growing a chunk if dry. */
    std::uint32_t allocSlot();

    /** Return an emptied slot to the freelist (LIFO for locality). */
    void
    releaseSlot(std::uint32_t idx)
    {
        slotAt(idx).next = freeHead;
        freeHead = idx;
    }

    void markOccupied(std::size_t idx);
    void clearOccupied(std::size_t idx);

    /**
     * Index of the first occupied bucket at or after the bucket of
     * @p from, in ring order. Requires nearCount > 0.
     */
    std::size_t nextOccupied(Cycle from) const;

    /** Earliest pending cycle, or ~0ull when empty. */
    Cycle nextWhen() const;

    /** Detach and return the earliest (when, seq) slot's index. */
    std::uint32_t popNext();

    /** Shard-mode schedule() routing (see bindShardGroup). */
    void shardRoute(ShardCtx &ctx, Cycle when, Callback cb);

    /** Common insertion tail once the seq is decided. */
    void insertSlot(Cycle when, std::uint64_t seq,
                    std::uint32_t src_exec, std::uint32_t src_call,
                    Callback cb);

    SchedulerKind mode;

    ShardGroup *shardGroup = nullptr;
    // cais-lint: allow(D4) -- per-thread shard binding (which shard
    // this OS thread is draining), not simulation state.
    static thread_local ShardCtx *tlsCtx;

    // Slot arena: chunked so addresses stay stable while callbacks
    // execute (an in-flight callback may grow the arena).
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::uint32_t freeHead = nilIdx;

    // Near-future ring: bucket b holds the single in-window cycle
    // congruent to b (mod nearWindow); entries append in seq order.
    std::vector<Fifo> buckets;
    std::uint64_t occupied[bitmapWords] = {};
    std::size_t nearCount = 0;

    // Far-future events, and the only ordering in legacy heap mode
    // (payloads stay in the arena either way).
    std::priority_queue<HeapKey, std::vector<HeapKey>, Later> heap;

    Cycle curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;

    // Periodic observer (trace sampling). nextObsAt stays at ~0ull
    // when disabled so the hot path pays a single always-false
    // comparison.
    static constexpr Cycle obsDisabled = ~0ull;
    Cycle obsPeriod = 0;
    Cycle nextObsAt = obsDisabled;
    std::function<void(Cycle)> observer;

    /** Fire the observer for every sample point in (curTick, when]. */
    void runObserver(Cycle when);
};

} // namespace cais

#endif // CAIS_COMMON_EVENT_QUEUE_HH
