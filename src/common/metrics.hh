/**
 * @file
 * Hierarchical metric registry: the unified observability layer's
 * backbone (DESIGN.md §6d).
 *
 * Components own their statistics by value (Counter / Accumulator /
 * Histogram / TimeSeries from common/stats.hh); a MetricRegistry
 * holds non-owning readers under dotted paths such as
 *
 *     switch0.merge.loadHits
 *     switch0.merge.port3.peakTableBytes
 *     gpu2.hbm.bytes
 *
 * Every instrumented component implements the Probe interface and
 * self-registers under a caller-chosen prefix; System::registerMetrics
 * walks the whole machine. Reading happens only at snapshot() time, so
 * registration is free during simulation and the layer is
 * determinism-neutral by construction: registering and snapshotting
 * never schedules events or mutates simulation state.
 *
 * Naming convention: `<component-instance>.<engine>.<metric>`, all
 * lowerCamelCase segments, instance ids suffixed without separators
 * (switch0, gpu3, port5, vc2). Aggregation across instances is done
 * by pattern queries on the snapshot ('*' matches any run of
 * characters), e.g. sumU64("switch*.merge.loadReqs").
 */

#ifndef CAIS_COMMON_METRICS_HH
#define CAIS_COMMON_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace cais
{

class JsonWriter;

/** What a metric path denotes. */
enum class MetricKind : std::uint8_t
{
    counter,    ///< monotonically increasing integer
    gauge,      ///< point-in-time scalar (double)
    gaugeU64,   ///< point-in-time scalar (exact integer)
    stats,      ///< Accumulator summary: count/mean/min/max
    histogram,  ///< Histogram summary: stats + percentiles
    timeSeries, ///< binned series (bin width + values)
};

/** One metric's value at snapshot time. */
struct MetricValue
{
    MetricKind kind = MetricKind::gauge;

    /** Scalar reading: counter/gaugeU64 value, gauge value; for
     *  stats/histogram this is the sample count (so scalar pattern
     *  queries over mixed kinds behave sensibly); 0 for time series. */
    double value = 0.0;

    /** Exact integer for counter/gaugeU64 (value() loses precision
     *  past 2^53; counters like eventsExecuted must stay exact). */
    std::uint64_t u64 = 0;

    // stats / histogram summary
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;  ///< histogram only
    double p90 = 0.0;  ///< histogram only
    double p99 = 0.0;  ///< histogram only
    double p999 = 0.0; ///< histogram only

    // time series
    Cycle binWidth = 0;
    std::vector<double> bins;
};

/**
 * A read-only view of every registered metric, taken at one instant.
 * Pattern arguments use '*' to match any run of characters (including
 * dots), so "switch*.merge.loadReqs" and "*.hbm.bytes" both work.
 */
class MetricSnapshot
{
  public:
    using Map = std::map<std::string, MetricValue>;

    explicit MetricSnapshot(Map values) : vals(std::move(values)) {}

    const Map &all() const { return vals; }

    /** Metric at exactly @p path, or nullptr. */
    const MetricValue *find(const std::string &path) const;

    /** Sum of exact-integer readings over matching counters /
     *  gaugeU64s (histograms and stats contribute their count). */
    std::uint64_t sumU64(const std::string &pattern) const;

    /** Max of exact-integer readings over matching metrics. */
    std::uint64_t maxU64(const std::string &pattern) const;

    /** Sum of scalar readings over matching metrics. */
    double sum(const std::string &pattern) const;

    /** Visit every matching (path, value) pair in path order. */
    void forEach(const std::string &pattern,
                 const std::function<void(const std::string &,
                                          const MetricValue &)> &fn)
        const;

    /** '*'-wildcard match of @p pattern against @p path. */
    static bool matches(const std::string &pattern,
                        const std::string &path);

    /**
     * Serialize as a JSON object mapping dotted paths to typed metric
     * entries ({"kind": ..., ...}); the "metrics" section of the run
     * report (see analysis/report.hh for the enclosing schema).
     */
    void writeJson(JsonWriter &w) const;

  private:
    Map vals;
};

/** Non-owning registry of metric readers under dotted paths. */
class MetricRegistry
{
  public:
    void addCounter(const std::string &path, const Counter *c);
    void addAccumulator(const std::string &path, const Accumulator *a);
    void addHistogram(const std::string &path, const Histogram *h);
    void addTimeSeries(const std::string &path, const TimeSeries *t);

    /**
     * Computed binned series, read at snapshot time (for series that
     * are derived from windowed state rather than held in a
     * TimeSeries object, e.g. the fabric utilization-over-time
     * series of Fig. 16).
     */
    void addTimeSeriesFn(const std::string &path, Cycle bin_width,
                         std::function<std::vector<double>()> reader);

    /** Computed scalar, read at snapshot time. */
    void addGauge(const std::string &path,
                  std::function<double()> reader);

    /** Computed exact-integer scalar, read at snapshot time. */
    void addGaugeU64(const std::string &path,
                     std::function<std::uint64_t()> reader);

    /** Number of registered paths. */
    std::size_t size() const { return slots.size(); }

    /** True when @p path is registered. */
    bool has(const std::string &path) const;

    /** Read every metric now. */
    MetricSnapshot snapshot() const;

    /** Render "path = scalar" lines (debugging aid). */
    std::string dump() const;

  private:
    struct Slot
    {
        MetricKind kind;
        const void *obj = nullptr; ///< stats-object kinds
        std::function<double()> gauge;
        std::function<std::uint64_t()> gaugeU64;
        std::function<std::vector<double>()> series;
        Cycle seriesBinWidth = 0;
    };

    void insert(const std::string &path, Slot slot);

    std::map<std::string, Slot> slots;
};

/**
 * Interface of a component that publishes metrics. Implementations
 * register every metric they own under `prefix + "."` and recurse
 * into sub-components with an extended prefix. Registration must not
 * change simulation behaviour (readers only).
 */
class Probe
{
  public:
    virtual ~Probe() = default;

    virtual void registerMetrics(MetricRegistry &reg,
                                 const std::string &prefix) const = 0;
};

} // namespace cais

#endif // CAIS_COMMON_METRICS_HH
