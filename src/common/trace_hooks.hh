/**
 * @file
 * Switch-side observability hooks.
 *
 * The in-switch engines (merge unit, Group Sync Table, throttle) call
 * these notification points at session boundaries; a trace collector
 * (analysis/deep_trace.hh) implements them to build Perfetto lanes.
 * Every method has an empty default body, so an unattached component
 * pays one null check per notification and nothing else.
 *
 * Contract: implementations are pure observers. They must not
 * schedule events, send packets, or mutate any simulation state —
 * the determinism tests (trace-on vs. trace-off bit-identical
 * RunResult) enforce this.
 */

#ifndef CAIS_COMMON_TRACE_HOOKS_HH
#define CAIS_COMMON_TRACE_HOOKS_HH

#include <cstdint>

#include "common/types.hh"

namespace cais
{

/** Observer interface for switch-internal lifecycle events. */
class SwitchTraceHooks
{
  public:
    virtual ~SwitchTraceHooks() = default;

    /** A merge session opened at @p port for @p addr. */
    virtual void
    onMergeSessionOpen(SwitchId sw, GpuId port, Addr addr,
                       bool is_load, Cycle at)
    {
        (void)sw, (void)port, (void)addr, (void)is_load, (void)at;
    }

    /**
     * A merge session closed (completed or evicted).
     * @param hits requests merged into the session.
     * @param bytes session data footprint.
     * @param opened_at allocation time (span start).
     * @param complete true when all expected requests arrived.
     */
    virtual void
    onMergeSessionClose(SwitchId sw, GpuId port, Addr addr,
                        bool is_load, int hits, std::uint32_t bytes,
                        Cycle opened_at, Cycle at, bool complete)
    {
        (void)sw, (void)port, (void)addr, (void)is_load, (void)hits;
        (void)bytes, (void)opened_at, (void)at, (void)complete;
    }

    /** An entry was evicted (LRU when !timeout, timeout sweep else). */
    virtual void
    onMergeEviction(SwitchId sw, GpuId port, bool timeout, Cycle at)
    {
        (void)sw, (void)port, (void)timeout, (void)at;
    }

    /** The throttle sent a pause hint to @p gpu. */
    virtual void
    onThrottleHint(SwitchId sw, GpuId gpu, GroupId group, Cycle at)
    {
        (void)sw, (void)gpu, (void)group, (void)at;
    }

    /**
     * A group-sync rendezvous completed: all participants registered
     * between @p first_at and @p released_at.
     */
    virtual void
    onSyncWindow(SwitchId sw, GroupId group, int phase, Cycle first_at,
                 Cycle released_at)
    {
        (void)sw, (void)group, (void)phase, (void)first_at;
        (void)released_at;
    }
};

} // namespace cais

#endif // CAIS_COMMON_TRACE_HOOKS_HH
