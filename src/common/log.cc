#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cais
{

namespace
{
// cais-lint: allow(D4) -- process-wide log verbosity; never read by
// simulation logic, so it cannot perturb results
std::atomic<LogLevel> g_level{LogLevel::normal};

/** Innermost ScopedLogLevel override on this thread, if any. */
// cais-lint: allow(D4) -- thread-local by design: per-run override so
// parallel sweep jobs do not race on the global level (PR 1)
thread_local LogLevel t_level = LogLevel::normal;
// cais-lint: allow(D4) -- companion flag of t_level, same rationale
thread_local bool t_levelActive = false;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    if (t_levelActive)
        return t_level;
    return g_level.load(std::memory_order_relaxed);
}

ScopedLogLevel::ScopedLogLevel(LogLevel level)
    : prev(t_level), prevActive(t_levelActive)
{
    t_level = level;
    t_levelActive = true;
}

ScopedLogLevel::~ScopedLogLevel()
{
    t_level = prev;
    t_levelActive = prevActive;
}

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

void
informVerbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::verbose)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "debug: %s\n", s.c_str());
}

} // namespace cais
