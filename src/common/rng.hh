/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic element of the simulator (TB scheduling jitter,
 * DRAM contention noise) draws from an explicitly seeded Rng so that
 * simulations are exactly reproducible run to run.
 */

#ifndef CAIS_COMMON_RNG_HH
#define CAIS_COMMON_RNG_HH

#include <cstdint>

namespace cais
{

/** xorshift64* generator; small, fast, and deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator (zero is remapped to a fixed constant). */
    void seed(std::uint64_t s);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

  private:
    std::uint64_t state;
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace cais

#endif // CAIS_COMMON_RNG_HH
