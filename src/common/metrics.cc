#include "common/metrics.hh"

#include <sstream>

#include "common/json.hh"
#include "common/log.hh"

namespace cais
{

// --- MetricSnapshot --------------------------------------------------

const MetricValue *
MetricSnapshot::find(const std::string &path) const
{
    auto it = vals.find(path);
    return it == vals.end() ? nullptr : &it->second;
}

bool
MetricSnapshot::matches(const std::string &pattern,
                        const std::string &path)
{
    // Iterative glob over '*' (matches any run of characters). No
    // character classes; metric paths are plain ASCII.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() &&
            (pattern[p] == path[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::uint64_t
MetricSnapshot::sumU64(const std::string &pattern) const
{
    std::uint64_t total = 0;
    for (const auto &[path, v] : vals) {
        if (!matches(pattern, path))
            continue;
        switch (v.kind) {
          case MetricKind::counter:
          case MetricKind::gaugeU64:
            total += v.u64;
            break;
          case MetricKind::stats:
          case MetricKind::histogram:
            total += v.count;
            break;
          default:
            total += static_cast<std::uint64_t>(v.value);
            break;
        }
    }
    return total;
}

std::uint64_t
MetricSnapshot::maxU64(const std::string &pattern) const
{
    std::uint64_t best = 0;
    for (const auto &[path, v] : vals) {
        if (!matches(pattern, path))
            continue;
        std::uint64_t x;
        switch (v.kind) {
          case MetricKind::counter:
          case MetricKind::gaugeU64:
            x = v.u64;
            break;
          case MetricKind::stats:
          case MetricKind::histogram:
            x = v.count;
            break;
          default:
            x = static_cast<std::uint64_t>(v.value);
            break;
        }
        if (x > best)
            best = x;
    }
    return best;
}

double
MetricSnapshot::sum(const std::string &pattern) const
{
    double total = 0.0;
    for (const auto &[path, v] : vals)
        if (matches(pattern, path))
            total += v.value;
    return total;
}

void
MetricSnapshot::forEach(
    const std::string &pattern,
    const std::function<void(const std::string &, const MetricValue &)>
        &fn) const
{
    for (const auto &[path, v] : vals)
        if (matches(pattern, path))
            fn(path, v);
}

void
MetricSnapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[path, v] : vals) {
        w.key(path);
        w.beginObject();
        switch (v.kind) {
          case MetricKind::counter:
            w.field("kind", "counter").field("value", v.u64);
            break;
          case MetricKind::gaugeU64:
            w.field("kind", "gaugeU64").field("value", v.u64);
            break;
          case MetricKind::gauge:
            w.field("kind", "gauge").field("value", v.value);
            break;
          case MetricKind::stats:
            w.field("kind", "stats")
                .field("count", v.count)
                .field("mean", v.mean)
                .field("min", v.min)
                .field("max", v.max);
            break;
          case MetricKind::histogram:
            w.field("kind", "histogram")
                .field("count", v.count)
                .field("mean", v.mean)
                .field("min", v.min)
                .field("max", v.max)
                .field("p50", v.p50)
                .field("p90", v.p90)
                .field("p99", v.p99)
                .field("p999", v.p999);
            break;
          case MetricKind::timeSeries:
            w.field("kind", "timeseries")
                .field("binWidth", static_cast<std::uint64_t>(
                                       v.binWidth));
            w.key("bins").beginArray();
            for (double b : v.bins)
                w.value(b);
            w.endArray();
            break;
        }
        w.endObject();
    }
    w.endObject();
}

// --- MetricRegistry --------------------------------------------------

void
MetricRegistry::insert(const std::string &path, Slot slot)
{
    if (path.empty())
        panic("metric registered with empty path");
    if (!slots.emplace(path, std::move(slot)).second)
        panic("duplicate metric path '%s'", path.c_str());
}

void
MetricRegistry::addCounter(const std::string &path, const Counter *c)
{
    Slot s;
    s.kind = MetricKind::counter;
    s.obj = c;
    insert(path, std::move(s));
}

void
MetricRegistry::addAccumulator(const std::string &path,
                               const Accumulator *a)
{
    Slot s;
    s.kind = MetricKind::stats;
    s.obj = a;
    insert(path, std::move(s));
}

void
MetricRegistry::addHistogram(const std::string &path,
                             const Histogram *h)
{
    Slot s;
    s.kind = MetricKind::histogram;
    s.obj = h;
    insert(path, std::move(s));
}

void
MetricRegistry::addTimeSeries(const std::string &path,
                              const TimeSeries *t)
{
    Slot s;
    s.kind = MetricKind::timeSeries;
    s.obj = t;
    insert(path, std::move(s));
}

void
MetricRegistry::addTimeSeriesFn(
    const std::string &path, Cycle bin_width,
    std::function<std::vector<double>()> reader)
{
    Slot s;
    s.kind = MetricKind::timeSeries;
    s.series = std::move(reader);
    s.seriesBinWidth = bin_width;
    insert(path, std::move(s));
}

void
MetricRegistry::addGauge(const std::string &path,
                         std::function<double()> reader)
{
    Slot s;
    s.kind = MetricKind::gauge;
    s.gauge = std::move(reader);
    insert(path, std::move(s));
}

void
MetricRegistry::addGaugeU64(const std::string &path,
                            std::function<std::uint64_t()> reader)
{
    Slot s;
    s.kind = MetricKind::gaugeU64;
    s.gaugeU64 = std::move(reader);
    insert(path, std::move(s));
}

bool
MetricRegistry::has(const std::string &path) const
{
    return slots.find(path) != slots.end();
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    MetricSnapshot::Map out;
    for (const auto &[path, slot] : slots) {
        MetricValue v;
        v.kind = slot.kind;
        switch (slot.kind) {
          case MetricKind::counter: {
            const auto *c = static_cast<const Counter *>(slot.obj);
            v.u64 = c->value();
            v.value = static_cast<double>(v.u64);
            break;
          }
          case MetricKind::gauge:
            v.value = slot.gauge();
            break;
          case MetricKind::gaugeU64:
            v.u64 = slot.gaugeU64();
            v.value = static_cast<double>(v.u64);
            break;
          case MetricKind::stats: {
            const auto *a = static_cast<const Accumulator *>(slot.obj);
            v.count = a->count();
            v.mean = a->mean();
            v.min = a->min();
            v.max = a->max();
            v.value = static_cast<double>(v.count);
            break;
          }
          case MetricKind::histogram: {
            const auto *h = static_cast<const Histogram *>(slot.obj);
            v.count = h->count();
            v.mean = h->mean();
            v.min = h->min();
            v.max = h->max();
            v.p50 = h->percentile(0.50);
            v.p90 = h->percentile(0.90);
            v.p99 = h->percentile(0.99);
            v.p999 = h->percentile(0.999);
            v.value = static_cast<double>(v.count);
            break;
          }
          case MetricKind::timeSeries: {
            if (slot.series) {
                v.binWidth = slot.seriesBinWidth;
                v.bins = slot.series();
                break;
            }
            const auto *t = static_cast<const TimeSeries *>(slot.obj);
            v.binWidth = t->binWidth();
            v.bins = t->data();
            break;
          }
        }
        out.emplace(path, std::move(v));
    }
    return MetricSnapshot(std::move(out));
}

std::string
MetricRegistry::dump() const
{
    std::ostringstream os;
    MetricSnapshot snap = snapshot();
    for (const auto &[path, v] : snap.all())
        os << path << " = " << v.value << "\n";
    return os.str();
}

} // namespace cais
