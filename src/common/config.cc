#include "common/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace cais
{

Params
Params::fromArgs(int argc, char **argv)
{
    Params p;
    for (int i = 1; i < argc; ++i)
        p.parseToken(argv[i]);
    return p;
}

bool
Params::parseToken(const std::string &token)
{
    // Accept "--key=value" as a synonym for "key=value" so the bench
    // flags read naturally on the command line.
    std::size_t start = 0;
    while (start < token.size() && token[start] == '-')
        ++start;
    auto eq = token.find('=', start);
    if (eq == std::string::npos || eq == start)
        return false;
    set(token.substr(start, eq - start), token.substr(eq + 1));
    return true;
}

void
Params::set(const std::string &key, const std::string &value)
{
    if (!kv.count(key))
        order.push_back(key);
    kv[key] = value;
}

bool
Params::has(const std::string &key) const
{
    return kv.count(key) != 0;
}

std::string
Params::getString(const std::string &key, const std::string &def) const
{
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
}

std::int64_t
Params::getInt(const std::string &key, std::int64_t def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

double
Params::getDouble(const std::string &key, double def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("parameter %s=%s is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
Params::getBool(const std::string &key, bool def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("parameter %s=%s is not a boolean", key.c_str(), v.c_str());
}

} // namespace cais
