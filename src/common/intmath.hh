/**
 * @file
 * Integer serialization-time math for bandwidth models.
 *
 * Link and HBM bandwidths are configured as double bytes/cycle, but
 * almost every configured value is a small rational (450/4 = 112.5,
 * 100.0, ...). SerDivider snaps such values to an exact num/den pair
 * at construction so the per-packet ceil(bytes / bw) on the wire hot
 * path is a pure integer ceil-div — no <cmath>, no FP rounding in the
 * event loop. Irrational or huge values fall back to a float path
 * that reproduces std::ceil bit-for-bit.
 */

#ifndef CAIS_COMMON_INTMATH_HH
#define CAIS_COMMON_INTMATH_HH

#include <cstdint>

#include "common/types.hh"

namespace cais
{

/** Integer ceil-div of two positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t n, std::uint64_t d)
{
    return (n + d - 1) / d;
}

/** Ceil-divides byte counts by a bytes/cycle bandwidth. */
class SerDivider
{
  public:
    SerDivider() = default;

    explicit SerDivider(double bytes_per_cycle)
        : bw(bytes_per_cycle), num(0), den(0)
    {
        // Snap bw to num/den for small denominators (covers every
        // config the benches use: integers, halves, quarters, ...).
        for (std::uint64_t d = 1; d <= 64; ++d) {
            double scaled = bw * static_cast<double>(d);
            auto n = static_cast<std::uint64_t>(scaled);
            if (scaled > 0.0 && scaled < 9.0e15 &&
                static_cast<double>(n) == scaled) {
                num = n;
                den = d;
                break;
            }
        }
    }

    /**
     * Cycles to serialize @p bytes: ceil(bytes / bw), identical to
     * the former std::ceil(double(bytes) / bw) result.
     */
    Cycle
    cycles(std::uint64_t bytes) const
    {
        if (den != 0 && bytes <= ~0ull / den)
            return ceilDiv(bytes * den, num);
        // Fallback: reproduce std::ceil on the rounded quotient.
        double q = static_cast<double>(bytes) / bw;
        auto c = static_cast<Cycle>(q);
        if (static_cast<double>(c) < q)
            ++c;
        return c;
    }

    /** True when the integer fast path is active. */
    bool exact() const { return den != 0; }

  private:
    double bw = 1.0;
    std::uint64_t num = 1; ///< bw == num / den when den != 0
    std::uint64_t den = 1;
};

} // namespace cais

#endif // CAIS_COMMON_INTMATH_HH
