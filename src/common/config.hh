/**
 * @file
 * Minimal key=value parameter store used by example and bench
 * binaries to override simulation defaults from the command line.
 */

#ifndef CAIS_COMMON_CONFIG_HH
#define CAIS_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cais
{

/** Parsed "key=value" command-line parameters with typed getters. */
class Params
{
  public:
    Params() = default;

    /** Parse argv entries of the form key=value; others are ignored. */
    static Params fromArgs(int argc, char **argv);

    /** Parse one "key=value" (or "--key=value") token; returns false
     *  if malformed. */
    bool parseToken(const std::string &token);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Keys present, in insertion order. */
    const std::vector<std::string> &keys() const { return order; }

  private:
    std::map<std::string, std::string> kv;
    std::vector<std::string> order;
};

} // namespace cais

#endif // CAIS_COMMON_CONFIG_HH
