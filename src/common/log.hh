/**
 * @file
 * Logging and error-reporting helpers in the gem5 spirit.
 *
 * panic()  - an internal simulator invariant was violated (a bug);
 *            aborts the process.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - status message with no connotation of incorrectness.
 */

#ifndef CAIS_COMMON_LOG_HH
#define CAIS_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace cais
{

/** Verbosity levels for inform(); warnings always print. */
enum class LogLevel { quiet = 0, normal = 1, verbose = 2 };

/**
 * Set the process-wide default verbosity for inform() /
 * informVerbose(). Thread-safe (the level is an atomic); per-run
 * overrides are installed with ScopedLogLevel.
 */
void setLogLevel(LogLevel level);

/**
 * Effective verbosity on the calling thread: the innermost
 * ScopedLogLevel override if one is active, else the process-wide
 * default.
 */
LogLevel logLevel();

/**
 * RAII thread-local verbosity override. Simulation jobs running
 * concurrently on a SweepRunner worker pool each carry their own
 * RunConfig verbosity without touching (or racing on) the global
 * default; nesting restores the outer override on destruction.
 */
class ScopedLogLevel
{
  public:
    explicit ScopedLogLevel(LogLevel level);
    ~ScopedLogLevel();

    ScopedLogLevel(const ScopedLogLevel &) = delete;
    ScopedLogLevel &operator=(const ScopedLogLevel &) = delete;

  private:
    LogLevel prev;
    bool prevActive;
};

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modelling concern. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal status (suppressed at LogLevel::quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report detailed status (printed only at LogLevel::verbose). */
void informVerbose(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cais

#endif // CAIS_COMMON_LOG_HH
