/**
 * @file
 * Conservative parallel-discrete-event execution over N EventQueue
 * shards (DESIGN.md §6f).
 *
 * The fabric is partitioned into event domains whose only
 * cross-domain coupling is CreditLink traffic with latency >= L (the
 * *lookahead*). The window loop exploits that bound without null
 * messages:
 *
 *   1. barrier: M = min over shards of the earliest pending cycle;
 *   2. every shard drains its events in [M, min(M + L, next observer
 *      sample)) concurrently — nothing a shard does in the window can
 *      affect another shard inside it, because any cross-domain
 *      effect is at least L cycles out;
 *   3. barrier: schedule calls that crossed shards (or outran the
 *      window) were parked in per-shard mailboxes; they are now
 *      sorted into the sequential scheduler's call order, assigned
 *      global sequence numbers, and delivered.
 *
 * The sort reconstructs sequential call order exactly (see the
 * class-0/class-1 seq encoding in event_queue.hh), so a sharded run
 * pops every queue in the same (when, seq) order the sequential
 * scheduler would — results are bit-identical, which
 * tests/test_sharded_determinism.cc locks across every strategy and
 * topology preset.
 */

#ifndef CAIS_COMMON_SHARDED_EVENT_QUEUE_HH
#define CAIS_COMMON_SHARDED_EVENT_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_queue.hh"

namespace cais
{

/** Barrier-synchronized window executor over N event-queue shards. */
class ShardedEventQueue
{
  public:
    /**
     * Wrap @p primary as shard 0 (the host/GPU domain, drained by the
     * calling thread) and create @p shards - 1 further queues, each
     * drained by a dedicated worker. @p lookahead is the minimum
     * latency of any link whose endpoints live on different shards;
     * it must be non-zero (RunConfig::validationError enforces this).
     */
    ShardedEventQueue(EventQueue &primary, int shards, Cycle lookahead);
    CAIS_CROSS_SHARD_CHANNEL ~ShardedEventQueue();

    ShardedEventQueue(const ShardedEventQueue &) = delete;
    ShardedEventQueue &operator=(const ShardedEventQueue &) = delete;

    int numShards() const { return static_cast<int>(queues.size()); }
    Cycle lookahead() const { return la; }

    /** Shard @p i's queue; components bind to their domain's shard. */
    EventQueue &shard(int i)
    {
        return *queues[static_cast<std::size_t>(i)];
    }

    /** Install shard @p i's opaque observer state (the profiler's
     *  per-shard edge log); reachable from the shard's thread via
     *  EventQueue::threadShardCtx()->userData. */
    void setShardUserData(int i, void *p)
    {
        ctxs[static_cast<std::size_t>(i)]->userData = p;
    }

    /**
     * Run the window loop until every shard drains (or the event
     * budget is exhausted, checked at barriers). Must be called from
     * the thread that owns shard 0. @return events executed.
     */
    CAIS_CROSS_SHARD_CHANNEL
    std::uint64_t runAll(std::uint64_t max_events = ~0ull);

    /** Events executed over all shards (1:1 with sequential). */
    std::uint64_t executed() const;

    /** Pending events over all shards. */
    std::size_t size() const;

    /** Time of the latest executed event over all shards — exactly
     *  the sequential queue's now() after the same events. */
    Cycle now() const;

    /**
     * Periodic observer with EventQueue::setPeriodicObserver
     * semantics: fired at window barriers (all shards quiesced) for
     * every sample point at or below the next window's start, before
     * any event at or past the sample point executes — the same
     * points, in the same state, as the sequential scheduler fires.
     */
    void setPeriodicObserver(Cycle period,
                             std::function<void(Cycle)> fn);

  private:
    CAIS_OWNED_BY_DOMAIN(barrier);

    void drainWindow(int s);
    CAIS_CROSS_SHARD_CHANNEL void workerMain(int s);

    /** Earliest pending cycle over all shards, or ~0ull when empty. */
    Cycle minNextWhen() const;

    /** Sequential execution order of two logged events. */
    bool execLess(int sa, std::uint32_t ea, int sb,
                  std::uint32_t eb) const;

    /** Sequential order of two schedule calls (exec log positions
     *  plus per-event call indices). */
    bool callLess(int sa, std::uint32_t ea, std::uint32_t ca, int sb,
                  std::uint32_t eb, std::uint32_t cb) const;

    /** Sort this window's mailboxes into sequential call order,
     *  assign vseqs, and deliver into the destination queues. */
    void mergeOutboxes();

    Cycle la;
    ShardGroup group;

    std::vector<EventQueue *> queues; ///< [0] is the primary
    std::vector<std::unique_ptr<EventQueue>> owned;
    std::vector<std::unique_ptr<ShardCtx>> ctxs;

    /** (shard, mailbox index) pairs, reused across windows. */
    struct OutRef
    {
        CAIS_OWNED_BY_DOMAIN(parent);

        int shard;
        std::uint32_t rec;
    };
    std::vector<OutRef> mergeOrder;

    // Worker pool: one thread per shard 1..N-1, parked on a
    // generation-counted condition variable between windows (a spin
    // barrier would be pathological when shards oversubscribe cores).
    // The generation counter and worker tally are written by the
    // barrier thread and read by every worker under `mu`.
    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    CAIS_SHARD_SHARED std::uint64_t windowGen = 0;
    CAIS_SHARD_SHARED int pendingWorkers = 0;
    CAIS_SHARD_SHARED bool stopping = false;

    // Periodic observer (mirrors EventQueue's, fired at barriers).
    static constexpr Cycle obsDisabled = ~0ull;
    Cycle obsPeriod = 0;
    Cycle nextObsAt = obsDisabled;
    std::function<void(Cycle)> observer;
};

} // namespace cais

#endif // CAIS_COMMON_SHARDED_EVENT_QUEUE_HH
