/**
 * @file
 * 128-bit node/participant bitmask. The switch-compute tables track
 * which nodes contributed to a session; with multi-tier fabrics the
 * contributor set covers GPU ids *and* leaf-switch node ids, which
 * overflows a plain uint64 once the fabric exceeds 64 nodes (nvl72:
 * 72 GPUs + 42 switches). Two words cover every supported shape
 * (numGpus + numSwitches <= 128, enforced by FabricParams).
 */

#ifndef CAIS_COMMON_NODEMASK_HH
#define CAIS_COMMON_NODEMASK_HH

#include <cstdint>

namespace cais
{

/** Fixed 128-bit bitset keyed by node id, with deterministic
 *  ascending-bit iteration. */
struct NodeMask
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    static constexpr int capacity = 128;

    static NodeMask
    bit(int i)
    {
        NodeMask m;
        m.set(i);
        return m;
    }

    void
    set(int i)
    {
        if (i < 0 || i >= capacity)
            return;
        if (i < 64)
            lo |= 1ull << i;
        else
            hi |= 1ull << (i - 64);
    }

    bool
    test(int i) const
    {
        if (i < 0 || i >= capacity)
            return false;
        return i < 64 ? (lo >> i) & 1 : (hi >> (i - 64)) & 1;
    }

    bool any() const { return lo != 0 || hi != 0; }
    bool none() const { return !any(); }

    int
    count() const
    {
        return __builtin_popcountll(lo) + __builtin_popcountll(hi);
    }

    NodeMask &
    operator|=(const NodeMask &o)
    {
        lo |= o.lo;
        hi |= o.hi;
        return *this;
    }

    bool
    operator==(const NodeMask &o) const
    {
        return lo == o.lo && hi == o.hi;
    }

    /** Invoke @p fn on every set bit in ascending order (the
     *  deterministic broadcast/iteration order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint64_t w = lo; w != 0; w &= w - 1)
            fn(__builtin_ctzll(w));
        for (std::uint64_t w = hi; w != 0; w &= w - 1)
            fn(64 + __builtin_ctzll(w));
    }
};

} // namespace cais

#endif // CAIS_COMMON_NODEMASK_HH
