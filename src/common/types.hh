/**
 * @file
 * Fundamental scalar types and unit conventions shared by every CAIS
 * module.
 *
 * Conventions:
 *  - One simulation cycle equals one nanosecond (1 GHz fabric clock).
 *  - Bandwidth is expressed in bytes per cycle (== GB/s numerically).
 *  - Addresses are byte addresses in a flat global address space; the
 *    upper bits encode the home GPU (see addrHomeGpu below).
 */

#ifndef CAIS_COMMON_TYPES_HH
#define CAIS_COMMON_TYPES_HH

#include <cstdint>

namespace cais
{

/** Simulation time in cycles; 1 cycle == 1 ns. */
using Cycle = std::uint64_t;

/** Byte address in the flat multi-GPU global address space. */
using Addr = std::uint64_t;

/** Identifier types. Negative values mean "invalid / not assigned". */
using GpuId = int;
using SwitchId = int;
using SmId = int;
using TbId = int;
using GroupId = int;
using KernelId = int;
using OpId = int;

/** Sentinel for unassigned identifiers. */
constexpr int invalidId = -1;

/** Cycles per microsecond under the 1 cycle == 1 ns convention. */
constexpr Cycle cyclesPerUs = 1000;

/** Cycles per millisecond. */
constexpr Cycle cyclesPerMs = 1000 * 1000;

/** Number of address bits reserved for the intra-GPU offset. */
constexpr int addrGpuShift = 40;

/**
 * Home GPU of a global address. Each GPU owns a 1 TiB window; the
 * window index is the GPU id.
 */
inline GpuId
addrHomeGpu(Addr a)
{
    return static_cast<GpuId>(a >> addrGpuShift);
}

/** Build a global address from a home GPU and a local byte offset. */
inline Addr
makeAddr(GpuId gpu, Addr offset)
{
    return (static_cast<Addr>(gpu) << addrGpuShift) | offset;
}

/** Local byte offset of a global address within its home GPU. */
inline Addr
addrOffset(Addr a)
{
    return a & ((Addr(1) << addrGpuShift) - 1);
}

// ------------------------------------------------------------------
// Shard-ownership annotations (DESIGN.md §6f, checked by cais_lint
// rules D9-D11 — cais-shardcheck).
//
// The sharded conservative-PDES core is only deterministic because
// every mutable field of a fabric-resident component is touched from
// exactly one domain's event queue, except through two sanctioned
// channels: the barrier outbox merge and the safeHorizon-trimmed
// credit cells. These macros make that contract machine-checkable:
//
//  - CAIS_OWNED_BY_DOMAIN(d) declares, inside a class body, which
//    domain's queue runs every method of the class. The argument is
//    one of the identifiers below; it is documentation for humans and
//    an anchor for the linter, not code.
//      host          domain 0: host, GPUs, kernel lifecycle
//      switch_domain the owning switch's domain (shard >= 1)
//      sender        the link sender's domain (CreditLink)
//      parent        same domain as the enclosing/owning object
//      message       travels by value between domains (Packet)
//      config        immutable after construction (parameter blocks)
//      barrier       the cross-shard barrier coordinator itself
//  - CAIS_SHARD_SHARED prefixes the declaration of a field that is
//    legitimately read or written from more than one domain; every
//    access outside a channel function is a D11 violation.
//  - CAIS_CROSS_SHARD_CHANNEL prefixes the declaration or definition
//    of a function implementing a sanctioned cross-domain protocol
//    (credit split-return, outbox merge, barrier control); D9/D11 do
//    not fire inside such functions.
// ------------------------------------------------------------------

/** Domain-ownership declaration for a class (statement position). */
#define CAIS_OWNED_BY_DOMAIN(domain)                                   \
    static_assert(true, "owned by shard domain: " #domain)

/** Marks one field as sanctioned multi-domain state (D11 scope). */
#define CAIS_SHARD_SHARED

/** Marks one function as a sanctioned cross-domain channel. */
#define CAIS_CROSS_SHARD_CHANNEL

} // namespace cais

#endif // CAIS_COMMON_TYPES_HH
