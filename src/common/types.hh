/**
 * @file
 * Fundamental scalar types and unit conventions shared by every CAIS
 * module.
 *
 * Conventions:
 *  - One simulation cycle equals one nanosecond (1 GHz fabric clock).
 *  - Bandwidth is expressed in bytes per cycle (== GB/s numerically).
 *  - Addresses are byte addresses in a flat global address space; the
 *    upper bits encode the home GPU (see addrHomeGpu below).
 */

#ifndef CAIS_COMMON_TYPES_HH
#define CAIS_COMMON_TYPES_HH

#include <cstdint>

namespace cais
{

/** Simulation time in cycles; 1 cycle == 1 ns. */
using Cycle = std::uint64_t;

/** Byte address in the flat multi-GPU global address space. */
using Addr = std::uint64_t;

/** Identifier types. Negative values mean "invalid / not assigned". */
using GpuId = int;
using SwitchId = int;
using SmId = int;
using TbId = int;
using GroupId = int;
using KernelId = int;
using OpId = int;

/** Sentinel for unassigned identifiers. */
constexpr int invalidId = -1;

/** Cycles per microsecond under the 1 cycle == 1 ns convention. */
constexpr Cycle cyclesPerUs = 1000;

/** Cycles per millisecond. */
constexpr Cycle cyclesPerMs = 1000 * 1000;

/** Number of address bits reserved for the intra-GPU offset. */
constexpr int addrGpuShift = 40;

/**
 * Home GPU of a global address. Each GPU owns a 1 TiB window; the
 * window index is the GPU id.
 */
inline GpuId
addrHomeGpu(Addr a)
{
    return static_cast<GpuId>(a >> addrGpuShift);
}

/** Build a global address from a home GPU and a local byte offset. */
inline Addr
makeAddr(GpuId gpu, Addr offset)
{
    return (static_cast<Addr>(gpu) << addrGpuShift) | offset;
}

/** Local byte offset of a global address within its home GPU. */
inline Addr
addrOffset(Addr a)
{
    return a & ((Addr(1) << addrGpuShift) - 1);
}

} // namespace cais

#endif // CAIS_COMMON_TYPES_HH
