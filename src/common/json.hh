/**
 * @file
 * Minimal JSON support shared by the observability layer: a streaming
 * writer (used by the metrics report and the Perfetto trace exporter)
 * and a small recursive-descent parser (used by cais_report and the
 * report round-trip tests).
 *
 * The writer emits deterministic output: doubles are printed with
 * "%.17g" (shortest exact round-trip for IEEE doubles is not needed;
 * byte-stable output across runs is), and non-finite doubles are
 * written as 0 so the emitted document is always valid JSON.
 */

#ifndef CAIS_COMMON_JSON_HH
#define CAIS_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cais
{

/** Streaming JSON writer with automatic comma/nesting management. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The document so far. */
    const std::string &str() const { return out; }

    /** Escape @p s for embedding inside a JSON string literal. */
    static std::string escape(const std::string &s);

  private:
    /** Emit a comma if the current container already has a member. */
    void separate();

    std::string out;
    /** Stack of "current container needs a comma before next item". */
    std::vector<bool> needComma;
    bool pendingKey = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Kind kind = Kind::null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> elems;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::null; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }
    bool isArray() const { return kind == Kind::array; }
    bool isObject() const { return kind == Kind::object; }

    /** Object member by key, or nullptr. */
    const JsonValue *find(const std::string &k) const;

    /** Member as number/string with a default when absent/mistyped. */
    double getNumber(const std::string &k, double def = 0.0) const;
    std::string getString(const std::string &k,
                          const std::string &def = "") const;
};

/**
 * Parse a JSON document. On failure returns false and sets @p error
 * to "offset N: message". Accepts any JSON value at the top level.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace cais

#endif // CAIS_COMMON_JSON_HH
