#include "common/event_queue.hh"

#include "common/log.hh"

namespace cais
{

void
EventQueue::schedule(Cycle when, Callback cb)
{
    if (when < curTick)
        panic("scheduling event in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    heap.push(Entry{when, nextSeq++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Cycle delta, Callback cb)
{
    schedule(curTick + delta, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    // Move the callback out before popping so the entry can schedule
    // further events safely.
    Entry e = heap.top();
    heap.pop();
    curTick = e.when;
    ++numExecuted;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Cycle limit)
{
    std::uint64_t n = 0;
    while (!heap.empty() && heap.top().when <= limit) {
        runOne();
        ++n;
    }
    // Simulated time reaches the limit even when later events remain
    // pending.
    if (curTick < limit)
        curTick = limit;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    if (n == max_events && !heap.empty())
        warn("event budget (%llu) exhausted with %zu events pending",
             static_cast<unsigned long long>(max_events), heap.size());
    return n;
}

void
EventQueue::reset()
{
    heap = decltype(heap)();
    curTick = 0;
    nextSeq = 0;
    numExecuted = 0;
}

} // namespace cais
